//! # pitract-store — persist Π(D) once, warm-start serving from disk
//!
//! The paper's Π-tractability contract (Definition 1) is *preprocess `D`
//! once in PTIME, then answer every query in parallel polylog time*. The
//! sibling crates build the preprocessed structures; this crate makes the
//! "once" literal: a preprocessed structure is serialized to a versioned,
//! checksummed binary snapshot, and a fresh process warm-starts by
//! loading the snapshot instead of re-running `Π(D)` — turning every
//! boot after the first from an O(n log n) rebuild into an O(n) read.
//!
//! * [`snapshot::Snapshot`] — save/load for the three production
//!   structures: [`pitract_relation::indexed::IndexedRelation`],
//!   [`pitract_engine::ShardedRelation`] (schema, partitioning, per-shard
//!   data, global-id/location maps, tombstones), and
//!   [`pitract_graph::hop::HopLabels`]. The file format (magic tag,
//!   format version, section table, FNV-1a checksum) is documented in
//!   [`snapshot`]'s module docs.
//! * [`codec`] — the hand-rolled little-endian writer/reader underneath:
//!   zero dependencies, no serde, and **total** on the read side —
//!   arbitrary or truncated bytes produce a typed [`error::StoreError`],
//!   never a panic or an unbounded allocation.
//! * [`catalog::SnapshotCatalog`] — named snapshots in a directory with
//!   atomic (temp-file + rename) replacement: list, save, load, remove.
//! * [`live::LiveCheckpoint`] — checkpoint/recover for the live serving
//!   tier: `checkpoint` freezes a [`pitract_engine::LiveRelation`] into
//!   the catalog (with the cut's MVCC epoch) and truncates its update
//!   log; `recover` loads the snapshot and replays the log, reproducing
//!   the live state bit-identically (answers and global row ids) and
//!   resuming the epoch clock, summarized in a typed [`live::Recovered`].
//!
//! The correctness contract, enforced by unit, integration, and property
//! tests: for every persisted structure, `load(save(x))` answers every
//! query identically to the cold-rebuilt oracle — same Booleans, same row
//! ids (tombstones and global-id maps are persisted verbatim) — and
//! corrupted, truncated, or version-skewed files are rejected with a
//! typed error.
//!
//! ```
//! use pitract_relation::indexed::IndexedRelation;
//! use pitract_relation::{ColType, Relation, Schema, SelectionQuery, Value};
//! use pitract_store::{Snapshot, SnapshotCatalog};
//!
//! let schema = Schema::new(&[("id", ColType::Int)]);
//! let rows = (0..1_000i64).map(|i| vec![Value::Int(i)]).collect();
//! let relation = Relation::from_rows(schema, rows).unwrap();
//!
//! // Π(D), paid once…
//! let indexed = IndexedRelation::build(&relation, &[0]).unwrap();
//!
//! // …persisted…
//! let dir = std::env::temp_dir().join(format!("pitract-doc-{}", std::process::id()));
//! let catalog = SnapshotCatalog::open(&dir).unwrap();
//! catalog.save("ids", &Snapshot::Indexed(indexed)).unwrap();
//!
//! // …and warm-started by a fresh engine, no rebuild.
//! let served = catalog.load("ids").unwrap().into_indexed().unwrap();
//! assert!(served.answer(&SelectionQuery::point(0, 999i64)));
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![warn(missing_docs)]
// Serving-stack panic hygiene (PR 9): no panicking escape hatches in
// non-test code. Individual invariant sites opt out locally with an
// `#[allow]` paired with a `// lint:allow(...)` justification that the
// `pitract-lint` pass checks.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(clippy::dbg_macro)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod codec;
pub mod error;
pub mod live;
pub mod snapshot;

pub use catalog::SnapshotCatalog;
pub use error::StoreError;
pub use live::{LiveCheckpoint, Recovered};
pub use snapshot::{fsync_dir, write_atomic, Snapshot, SnapshotKind, FORMAT_VERSION, MAGIC};
