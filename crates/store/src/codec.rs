//! The hand-rolled binary codec: little-endian, length-prefixed, and
//! total on the read side.
//!
//! No serde: snapshot producers run offline and the format is small
//! enough that an explicit writer/reader pair is simpler than a derive —
//! and it keeps the crate zero-dependency. Conventions:
//!
//! * scalars are fixed-width little-endian (`u8`/`u16`/`u32`/`u64`/`i64`);
//!   `usize` is always written as `u64` so files are portable across
//!   pointer widths;
//! * strings are a `u64` byte length followed by UTF-8 bytes (validated
//!   on read);
//! * sequences are a `u64` element count followed by the elements;
//! * sum types carry a one-byte tag ([`Value`]: 0 = `Int`, 1 = `Str`;
//!   [`ColType`]: same; `Option`: 0 = `None`, 1 = `Some`).
//!
//! The [`Reader`] is **total**: every read bounds-checks against the
//! remaining input and every declared count is sanity-checked against the
//! bytes that could possibly back it, so feeding arbitrary or truncated
//! bytes returns a [`StoreError`] — never a panic and never an
//! attacker-sized allocation. (A fuzz-style test in `tests/proptests.rs`
//! drives random and truncated inputs through the whole load path.)

use crate::error::StoreError;
use pitract_engine::UpdateEntry;
use pitract_relation::{ColType, Schema, Value};

/// An append-only little-endian byte writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Has anything been written?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish and take the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `i64`, little-endian.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `usize` as a `u64` (portable across pointer widths).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Write raw bytes with no framing (caller-framed payloads).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Write a tagged [`Value`].
    pub fn value(&mut self, v: &Value) {
        match v {
            Value::Int(i) => {
                self.u8(0);
                self.i64(*i);
            }
            Value::Str(s) => {
                self.u8(1);
                self.str(s);
            }
        }
    }

    /// Write a row: element count, then tagged values.
    pub fn row(&mut self, row: &[Value]) {
        self.usize(row.len());
        for v in row {
            self.value(v);
        }
    }

    /// Write an optional row (0 = tombstone, 1 = live).
    pub fn opt_row(&mut self, slot: &Option<Vec<Value>>) {
        match slot {
            None => self.u8(0),
            Some(row) => {
                self.u8(1);
                self.row(row);
            }
        }
    }

    /// Write a [`Schema`]: column count, then `(name, type tag)` pairs.
    pub fn schema(&mut self, schema: &Schema) {
        self.usize(schema.arity());
        for col in 0..schema.arity() {
            self.str(schema.name(col));
            self.u8(match schema.col_type(col) {
                ColType::Int => 0,
                ColType::Str => 1,
            });
        }
    }

    /// Write a sequence of `u64`-encoded `usize`s.
    pub fn usize_seq(&mut self, seq: &[usize]) {
        self.usize(seq.len());
        for &v in seq {
            self.usize(v);
        }
    }

    /// Write a sequence of `u32`s.
    pub fn u32_seq(&mut self, seq: &[u32]) {
        self.usize(seq.len());
        for &v in seq {
            self.u32(v);
        }
    }

    /// Write one tagged [`UpdateEntry`] (0 = insert with gid + row,
    /// 1 = delete with gid) — the encoding shared by the snapshot's
    /// update-log section and the `pitract-wal` segment payloads.
    pub fn update_entry(&mut self, entry: &UpdateEntry) {
        match entry {
            UpdateEntry::Insert { gid, row } => {
                self.u8(0);
                self.usize(*gid);
                self.row(row);
            }
            UpdateEntry::Delete { gid } => {
                self.u8(1);
                self.usize(*gid);
            }
        }
    }
}

/// A bounds-checked little-endian byte reader over a borrowed slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Has every byte been consumed?
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Take `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if n > self.remaining() {
            return Err(StoreError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Take exactly `N` bytes as an array — the fixed-width cousin of
    /// [`Self::take`], with the same typed [`StoreError::Truncated`] on
    /// underrun instead of a panicking slice conversion.
    pub fn take_array<const N: usize>(&mut self) -> Result<[u8; N], StoreError> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16`, little-endian.
    pub fn u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }

    /// Read a `u32`, little-endian.
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    /// Read a `u64`, little-endian.
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    /// Read an `i64`, little-endian.
    pub fn i64(&mut self) -> Result<i64, StoreError> {
        Ok(i64::from_le_bytes(self.take_array()?))
    }

    /// Read a `u64` and narrow it to `usize`.
    pub fn usize(&mut self) -> Result<usize, StoreError> {
        usize::try_from(self.u64()?).map_err(|_| StoreError::Corrupt("usize overflow".into()))
    }

    /// Read a declared element count, rejecting counts that could not
    /// possibly be backed by the remaining bytes (each element occupies
    /// at least `min_elem_bytes`). This bounds allocations by the input
    /// size, so a corrupted count cannot trigger a huge `Vec` reserve.
    pub fn count(&mut self, min_elem_bytes: usize) -> Result<usize, StoreError> {
        let n = self.usize()?;
        if n.checked_mul(min_elem_bytes.max(1))
            .is_none_or(|need| need > self.remaining())
        {
            return Err(StoreError::Truncated);
        }
        Ok(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, StoreError> {
        let len = self.count(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::Corrupt("string is not UTF-8".into()))
    }

    /// Read a tagged [`Value`].
    pub fn value(&mut self) -> Result<Value, StoreError> {
        match self.u8()? {
            0 => Ok(Value::Int(self.i64()?)),
            1 => Ok(Value::Str(self.str()?)),
            tag => Err(StoreError::Corrupt(format!("bad value tag {tag}"))),
        }
    }

    /// Read a row (count + tagged values).
    pub fn row(&mut self) -> Result<Vec<Value>, StoreError> {
        let n = self.count(1)?;
        (0..n).map(|_| self.value()).collect()
    }

    /// Read an optional row.
    pub fn opt_row(&mut self) -> Result<Option<Vec<Value>>, StoreError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.row()?)),
            tag => Err(StoreError::Corrupt(format!("bad option tag {tag}"))),
        }
    }

    /// Read a [`Schema`].
    pub fn schema(&mut self) -> Result<Schema, StoreError> {
        let arity = self.count(1)?;
        let mut cols: Vec<(String, ColType)> = Vec::with_capacity(arity);
        for _ in 0..arity {
            let name = self.str()?;
            let ty = match self.u8()? {
                0 => ColType::Int,
                1 => ColType::Str,
                tag => return Err(StoreError::Corrupt(format!("bad column type tag {tag}"))),
            };
            if name.is_empty() {
                return Err(StoreError::Corrupt("empty column name".into()));
            }
            if cols.iter().any(|(n, _)| n == &name) {
                return Err(StoreError::Corrupt(format!("duplicate column {name:?}")));
            }
            cols.push((name, ty));
        }
        let borrowed: Vec<(&str, ColType)> = cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        Ok(Schema::new(&borrowed))
    }

    /// Read a sequence of `usize`s.
    pub fn usize_seq(&mut self) -> Result<Vec<usize>, StoreError> {
        let n = self.count(8)?;
        (0..n).map(|_| self.usize()).collect()
    }

    /// Read a sequence of `u32`s.
    pub fn u32_seq(&mut self) -> Result<Vec<u32>, StoreError> {
        let n = self.count(4)?;
        (0..n).map(|_| self.u32()).collect()
    }

    /// Read one tagged [`UpdateEntry`] (the inverse of
    /// [`Writer::update_entry`]).
    pub fn update_entry(&mut self) -> Result<UpdateEntry, StoreError> {
        match self.u8()? {
            0 => Ok(UpdateEntry::Insert {
                gid: self.usize()?,
                row: self.row()?,
            }),
            1 => Ok(UpdateEntry::Delete { gid: self.usize()? }),
            tag => Err(StoreError::Corrupt(format!("bad log entry tag {tag}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(65535);
        w.u32(123_456);
        w.u64(u64::MAX);
        w.i64(i64::MIN);
        w.usize(42);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 65535);
        assert_eq!(r.u32().unwrap(), 123_456);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), i64::MIN);
        assert_eq!(r.usize().unwrap(), 42);
        assert!(r.is_exhausted());
    }

    #[test]
    fn values_and_rows_roundtrip() {
        let rows: Vec<Option<Vec<Value>>> = vec![
            Some(vec![Value::Int(i64::MIN), Value::str("")]),
            None,
            Some(vec![Value::Int(i64::MAX), Value::str("héllo Σ* 日本語")]),
            Some(vec![]), // zero-arity edge
        ];
        let mut w = Writer::new();
        for slot in &rows {
            w.opt_row(slot);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for slot in &rows {
            assert_eq!(&r.opt_row().unwrap(), slot);
        }
        assert!(r.is_exhausted());
    }

    #[test]
    fn schema_roundtrips() {
        let schema = Schema::new(&[("id", ColType::Int), ("täg", ColType::Str)]);
        let mut w = Writer::new();
        w.schema(&schema);
        let bytes = w.into_bytes();
        assert_eq!(Reader::new(&bytes).schema().unwrap(), schema);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.value(&Value::str("a longer string payload"));
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(r.value().is_err(), "prefix of {cut} bytes must fail");
        }
    }

    #[test]
    fn oversized_counts_are_rejected_before_allocation() {
        // A count claiming 2^60 strings backed by 8 bytes of input.
        let mut w = Writer::new();
        w.u64(1 << 60);
        let bytes = w.into_bytes();
        assert!(matches!(
            Reader::new(&bytes).usize_seq(),
            Err(StoreError::Truncated)
        ));
        assert!(matches!(
            Reader::new(&bytes).row(),
            Err(StoreError::Truncated)
        ));
    }

    #[test]
    fn bad_tags_are_corrupt() {
        let bytes = [9u8, 0, 0, 0, 0, 0, 0, 0, 0];
        assert!(matches!(
            Reader::new(&bytes).value(),
            Err(StoreError::Corrupt(_))
        ));
        let mut w = Writer::new();
        w.usize(1);
        w.str("c");
        w.u8(7); // bad ColType tag
        let bytes = w.into_bytes();
        assert!(matches!(
            Reader::new(&bytes).schema(),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn invalid_utf8_is_corrupt() {
        let mut w = Writer::new();
        w.usize(2);
        w.raw(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        assert!(matches!(
            Reader::new(&bytes).str(),
            Err(StoreError::Corrupt(_))
        ));
    }
}
