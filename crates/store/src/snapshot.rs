//! The versioned snapshot file format and its save/load entry points.
//!
//! # On-disk layout (format version 1)
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------
//! 0       8     magic tag, the ASCII bytes "PITRSNAP"
//! 8       2     format version, u16 LE (currently 1)
//! 10      2     structure kind, u16 LE (see [`SnapshotKind`])
//! 12      4     section count k, u32 LE
//! 16      12*k  section table: k entries of (tag: u32 LE, len: u64 LE);
//!               payloads follow in table order
//! ...     Σlen  the k section payloads, concatenated
//! end-8   8     FNV-1a 64 checksum over every preceding byte, u64 LE
//! ```
//!
//! Section payloads use the [`crate::codec`] conventions. The tags per
//! structure kind:
//!
//! | kind | sections (tag) |
//! |---|---|
//! | `IndexedRelation` | schema (1), row slots incl. tombstones (2), per-column index postings (3) |
//! | `ShardedRelation` | schema (1), shard_by (4), per-shard bodies (5), global-id maps (6), locations (7) |
//! | `HopLabels` | `L_out` (8), `L_in` (9), hub ranks (10) |
//! | `UpdateLog` | logged insert/delete entries (11) |
//! | `LiveCheckpoint` | the `ShardedRelation` sections, WAL mark (12), cut epoch (13) |
//!
//! Readers locate sections by tag, so a future version may append new
//! sections without breaking old payload parsing — the cut-epoch
//! section (13) is exactly such an append: files written before it
//! existed load with epoch 0. Any change to an
//! existing section's encoding must bump the format version, which this
//! reader rejects with [`StoreError::VersionMismatch`]. Corruption is
//! caught in layers: the checksum rejects bit rot and truncation, the
//! bounds-checked codec rejects structurally impossible payloads, and the
//! `from_parts` constructors reject decodable-but-inconsistent parts. A
//! golden fixture test pins the byte-level format so accidental encoding
//! drift fails CI.

use crate::codec::{Reader, Writer};
use crate::error::StoreError;
use pitract_core::epoch::Epoch;
use pitract_core::hash::fnv1a64;
use pitract_engine::{ShardBy, ShardedRelation, UpdateEntry, UpdateLog};
use pitract_graph::hop::HopLabels;
use pitract_relation::indexed::{IndexEntries, IndexedRelation};
use pitract_relation::{Schema, Value};
use std::fmt;
use std::path::Path;

/// The 8-byte magic tag opening every snapshot file.
pub const MAGIC: [u8; 8] = *b"PITRSNAP";

/// The format version this binary writes and the only one it reads.
pub const FORMAT_VERSION: u16 = 1;

const SEC_SCHEMA: u32 = 1;
const SEC_ROWS: u32 = 2;
const SEC_INDEXES: u32 = 3;
const SEC_SHARD_BY: u32 = 4;
const SEC_SHARDS: u32 = 5;
const SEC_GLOBAL_IDS: u32 = 6;
const SEC_LOCATIONS: u32 = 7;
const SEC_LOUT: u32 = 8;
const SEC_LIN: u32 = 9;
const SEC_RANK: u32 = 10;
const SEC_LOG: u32 = 11;
const SEC_WAL_MARK: u32 = 12;
const SEC_EPOCH: u32 = 13;

/// Which preprocessed structure a snapshot holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotKind {
    /// A [`pitract_relation::indexed::IndexedRelation`].
    IndexedRelation,
    /// A [`pitract_engine::ShardedRelation`].
    ShardedRelation,
    /// [`pitract_graph::hop::HopLabels`].
    HopLabels,
    /// A [`pitract_engine::UpdateLog`] — the updates applied to a live
    /// relation since its last checkpoint, persisted so recovery can
    /// replay them onto the checkpoint snapshot.
    UpdateLog,
    /// A live checkpoint: a [`pitract_engine::ShardedRelation`] state
    /// *plus* the write-ahead-log position it covers, persisted as one
    /// atomic file so the state and its WAL mark can never be observed
    /// out of sync (a crash between "snapshot saved" and "mark updated"
    /// was exactly the window a two-file scheme would leave open).
    LiveCheckpoint,
}

impl SnapshotKind {
    fn code(self) -> u16 {
        match self {
            SnapshotKind::IndexedRelation => 1,
            SnapshotKind::ShardedRelation => 2,
            SnapshotKind::HopLabels => 3,
            SnapshotKind::UpdateLog => 4,
            SnapshotKind::LiveCheckpoint => 5,
        }
    }

    fn from_code(code: u16) -> Result<Self, StoreError> {
        match code {
            1 => Ok(SnapshotKind::IndexedRelation),
            2 => Ok(SnapshotKind::ShardedRelation),
            3 => Ok(SnapshotKind::HopLabels),
            4 => Ok(SnapshotKind::UpdateLog),
            5 => Ok(SnapshotKind::LiveCheckpoint),
            other => Err(StoreError::UnknownKind(other)),
        }
    }
}

impl fmt::Display for SnapshotKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotKind::IndexedRelation => write!(f, "IndexedRelation"),
            SnapshotKind::ShardedRelation => write!(f, "ShardedRelation"),
            SnapshotKind::HopLabels => write!(f, "HopLabels"),
            SnapshotKind::UpdateLog => write!(f, "UpdateLog"),
            SnapshotKind::LiveCheckpoint => write!(f, "LiveCheckpoint"),
        }
    }
}

/// A preprocessed structure ready to persist, or freshly loaded.
#[derive(Debug)]
pub enum Snapshot {
    /// A per-column-indexed relation.
    Indexed(IndexedRelation),
    /// A sharded, indexed relation.
    Sharded(ShardedRelation),
    /// Pruned 2-hop reachability labels.
    Hop(HopLabels),
    /// A live relation's replayable update log.
    Log(UpdateLog),
    /// A live checkpoint: a frozen sharded state together with the WAL
    /// position it covers — `wal_lsn` is the log sequence number of the
    /// first record *not* contained in `state`, i.e. where recovery must
    /// start replaying the write-ahead log.
    Checkpoint {
        /// The frozen point-in-time state.
        state: ShardedRelation,
        /// LSN of the first WAL record not covered by `state`.
        wal_lsn: u64,
        /// The MVCC epoch of the cut — the live relation's epoch clock
        /// at the instant `state` was frozen, persisted so recovery can
        /// resume the clock exactly. Files written before the epoch
        /// section existed load as [`Epoch::ZERO`].
        epoch: Epoch,
    },
}

impl From<IndexedRelation> for Snapshot {
    fn from(ir: IndexedRelation) -> Self {
        Snapshot::Indexed(ir)
    }
}

impl From<ShardedRelation> for Snapshot {
    fn from(sr: ShardedRelation) -> Self {
        Snapshot::Sharded(sr)
    }
}

impl From<HopLabels> for Snapshot {
    fn from(h: HopLabels) -> Self {
        Snapshot::Hop(h)
    }
}

impl From<UpdateLog> for Snapshot {
    fn from(log: UpdateLog) -> Self {
        Snapshot::Log(log)
    }
}

impl Snapshot {
    /// Which structure this snapshot holds.
    pub fn kind(&self) -> SnapshotKind {
        match self {
            Snapshot::Indexed(_) => SnapshotKind::IndexedRelation,
            Snapshot::Sharded(_) => SnapshotKind::ShardedRelation,
            Snapshot::Hop(_) => SnapshotKind::HopLabels,
            Snapshot::Log(_) => SnapshotKind::UpdateLog,
            Snapshot::Checkpoint { .. } => SnapshotKind::LiveCheckpoint,
        }
    }

    /// Unwrap an [`IndexedRelation`], or report the kind actually stored.
    pub fn into_indexed(self) -> Result<IndexedRelation, StoreError> {
        match self {
            Snapshot::Indexed(ir) => Ok(ir),
            other => Err(StoreError::WrongKind {
                expected: SnapshotKind::IndexedRelation,
                found: other.kind(),
            }),
        }
    }

    /// Unwrap a [`ShardedRelation`], or report the kind actually stored.
    pub fn into_sharded(self) -> Result<ShardedRelation, StoreError> {
        match self {
            Snapshot::Sharded(sr) => Ok(sr),
            other => Err(StoreError::WrongKind {
                expected: SnapshotKind::ShardedRelation,
                found: other.kind(),
            }),
        }
    }

    /// Unwrap [`HopLabels`], or report the kind actually stored.
    pub fn into_hop(self) -> Result<HopLabels, StoreError> {
        match self {
            Snapshot::Hop(h) => Ok(h),
            other => Err(StoreError::WrongKind {
                expected: SnapshotKind::HopLabels,
                found: other.kind(),
            }),
        }
    }

    /// Unwrap an [`UpdateLog`], or report the kind actually stored.
    pub fn into_log(self) -> Result<UpdateLog, StoreError> {
        match self {
            Snapshot::Log(log) => Ok(log),
            other => Err(StoreError::WrongKind {
                expected: SnapshotKind::UpdateLog,
                found: other.kind(),
            }),
        }
    }

    /// Unwrap a live checkpoint into `(state, wal_lsn, epoch)`, or
    /// report the kind actually stored.
    pub fn into_checkpoint(self) -> Result<(ShardedRelation, u64, Epoch), StoreError> {
        match self {
            Snapshot::Checkpoint {
                state,
                wal_lsn,
                epoch,
            } => Ok((state, wal_lsn, epoch)),
            other => Err(StoreError::WrongKind {
                expected: SnapshotKind::LiveCheckpoint,
                found: other.kind(),
            }),
        }
    }

    /// Serialize to the snapshot byte format (deterministic: equal
    /// structures produce equal bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let sections: Vec<(u32, Vec<u8>)> = match self {
            Snapshot::Indexed(ir) => encode_indexed_sections(ir),
            Snapshot::Sharded(sr) => encode_sharded_sections(sr),
            Snapshot::Hop(h) => encode_hop_sections(h),
            Snapshot::Log(log) => encode_log_sections(log),
            Snapshot::Checkpoint {
                state,
                wal_lsn,
                epoch,
            } => {
                let mut sections = encode_sharded_sections(state);
                let mut mark = Writer::new();
                mark.u64(*wal_lsn);
                sections.push((SEC_WAL_MARK, mark.into_bytes()));
                let mut cut = Writer::new();
                cut.u64(epoch.get());
                sections.push((SEC_EPOCH, cut.into_bytes()));
                sections
            }
        };
        let mut w = Writer::new();
        w.raw(&MAGIC);
        w.u16(FORMAT_VERSION);
        w.u16(self.kind().code());
        w.u32(sections.len() as u32);
        for (tag, payload) in &sections {
            w.u32(*tag);
            w.u64(payload.len() as u64);
        }
        for (_, payload) in &sections {
            w.raw(payload);
        }
        let mut bytes = w.into_bytes();
        let checksum = fnv1a64(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        bytes
    }

    /// Parse a snapshot from bytes, validating magic, version, checksum,
    /// section table, payloads, and structural invariants — in that
    /// order. Arbitrary input yields a typed [`StoreError`], never a
    /// panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        // Header + checksum trailer are the minimum possible file.
        if bytes.len() < 16 + 8 {
            return Err(StoreError::Truncated);
        }
        if bytes[..8] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let mut header = Reader::new(&bytes[8..16]);
        let version = header.u16()?;
        if version != FORMAT_VERSION {
            return Err(StoreError::VersionMismatch {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let body = &bytes[..bytes.len() - 8];
        let stored = Reader::new(&bytes[bytes.len() - 8..]).u64()?;
        if fnv1a64(body) != stored {
            return Err(StoreError::ChecksumMismatch);
        }
        let kind = SnapshotKind::from_code(header.u16()?)?;
        let count = header.u32()? as usize;

        // Section table, then payload slices located by tag.
        let table_end = 16usize
            .checked_add(count.checked_mul(12).ok_or(StoreError::Truncated)?)
            .ok_or(StoreError::Truncated)?;
        if table_end > body.len() {
            return Err(StoreError::Truncated);
        }
        let mut table = Reader::new(&body[16..table_end]);
        let mut sections: Vec<(u32, usize)> = Vec::with_capacity(count);
        for _ in 0..count {
            let tag = table.u32()?;
            let len = table.usize()?;
            if sections.iter().any(|(t, _)| *t == tag) {
                return Err(StoreError::Corrupt(format!("duplicate section tag {tag}")));
            }
            sections.push((tag, len));
        }
        let payload_len: usize = sections
            .iter()
            .try_fold(0usize, |acc, (_, len)| acc.checked_add(*len))
            .ok_or(StoreError::Truncated)?;
        if table_end.checked_add(payload_len) != Some(body.len()) {
            return Err(StoreError::Corrupt(
                "section table does not span the file".into(),
            ));
        }
        let mut offset = table_end;
        let located: Vec<(u32, &[u8])> = sections
            .into_iter()
            .map(|(tag, len)| {
                let slice = &body[offset..offset + len];
                offset += len;
                (tag, slice)
            })
            .collect();
        let section = |tag: u32| -> Result<Reader<'_>, StoreError> {
            located
                .iter()
                .find(|(t, _)| *t == tag)
                .map(|(_, s)| Reader::new(s))
                .ok_or_else(|| StoreError::Corrupt(format!("missing section {tag}")))
        };

        match kind {
            SnapshotKind::IndexedRelation => {
                let schema = finish(section(SEC_SCHEMA)?, Reader::schema)?;
                decode_indexed(schema, section(SEC_ROWS)?, section(SEC_INDEXES)?)
                    .map(Snapshot::Indexed)
            }
            SnapshotKind::ShardedRelation => decode_sharded(&section).map(Snapshot::Sharded),
            SnapshotKind::LiveCheckpoint => {
                let state = decode_sharded(&section)?;
                let wal_lsn = finish(section(SEC_WAL_MARK)?, Reader::u64)?;
                // The epoch section was appended to the format later;
                // checkpoints written before it carry an implicit 0.
                let epoch = match located.iter().find(|(t, _)| *t == SEC_EPOCH) {
                    Some((_, s)) => Epoch::new(finish(Reader::new(s), Reader::u64)?),
                    None => Epoch::ZERO,
                };
                Ok(Snapshot::Checkpoint {
                    state,
                    wal_lsn,
                    epoch,
                })
            }
            SnapshotKind::HopLabels => {
                let lout = finish(section(SEC_LOUT)?, read_label_lists)?;
                let lin = finish(section(SEC_LIN)?, read_label_lists)?;
                let rank = finish(section(SEC_RANK)?, Reader::u32_seq)?;
                HopLabels::from_parts(lout, lin, rank)
                    .map(Snapshot::Hop)
                    .map_err(|e| StoreError::Corrupt(e.to_string()))
            }
            SnapshotKind::UpdateLog => {
                let entries = finish(section(SEC_LOG)?, read_log_entries)?;
                // Logs written before epochs existed carry no end-epoch
                // section; their end defaults to the entry count (a
                // fresh-history log).
                Ok(Snapshot::Log(
                    match located.iter().find(|(t, _)| *t == SEC_EPOCH) {
                        Some((_, s)) => UpdateLog::from_entries_ending(
                            entries,
                            Epoch::new(finish(Reader::new(s), Reader::u64)?),
                        ),
                        None => UpdateLog::from_entries(entries),
                    },
                ))
            }
        }
    }

    /// Write the snapshot to `path` atomically: the bytes go to a
    /// temporary sibling first and are renamed into place, so a crash
    /// mid-write can never leave a half-written file under the final
    /// name.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        write_atomic(path.as_ref(), &self.to_bytes())
    }

    /// Read and parse a snapshot file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let bytes = std::fs::read(path.as_ref())?;
        Snapshot::from_bytes(&bytes)
    }
}

/// Parse the structure kind from a snapshot's first bytes (at least 12)
/// without reading or checksumming the rest of the file — the cheap path
/// behind catalog listings.
pub fn peek_kind(header: &[u8]) -> Result<SnapshotKind, StoreError> {
    if header.len() < 12 {
        return Err(StoreError::Truncated);
    }
    if header[..8] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let mut r = Reader::new(&header[8..12]);
    let version = r.u16()?;
    if version != FORMAT_VERSION {
        return Err(StoreError::VersionMismatch {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    SnapshotKind::from_code(r.u16()?)
}

/// Atomic file replacement: write to a uniquely named `.tmp` sibling,
/// fsync it, rename over the destination (atomic on POSIX filesystems),
/// then fsync the parent directory. Both fsyncs matter: without the
/// file fsync the rename's metadata change can hit disk before the temp
/// file's *data* does, and a power loss in that window would replace a
/// good snapshot with a truncated one; without the [`fsync_dir`] the
/// *directory entry* created by the rename can be lost, so a crash
/// after "save returned Ok" could silently roll the file back to its
/// previous version (or to nothing). The temp name carries the pid and
/// a process-wide counter so concurrent saves of the same snapshot name
/// write disjoint files and the last rename wins with a complete file —
/// never an interleaving.
///
/// Public because `pitract-wal` reuses it for compacted segment
/// replacement; the error type stays [`StoreError::Io`] for callers to
/// wrap.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    use std::io::Write as _;
    use std::sync::atomic::{AtomicU64, Ordering};
    static WRITER_SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = WRITER_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".{}-{seq}.tmp", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    let cleanup = |e| {
        let _ = std::fs::remove_file(&tmp);
        StoreError::Io(e)
    };
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(bytes).map_err(cleanup)?;
    f.sync_all().map_err(cleanup)?;
    drop(f);
    std::fs::rename(&tmp, path).map_err(cleanup)?;
    if let Some(dir) = path.parent() {
        fsync_dir(dir)?;
    }
    Ok(())
}

/// Fsync a directory so a just-created, renamed, or removed entry in it
/// is durable. A no-op-looking but load-bearing step on POSIX systems:
/// file data reaches disk via the file's own fsync, while the *name*
/// lives in the directory, which has its own write-back cache. Failures
/// propagate — a durability layer that shrugs off a failed sync is
/// lying about its contract.
pub fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    std::fs::File::open(dir)?.sync_all()
}

/// Run `read` on a section reader and require it to consume the whole
/// section.
fn finish<'a, T>(
    mut r: Reader<'a>,
    read: impl FnOnce(&mut Reader<'a>) -> Result<T, StoreError>,
) -> Result<T, StoreError> {
    let out = read(&mut r)?;
    if !r.is_exhausted() {
        return Err(StoreError::Corrupt("trailing bytes in section".into()));
    }
    Ok(out)
}

// --- section encoders -----------------------------------------------------

fn encode_indexed_sections(ir: &IndexedRelation) -> Vec<(u32, Vec<u8>)> {
    let mut schema_w = Writer::new();
    schema_w.schema(ir.schema());
    let mut body_rows = Writer::new();
    let mut body_indexes = Writer::new();
    write_indexed_body(ir, &mut body_rows, &mut body_indexes);
    vec![
        (SEC_SCHEMA, schema_w.into_bytes()),
        (SEC_ROWS, body_rows.into_bytes()),
        (SEC_INDEXES, body_indexes.into_bytes()),
    ]
}

/// Rows (slots incl. tombstones) and index postings of one
/// `IndexedRelation`, written with the shared encoding used both for a
/// standalone snapshot's sections and for each shard inside a
/// `ShardedRelation` snapshot.
fn write_indexed_body(ir: &IndexedRelation, rows: &mut Writer, indexes: &mut Writer) {
    rows.usize(ir.slot_count());
    for slot in ir.slots() {
        rows.opt_row(slot);
    }
    // Iterate columns in sorted order so the bytes are deterministic
    // (the underlying map is a HashMap).
    let cols: Vec<(usize, _)> = ir
        .indexed_columns()
        .into_iter()
        .filter_map(|col| ir.index_postings(col).map(|p| (col, p)))
        .collect();
    indexes.usize(cols.len());
    for (col, postings) in cols {
        indexes.usize(col);
        indexes.usize(postings.len());
        for (key, ids) in postings {
            indexes.value(key);
            indexes.usize_seq(ids);
        }
    }
}

fn read_slots(r: &mut Reader<'_>) -> Result<Vec<Option<Vec<Value>>>, StoreError> {
    let n = r.count(1)?;
    (0..n).map(|_| r.opt_row()).collect()
}

fn read_indexes(r: &mut Reader<'_>) -> Result<Vec<IndexEntries>, StoreError> {
    let n = r.count(1)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let col = r.usize()?;
        let entry_count = r.count(1)?;
        let mut entries = Vec::with_capacity(entry_count);
        for _ in 0..entry_count {
            let key = r.value()?;
            let posting = r.usize_seq()?;
            entries.push((key, posting));
        }
        out.push((col, entries));
    }
    Ok(out)
}

fn decode_indexed(
    schema: Schema,
    rows: Reader<'_>,
    indexes: Reader<'_>,
) -> Result<IndexedRelation, StoreError> {
    let slots = finish(rows, read_slots)?;
    let index_entries = finish(indexes, read_indexes)?;
    IndexedRelation::from_parts(schema, slots, index_entries).map_err(StoreError::Indexed)
}

fn encode_sharded_sections(sr: &ShardedRelation) -> Vec<(u32, Vec<u8>)> {
    let mut schema_w = Writer::new();
    schema_w.schema(sr.schema());

    let mut shard_by_w = Writer::new();
    match sr.shard_by() {
        ShardBy::Hash { col } => {
            shard_by_w.u8(0);
            shard_by_w.usize(*col);
        }
        ShardBy::Range { col, splits } => {
            shard_by_w.u8(1);
            shard_by_w.usize(*col);
            shard_by_w.usize(splits.len());
            for s in splits {
                shard_by_w.value(s);
            }
        }
    }

    let mut shards_w = Writer::new();
    shards_w.usize(sr.shard_count());
    for shard in sr.shards() {
        // Concatenate the rows + indexes bodies per shard; the schema is
        // written once for the whole relation.
        let mut rows = Writer::new();
        let mut indexes = Writer::new();
        write_indexed_body(shard, &mut rows, &mut indexes);
        shards_w.raw(&rows.into_bytes());
        shards_w.raw(&indexes.into_bytes());
    }

    let mut gids_w = Writer::new();
    gids_w.usize(sr.global_id_maps().len());
    for map in sr.global_id_maps() {
        gids_w.usize_seq(map);
    }

    let mut loc_w = Writer::new();
    loc_w.usize(sr.locations().len());
    for loc in sr.locations() {
        match loc {
            None => loc_w.u8(0),
            Some((shard, local)) => {
                loc_w.u8(1);
                loc_w.usize(*shard);
                loc_w.usize(*local);
            }
        }
    }

    vec![
        (SEC_SCHEMA, schema_w.into_bytes()),
        (SEC_SHARD_BY, shard_by_w.into_bytes()),
        (SEC_SHARDS, shards_w.into_bytes()),
        (SEC_GLOBAL_IDS, gids_w.into_bytes()),
        (SEC_LOCATIONS, loc_w.into_bytes()),
    ]
}

/// Decode a `ShardedRelation` from its sections, located by `section` —
/// shared by the plain `ShardedRelation` kind and the `LiveCheckpoint`
/// kind (which carries the same state plus a WAL mark).
fn decode_sharded<'a>(
    section: &impl Fn(u32) -> Result<Reader<'a>, StoreError>,
) -> Result<ShardedRelation, StoreError> {
    let schema = finish(section(SEC_SCHEMA)?, Reader::schema)?;
    let shard_by = finish(section(SEC_SHARD_BY)?, read_shard_by)?;
    let mut shards_r = section(SEC_SHARDS)?;
    let shard_count = shards_r.count(2)?;
    let mut shards = Vec::with_capacity(shard_count);
    for _ in 0..shard_count {
        // Per-shard body: the same rows + indexes encoding as a
        // standalone IndexedRelation, sharing one schema.
        let slots = read_slots(&mut shards_r)?;
        let indexes = read_indexes(&mut shards_r)?;
        shards.push(
            IndexedRelation::from_parts(schema.clone(), slots, indexes)
                .map_err(StoreError::Indexed)?,
        );
    }
    if !shards_r.is_exhausted() {
        return Err(StoreError::Corrupt("trailing bytes in shards".into()));
    }
    let mut gids_r = section(SEC_GLOBAL_IDS)?;
    let g_count = gids_r.count(8)?;
    let mut global_ids = Vec::with_capacity(g_count);
    for _ in 0..g_count {
        global_ids.push(gids_r.usize_seq()?);
    }
    if !gids_r.is_exhausted() {
        return Err(StoreError::Corrupt("trailing bytes in global ids".into()));
    }
    let locations = finish(section(SEC_LOCATIONS)?, read_locations)?;
    Ok(ShardedRelation::from_parts(
        schema, shard_by, shards, global_ids, locations,
    )?)
}

fn read_shard_by(r: &mut Reader<'_>) -> Result<ShardBy, StoreError> {
    match r.u8()? {
        0 => Ok(ShardBy::Hash { col: r.usize()? }),
        1 => {
            let col = r.usize()?;
            let n = r.count(1)?;
            let splits = (0..n).map(|_| r.value()).collect::<Result<Vec<_>, _>>()?;
            Ok(ShardBy::Range { col, splits })
        }
        tag => Err(StoreError::Corrupt(format!("bad shard_by tag {tag}"))),
    }
}

fn read_locations(r: &mut Reader<'_>) -> Result<Vec<Option<(usize, usize)>>, StoreError> {
    let n = r.count(1)?;
    (0..n)
        .map(|_| match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some((r.usize()?, r.usize()?))),
            tag => Err(StoreError::Corrupt(format!("bad location tag {tag}"))),
        })
        .collect()
}

fn encode_hop_sections(h: &HopLabels) -> Vec<(u32, Vec<u8>)> {
    let write_lists = |lists: &[Vec<u32>]| {
        let mut w = Writer::new();
        w.usize(lists.len());
        for l in lists {
            w.u32_seq(l);
        }
        w.into_bytes()
    };
    let mut rank_w = Writer::new();
    rank_w.u32_seq(h.hub_ranks());
    vec![
        (SEC_LOUT, write_lists(h.out_labels())),
        (SEC_LIN, write_lists(h.in_labels())),
        (SEC_RANK, rank_w.into_bytes()),
    ]
}

fn read_label_lists(r: &mut Reader<'_>) -> Result<Vec<Vec<u32>>, StoreError> {
    let n = r.count(8)?;
    (0..n).map(|_| r.u32_seq()).collect()
}

fn encode_log_sections(log: &UpdateLog) -> Vec<(u32, Vec<u8>)> {
    let mut w = Writer::new();
    w.usize(log.len());
    for entry in log.entries() {
        w.update_entry(entry);
    }
    let mut end = Writer::new();
    end.u64(log.end_epoch().get());
    vec![(SEC_LOG, w.into_bytes()), (SEC_EPOCH, end.into_bytes())]
}

fn read_log_entries(r: &mut Reader<'_>) -> Result<Vec<UpdateEntry>, StoreError> {
    let n = r.count(2)?;
    (0..n).map(|_| r.update_entry()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitract_engine::QueryBatch;
    use pitract_graph::generate;
    use pitract_relation::{ColType, Relation, SelectionQuery};

    fn relation(n: i64) -> Relation {
        let schema = Schema::new(&[("id", ColType::Int), ("city", ColType::Str)]);
        let rows = (0..n)
            .map(|i| vec![Value::Int(i), Value::str(format!("city{}", i % 10))])
            .collect();
        Relation::from_rows(schema, rows).unwrap()
    }

    fn queries() -> Vec<SelectionQuery> {
        vec![
            SelectionQuery::point(0, 17i64),
            SelectionQuery::point(0, 9_999i64),
            SelectionQuery::point(1, "city3"),
            SelectionQuery::range_closed(0, 20i64, 35i64),
            SelectionQuery::and(
                SelectionQuery::point(1, "city4"),
                SelectionQuery::range_closed(0, 0i64, 50i64),
            ),
        ]
    }

    #[test]
    fn indexed_roundtrip_answers_identically() {
        let mut ir = IndexedRelation::build(&relation(120), &[0, 1]).unwrap();
        ir.delete(17);
        ir.insert(vec![Value::Int(500), Value::str("new")]).unwrap();
        let bytes = Snapshot::Indexed(ir).to_bytes();
        let loaded = Snapshot::from_bytes(&bytes)
            .unwrap()
            .into_indexed()
            .unwrap();
        let oracle = IndexedRelation::build(&loaded.to_relation(), &[0, 1]).unwrap();
        for q in queries() {
            assert_eq!(loaded.answer(&q), oracle.answer(&q), "{q:?}");
        }
        assert_eq!(loaded.len(), 120);
        assert!(loaded.row(17).is_none(), "tombstone survives the roundtrip");
    }

    #[test]
    fn sharded_roundtrip_preserves_global_ids_and_batches() {
        for shard_by in [
            ShardBy::Hash { col: 0 },
            ShardBy::Range {
                col: 0,
                splits: vec![Value::Int(40), Value::Int(80)],
            },
        ] {
            let mut sr = ShardedRelation::build(&relation(120), shard_by, 3, &[0, 1]).unwrap();
            sr.delete(7);
            sr.insert(vec![Value::Int(555), Value::str("late")])
                .unwrap();

            let bytes = Snapshot::Sharded(sr).to_bytes();
            let orig = Snapshot::from_bytes(&bytes)
                .unwrap()
                .into_sharded()
                .unwrap();
            let loaded = Snapshot::from_bytes(&bytes)
                .unwrap()
                .into_sharded()
                .unwrap();

            let batch = QueryBatch::new(queries());
            let a = batch.execute_rows(&orig).unwrap();
            let b = batch.execute_rows(&loaded).unwrap();
            assert_eq!(a.rows, b.rows, "global row ids preserved");
            assert!(loaded.row(7).is_none());
            assert_eq!(loaded.row(120).unwrap()[1], Value::str("late"));
        }
    }

    #[test]
    fn hop_roundtrip_queries_identically() {
        let g = generate::random_dag(80, 200, 11);
        let labels = HopLabels::build(&g).unwrap();
        let bytes = Snapshot::Hop(labels.clone()).to_bytes();
        let loaded = Snapshot::from_bytes(&bytes).unwrap().into_hop().unwrap();
        for u in (0..80).step_by(3) {
            for v in (0..80).step_by(5) {
                assert_eq!(loaded.query(u, v), labels.query(u, v), "({u},{v})");
            }
        }
    }

    #[test]
    fn checkpoint_roundtrip_preserves_state_wal_mark_and_epoch() {
        let mut sr =
            ShardedRelation::build(&relation(80), ShardBy::Hash { col: 0 }, 3, &[0, 1]).unwrap();
        sr.delete(12);
        let bytes = Snapshot::Checkpoint {
            state: sr,
            wal_lsn: 123_456_789,
            epoch: Epoch::new(777),
        }
        .to_bytes();
        let snap = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snap.kind(), SnapshotKind::LiveCheckpoint);
        assert_eq!(
            peek_kind(&bytes[..12]).unwrap(),
            SnapshotKind::LiveCheckpoint
        );
        let (state, wal_lsn, epoch) = snap.into_checkpoint().unwrap();
        assert_eq!(wal_lsn, 123_456_789, "the mark travels with the state");
        assert_eq!(epoch, Epoch::new(777), "the cut epoch travels too");
        assert_eq!(state.len(), 79);
        assert!(state.row(12).is_none());
        assert!(state.answer(&SelectionQuery::point(0, 42i64)));
        // The wrong-kind unwraps stay typed in both directions.
        let snap = Snapshot::from_bytes(&bytes).unwrap();
        assert!(matches!(
            snap.into_sharded(),
            Err(StoreError::WrongKind {
                expected: SnapshotKind::ShardedRelation,
                found: SnapshotKind::LiveCheckpoint,
            })
        ));
        let ir = IndexedRelation::build(&relation(5), &[0]).unwrap();
        assert!(matches!(
            Snapshot::Indexed(ir).into_checkpoint(),
            Err(StoreError::WrongKind {
                expected: SnapshotKind::LiveCheckpoint,
                found: SnapshotKind::IndexedRelation,
            })
        ));
    }

    #[test]
    fn checkpoint_without_epoch_section_loads_as_epoch_zero() {
        // Hand-assemble a pre-epoch checkpoint file: the sharded
        // sections plus the WAL mark, with no SEC_EPOCH — exactly what
        // this binary wrote before the epoch section existed.
        let sr =
            ShardedRelation::build(&relation(20), ShardBy::Hash { col: 0 }, 2, &[0, 1]).unwrap();
        let mut sections = encode_sharded_sections(&sr);
        let mut mark = Writer::new();
        mark.u64(9);
        sections.push((SEC_WAL_MARK, mark.into_bytes()));
        let mut w = Writer::new();
        w.raw(&MAGIC);
        w.u16(FORMAT_VERSION);
        w.u16(SnapshotKind::LiveCheckpoint.code());
        w.u32(sections.len() as u32);
        for (tag, payload) in &sections {
            w.u32(*tag);
            w.u64(payload.len() as u64);
        }
        for (_, payload) in &sections {
            w.raw(payload);
        }
        let mut bytes = w.into_bytes();
        let checksum = fnv1a64(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());

        let (state, wal_lsn, epoch) = Snapshot::from_bytes(&bytes)
            .unwrap()
            .into_checkpoint()
            .unwrap();
        assert_eq!(wal_lsn, 9);
        assert_eq!(epoch, Epoch::ZERO, "legacy files default to epoch 0");
        assert_eq!(state.len(), 20);
    }

    #[test]
    fn serialization_is_deterministic() {
        let ir = IndexedRelation::build(&relation(50), &[0, 1]).unwrap();
        let a = Snapshot::Indexed(ir).to_bytes();
        let ir = IndexedRelation::build(&relation(50), &[0, 1]).unwrap();
        let b = Snapshot::Indexed(ir).to_bytes();
        assert_eq!(a, b, "equal structures, equal bytes");
    }

    #[test]
    fn header_validation_is_layered() {
        let ir = IndexedRelation::build(&relation(10), &[0]).unwrap();
        let good = Snapshot::Indexed(ir).to_bytes();

        assert!(matches!(
            Snapshot::from_bytes(&[]),
            Err(StoreError::Truncated)
        ));
        assert!(matches!(
            Snapshot::from_bytes(b"NOTASNAPxxxxxxxxxxxxxxxxxxx"),
            Err(StoreError::BadMagic)
        ));

        // A bumped version is rejected *as a version mismatch*, before
        // the (now stale) checksum gets a chance to confuse the report.
        let mut bumped = good.clone();
        bumped[8] = 2;
        assert!(matches!(
            Snapshot::from_bytes(&bumped),
            Err(StoreError::VersionMismatch {
                found: 2,
                expected: FORMAT_VERSION
            })
        ));

        // A flipped payload byte fails the checksum.
        let mut corrupt = good.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0xFF;
        assert!(matches!(
            Snapshot::from_bytes(&corrupt),
            Err(StoreError::ChecksumMismatch)
        ));

        // Truncation anywhere fails with a typed error, never a panic.
        for cut in [10, 16, 20, good.len() / 2, good.len() - 1] {
            assert!(Snapshot::from_bytes(&good[..cut]).is_err(), "cut at {cut}");
        }

        // An unknown kind (with a recomputed checksum) is typed.
        let mut unknown = good.clone();
        unknown[10] = 99;
        let body_len = unknown.len() - 8;
        let sum = fnv1a64(&unknown[..body_len]);
        unknown[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Snapshot::from_bytes(&unknown),
            Err(StoreError::UnknownKind(99))
        ));

        // The pristine bytes still load.
        assert!(Snapshot::from_bytes(&good).is_ok());
    }

    #[test]
    fn wrong_kind_unwraps_are_typed() {
        let ir = IndexedRelation::build(&relation(5), &[0]).unwrap();
        let snap = Snapshot::from_bytes(&Snapshot::Indexed(ir).to_bytes()).unwrap();
        assert_eq!(snap.kind(), SnapshotKind::IndexedRelation);
        assert!(matches!(
            snap.into_sharded(),
            Err(StoreError::WrongKind {
                expected: SnapshotKind::ShardedRelation,
                found: SnapshotKind::IndexedRelation,
            })
        ));
    }

    #[test]
    fn save_and_load_via_files() {
        let dir = std::env::temp_dir().join(format!("pitract-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rel.snap");
        let ir = IndexedRelation::build(&relation(30), &[0]).unwrap();
        Snapshot::Indexed(ir).save(&path).unwrap();
        let loaded = Snapshot::load(&path).unwrap().into_indexed().unwrap();
        assert_eq!(loaded.len(), 30);
        let stray_tmp = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .any(|e| e.path().extension().is_some_and(|x| x == "tmp"));
        assert!(!stray_tmp, "temp file cleaned up by rename");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_io() {
        assert!(matches!(
            Snapshot::load("/nonexistent/definitely/not/here.snap"),
            Err(StoreError::Io(_))
        ));
    }
}
