//! The typed failure surface of the snapshot store.
//!
//! Every way a snapshot can fail to load — I/O, truncation, corruption,
//! format-version skew, the wrong structure kind, or parts that parse but
//! are mutually inconsistent — maps to a distinct [`StoreError`] variant,
//! so callers can distinguish "retry with a rebuild" from "this file was
//! written by a newer binary" without parsing prose. Loading never
//! panics: the decoder bounds-checks every read and the builders
//! (`from_parts`) validate structural invariants before constructing.

use crate::snapshot::SnapshotKind;
use pitract_engine::EngineError;
use pitract_relation::IndexedError;
use std::fmt;

/// Everything that can go wrong saving or loading a snapshot.
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O failure (open, read, write, rename).
    Io(std::io::Error),
    /// The file does not start with the snapshot magic tag — it is not a
    /// snapshot at all.
    BadMagic,
    /// The file's format version differs from the one this binary
    /// understands.
    VersionMismatch {
        /// Version found in the header.
        found: u16,
        /// Version this binary reads and writes.
        expected: u16,
    },
    /// The checksum over the file body does not match the stored trailer:
    /// the file was corrupted or truncated after writing.
    ChecksumMismatch,
    /// The data ended before a declared field — a truncated file or a
    /// length prefix pointing past the end.
    Truncated,
    /// The bytes parse as the framing demands but the content is invalid
    /// (unknown tag, non-UTF-8 string, missing section, inconsistent
    /// payload).
    Corrupt(String),
    /// The header declares a structure kind this binary does not know.
    UnknownKind(u16),
    /// The snapshot holds a different structure than the caller asked
    /// for.
    WrongKind {
        /// The kind the caller expected.
        expected: SnapshotKind,
        /// The kind actually stored.
        found: SnapshotKind,
    },
    /// The decoded parts were rejected by the engine's reconstruction
    /// validation.
    Engine(EngineError),
    /// The decoded parts were rejected by the indexed-relation layer's
    /// reconstruction validation (dangling postings, key order, …).
    Indexed(IndexedError),
    /// A catalog snapshot name that could escape the catalog directory or
    /// collide with its bookkeeping (empty, path separators, dots).
    InvalidName(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            StoreError::BadMagic => write!(f, "not a snapshot file (bad magic tag)"),
            StoreError::VersionMismatch { found, expected } => write!(
                f,
                "snapshot format version {found} is not the supported version {expected}"
            ),
            StoreError::ChecksumMismatch => {
                write!(
                    f,
                    "snapshot checksum mismatch (corrupted or truncated file)"
                )
            }
            StoreError::Truncated => write!(f, "snapshot data ended unexpectedly"),
            StoreError::Corrupt(why) => write!(f, "corrupt snapshot: {why}"),
            StoreError::UnknownKind(k) => write!(f, "unknown snapshot structure kind {k}"),
            StoreError::WrongKind { expected, found } => {
                write!(f, "snapshot holds a {found}, expected a {expected}")
            }
            StoreError::Engine(e) => write!(f, "snapshot rejected by engine: {e}"),
            StoreError::Indexed(e) => write!(f, "snapshot rejected by indexed relation: {e}"),
            StoreError::InvalidName(name) => {
                write!(
                    f,
                    "invalid snapshot name {name:?} (use [A-Za-z0-9._-], no leading dot)"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Engine(e) => Some(e),
            StoreError::Indexed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IndexedError> for StoreError {
    fn from(e: IndexedError) -> Self {
        StoreError::Indexed(e)
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<EngineError> for StoreError {
    fn from(e: EngineError) -> Self {
        StoreError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_distinct_and_specific() {
        let cases: Vec<StoreError> = vec![
            StoreError::BadMagic,
            StoreError::VersionMismatch {
                found: 2,
                expected: 1,
            },
            StoreError::ChecksumMismatch,
            StoreError::Truncated,
            StoreError::Corrupt("bad value tag 9".into()),
            StoreError::UnknownKind(99),
            StoreError::WrongKind {
                expected: SnapshotKind::IndexedRelation,
                found: SnapshotKind::HopLabels,
            },
            StoreError::Indexed(IndexedError::KeysNotAscending { col: 0 }),
            StoreError::InvalidName("../etc".into()),
        ];
        let mut msgs: Vec<String> = cases.iter().map(|e| e.to_string()).collect();
        msgs.sort();
        msgs.dedup();
        assert_eq!(msgs.len(), cases.len(), "every variant renders distinctly");
    }

    #[test]
    fn sources_chain_through_wrapped_errors() {
        use std::error::Error as _;
        let e = StoreError::Engine(EngineError::NoShards);
        assert!(e.source().is_some());
        let e = StoreError::Indexed(IndexedError::KeysNotAscending { col: 0 });
        assert!(e.source().is_some());
        let e = StoreError::Io(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
        assert!(StoreError::BadMagic.source().is_none());
    }
}
