//! Checkpoint and recovery for the live serving tier.
//!
//! A [`LiveRelation`] accumulates updates in a replayable in-memory
//! [`UpdateLog`]; this module gives it crash-consistent persistence on
//! top of the snapshot catalog:
//!
//! * [`LiveCheckpoint::checkpoint`] atomically freezes the live state
//!   (all shard locks held for the export, so the snapshot is a true
//!   point in time), writes it through [`SnapshotCatalog`] (temp-file +
//!   rename, so a crash mid-save never corrupts the previous
//!   checkpoint), and only then truncates the covered log prefix — a
//!   failed save loses nothing.
//! * [`LiveCheckpoint::recover`] is the inverse: load the named
//!   snapshot, wrap it for serving, and replay a log of the updates that
//!   landed after the checkpoint. Replay verifies that every insert
//!   reproduces its logged global id, so recovery is bit-identical to
//!   the lost live state — same answers *and* same row ids — or fails
//!   typed, never silently diverges.
//!
//! The log itself can be persisted too ([`Snapshot::Log`] /
//! [`crate::snapshot::SnapshotKind::UpdateLog`]): a deployment that saves
//! the pending log after each update (or batch of updates) can recover
//! everything; one that only checkpoints recovers to the last
//! checkpoint.

use crate::catalog::SnapshotCatalog;
use crate::error::StoreError;
use crate::snapshot::Snapshot;
use pitract_core::epoch::Epoch;
use pitract_engine::{LiveRelation, UpdateLog};
use std::path::PathBuf;

/// What [`LiveCheckpoint::recover`] reconstructed: where the recovered
/// node's clocks resumed and how much replay it took to get there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recovered {
    /// The epoch clock after recovery — the checkpoint's cut epoch plus
    /// one tick per logged update, exactly where the lost node's clock
    /// stood. The next applied update is stamped `epoch + 1`.
    pub epoch: Epoch,
    /// The checkpoint's WAL mark, when the checkpoint was written by a
    /// WAL-attached node (`None` for in-memory-log checkpoints).
    pub lsn: Option<u64>,
    /// Updates actually replayed — the *compacted* net change, not the
    /// logged churn.
    pub replayed: usize,
}

/// Checkpoint/recover operations connecting [`LiveRelation`] to the
/// snapshot catalog. Implemented (only) for [`LiveRelation`]; a trait so
/// the engine crate stays independent of the store crate.
pub trait LiveCheckpoint: Sized {
    /// Freeze the live state, persist it under `name` (together with the
    /// cut's MVCC epoch, so recovery resumes the epoch clock exactly),
    /// and truncate the update log to the entries not covered by the
    /// snapshot. Returns the snapshot's file path.
    fn checkpoint(&self, catalog: &SnapshotCatalog, name: &str) -> Result<PathBuf, StoreError>;

    /// Load the snapshot saved under `name`, wrap it for live serving,
    /// and replay `log` (the updates recorded after that checkpoint)
    /// onto it — after [`UpdateLog::compact`]ing it, so recovery work is
    /// bounded by the *net* change, not the churn: insert+delete pairs
    /// are cancelled and their ids burned as tombstones. The result is
    /// bit-identical to the state the log was recorded from — same
    /// answers, same live global row ids, same epoch clock (summarized
    /// in the returned [`Recovered`]). Accepts both the current
    /// `LiveCheckpoint` snapshot kind and plain `ShardedRelation`
    /// snapshots written before epochs existed (cut epoch 0).
    fn recover(
        catalog: &SnapshotCatalog,
        name: &str,
        log: &UpdateLog,
    ) -> Result<(Self, Recovered), StoreError>;
}

impl LiveCheckpoint for LiveRelation {
    fn checkpoint(&self, catalog: &SnapshotCatalog, name: &str) -> Result<PathBuf, StoreError> {
        let frozen = self.freeze();
        let path = catalog.save(
            name,
            &Snapshot::Checkpoint {
                state: frozen.state,
                wal_lsn: 0,
                epoch: frozen.epoch,
            },
        )?;
        // Truncate only after the save succeeded: a failed write keeps
        // every entry replayable against the previous checkpoint.
        self.confirm_checkpoint(frozen.covered);
        Ok(path)
    }

    fn recover(
        catalog: &SnapshotCatalog,
        name: &str,
        log: &UpdateLog,
    ) -> Result<(Self, Recovered), StoreError> {
        let (state, wal_lsn, cut) = match catalog.load(name)? {
            // Pre-epoch deployments checkpointed the bare sharded state.
            Snapshot::Sharded(state) => (state, 0, Epoch::ZERO),
            other => other.into_checkpoint()?,
        };
        let live = LiveRelation::from_sharded(state);
        let compacted = log.compact();
        live.replay_compacted(&compacted)
            .map_err(StoreError::Engine)?;
        // Trailing cancelled pairs leave no entry to carry their ids;
        // burn up to the original log's watermark so future inserts get
        // the same gids the lost node would have assigned.
        if let Some(watermark) = log.next_gid_watermark() {
            live.burn_gids_to(watermark);
        }
        // The epoch clock counts *applied* updates of the original
        // history, not surviving log entries. A log captured from a live
        // node carries that clock as `end_epoch` (it survives compaction
        // and truncation); `cut + len` is the fallback for logs decoded
        // from files written before epochs existed, whose end defaults
        // to the bare entry count.
        let epoch = Epoch::new((cut.get() + log.len() as u64).max(log.end_epoch().get()));
        live.advance_epoch_to(epoch);
        let summary = Recovered {
            epoch,
            lsn: (wal_lsn > 0).then_some(wal_lsn),
            replayed: compacted.len(),
        };
        Ok((live, summary))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitract_engine::ShardBy;
    use pitract_relation::{ColType, Relation, Schema, SelectionQuery, Value};
    use std::path::PathBuf;

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pitract-live-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn live(n: i64) -> LiveRelation {
        let schema = Schema::new(&[("id", ColType::Int), ("city", ColType::Str)]);
        let rows = (0..n)
            .map(|i| vec![Value::Int(i), Value::str(format!("city{}", i % 10))])
            .collect();
        let rel = Relation::from_rows(schema, rows).unwrap();
        LiveRelation::build(&rel, ShardBy::Hash { col: 0 }, 3, &[0, 1]).unwrap()
    }

    #[test]
    fn checkpoint_then_recover_is_bit_identical() {
        let dir = fresh_dir("roundtrip");
        let catalog = SnapshotCatalog::open(&dir).unwrap();
        let lr = live(60);
        lr.delete(10).unwrap().unwrap();
        lr.insert(vec![Value::Int(600), Value::str("pre")]).unwrap();

        lr.checkpoint(&catalog, "orders").unwrap();
        assert!(lr.pending_log().is_empty(), "log truncated on checkpoint");

        // Post-checkpoint traffic, covered only by the pending log.
        lr.insert(vec![Value::Int(601), Value::str("post")])
            .unwrap();
        lr.delete(20).unwrap().unwrap();

        let (recovered, summary) =
            LiveRelation::recover(&catalog, "orders", &lr.pending_log()).unwrap();
        assert_eq!(
            summary.epoch,
            lr.current_epoch(),
            "the epoch clock resumes exactly where the lost node's stood"
        );
        assert_eq!(recovered.current_epoch(), lr.current_epoch());
        assert_eq!(summary.lsn, None, "no WAL attached");
        assert_eq!(summary.replayed, 2);
        assert_eq!(recovered.len(), lr.len());
        for gid in 0..62 {
            assert_eq!(recovered.row(gid), lr.row(gid), "gid {gid}");
        }
        for q in [
            SelectionQuery::point(0, 600i64),
            SelectionQuery::point(0, 601i64),
            SelectionQuery::point(0, 20i64),
            SelectionQuery::range_closed(0, 0i64, 700i64),
        ] {
            assert_eq!(recovered.matching_ids(&q), lr.matching_ids(&q), "{q:?}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn update_log_persists_as_its_own_catalog_entry() {
        use crate::snapshot::SnapshotKind;
        let dir = fresh_dir("logkind");
        let catalog = SnapshotCatalog::open(&dir).unwrap();
        let lr = live(10);
        lr.insert(vec![Value::Int(77), Value::str("w")]).unwrap();
        lr.delete(3).unwrap().unwrap();

        let log = lr.pending_log();
        catalog.save("wal", &Snapshot::Log(log.clone())).unwrap();
        assert_eq!(catalog.kind_of("wal").unwrap(), SnapshotKind::UpdateLog);
        let loaded = catalog.load("wal").unwrap().into_log().unwrap();
        assert_eq!(loaded, log, "codec roundtrips the log exactly");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_with_foreign_log_fails_typed() {
        let dir = fresh_dir("foreignlog");
        let catalog = SnapshotCatalog::open(&dir).unwrap();
        let lr = live(10);
        lr.checkpoint(&catalog, "base").unwrap();

        // A log recorded against some other history.
        let other = live(50);
        other.delete(40).unwrap().unwrap();
        let err = LiveRelation::recover(&catalog, "base", &other.pending_log()).unwrap_err();
        assert!(matches!(err, StoreError::Engine(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Recovery compacts the pending log before replaying: an
    /// insert+delete pair in the suffix is never re-applied, yet the
    /// recovered node is still bit-identical on answers and row ids.
    #[test]
    fn recover_compacts_churn_to_net_change() {
        let dir = fresh_dir("compactrec");
        let catalog = SnapshotCatalog::open(&dir).unwrap();
        let lr = live(20);
        lr.checkpoint(&catalog, "base").unwrap();
        // Churn: 30 insert+delete pairs and 2 surviving updates.
        for i in 0..30i64 {
            let gid = lr
                .insert(vec![Value::Int(900 + i), Value::str("churn")])
                .unwrap();
            lr.delete(gid).unwrap().unwrap();
        }
        lr.insert(vec![Value::Int(777), Value::str("kept")])
            .unwrap();
        lr.delete(5).unwrap().unwrap();
        let pending = lr.pending_log();
        assert_eq!(pending.len(), 62);

        let (recovered, summary) = LiveRelation::recover(&catalog, "base", &pending).unwrap();
        assert_eq!(
            recovered.boundedness_report().len(),
            2,
            "only the net change was replayed"
        );
        assert_eq!(summary.replayed, 2);
        assert_eq!(
            recovered.current_epoch(),
            lr.current_epoch(),
            "compaction must not slow the epoch clock"
        );
        assert_eq!(recovered.len(), lr.len());
        for gid in 0..55 {
            assert_eq!(recovered.row(gid), lr.row(gid), "gid {gid}");
        }
        for q in [
            SelectionQuery::point(0, 777i64),
            SelectionQuery::point(0, 5i64),
            SelectionQuery::point(1, "churn"),
            SelectionQuery::range_closed(0, 0i64, 1_000i64),
        ] {
            assert_eq!(recovered.matching_ids(&q), lr.matching_ids(&q), "{q:?}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_checkpoint_keeps_the_log() {
        let dir = fresh_dir("failsave");
        let catalog = SnapshotCatalog::open(&dir).unwrap();
        let lr = live(5);
        lr.insert(vec![Value::Int(50), Value::str("kept")]).unwrap();
        let err = lr.checkpoint(&catalog, "../escape").unwrap_err();
        assert!(matches!(err, StoreError::InvalidName(_)), "{err}");
        assert_eq!(lr.pending_log().len(), 1, "nothing truncated on failure");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
