//! A directory of named snapshots — the deployment-facing API.
//!
//! A [`SnapshotCatalog`] maps names to `<name>.snap` files in one
//! directory. Saves are atomic (temp file + rename), so a catalog is
//! never observed with a half-written snapshot under a final name, and a
//! crashed writer leaves at worst a `.tmp` file that the next save
//! overwrites. Names are restricted to a filesystem-safe alphabet so a
//! name can never escape the catalog directory.

use crate::error::StoreError;
use crate::snapshot::{write_atomic, Snapshot, SnapshotKind};
use std::path::{Path, PathBuf};

/// File extension for catalog snapshots.
const EXT: &str = "snap";

/// A directory of named snapshots.
#[derive(Debug, Clone)]
pub struct SnapshotCatalog {
    dir: PathBuf,
}

impl SnapshotCatalog {
    /// Open (creating if needed) a catalog directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(SnapshotCatalog { dir })
    }

    /// The catalog directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Is `name` a valid snapshot name? Names must be nonempty, use only
    /// `[A-Za-z0-9._-]`, and not start with a dot — which rules out path
    /// separators, `..` traversal, and hidden / temp-file collisions.
    fn valid_name(name: &str) -> bool {
        !name.is_empty()
            && !name.starts_with('.')
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
    }

    /// Validate a snapshot name and produce its file path.
    fn path_of(&self, name: &str) -> Result<PathBuf, StoreError> {
        if !Self::valid_name(name) {
            return Err(StoreError::InvalidName(name.to_string()));
        }
        Ok(self.dir.join(format!("{name}.{EXT}")))
    }

    /// Persist a snapshot under `name`, atomically replacing any previous
    /// snapshot with that name. Returns the file path written.
    pub fn save(&self, name: &str, snapshot: &Snapshot) -> Result<PathBuf, StoreError> {
        let path = self.path_of(name)?;
        write_atomic(&path, &snapshot.to_bytes())?;
        Ok(path)
    }

    /// Load the snapshot stored under `name`.
    pub fn load(&self, name: &str) -> Result<Snapshot, StoreError> {
        Snapshot::load(self.path_of(name)?)
    }

    /// Which structure kind `name` holds, from the file header alone
    /// (cheap: reads the first bytes, not the whole snapshot; the full
    /// checksum runs on [`SnapshotCatalog::load`]).
    pub fn kind_of(&self, name: &str) -> Result<SnapshotKind, StoreError> {
        use std::io::Read as _;
        let mut header = [0u8; 16];
        let mut f = std::fs::File::open(self.path_of(name)?)?;
        f.read_exact(&mut header).map_err(|e| {
            // Only a genuinely short file is "truncated"; permission or
            // disk errors must keep their I/O identity so an operator is
            // not steered toward "the snapshot is corrupt".
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                StoreError::Truncated
            } else {
                StoreError::Io(e)
            }
        })?;
        crate::snapshot::peek_kind(&header)
    }

    /// All snapshot names in the catalog, sorted. Only names this
    /// catalog could have written (and can therefore load back) are
    /// listed — a foreign `.snap` file with, say, a space or a leading
    /// dot in its stem is skipped rather than listed-but-unloadable.
    pub fn list(&self) -> Result<Vec<String>, StoreError> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some(EXT) {
                continue;
            }
            if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                if Self::valid_name(stem) {
                    names.push(stem.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    /// Is there a snapshot under `name`?
    pub fn contains(&self, name: &str) -> bool {
        self.path_of(name).map(|p| p.exists()).unwrap_or(false)
    }

    /// Remove the snapshot stored under `name`.
    pub fn remove(&self, name: &str) -> Result<(), StoreError> {
        std::fs::remove_file(self.path_of(name)?)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitract_relation::indexed::IndexedRelation;
    use pitract_relation::{ColType, Relation, Schema, SelectionQuery, Value};

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pitract-catalog-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_indexed(n: i64) -> IndexedRelation {
        let schema = Schema::new(&[("id", ColType::Int)]);
        let rows = (0..n).map(|i| vec![Value::Int(i)]).collect();
        let rel = Relation::from_rows(schema, rows).unwrap();
        IndexedRelation::build(&rel, &[0]).unwrap()
    }

    #[test]
    fn save_list_load_remove_workflow() {
        let dir = fresh_dir("workflow");
        let catalog = SnapshotCatalog::open(&dir).unwrap();
        assert!(catalog.list().unwrap().is_empty());

        catalog
            .save("alpha", &Snapshot::Indexed(small_indexed(10)))
            .unwrap();
        catalog
            .save("beta.v2", &Snapshot::Indexed(small_indexed(20)))
            .unwrap();
        assert_eq!(catalog.list().unwrap(), vec!["alpha", "beta.v2"]);
        assert!(catalog.contains("alpha"));
        assert!(!catalog.contains("gamma"));
        assert_eq!(
            catalog.kind_of("alpha").unwrap(),
            SnapshotKind::IndexedRelation
        );

        let loaded = catalog.load("beta.v2").unwrap().into_indexed().unwrap();
        assert_eq!(loaded.len(), 20);
        assert!(loaded.answer(&SelectionQuery::point(0, 19i64)));

        catalog.remove("alpha").unwrap();
        assert_eq!(catalog.list().unwrap(), vec!["beta.v2"]);
        assert!(matches!(catalog.load("alpha"), Err(StoreError::Io(_)),));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_overwrites_atomically() {
        let dir = fresh_dir("overwrite");
        let catalog = SnapshotCatalog::open(&dir).unwrap();
        catalog
            .save("rel", &Snapshot::Indexed(small_indexed(5)))
            .unwrap();
        catalog
            .save("rel", &Snapshot::Indexed(small_indexed(50)))
            .unwrap();
        assert_eq!(
            catalog.load("rel").unwrap().into_indexed().unwrap().len(),
            50
        );
        // No stray temp files after successful saves.
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == "tmp")
            })
            .collect();
        assert!(stray.is_empty(), "{stray:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn traversal_and_hidden_names_are_rejected() {
        let dir = fresh_dir("names");
        let catalog = SnapshotCatalog::open(&dir).unwrap();
        let snap = Snapshot::Indexed(small_indexed(1));
        for bad in ["", "../escape", "a/b", "a\\b", ".hidden", "..", "nul\0"] {
            assert!(
                matches!(catalog.save(bad, &snap), Err(StoreError::InvalidName(_))),
                "{bad:?} accepted"
            );
        }
        for good in ["a", "big-rel_v2.1", "UPPER", "0"] {
            assert!(catalog.save(good, &snap).is_ok(), "{good:?} rejected");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn list_ignores_foreign_files() {
        let dir = fresh_dir("foreign");
        let catalog = SnapshotCatalog::open(&dir).unwrap();
        catalog
            .save("real", &Snapshot::Indexed(small_indexed(3)))
            .unwrap();
        std::fs::write(dir.join("notes.txt"), b"not a snapshot").unwrap();
        std::fs::write(dir.join("stale.snap.tmp"), b"crashed writer").unwrap();
        // A .snap file whose stem this catalog could never have written
        // (and whose name load() would reject) must not be listed.
        std::fs::write(dir.join(".hidden.snap"), b"foreign").unwrap();
        std::fs::write(dir.join("bad name.snap"), b"foreign").unwrap();
        assert_eq!(catalog.list().unwrap(), vec!["real"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
