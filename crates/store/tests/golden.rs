//! Golden-fixture tests: the on-disk format may not drift silently.
//!
//! A small snapshot of each relation structure is committed under
//! `tests/fixtures/`. These tests assert that (a) today's writer still
//! produces those bytes **byte-for-byte**, and (b) the committed bytes
//! still load and answer queries. Any intentional format change must
//! bump [`pitract_store::FORMAT_VERSION`] and regenerate the fixtures:
//!
//! ```text
//! PITRACT_REGEN_FIXTURES=1 cargo test -p pitract-store --test golden
//! ```

use pitract_engine::{QueryBatch, ShardBy, ShardedRelation};
use pitract_relation::indexed::IndexedRelation;
use pitract_relation::{ColType, Relation, Schema, SelectionQuery, Value};
use pitract_store::{Snapshot, StoreError, FORMAT_VERSION};

fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// The deterministic relation both fixtures are built from: covers
/// negative ints, duplicate keys, multi-byte UTF-8, and a tombstone.
fn fixture_relation() -> Relation {
    let schema = Schema::new(&[("id", ColType::Int), ("name", ColType::Str)]);
    let rows = vec![
        vec![Value::Int(-3), Value::str("alpha")],
        vec![Value::Int(0), Value::str("héllo")],
        vec![Value::Int(7), Value::str("Σ*")],
        vec![Value::Int(7), Value::str("alpha")],
        vec![Value::Int(42), Value::str("日本語")],
        vec![Value::Int(1000), Value::str("")],
    ];
    Relation::from_rows(schema, rows).unwrap()
}

fn fixture_indexed() -> IndexedRelation {
    let mut ir = IndexedRelation::build(&fixture_relation(), &[0, 1]).unwrap();
    ir.delete(2); // tombstone in the middle of the id space
    ir
}

fn fixture_sharded() -> ShardedRelation {
    let mut sr = ShardedRelation::build(
        &fixture_relation(),
        ShardBy::Range {
            col: 0,
            splits: vec![Value::Int(7)],
        },
        2,
        &[0, 1],
    )
    .unwrap();
    sr.delete(4);
    sr
}

/// Compare (or, under `PITRACT_REGEN_FIXTURES=1`, rewrite) one fixture.
fn assert_golden(name: &str, bytes: &[u8]) -> Vec<u8> {
    let path = fixture_path(name);
    if std::env::var("PITRACT_REGEN_FIXTURES").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, bytes).unwrap();
    }
    let on_disk = std::fs::read(&path)
        .unwrap_or_else(|e| panic!("fixture {name} missing ({e}); see module docs to regenerate"));
    assert_eq!(
        on_disk, bytes,
        "snapshot encoding for {name} drifted from the committed fixture: \
         either revert the encoding change or bump FORMAT_VERSION and regenerate"
    );
    on_disk
}

#[test]
fn indexed_fixture_is_byte_stable_and_loads() {
    let bytes = assert_golden(
        "indexed_v1.snap",
        &Snapshot::Indexed(fixture_indexed()).to_bytes(),
    );
    let loaded = Snapshot::from_bytes(&bytes)
        .unwrap()
        .into_indexed()
        .unwrap();
    assert_eq!(loaded.len(), 5);
    assert!(loaded.answer(&SelectionQuery::point(0, -3i64)));
    assert!(loaded.answer(&SelectionQuery::point(1, "日本語")));
    assert!(
        !loaded.answer(&SelectionQuery::point(1, "Σ*")),
        "tombstoned row stays deleted"
    );
    assert_eq!(
        loaded.matching_ids_metered(
            &SelectionQuery::point(0, 7i64),
            &pitract_core::cost::Meter::new()
        ),
        vec![3],
        "row ids survive byte-for-byte"
    );
}

#[test]
fn sharded_fixture_is_byte_stable_and_loads() {
    let bytes = assert_golden(
        "sharded_v1.snap",
        &Snapshot::Sharded(fixture_sharded()).to_bytes(),
    );
    let loaded = Snapshot::from_bytes(&bytes)
        .unwrap()
        .into_sharded()
        .unwrap();
    assert_eq!(loaded.shard_count(), 2);
    assert_eq!(loaded.len(), 5);
    let batch = QueryBatch::new([
        SelectionQuery::point(0, -3i64),
        SelectionQuery::point(0, 42i64), // deleted
        SelectionQuery::point(1, "alpha"),
    ]);
    let result = batch.execute(&loaded).unwrap();
    assert_eq!(result.answers, vec![true, false, true]);
}

#[test]
fn bumped_version_is_rejected_with_version_mismatch() {
    let mut bytes = std::fs::read(fixture_path("indexed_v1.snap")).unwrap();
    // Bytes 8..10 are the little-endian format version.
    let bumped = FORMAT_VERSION + 1;
    bytes[8..10].copy_from_slice(&bumped.to_le_bytes());
    match Snapshot::from_bytes(&bytes) {
        Err(StoreError::VersionMismatch { found, expected }) => {
            assert_eq!(found, bumped);
            assert_eq!(expected, FORMAT_VERSION);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
}
