//! Property tests for the snapshot codec and loader.
//!
//! Two contracts:
//!
//! 1. **Roundtrip**: `read(write(x)) == x` for arbitrary rows — integer
//!    extremes, empty and multi-byte-UTF-8 strings, zero-arity rows, and
//!    tombstones.
//! 2. **Totality**: feeding the loader arbitrary bytes, corrupted
//!    snapshots, or truncated prefixes of valid snapshots returns a typed
//!    error — it never panics and never over-allocates.

use pitract_core::hash::fnv1a64;
use pitract_relation::indexed::IndexedRelation;
use pitract_relation::{ColType, Relation, Schema, SelectionQuery, Value};
use pitract_store::codec::{Reader, Writer};
use pitract_store::{Snapshot, FORMAT_VERSION, MAGIC};
use proptest::prelude::*;

/// Multi-byte UTF-8 corpus the string strategy draws from (the vendored
/// proptest shim generates ASCII only, so coverage of 2-, 3-, and 4-byte
/// sequences is injected from a pool).
const UTF8_POOL: [&str; 8] = [
    "",
    "plain ascii",
    "héllo wörld",
    "Σ*-encoding",
    "日本語のテキスト",
    "𝛑-tractable 𝔹⁺",
    "naïve café",
    "\u{10FFFF} max scalar",
];

/// Decode one strategy tuple into a `Value`, steering extremes in.
fn value_from((tag, i, pick): (u8, i64, usize)) -> Value {
    match tag % 4 {
        0 => Value::Int(i),
        1 => Value::Int([i64::MIN, i64::MAX, 0, -1][pick % 4]),
        2 => Value::str(UTF8_POOL[pick % UTF8_POOL.len()]),
        _ => Value::str(format!("{}{}", UTF8_POOL[pick % UTF8_POOL.len()], i)),
    }
}

proptest! {
    /// Arbitrary optional rows (tombstones included) roundtrip through
    /// the codec byte-for-byte.
    #[test]
    fn codec_roundtrips_arbitrary_rows(
        spec in prop::collection::vec(
            (any::<bool>(), prop::collection::vec((any::<u8>(), any::<i64>(), 0usize..16), 0..5)),
            0..20
        )
    ) {
        let slots: Vec<Option<Vec<Value>>> = spec
            .into_iter()
            .map(|(live, cells)| {
                live.then(|| cells.into_iter().map(value_from).collect())
            })
            .collect();
        let mut w = Writer::new();
        w.usize(slots.len());
        for slot in &slots {
            w.opt_row(slot);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let n = r.count(1).expect("count");
        prop_assert_eq!(n, slots.len());
        for slot in &slots {
            prop_assert_eq!(&r.opt_row().expect("roundtrip"), slot);
        }
        prop_assert!(r.is_exhausted(), "no trailing bytes");
    }

    /// Whole-snapshot roundtrip equals the cold-rebuilt oracle on every
    /// query — the Π-once contract at property-test scale.
    #[test]
    fn snapshot_roundtrip_matches_cold_rebuild(
        keys in prop::collection::vec((0i64..200, 0usize..16), 1..60),
        deletes in prop::collection::vec(0usize..60, 0..10),
        probes in prop::collection::vec(0i64..220, 1..10)
    ) {
        let schema = Schema::new(&[("k", ColType::Int), ("tag", ColType::Str)]);
        let rows: Vec<Vec<Value>> = keys
            .iter()
            .map(|&(k, p)| vec![Value::Int(k), Value::str(UTF8_POOL[p % UTF8_POOL.len()])])
            .collect();
        let rel = Relation::from_rows(schema, rows).expect("valid rows");
        let mut ir = IndexedRelation::build(&rel, &[0, 1]).expect("valid columns");
        for d in deletes {
            ir.delete(d % keys.len());
        }

        let bytes = Snapshot::Indexed(ir).to_bytes();
        let warm = Snapshot::from_bytes(&bytes)
            .expect("own bytes load")
            .into_indexed()
            .expect("kind preserved");
        // Cold oracle: rebuild Π from the surviving rows.
        let cold = IndexedRelation::build(&warm.to_relation(), &[0, 1]).expect("rebuild");

        for k in probes {
            let q = SelectionQuery::point(0, k);
            prop_assert_eq!(warm.answer(&q), cold.answer(&q), "{:?}", q);
            let q = SelectionQuery::range_closed(0, k - 5, k + 5);
            prop_assert_eq!(warm.answer(&q), cold.answer(&q), "{:?}", q);
        }
        for s in UTF8_POOL {
            let q = SelectionQuery::point(1, s);
            prop_assert_eq!(warm.answer(&q), cold.answer(&q), "{:?}", q);
        }
    }

    /// Loading arbitrary bytes returns a typed error, never a panic.
    #[test]
    fn loading_random_bytes_never_panics(
        bytes in prop::collection::vec(any::<u8>(), 0..400)
    ) {
        let _ = Snapshot::from_bytes(&bytes);
    }

    /// Same, with a valid magic + version prefix so the parse gets past
    /// the header checks.
    #[test]
    fn loading_random_headed_bodies_never_panics(
        body in prop::collection::vec(any::<u8>(), 0..300)
    ) {
        let mut data = MAGIC.to_vec();
        data.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        data.extend_from_slice(&body);
        let _ = Snapshot::from_bytes(&data);

        // And with a forged-valid checksum, so section-table and payload
        // parsing run on arbitrary content.
        let mut forged = MAGIC.to_vec();
        forged.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        forged.extend_from_slice(&body);
        let sum = fnv1a64(&forged);
        forged.extend_from_slice(&sum.to_le_bytes());
        let _ = Snapshot::from_bytes(&forged);
    }

    /// Every truncated prefix and every single-byte corruption of a valid
    /// snapshot is rejected with an error (or, for corruptions the
    /// checksum provably cannot miss at these sizes, loads as *something*)
    /// — and never panics.
    #[test]
    fn truncations_and_flips_never_panic(
        n in 1i64..40,
        cut_seed in any::<usize>(),
        flip_seed in any::<usize>(),
        xor in 1u8..=255
    ) {
        let schema = Schema::new(&[("k", ColType::Int)]);
        let rel = Relation::from_rows(
            schema,
            (0..n).map(|i| vec![Value::Int(i)]).collect(),
        )
        .expect("valid rows");
        let ir = IndexedRelation::build(&rel, &[0]).expect("valid column");
        let good = Snapshot::Indexed(ir).to_bytes();

        let cut = cut_seed % good.len();
        prop_assert!(Snapshot::from_bytes(&good[..cut]).is_err(), "prefix {cut} accepted");

        let mut flipped = good.clone();
        let at = flip_seed % flipped.len();
        flipped[at] ^= xor;
        let _ = Snapshot::from_bytes(&flipped); // must not panic
        prop_assert!(Snapshot::from_bytes(&good).is_ok(), "pristine bytes load");
    }
}
