//! Concurrent live serving: queries answered *while* updates land.
//!
//! [`crate::shard::ShardedRelation`] parallelizes query answering but
//! serializes the whole workload around `&mut self`: every insert or
//! delete needs exclusive access to the entire relation, so a live
//! deployment would stall all readers for every writer. [`LiveRelation`]
//! is the serving wrapper that removes that seam:
//!
//! * **Per-shard read/write locks.** Each shard is an
//!   [`IndexedRelation`] behind its own rank-checked
//!   [`OrderedRwLock`](pitract_core::lockdep::OrderedRwLock). Batch fan-out takes a
//!   *read* lock on only the shards a query routes to, so queries on
//!   different shards — and any number of queries on the same shard —
//!   proceed concurrently. An update takes a *write* lock on only the one
//!   shard its key routes to (the pinned FNV-1a routing of
//!   [`crate::shard::ShardedRelation::shard_of`], so lock scope never
//!   moves); the other `S - 1` shards keep serving.
//! * **Global ids behind their own lock.** The global-id and location
//!   maps live in a separate `OrderedRwLock`, acquired after the shard
//!   lock (one fixed order — checked at runtime by
//!   [`pitract_core::lockdep`] in debug builds — so the layer cannot
//!   deadlock). Per-shard
//!   local→global maps are append-only, which lets readers translate
//!   row ids *after* releasing the shard lock.
//! * **`|CHANGED|`-bounded maintenance accounting.** Every applied update
//!   pushes a [`pitract_incremental::bounded::UpdateRecord`] reporting
//!   `(|ΔD|, |ΔO|, work)` — Section 4(7)'s contract that maintenance is
//!   charged against the change, not `|D|` (up to the B⁺-tree's O(log n)
//!   descent, which the record reports honestly). The aggregated
//!   [`BoundednessReport`] is available from the serving node at any
//!   time.
//! * **Checkpoint + replayable update log.** Every applied update is
//!   also appended to an in-memory [`UpdateLog`]. [`LiveRelation::freeze`]
//!   atomically exports the current state as a [`ShardedRelation`] (for
//!   the `pitract-store` snapshot layer) together with the log position
//!   it covers; replaying the remaining suffix onto the loaded snapshot
//!   ([`LiveRelation::replay`]) reproduces the live state bit-identically
//!   — same answers *and* same global row ids.
//!
//! Consistency model: **epoch-pinned snapshot reads (MVCC)**. A global
//! [`Epoch`] clock ticks once per applied update, inside the same
//! critical section that orders the update log — so epoch `E` names
//! exactly the state after the first `E` updates, on every shard at
//! once. A batch *pins* the current epoch before it fans out
//! ([`LiveRelation::pin`]); writers that land mid-batch append an O(1)
//! epoch-stamped **undo record** (row-granular copy-on-write: the local
//! id of an insert, the removed row of a delete) to a small per-shard
//! ring, and the batch's per-shard reads resolve `shard@epoch` by
//! evaluating the current version and rolling back exactly the writes
//! stamped after the pin. The result: a multi-shard batch observes one
//! database instance — the paper's "answer `Q` against `D`" contract —
//! while writers never copy a shard and never wait on a pin (they pay
//! one ring append per update, only while some pin is live). Retired
//! undo records are reclaimed as soon as no in-flight pin can reach
//! them (watermark = oldest pinned epoch), and the retention cost is
//! surfaced in the same `|CHANGED|` currency as update maintenance
//! ([`LiveRelation::version_report`]). Single queries
//! ([`LiveRelation::answer`]) stay read-committed: they touch one state
//! per shard and need no cut.

use crate::batch::{
    eval_assigned, fan_out, report_from, route_batch, BatchAnswers, BatchRows, QueryBatch,
};
use crate::error::EngineError;
use crate::shard::{relevant_shards_for, route_shard, ShardBy, ShardedRelation};
use pitract_core::cost::{log2_floor, Meter};
use pitract_core::epoch::Epoch;
use pitract_core::lockdep::{
    LockRank, OrderedMutex, OrderedMutexGuard, OrderedRwLock, OrderedRwLockReadGuard,
    OrderedRwLockWriteGuard,
};
use pitract_incremental::bounded::{BoundednessReport, UpdateRecord};
use pitract_obs::{Counter, Gauge, Histogram, Recorder};
use pitract_relation::indexed::IndexedRelation;
use pitract_relation::{IndexedError, Relation, Schema, SelectionQuery, Value};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// A durable write-ahead sink for the update stream of a
/// [`LiveRelation`].
///
/// Installed with [`LiveRelation::set_wal_sink`], the sink sees every
/// update in two phases mirroring how real logs group-commit:
///
/// 1. [`WalSink::stage`] runs **inside the global-id critical section**,
///    before the update becomes visible to any reader. Because the
///    critical section serializes all writers, staged records land in the
///    sink in exactly global-id order — the property that makes a
///    persisted log replayable ([`LiveRelation::replay`] verifies every
///    insert reproduces its logged id). A failed stage aborts the update
///    before anything was applied: the caller gets the error and the
///    relation is untouched.
/// 2. [`WalSink::commit`] runs **after every lock is released**, with the
///    ticket `stage` returned. It blocks until the staged record is
///    durable, so a slow `fsync` never stalls the shard or the id maps —
///    concurrent committers can share one flush (group commit). If
///    `commit` fails the update *was* applied in memory and *is* staged
///    in the sink (memory and log agree); only its durability is
///    unconfirmed, which the caller learns from the returned error.
pub trait WalSink: Send + Sync + std::fmt::Debug {
    /// Stage one update record. Called inside the gid critical section;
    /// must be fast (no fsync unless the sink explicitly trades
    /// throughput for simplicity). Returns a ticket for [`Self::commit`].
    fn stage(&self, entry: &UpdateEntry) -> Result<u64, EngineError>;

    /// Block until the record behind `ticket` is durable. Called outside
    /// all locks. Tickets are handed out in staging order and a commit
    /// must cover every record staged before its ticket as well (a WAL
    /// flush is a prefix flush) — the property
    /// [`LiveRelation::apply_batch`] relies on to make a whole batch
    /// durable with one commit of the last ticket.
    fn commit(&self, ticket: u64) -> Result<(), EngineError>;
}

/// One replayable update, as recorded by the serving layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateEntry {
    /// A row inserted under a specific global id.
    Insert {
        /// The global row id the insert was assigned.
        gid: usize,
        /// The inserted tuple.
        row: Vec<Value>,
    },
    /// A delete of a live global id.
    Delete {
        /// The deleted global row id.
        gid: usize,
    },
}

/// One update in a [`LiveRelation::apply_batch`] request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateOp {
    /// Insert a tuple (the batch twin of [`LiveRelation::insert`]).
    Insert(Vec<Value>),
    /// Delete a live global row id (the batch twin of
    /// [`LiveRelation::delete`]).
    Delete(usize),
}

/// The per-op outcome of a [`LiveRelation::apply_batch`], in op order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Applied {
    /// The global row id an insert was assigned.
    Inserted(usize),
    /// The removed tuple, or `None` if the id was already gone (same
    /// no-op semantics as [`LiveRelation::delete`]).
    Deleted(Option<Vec<Value>>),
}

/// An ordered, replayable log of updates applied to a [`LiveRelation`]
/// since its last checkpoint.
///
/// Entries are appended inside the global-id critical section, so log
/// order equals global-id assignment order even under concurrent writers
/// — which is what makes replay deterministic: applying the entries in
/// order onto the checkpoint state reassigns exactly the logged ids.
/// The log is truncated on checkpoint ([`LiveRelation::freeze`] marks
/// the covered prefix). `pitract-store` can persist a log as its own
/// catalog entry kind.
///
/// Besides its entries the log carries [`Self::end_epoch`] — the
/// absolute [`Epoch`] of the state after applying every entry, i.e. the
/// epoch clock of the node the log was captured from. The end survives
/// operations that change the entry count without changing the final
/// state ([`Self::compact`], [`Self::drain_prefix`]), which is what lets
/// recovery resume the clock exactly even when the log it replays is a
/// compacted remnant with fewer entries than the history had ticks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateLog {
    entries: Vec<UpdateEntry>,
    end_epoch: u64,
}

impl UpdateLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// A log from pre-recorded entries describing a *fresh* history
    /// (first entry applies onto epoch 0): the end epoch is the entry
    /// count. For a log captured mid-history use
    /// [`Self::from_entries_ending`].
    pub fn from_entries(entries: Vec<UpdateEntry>) -> Self {
        let end_epoch = entries.len() as u64;
        UpdateLog { entries, end_epoch }
    }

    /// A log from pre-recorded entries whose final state has the given
    /// absolute epoch (the store's decode path for logs persisted with
    /// an epoch section).
    pub fn from_entries_ending(entries: Vec<UpdateEntry>, end: Epoch) -> Self {
        UpdateLog {
            entries,
            end_epoch: end.get(),
        }
    }

    /// The absolute epoch of the state after applying every entry — the
    /// epoch clock of the node this log was captured from.
    pub fn end_epoch(&self) -> Epoch {
        Epoch::new(self.end_epoch)
    }

    /// Advance the end epoch (monotonic max) without touching the
    /// entries. Recovery uses this to re-stamp a replayed log with the
    /// crashed node's clock, which ran ahead of the entry count when the
    /// replay was compacted.
    pub fn advance_end_to(&mut self, end: Epoch) {
        self.end_epoch = self.end_epoch.max(end.get());
    }

    /// Append one entry: the final state is one update later.
    pub fn push(&mut self, entry: UpdateEntry) {
        self.entries.push(entry);
        self.end_epoch += 1;
    }

    /// Number of logged entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries, oldest first.
    pub fn entries(&self) -> &[UpdateEntry] {
        &self.entries
    }

    /// Drop the first `n` entries (they are covered by a checkpoint).
    /// The final state — and therefore [`Self::end_epoch`] — is
    /// unchanged.
    pub fn drain_prefix(&mut self, n: usize) {
        self.entries.drain(..n.min(self.entries.len()));
    }

    /// One past the highest global id this log's inserts assign — the
    /// position the id allocator must reach after a replay, even when
    /// [`Self::compact`] cancelled the trailing inserts (recovery pairs
    /// this with [`LiveRelation::burn_gids_to`], so a recovered node
    /// assigns *future* ids exactly like the crashed node would have).
    /// `None` when the log holds no inserts.
    pub fn next_gid_watermark(&self) -> Option<usize> {
        self.entries
            .iter()
            .filter_map(|e| match e {
                UpdateEntry::Insert { gid, .. } => Some(gid + 1),
                UpdateEntry::Delete { .. } => None,
            })
            .max()
    }

    /// Cancel insert+delete pairs: an [`UpdateEntry::Insert`] whose
    /// global id is deleted *later in the same log* contributes nothing
    /// to the final state, so both entries are dropped. Survivors keep
    /// their relative order, which keeps the compacted log replayable
    /// ([`LiveRelation::replay_compacted`] burns the cancelled ids so
    /// every surviving insert still lands on its recorded gid).
    ///
    /// One refinement keeps compaction lossless under composition: the
    /// cancelled pair with the **highest** global id is retained unless
    /// some surviving insert carries a higher id. A trailing run of
    /// pairs would otherwise leave no entry recording how far the id
    /// allocator had advanced, and a node recovered from the compacted
    /// log would reassign those ids — diverging from the history on the
    /// *next* insert. Keeping the one watermark-bearing pair (at most
    /// two extra entries, whatever the churn) pins the allocator
    /// exactly.
    ///
    /// Deletes of rows that pre-date the log (their insert lives in the
    /// checkpoint, not here) always survive. The result's length is
    /// bounded by the *net* change of the logged history plus one pair,
    /// which is what bounds recovery work under churn: a million inserts
    /// each followed by their delete compact to a single pair.
    pub fn compact(&self) -> UpdateLog {
        let mut cancelled = vec![false; self.entries.len()];
        let mut open_inserts: HashMap<usize, usize> = HashMap::new();
        for (i, entry) in self.entries.iter().enumerate() {
            match entry {
                UpdateEntry::Insert { gid, .. } => {
                    open_inserts.insert(*gid, i);
                }
                UpdateEntry::Delete { gid } => {
                    if let Some(at) = open_inserts.remove(gid) {
                        cancelled[at] = true;
                        cancelled[i] = true;
                    }
                }
            }
        }
        // The watermark rule: if the highest inserted gid belongs to a
        // cancelled pair, resurrect that pair so the compacted log still
        // records how far the allocator went.
        let max_surviving = self
            .entries
            .iter()
            .zip(&cancelled)
            .filter(|(_, &dead)| !dead)
            .filter_map(|(e, _)| match e {
                UpdateEntry::Insert { gid, .. } => Some(*gid),
                UpdateEntry::Delete { .. } => None,
            })
            .max();
        let max_cancelled = self
            .entries
            .iter()
            .zip(&cancelled)
            .filter(|(_, &dead)| dead)
            .filter_map(|(e, _)| match e {
                UpdateEntry::Insert { gid, .. } => Some(*gid),
                UpdateEntry::Delete { .. } => None,
            })
            .max();
        if let Some(watermark_gid) = max_cancelled {
            if max_surviving.is_none_or(|s| s < watermark_gid) {
                for (i, entry) in self.entries.iter().enumerate() {
                    match entry {
                        UpdateEntry::Insert { gid, .. } | UpdateEntry::Delete { gid }
                            if *gid == watermark_gid =>
                        {
                            cancelled[i] = false;
                        }
                        _ => {}
                    }
                }
            }
        }
        UpdateLog {
            entries: self
                .entries
                .iter()
                .zip(&cancelled)
                .filter(|(_, &dead)| !dead)
                .map(|(e, _)| e.clone())
                .collect(),
            // Cancelling a pair drops entries, not history: the final
            // state (and its epoch) is the same one the full log reaches.
            end_epoch: self.end_epoch,
        }
    }
}

/// The pending update log plus the absolute position of its first
/// entry. `base` counts the entries already truncated by confirmed
/// checkpoints, so a checkpoint mark from [`LiveRelation::freeze`] is an
/// absolute log position — two racing checkpoints can each confirm
/// without the second one draining entries its snapshot never covered
/// (a count-based truncation had exactly that bug).
#[derive(Debug, Default)]
struct LogState {
    base: usize,
    log: UpdateLog,
}

/// The global-id bookkeeping, guarded by one lock separate from the
/// shard locks.
#[derive(Debug)]
struct IdMaps {
    /// Per shard: local row id → global row id. Append-only.
    global_ids: Vec<Vec<usize>>,
    /// Global row id → (shard, local id); tombstoned on delete.
    locations: Vec<Option<(usize, usize)>>,
    live: usize,
}

/// How to un-apply one write from a shard's current version. Shard
/// locals are never reused ([`IndexedRelation`] ids are append-only and
/// deletes tombstone), so a local appears in at most one `Insert` and at
/// most one `Delete` record — plain set membership reconstructs any
/// retained epoch, no ordering replay needed.
#[derive(Debug)]
enum UndoOp {
    /// The write inserted shard-local row `local`: un-apply by hiding it.
    Insert { local: usize },
    /// The write deleted `local`, which held `row`: un-apply by
    /// restoring the row — the only row-granular copy MVCC retains.
    Delete { local: usize, row: Vec<Value> },
}

/// One entry in a shard's undo ring, stamped with the epoch its write
/// produced (epoch `E` names the state after `E` updates, so the write
/// that ticked the clock to `E` is *included* in epoch `E`'s view).
#[derive(Debug)]
struct UndoEntry {
    stamp: u64,
    op: UndoOp,
}

/// One shard's interior: the current [`IndexedRelation`] plus a small
/// ring of epoch-stamped undo records, retained only while some
/// in-flight batch has an epoch pinned that still needs them. A pinned
/// reader reconstructs `shard@epoch` by evaluating `current` and
/// rolling back the few writes stamped after its pin — O(1) writer
/// bookkeeping per update instead of a full shard clone.
#[derive(Debug)]
struct ShardSlot {
    current: IndexedRelation,
    /// Epoch of the last write applied to `current` (the relation's
    /// birth epoch if none). `current` serves every epoch `>= stamp`
    /// as-is.
    stamp: u64,
    /// Undo records for recent writes, ascending by stamp (append at
    /// the back, reclaim at the front).
    ring: VecDeque<UndoEntry>,
}

impl ShardSlot {
    fn new(current: IndexedRelation) -> Self {
        ShardSlot {
            current,
            stamp: 0,
            ring: VecDeque::new(),
        }
    }

    /// The correction a reader at epoch `at` applies on top of
    /// `current`, or `None` when `current` serves `at` as-is (the
    /// common case: no write has landed past the pin). Walks only the
    /// ring suffix stamped after `at`; a local both inserted and
    /// deleted there was not alive at `at`, so its restore is dropped.
    /// The surviving restored rows are re-indexed on the same columns
    /// as the shard, so the per-query correction probes stay
    /// logarithmic no matter how much churn landed during the batch —
    /// the build is paid once per shard slice, not once per query.
    fn rollback_at(&self, at: Epoch, schema: &Schema, indexed_cols: &[usize]) -> Option<Rollback> {
        if at.get() >= self.stamp {
            return None;
        }
        // Shard locals are assigned sequentially and never reused, so
        // the locals inserted after `at` are exactly the contiguous id
        // suffix starting at the smallest one — visibility is a single
        // threshold compare, not a set lookup.
        let mut hidden_from = usize::MAX;
        let mut restored: Vec<(usize, &Vec<Value>)> = Vec::new();
        let mut entries = 0usize;
        for entry in self.ring.iter().rev() {
            if entry.stamp <= at.get() {
                break;
            }
            entries += 1;
            match &entry.op {
                UndoOp::Insert { local } => hidden_from = hidden_from.min(*local),
                UndoOp::Delete { local, row } => restored.push((*local, row)),
            }
        }
        // A local both inserted and deleted after `at` was not alive at
        // the pin; the oldest post-pin insert is seen last, so the
        // filter runs after the walk.
        restored.retain(|(local, _)| *local < hidden_from);
        let restored_locals: Vec<usize> = restored.iter().map(|(local, _)| *local).collect();
        let rows: Vec<Vec<Value>> = restored.iter().map(|(_, row)| (*row).clone()).collect();
        #[allow(clippy::expect_used)]
        let rel = Relation::from_rows(schema.clone(), rows)
            // lint:allow(no-unwrap-in-serving): restored rows came out of this relation
            .expect("restored rows were admitted by this schema");
        #[allow(clippy::expect_used)]
        let restored = IndexedRelation::build(&rel, indexed_cols)
            // lint:allow(no-unwrap-in-serving): the indexed columns were validated at build
            .expect("indexed columns were validated when the relation was built");
        Some(Rollback {
            hidden_from,
            restored,
            restored_locals,
            entries,
        })
    }

    /// Drop every undo record no pinned epoch can reach: the record
    /// stamped `s` is only needed by readers at epochs `< s`, so once
    /// the watermark (the oldest pinned epoch, or the current epoch
    /// when nothing is pinned) reaches `s` it is garbage. Returns how
    /// many records were dropped.
    fn trim(&mut self, watermark: u64) -> usize {
        let mut dropped = 0;
        while self.ring.front().is_some_and(|e| e.stamp <= watermark) {
            self.ring.pop_front();
            dropped += 1;
        }
        dropped
    }
}

/// The per-shard rollback for one pinned epoch
/// ([`ShardSlot::rollback_at`]): the visibility horizon below which
/// current locals are visible (everything inserted after the pin sits
/// at or above it) and an indexed mini-relation of the rows to restore
/// (deleted after the pin). Built and consumed under the shard's read
/// lock.
struct Rollback {
    /// First shard-local id invisible at the pin (`usize::MAX` when no
    /// insert landed past it).
    hidden_from: usize,
    /// The restored rows, indexed like the shard so correction probes
    /// cost a tree descent, not a scan of the churn.
    restored: IndexedRelation,
    /// Restored row id (in `restored`, dense) → shard-local id.
    restored_locals: Vec<usize>,
    /// Undo-ring entries walked to build this rollback (the
    /// `mvcc_rollback_entries` histogram sample).
    entries: usize,
}

impl Rollback {
    /// Boolean answer at the pinned epoch: any restored row matching
    /// the query, or any current match below the visibility horizon —
    /// both probes short-circuit on the first witness.
    fn answer(&self, shard: &IndexedRelation, q: &SelectionQuery, meter: &Meter) -> bool {
        self.restored.answer_metered(q, meter)
            || shard.answer_metered_below(q, meter, self.hidden_from)
    }

    /// Matching locals at the pinned epoch. Unsorted — every batch
    /// caller sorts after global-id translation.
    fn matching_ids(
        &self,
        shard: &IndexedRelation,
        q: &SelectionQuery,
        meter: &Meter,
    ) -> Vec<usize> {
        let mut ids: Vec<usize> = shard
            .matching_ids_metered(q, meter)
            .into_iter()
            .filter(|l| *l < self.hidden_from)
            .collect();
        ids.extend(
            self.restored
                .matching_ids_metered(q, meter)
                .into_iter()
                .map(|i| self.restored_locals[i]),
        );
        ids
    }
}

/// The global epoch clock plus the registry of pinned epochs — one
/// mutex, so a reader's pin and a writer's bump are atomic with respect
/// to each other.
#[derive(Debug, Default)]
struct EpochState {
    current: u64,
    /// Pinned epoch → number of in-flight pins on it.
    pins: BTreeMap<u64, usize>,
}

impl EpochState {
    fn watermark(&self) -> u64 {
        self.pins.keys().next().copied().unwrap_or(self.current)
    }
}

/// An RAII pin on one epoch of a [`LiveRelation`]: while the pin lives,
/// every shard read resolved at [`EpochPin::epoch`] sees exactly the
/// state after that many updates, and writers retain undo records
/// instead of destroying it. Dropping the pin releases the epoch for
/// reclamation.
#[derive(Debug)]
pub struct EpochPin<'a> {
    live: &'a LiveRelation,
    epoch: Epoch,
}

impl EpochPin<'_> {
    /// The pinned epoch.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }
}

impl Drop for EpochPin<'_> {
    fn drop(&mut self) {
        self.live.release_pin(self.epoch);
    }
}

/// A point-in-time export of a [`LiveRelation`]: the state, the
/// **absolute** log position it covers, and the epoch of the cut — all
/// three taken under one consistent set of locks, so
/// `epoch - birth epoch == covered` always holds.
#[derive(Debug)]
pub struct Frozen {
    /// The exported state (every update up to `covered` applied).
    pub state: ShardedRelation,
    /// Absolute log position the state covers (entries ever logged,
    /// including already-truncated ones).
    pub covered: usize,
    /// The epoch of the cut: the epoch clock's value when the state was
    /// frozen.
    pub epoch: Epoch,
}

/// A point-in-time summary of the MVCC version retention of a
/// [`LiveRelation`] — how much extra memory the version rings hold and
/// why ([`LiveRelation::version_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionStats {
    /// The epoch clock now.
    pub current_epoch: Epoch,
    /// The reclamation watermark: the oldest pinned epoch, or the
    /// current epoch when nothing is pinned. Versions older than every
    /// pin are reclaimed.
    pub watermark: Epoch,
    /// In-flight pins (counting multiplicity).
    pub pins: usize,
    /// Retained undo records across all shard rings (one per update
    /// applied while some epoch was pinned, until reclaimed).
    pub retained_versions: usize,
    /// Rows kept alive only by those records — each retained delete
    /// holds one copied row — i.e. the memory overhead of MVCC in the
    /// same unit as [`ShardedRelation`] slots.
    pub retained_slots: usize,
}

impl VersionStats {
    /// Publish this summary into a recorder's registry (`mvcc_*`
    /// family), so version retention shows up in the same
    /// `MetricsSnapshot` as every live series.
    pub fn publish(&self, recorder: &Recorder) {
        recorder
            .gauge("mvcc_current_epoch")
            .set(i64::try_from(self.current_epoch.get()).unwrap_or(i64::MAX));
        recorder
            .gauge("mvcc_watermark")
            .set(i64::try_from(self.watermark.get()).unwrap_or(i64::MAX));
        recorder.gauge("mvcc_pins").set(self.pins as i64);
        recorder
            .gauge("mvcc_retained_versions")
            .set(self.retained_versions as i64);
        recorder
            .gauge("mvcc_retained_slots")
            .set(self.retained_slots as i64);
    }
}

/// A concurrently servable, incrementally maintained, checkpointable
/// relation — the live tier over [`ShardedRelation`]. See the module
/// docs for the locking design.
#[derive(Debug)]
pub struct LiveRelation {
    schema: Schema,
    shard_by: ShardBy,
    indexed_cols: Vec<usize>,
    shards: Vec<OrderedRwLock<ShardSlot>>,
    ids: OrderedRwLock<IdMaps>,
    /// The epoch clock and pinned-epoch registry. Writers bump it inside
    /// the gid critical section (one tick per applied update), readers
    /// pin under the same mutex — acquired after `ids`, before `log`,
    /// in the fixed lock order.
    epochs: OrderedMutex<EpochState>,
    /// Retained undo records across all shard rings — a cheap gate so
    /// releasing a pin only sweeps the rings when something is actually
    /// retained.
    retained: AtomicUsize,
    /// Updates since the last checkpoint, in global-id order, with the
    /// absolute position of the oldest pending entry.
    log: OrderedMutex<LogState>,
    /// One record per applied update, in the same order as the log.
    maintenance: Mutex<BoundednessReport>,
    /// One record per retained undo record, charged in the same
    /// `|CHANGED|` currency as update maintenance.
    version_maintenance: Mutex<BoundednessReport>,
    /// Optional durable write-ahead sink; staged inside the gid critical
    /// section so sink order ≡ log order ≡ gid order.
    sink: Option<Arc<dyn WalSink>>,
    /// The observability handle ([`LiveRelation::set_recorder`]);
    /// disabled by default, in which case every instrument below is a
    /// single-branch no-op.
    recorder: Recorder,
    /// Interned `engine_*` / `mvcc_*` instrument handles.
    instruments: LiveInstruments,
}

/// Interned instrument handles for one [`LiveRelation`]. All default to
/// no-op handles.
#[derive(Debug, Clone, Default)]
struct LiveInstruments {
    /// `engine_updates_total`: applied inserts + deletes (each is
    /// `|ΔD| = 1`, so this is also the cumulative |ΔD|).
    updates: Counter,
    /// `engine_apply_batch_ops`: ops per [`LiveRelation::apply_batch`]
    /// call — the |ΔD| distribution of batched write traffic.
    apply_batch_ops: Histogram,
    /// `engine_plans_total{path=…}`: access path chosen per routed
    /// query, indexed by [`AccessPath`] label.
    plans: [Counter; PLAN_PATHS.len()],
    /// `mvcc_pins`: epoch pins currently registered.
    pins: Gauge,
    /// `mvcc_retained_versions`: undo records retained across all shard
    /// rings right now.
    retained: Gauge,
    /// `mvcc_rollback_entries`: undo records rolled back per pinned
    /// shard evaluation that needed a correction.
    rollback_entries: Histogram,
}

/// Access-path labels in [`LiveInstruments::plans`] order (matching
/// [`crate::planner::AccessPath::label`]).
const PLAN_PATHS: [&str; 4] = [
    "point-probe",
    "range-probe",
    "index-nested-loop",
    "full-scan",
];

impl LiveInstruments {
    fn new(recorder: &Recorder) -> Self {
        LiveInstruments {
            updates: recorder.counter("engine_updates_total"),
            apply_batch_ops: recorder.histogram("engine_apply_batch_ops"),
            plans: std::array::from_fn(|i| {
                recorder.counter(&format!("engine_plans_total{{path=\"{}\"}}", PLAN_PATHS[i]))
            }),
            pins: recorder.gauge("mvcc_pins"),
            retained: recorder.gauge("mvcc_retained_versions"),
            rollback_entries: recorder.histogram("mvcc_rollback_entries"),
        }
    }

    fn plan_counter(&self, label: &'static str) -> &Counter {
        let idx = PLAN_PATHS.iter().position(|&l| l == label).unwrap_or(0);
        &self.plans[idx]
    }
}

/// The maintenance cost record for one routed update: `|ΔD| = 1` (one
/// tuple), `|ΔO| = 1 + k` (the tuple plus one posting edit per indexed
/// column), and work `1 + k·⌈log₂ n_s⌉` for the per-index B⁺-tree
/// descents on the routed shard of `n_s` rows. Deterministic in the
/// shard's pre-update size, so a replayed update reproduces the record
/// exactly.
fn maintenance_record(indexed_cols: usize, shard_len_before: usize) -> UpdateRecord {
    let descent = u64::from(log2_floor(shard_len_before.max(2) as u64)).max(1);
    UpdateRecord {
        delta_input: 1,
        delta_output: 1 + indexed_cols as u64,
        work: 1 + indexed_cols as u64 * descent,
    }
}

impl LiveRelation {
    /// Build from a relation: partition into `shard_count` shards and
    /// index `cols` on each, exactly like
    /// [`ShardedRelation::build`], then wrap for live serving.
    pub fn build(
        relation: &Relation,
        shard_by: ShardBy,
        shard_count: usize,
        cols: &[usize],
    ) -> Result<Self, EngineError> {
        Ok(Self::from_sharded(ShardedRelation::build(
            relation,
            shard_by,
            shard_count,
            cols,
        )?))
    }

    /// Wrap an existing [`ShardedRelation`] (e.g. one loaded from a
    /// snapshot) for live serving. Starts with an empty update log and an
    /// empty maintenance report.
    pub fn from_sharded(relation: ShardedRelation) -> Self {
        let (schema, shard_by, shards, global_ids, locations) = relation.into_parts();
        let indexed_cols = shards[0].indexed_columns();
        let live = locations.iter().flatten().count();
        LiveRelation {
            schema,
            shard_by,
            indexed_cols,
            shards: shards
                .into_iter()
                .enumerate()
                .map(|(i, s)| {
                    OrderedRwLock::with_sub_order(LockRank::Shard, i as u32, ShardSlot::new(s))
                })
                .collect(),
            ids: OrderedRwLock::new(
                LockRank::Gid,
                IdMaps {
                    global_ids,
                    locations,
                    live,
                },
            ),
            epochs: OrderedMutex::new(LockRank::Epoch, EpochState::default()),
            retained: AtomicUsize::new(0),
            log: OrderedMutex::new(LockRank::Log, LogState::default()),
            maintenance: Mutex::new(BoundednessReport::new()),
            version_maintenance: Mutex::new(BoundednessReport::new()),
            sink: None,
            recorder: Recorder::default(),
            instruments: LiveInstruments::default(),
        }
    }

    /// Install (or remove) a durable write-ahead sink. Every subsequent
    /// insert/delete is staged to the sink inside the gid critical
    /// section and committed after the locks drop — see [`WalSink`] for
    /// the exact contract. Takes `&mut self` so a sink can only be
    /// swapped while no concurrent writer can race the transition
    /// (typically right after construction or recovery, before the
    /// relation is shared).
    pub fn set_wal_sink(&mut self, sink: Option<Arc<dyn WalSink>>) {
        self.sink = sink;
    }

    /// Is a durable write-ahead sink installed?
    pub fn has_wal_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// Install an observability recorder: interns the `engine_*` write /
    /// plan instruments and the `mvcc_*` pin / retention instruments.
    /// Takes `&mut self` for the same reason as [`Self::set_wal_sink`] —
    /// swapped only before the relation is shared. The default (disabled)
    /// recorder leaves every hot-path update a single branch.
    pub fn set_recorder(&mut self, recorder: &Recorder) {
        self.recorder = recorder.clone();
        self.instruments = LiveInstruments::new(recorder);
    }

    /// The installed recorder (disabled unless [`Self::set_recorder`]
    /// was called).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Publish the slow-moving stats surfaces into the recorder's
    /// registry so one `MetricsSnapshot` carries everything: the
    /// [`VersionStats`] gauges (`mvcc_*`) and the two
    /// [`BoundednessReport`] totals (`engine_maintenance_*` for update
    /// maintenance, `mvcc_retention_*` for version retention). No-op
    /// with a disabled recorder.
    pub fn publish_metrics(&self) {
        if !self.recorder.is_enabled() {
            return;
        }
        self.version_stats().publish(&self.recorder);
        self.boundedness_report()
            .publish(&self.recorder, "engine_maintenance");
        self.version_report()
            .publish(&self.recorder, "mvcc_retention");
        publish_lockdep(&self.recorder);
    }

    /// Schema of the logical relation.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The partitioning function.
    pub fn shard_by(&self) -> &ShardBy {
        &self.shard_by
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which columns are indexed on every shard.
    pub fn indexed_columns(&self) -> &[usize] {
        &self.indexed_cols
    }

    /// Total live tuples.
    pub fn len(&self) -> usize {
        self.read_ids().live
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total row slots ever assigned (live + tombstones) across all
    /// shards — what the planner estimates scans against.
    pub fn slot_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| read_lock(s).current.slot_count())
            .sum()
    }

    // --- lock helpers ------------------------------------------------------
    //
    // Lock poisoning is deliberately ignored (the ordered wrappers
    // absorb it): every critical section below upholds the structure
    // invariants before any call that could panic, and a serving tier
    // must keep answering after one worker died mid-request. The one
    // fixed acquisition order — shard locks (ascending), then `ids`,
    // then `epochs`, then `log` — makes deadlock impossible, and the
    // [`pitract_core::lockdep`] ranks carried by each lock turn any
    // future violation of that order into a debug-build panic instead
    // of a production hang. `maintenance`/`version_maintenance` stay
    // plain leaf mutexes: nothing is ever acquired while they are held.

    fn read_shard(&self, s: usize) -> OrderedRwLockReadGuard<'_, ShardSlot> {
        self.shards[s].read()
    }

    fn write_shard(&self, s: usize) -> OrderedRwLockWriteGuard<'_, ShardSlot> {
        self.shards[s].write()
    }

    fn lock_epochs(&self) -> OrderedMutexGuard<'_, EpochState> {
        self.epochs.lock()
    }

    fn read_ids(&self) -> OrderedRwLockReadGuard<'_, IdMaps> {
        self.ids.read()
    }

    fn write_ids(&self) -> OrderedRwLockWriteGuard<'_, IdMaps> {
        self.ids.write()
    }

    fn lock_log(&self) -> OrderedMutexGuard<'_, LogState> {
        self.log.lock()
    }

    fn lock_maintenance(&self) -> MutexGuard<'_, BoundednessReport> {
        self.maintenance
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    // --- epochs & version retention ----------------------------------------

    /// The epoch clock now: the number of updates ever applied (plus any
    /// recovery advance — see [`Self::advance_epoch_to`]).
    pub fn current_epoch(&self) -> Epoch {
        Epoch::new(self.lock_epochs().current)
    }

    /// Pin the current epoch: until the returned [`EpochPin`] drops,
    /// every read resolved at that epoch — [`Self::execute`] does this
    /// per batch — sees exactly the pinned instance, and writers record
    /// undo entries around it instead of blocking or being blocked.
    pub fn pin(&self) -> EpochPin<'_> {
        EpochPin {
            live: self,
            epoch: self.register_pin(),
        }
    }

    /// Register a pin on the current epoch (the raw half of
    /// [`Self::pin`], for callers that cannot hold a borrow — the
    /// pooled executor's trait surface). Every `register_pin` must be
    /// paired with exactly one [`Self::release_pin`].
    pub(crate) fn register_pin(&self) -> Epoch {
        let mut epochs = self.lock_epochs();
        let epoch = epochs.current;
        *epochs.pins.entry(epoch).or_insert(0) += 1;
        self.instruments.pins.inc();
        Epoch::new(epoch)
    }

    /// Release one pin and reclaim every version no remaining pin can
    /// reach.
    pub(crate) fn release_pin(&self, epoch: Epoch) {
        let watermark = {
            let mut epochs = self.lock_epochs();
            match epochs.pins.get_mut(&epoch.get()) {
                Some(n) if *n > 1 => *n -= 1,
                Some(_) => {
                    epochs.pins.remove(&epoch.get());
                }
                None => debug_assert!(false, "released an unregistered pin"),
            }
            epochs.watermark()
        };
        self.instruments.pins.dec();
        // Sweep the rings only when something is retained. The watermark
        // is a safe lower bound even if pins land concurrently: a new
        // pin is at the current epoch, which no reclaimable undo
        // record's stamp can exceed. The sweep must NOT queue on a
        // contended shard: that would park the just-finished batch
        // behind the writer convoy (costing it a scheduler round-trip
        // per shard), and a busy shard reclaims its own ring at the
        // very next write's trim anyway — only quiescent shards need
        // the release-time sweep, and `try_write` on a quiescent shard
        // is free.
        if self.retained.load(Ordering::Acquire) > 0 {
            let mut dropped = 0;
            for slot in &self.shards {
                let Some(mut guard) = slot.try_write() else {
                    continue;
                };
                dropped += guard.trim(watermark);
            }
            if dropped > 0 {
                self.retained.fetch_sub(dropped, Ordering::AcqRel);
                self.instruments.retained.add(-(dropped as i64));
            }
        }
    }

    /// Advance the epoch clock to `epoch` without applying updates —
    /// the clock twin of [`Self::burn_gids_to`]. Recovery calls this
    /// after a *compacted* replay, which applies fewer updates than the
    /// history it reproduces: the recovered node must stamp its next
    /// update with the same epoch the crashed node would have. No-op if
    /// the clock is already there.
    pub fn advance_epoch_to(&self, epoch: Epoch) {
        let current = {
            let mut epochs = self.lock_epochs();
            epochs.current = epochs.current.max(epoch.get());
            epochs.current
        };
        // Keep the pending log's end stamp on the same clock, so a log
        // captured from this node — even one whose entries are a
        // compacted remnant of a longer history — still names the epoch
        // its final state has ([`UpdateLog::end_epoch`]); a second
        // recovery resumes from there instead of undercounting.
        self.lock_log().log.advance_end_to(Epoch::new(current));
    }

    /// How much memory the MVCC version rings hold right now, and why.
    pub fn version_stats(&self) -> VersionStats {
        // Shard locks strictly before the epochs mutex (the fixed
        // order); the two sections race benignly — stats are a sample.
        let (retained_versions, retained_slots) = self
            .shards
            .iter()
            .map(|s| {
                let slot = read_lock(s);
                (
                    slot.ring.len(),
                    slot.ring
                        .iter()
                        .filter(|e| matches!(e.op, UndoOp::Delete { .. }))
                        .count(),
                )
            })
            .fold((0, 0), |(v, r), (dv, dr)| (v + dv, r + dr));
        let epochs = self.lock_epochs();
        VersionStats {
            current_epoch: Epoch::new(epochs.current),
            watermark: Epoch::new(epochs.watermark()),
            pins: epochs.pins.values().sum(),
            retained_versions,
            retained_slots,
        }
    }

    /// The `|CHANGED|` accounting of version retention: one
    /// [`UpdateRecord`] per retained undo record, charging the rows the
    /// record keeps alive as `|ΔO|` (1 for a delete's saved row, 0 for
    /// an insert) against the single update that triggered it
    /// (`|ΔD| = 1`, work 1 — the ring append is O(1)). Kept separate
    /// from [`Self::boundedness_report`] so replay determinism is
    /// untouched — whether a record is retained depends on reader
    /// timing, never on the update history.
    pub fn version_report(&self) -> BoundednessReport {
        self.version_maintenance
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Record how to un-apply the write just stamped onto `slot`, iff
    /// any epoch is pinned (every pin is below the just-ticked clock,
    /// so every pin needs the rollback; with no pins the record could
    /// never be read before the next watermark sweep reclaims it).
    /// Called with the epochs mutex held, *after* the clock tick — pin
    /// registration and the retention decision cannot race. `op` is a
    /// closure so the delete path only copies its row when a pin
    /// actually retains it.
    fn record_undo(&self, slot: &mut ShardSlot, epochs: &EpochState, op: impl FnOnce() -> UndoOp) {
        if epochs.pins.is_empty() {
            return;
        }
        let op = op();
        let held = u64::from(matches!(op, UndoOp::Delete { .. }));
        slot.ring.push_back(UndoEntry {
            stamp: epochs.current,
            op,
        });
        self.retained.fetch_add(1, Ordering::AcqRel);
        self.instruments.retained.inc();
        self.version_maintenance
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(UpdateRecord {
                delta_input: 1,
                delta_output: held,
                work: 1,
            });
    }

    // --- updates -----------------------------------------------------------

    /// Insert a tuple, write-locking only the shard its key routes to.
    /// Returns the stable global row id. Concurrent queries on other
    /// shards are unaffected; queries on the routed shard wait only for
    /// the O(log n) index maintenance.
    ///
    /// With a [`WalSink`] installed the record is staged to the sink
    /// before the insert becomes visible (a failed stage applies
    /// nothing) and committed durable after the locks drop; a commit
    /// failure means the insert *is* applied and staged but its
    /// durability is unconfirmed.
    pub fn insert(&self, row: Vec<Value>) -> Result<usize, EngineError> {
        let (gid, ticket) = self.insert_staged(row)?;
        self.commit_ticket(ticket)?;
        Ok(gid)
    }

    /// The staged half of [`Self::insert`]: apply the insert and stage
    /// it to the sink, but leave the sink commit (the possible fsync
    /// wait) to the caller — [`Self::apply_batch`] commits once for a
    /// whole run of staged ops.
    fn insert_staged(&self, row: Vec<Value>) -> Result<(usize, Option<u64>), EngineError> {
        self.schema
            .admits(&row)
            .map_err(|e| EngineError::Indexed(IndexedError::RowRejected(e)))?;
        let shard = route_shard(&self.shard_by, self.shards.len(), &row[self.shard_by.col()]);
        let (gid, ticket) = {
            let mut guard = self.write_shard(shard);
            let len_before = guard.current.len();
            // The id maps are updated while the shard lock is still held
            // so `global_ids[shard]` stays aligned with the shard's local
            // ids, and the sink/log/record appends happen inside the gid
            // critical section so WAL order equals log order equals gid
            // order (replay determinism).
            let mut ids = self.write_ids();
            let gid = ids.locations.len();
            let ticket = match &self.sink {
                // Staged before anything is applied: a rejected stage
                // leaves the relation untouched.
                Some(sink) => Some(sink.stage(&UpdateEntry::Insert {
                    gid,
                    row: row.clone(),
                })?),
                None => None,
            };
            // The epochs mutex is held across apply → bump → record so
            // a reader cannot pin between the clock tick and the
            // undo-retention decision (a pin taken after the mutex
            // drops is at the new epoch and needs no rollback for this
            // write); writers lose nothing — they are already
            // serialized by the ids write lock held above.
            let mut epochs = self.lock_epochs();
            let local = match guard.current.insert(row.clone()) {
                Ok(local) => local,
                Err(e) => return Err(EngineError::Indexed(e)),
            };
            // The clock ticks only after the update actually applied:
            // epoch ≡ absolute log position, with no gaps.
            epochs.current += 1;
            guard.stamp = epochs.current;
            self.record_undo(&mut guard, &epochs, || UndoOp::Insert { local });
            let watermark = epochs.watermark();
            drop(epochs);
            let dropped = guard.trim(watermark);
            if dropped > 0 {
                self.retained.fetch_sub(dropped, Ordering::AcqRel);
                self.instruments.retained.add(-(dropped as i64));
            }
            debug_assert_eq!(local, ids.global_ids[shard].len());
            ids.global_ids[shard].push(gid);
            ids.locations.push(Some((shard, local)));
            ids.live += 1;
            self.lock_log().log.push(UpdateEntry::Insert { gid, row });
            self.lock_maintenance()
                .push(maintenance_record(self.indexed_cols.len(), len_before));
            self.instruments.updates.inc();
            (gid, ticket)
        };
        Ok((gid, ticket))
    }

    /// Delete by global row id, write-locking only the owning shard.
    /// Returns the removed tuple, or `Ok(None)` if the id was already
    /// deleted or never assigned (including a concurrent delete that won
    /// the race). An `Err` is only possible with a [`WalSink`]
    /// installed, with the same staged/commit semantics as
    /// [`Self::insert`].
    pub fn delete(&self, gid: usize) -> Result<Option<Vec<Value>>, EngineError> {
        let (row, ticket) = self.delete_staged(gid)?;
        self.commit_ticket(ticket)?;
        Ok(row)
    }

    /// The staged half of [`Self::delete`] — see [`Self::insert_staged`].
    fn delete_staged(&self, gid: usize) -> Result<(Option<Vec<Value>>, Option<u64>), EngineError> {
        // Find the owning shard first (ids read lock, released), then
        // re-acquire in the canonical shard → ids order. A location is
        // written once and only ever transitions Some → None, so if it is
        // still live after re-locking it is the same (shard, local).
        let Some((shard, local)) = ({
            let ids = self.read_ids();
            ids.locations.get(gid).copied().flatten()
        }) else {
            return Ok((None, None));
        };
        let (row, ticket) = {
            let mut guard = self.write_shard(shard);
            let mut ids = self.write_ids();
            if ids.locations[gid].is_none() {
                // A concurrent delete won the race.
                return Ok((None, None));
            }
            let ticket = match &self.sink {
                Some(sink) => Some(sink.stage(&UpdateEntry::Delete { gid })?),
                None => None,
            };
            ids.locations[gid] = None;
            ids.live -= 1;
            let len_before = guard.current.len();
            // Same epoch protocol as `insert_staged`: apply, tick the
            // clock, stamp, record the undo, trim.
            let mut epochs = self.lock_epochs();
            #[allow(clippy::expect_used)]
            let row = guard
                .current
                .delete(local)
                // lint:allow(no-unwrap-in-serving): the location map just said this row is live
                .expect("location map and shard agree on live rows");
            epochs.current += 1;
            guard.stamp = epochs.current;
            self.record_undo(&mut guard, &epochs, || UndoOp::Delete {
                local,
                row: row.clone(),
            });
            let watermark = epochs.watermark();
            drop(epochs);
            let dropped = guard.trim(watermark);
            if dropped > 0 {
                self.retained.fetch_sub(dropped, Ordering::AcqRel);
                self.instruments.retained.add(-(dropped as i64));
            }
            self.lock_log().log.push(UpdateEntry::Delete { gid });
            self.lock_maintenance()
                .push(maintenance_record(self.indexed_cols.len(), len_before));
            self.instruments.updates.inc();
            (row, ticket)
        };
        Ok((Some(row), ticket))
    }

    /// Commit one staged sink ticket, outside all locks.
    fn commit_ticket(&self, ticket: Option<u64>) -> Result<(), EngineError> {
        if let (Some(sink), Some(ticket)) = (&self.sink, ticket) {
            sink.commit(ticket)?;
        }
        Ok(())
    }

    /// Apply a run of updates with **one sink commit for the whole
    /// batch**: every op is applied and staged exactly like
    /// [`Self::insert`] / [`Self::delete`] (same locking, same gid ≡ log
    /// ≡ WAL order, same `|CHANGED|` accounting), but only the *last*
    /// staged ticket is committed — under a group-commit WAL that is one
    /// fsync covering every record in the batch, instead of one fsync
    /// race per op. Sink tickets are monotone and a commit covers every
    /// record staged before it (the [`WalSink`] contract), so committing
    /// the last ticket makes the whole batch durable.
    ///
    /// Returns one [`Applied`] per op, in op order. Ops are applied
    /// sequentially from the calling thread; concurrent writers may
    /// interleave *between* (not inside) the individual ops, exactly as
    /// they could between individual `insert`/`delete` calls.
    ///
    /// On a mid-batch failure (schema rejection, failed stage) the
    /// already-applied prefix stays applied — the same contract as
    /// issuing the ops one by one — and its staged records are committed
    /// durable before the error returns, so no confirmed-in-memory op is
    /// left with unconfirmed durability silently.
    pub fn apply_batch(
        &self,
        ops: impl IntoIterator<Item = UpdateOp>,
    ) -> Result<Vec<Applied>, EngineError> {
        let mut applied = Vec::new();
        let mut last_ticket = None;
        for op in ops {
            let staged = match op {
                UpdateOp::Insert(row) => self
                    .insert_staged(row)
                    .map(|(gid, t)| (Applied::Inserted(gid), t)),
                UpdateOp::Delete(gid) => self
                    .delete_staged(gid)
                    .map(|(row, t)| (Applied::Deleted(row), t)),
            };
            match staged {
                Ok((outcome, ticket)) => {
                    if ticket.is_some() {
                        last_ticket = ticket;
                    }
                    applied.push(outcome);
                }
                Err(e) => {
                    // Flush the applied prefix before surfacing the
                    // error; its durability failure (if any) would
                    // otherwise be unreported.
                    self.instruments
                        .apply_batch_ops
                        .record(applied.len() as u64);
                    self.commit_ticket(last_ticket)?;
                    return Err(e);
                }
            }
        }
        // The batch's |ΔD| (each op is one tuple changed).
        self.instruments
            .apply_batch_ops
            .record(applied.len() as u64);
        self.commit_ticket(last_ticket)?;
        Ok(applied)
    }

    // --- queries -----------------------------------------------------------

    /// The live tuple under a global row id (cloned out of the shard so
    /// no lock outlives the call).
    pub fn row(&self, gid: usize) -> Option<Vec<Value>> {
        let (shard, local) = {
            let ids = self.read_ids();
            (*ids.locations.get(gid)?)?
        };
        self.read_shard(shard)
            .current
            .row(local)
            .map(<[Value]>::to_vec)
    }

    /// Boolean answer, read-locking only the relevant shards (in turn).
    /// Read-committed: a single query needs no cross-shard cut.
    pub fn answer(&self, q: &SelectionQuery) -> bool {
        let meter = Meter::new();
        relevant_shards_for(&self.shard_by, self.shards.len(), q)
            .into_iter()
            .any(|s| self.read_shard(s).current.answer_metered(q, &meter))
    }

    /// Global ids (ascending) of all live rows matching `q`, read-locking
    /// only the relevant shards. Read-committed, like [`Self::answer`].
    pub fn matching_ids(&self, q: &SelectionQuery) -> Vec<usize> {
        let meter = Meter::new();
        let locals: Vec<(usize, Vec<usize>)> =
            relevant_shards_for(&self.shard_by, self.shards.len(), q)
                .into_iter()
                .map(|s| {
                    (
                        s,
                        self.read_shard(s).current.matching_ids_metered(q, &meter),
                    )
                })
                .collect();
        // Translation happens after the shard locks are released: the
        // local→global maps are append-only, and every local id seen
        // above was mapped before its row became visible.
        let ids = self.read_ids();
        let mut out: Vec<usize> = locals
            .into_iter()
            .flat_map(|(s, ls)| {
                let map = &ids.global_ids[s];
                ls.into_iter().map(|l| map[l]).collect::<Vec<_>>()
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Answer a whole [`QueryBatch`] against **one pinned epoch**,
    /// fanning out across shards on scoped threads exactly like
    /// [`QueryBatch::execute`]. The batch pins the current epoch before
    /// routing, every per-shard worker resolves its shard at that epoch
    /// (the current version under a read lock, rolled back through any
    /// undo records stamped after the pin), and the pin is released when the merge
    /// completes — so a cross-shard aggregate is exact against one
    /// database instance even while writers land mid-batch, and the
    /// pinned epoch is recorded in the report
    /// ([`crate::batch::BatchReport::epoch`]).
    pub fn execute(&self, batch: &QueryBatch) -> Result<BatchAnswers, EngineError> {
        let pin = self.pin();
        let at = pin.epoch();
        let (plans, routed) = self.route(batch.queries())?;
        let merged = fan_out(self.shards.len(), &routed, |s, assigned| {
            self.eval_bool_shard(s, at, batch.queries(), assigned)
        })?;
        let mut answers = vec![false; batch.len()];
        for (qi, per_shard) in merged.iter().enumerate() {
            answers[qi] = per_shard.iter().any(|(_, hit, _)| *hit);
        }
        let mut report = report_from(plans, &routed, &merged);
        report.epoch = Some(at);
        Ok(BatchAnswers { answers, report })
    }

    /// The read-committed baseline: answer a batch with **no** epoch pin
    /// — each shard is observed at whatever state its read lock finds,
    /// so a multi-shard batch racing writers may see different shards at
    /// different instants (the pre-MVCC behaviour, kept as the
    /// comparison point the `mvcc` bench measures snapshot overhead
    /// against). The report's `epoch` is `None`.
    pub fn execute_read_committed(&self, batch: &QueryBatch) -> Result<BatchAnswers, EngineError> {
        let (plans, routed) = self.route(batch.queries())?;
        let merged = fan_out(self.shards.len(), &routed, |s, assigned| {
            self.eval_bool_shard(s, Epoch::LATEST, batch.queries(), assigned)
        })?;
        let mut answers = vec![false; batch.len()];
        for (qi, per_shard) in merged.iter().enumerate() {
            answers[qi] = per_shard.iter().any(|(_, hit, _)| *hit);
        }
        Ok(BatchAnswers {
            answers,
            report: report_from(plans, &routed, &merged),
        })
    }

    /// Enumerate matching global row ids for a whole batch at one pinned
    /// epoch (the row-id mode of [`Self::execute`]).
    pub fn execute_rows(&self, batch: &QueryBatch) -> Result<BatchRows, EngineError> {
        let pin = self.pin();
        let at = pin.epoch();
        let (plans, routed) = self.route(batch.queries())?;
        let merged = fan_out(self.shards.len(), &routed, |s, assigned| {
            self.eval_rows_shard(s, at, batch.queries(), assigned)
        })?;
        let ids = self.read_ids();
        let mut rows: Vec<Vec<usize>> = vec![Vec::new(); batch.len()];
        for (qi, per_shard) in merged.iter().enumerate() {
            // Translate through the shard id carried in each triple —
            // never the position within `routed[qi]` (see `fan_out`).
            for (shard, locals, _) in per_shard {
                let map = &ids.global_ids[*shard];
                rows[qi].extend(locals.iter().map(|&l| map[l]));
            }
            rows[qi].sort_unstable();
        }
        drop(ids);
        let mut report = report_from(plans, &routed, &merged);
        report.epoch = Some(at);
        Ok(BatchRows { rows, report })
    }

    /// Validate, plan, and shard-route a query slice (the live twin of
    /// the batch executor's routing, sharing the same helpers; also the
    /// routing the pooled executor uses).
    pub(crate) fn route(
        &self,
        queries: &[SelectionQuery],
    ) -> Result<(Vec<crate::planner::QueryPlan>, Vec<Vec<usize>>), EngineError> {
        let (plans, routed) = route_batch(
            queries,
            &self.schema,
            &self.indexed_cols,
            self.slot_count(),
            &self.shard_by,
            self.shards.len(),
        )?;
        // One `engine_plans_total{path=…}` tick per routed query (a
        // single no-op branch each when uninstrumented).
        for plan in &plans {
            self.instruments.plan_counter(plan.path.label()).inc();
        }
        Ok((plans, routed))
    }

    /// Translate shard-local row ids to global ids under the ids read
    /// lock. Safe after the shard lock has been released: the per-shard
    /// local→global maps are append-only, and every local id handed in
    /// was mapped before its row became visible.
    pub(crate) fn globalize(&self, shard: usize, locals: &[usize]) -> Vec<usize> {
        let ids = self.read_ids();
        let map = &ids.global_ids[shard];
        locals.iter().map(|&l| map[l]).collect()
    }

    /// Evaluate Boolean answers for one shard's assigned slice of a
    /// query batch as of epoch `at` (the pooled executor's per-shard
    /// work item): the current version under the shard's read lock,
    /// with the undo-ring rollback applied when writes landed past the
    /// pin. The rollback sets are built once per shard slice, not per
    /// query.
    pub(crate) fn eval_bool_shard(
        &self,
        shard: usize,
        at: Epoch,
        queries: &[SelectionQuery],
        assigned: &[usize],
    ) -> crate::batch::WorkerResults<bool> {
        let guard = self.read_shard(shard);
        match guard.rollback_at(at, &self.schema, &self.indexed_cols) {
            None => eval_assigned(queries, &guard.current, assigned, |sh, q, m| {
                sh.answer_metered(q, m)
            }),
            Some(rb) => {
                self.instruments.rollback_entries.record(rb.entries as u64);
                eval_assigned(queries, &guard.current, assigned, |sh, q, m| {
                    rb.answer(sh, q, m)
                })
            }
        }
    }

    /// Evaluate matching local row ids for one shard's assigned slice
    /// as of epoch `at`.
    pub(crate) fn eval_rows_shard(
        &self,
        shard: usize,
        at: Epoch,
        queries: &[SelectionQuery],
        assigned: &[usize],
    ) -> crate::batch::WorkerResults<Vec<usize>> {
        let guard = self.read_shard(shard);
        match guard.rollback_at(at, &self.schema, &self.indexed_cols) {
            None => eval_assigned(queries, &guard.current, assigned, |sh, q, m| {
                sh.matching_ids_metered(q, m)
            }),
            Some(rb) => {
                self.instruments.rollback_entries.record(rb.entries as u64);
                eval_assigned(queries, &guard.current, assigned, |sh, q, m| {
                    rb.matching_ids(sh, q, m)
                })
            }
        }
    }

    // --- maintenance accounting -------------------------------------------

    /// The `|CHANGED|` accounting of every update applied since this
    /// relation was wrapped (or recovered): one
    /// [`UpdateRecord`] per insert/delete, in apply order.
    pub fn boundedness_report(&self) -> BoundednessReport {
        self.lock_maintenance().clone()
    }

    // --- checkpoint & recovery --------------------------------------------

    /// Updates applied since the last confirmed checkpoint, oldest
    /// first.
    pub fn pending_log(&self) -> UpdateLog {
        self.lock_log().log.clone()
    }

    /// Atomically export the current state as a [`ShardedRelation`]
    /// together with the **absolute** log position it covers (entries
    /// ever logged, including already-truncated ones) and the epoch of
    /// the cut.
    ///
    /// All shard locks are held (read) only while the shards are cloned,
    /// so the returned state is a true point-in-time snapshot — every
    /// update is either fully inside it or fully after the returned mark
    /// — but writers resume as soon as the copy exists; the O(n)
    /// reassembly validation runs on the private clone afterwards. The
    /// log is *not* truncated here — call [`Self::confirm_checkpoint`]
    /// with the mark once the snapshot is durably persisted, so a failed
    /// save never loses replayability. Holding every shard read lock
    /// excludes every writer's critical section, so the epoch read here
    /// is exactly the epoch of the exported state.
    pub fn freeze(&self) -> Frozen {
        let (schema, shard_by, shards, global_ids, locations, covered, epoch) = {
            let guards: Vec<OrderedRwLockReadGuard<'_, ShardSlot>> =
                self.shards.iter().map(read_lock).collect();
            let ids = self.read_ids();
            let epoch = self.lock_epochs().current;
            let log = self.lock_log();
            let covered = log.base + log.log.len();
            (
                self.schema.clone(),
                self.shard_by.clone(),
                guards.iter().map(|g| g.current.clone()).collect::<Vec<_>>(),
                ids.global_ids.clone(),
                ids.locations.clone(),
                covered,
                epoch,
            )
            // All guards drop here: writers proceed while we validate.
        };
        #[allow(clippy::expect_used)]
        let state = ShardedRelation::from_parts(schema, shard_by, shards, global_ids, locations)
            // lint:allow(no-unwrap-in-serving): the live maps uphold the sharded invariants
            .expect("live state upholds the sharded invariants");
        Frozen {
            state,
            covered,
            epoch: Epoch::new(epoch),
        }
    }

    /// Export the current state alone (a freeze whose log position the
    /// caller does not need).
    pub fn to_sharded(&self) -> ShardedRelation {
        self.freeze().state
    }

    /// Truncate every log entry at or before the absolute position
    /// `covered` once its snapshot has been durably persisted (the
    /// second half of a checkpoint; `covered` comes from
    /// [`Self::freeze`]). Positions are absolute, so two checkpoints
    /// confirming in any order each truncate only what their own
    /// snapshot covers — never a racing checkpoint's uncovered suffix.
    pub fn confirm_checkpoint(&self, covered: usize) {
        let mut state = self.lock_log();
        let drain = covered.saturating_sub(state.base).min(state.log.len());
        state.log.drain_prefix(drain);
        state.base += drain;
    }

    /// Replay a log onto this relation (typically fresh from a
    /// snapshot): re-applies every entry in order and verifies each
    /// insert reproduces the logged global id. On success the relation's
    /// state — answers *and* global row ids — equals the state the log
    /// was recorded from.
    pub fn replay(&self, log: &UpdateLog) -> Result<usize, EngineError> {
        self.replay_inner(log, false)
    }

    /// Replay a log produced by [`UpdateLog::compact`]: like
    /// [`Self::replay`], except that a *forward gap* in the global-id
    /// sequence — the ids of an insert+delete pair the compaction
    /// cancelled — is burned as permanent tombstones, so every surviving
    /// insert still lands on exactly its recorded gid. Burned ids are
    /// indistinguishable from deleted ones (both read back as `None`),
    /// which is what makes compacted and uncompacted replay produce the
    /// same answers and the same live global row ids.
    ///
    /// A *backward* id (an insert recording a gid this relation already
    /// assigned) is still rejected typed: compaction only ever removes
    /// entries, so it can explain missing ids, never reused ones.
    pub fn replay_compacted(&self, log: &UpdateLog) -> Result<usize, EngineError> {
        self.replay_inner(log, true)
    }

    /// Replay a bare entry slice with [`Self::replay_compacted`]
    /// semantics (forward gid gaps burn as tombstones, backward gids
    /// fail typed). This is the follower-replication apply path: a
    /// `pitract-repl` follower streams already-compacted WAL records
    /// from its primary — the stream may carry gid gaps wherever the
    /// primary's compactor cancelled an insert+delete pair — and
    /// re-applies them here, which is what keeps a replica's answers
    /// *and* global row ids bit-identical to the primary's prefix.
    pub fn replay_entries(&self, entries: &[UpdateEntry]) -> Result<usize, EngineError> {
        self.replay_compacted(&UpdateLog::from_entries(entries.to_vec()))
    }

    /// Advance the global-id allocator to `next_gid` without inserting:
    /// the skipped ids are burned as permanent tombstones (they read
    /// back as deleted). No-op if the allocator is already there.
    ///
    /// Recovery calls this with [`UpdateLog::next_gid_watermark`] after
    /// replaying a compacted log: a *trailing* insert+delete pair leaves
    /// no surviving entry to carry its ids, yet the crashed node had
    /// assigned them — burning keeps the recovered node's future id
    /// assignments bit-identical to the history the log records.
    pub fn burn_gids_to(&self, next_gid: usize) {
        let mut ids = self.write_ids();
        while ids.locations.len() < next_gid {
            ids.locations.push(None);
        }
    }

    fn replay_inner(&self, log: &UpdateLog, burn_gaps: bool) -> Result<usize, EngineError> {
        for entry in log.entries() {
            match entry {
                UpdateEntry::Insert { gid, row } => {
                    if burn_gaps {
                        let mut ids = self.write_ids();
                        while ids.locations.len() < *gid {
                            ids.locations.push(None);
                        }
                    }
                    let got = self.insert(row.clone())?;
                    if got != *gid {
                        return Err(EngineError::ReplayGidMismatch {
                            expected: *gid,
                            found: got,
                        });
                    }
                }
                UpdateEntry::Delete { gid } => {
                    self.delete(*gid)?
                        .ok_or(EngineError::ReplayMissingRow { gid: *gid })?;
                }
            }
        }
        Ok(log.len())
    }
}

fn read_lock(lock: &OrderedRwLock<ShardSlot>) -> OrderedRwLockReadGuard<'_, ShardSlot> {
    lock.read()
}

/// Publish the process-wide [`pitract_core::lockdep`] totals into
/// `recorder` as `lockdep_checks_total` / `lockdep_violations_total`.
/// The lockdep counters are global (every ordered lock in the process
/// feeds them), so the publish is monotonic (`raise_to`) — republishing
/// from several relations or pools never double-counts. In release
/// builds the checks are compiled out and both totals stay 0.
pub fn publish_lockdep(recorder: &Recorder) {
    let stats = pitract_core::lockdep::stats();
    recorder
        .counter("lockdep_checks_total")
        .raise_to(stats.checks);
    recorder
        .counter("lockdep_violations_total")
        .raise_to(stats.violations);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitract_relation::ColType;

    fn schema() -> Schema {
        Schema::new(&[("id", ColType::Int), ("city", ColType::Str)])
    }

    fn relation(n: i64) -> Relation {
        let rows = (0..n)
            .map(|i| vec![Value::Int(i), Value::str(format!("city{}", i % 10))])
            .collect();
        Relation::from_rows(schema(), rows).unwrap()
    }

    fn live(n: i64, shards: usize) -> LiveRelation {
        LiveRelation::build(&relation(n), ShardBy::Hash { col: 0 }, shards, &[0, 1]).unwrap()
    }

    #[test]
    fn serves_like_a_sharded_relation() {
        let rel = relation(200);
        let lr = live(200, 4);
        for q in [
            SelectionQuery::point(0, 123i64),
            SelectionQuery::point(0, 999i64),
            SelectionQuery::point(1, "city7"),
            SelectionQuery::range_closed(0, 40i64, 55i64),
            SelectionQuery::and(
                SelectionQuery::point(1, "city3"),
                SelectionQuery::range_closed(0, 100i64, 160i64),
            ),
        ] {
            assert_eq!(lr.answer(&q), rel.eval_scan(&q), "{q:?}");
        }
        assert_eq!(lr.len(), 200);
        assert_eq!(
            lr.matching_ids(&SelectionQuery::point(1, "city2"))[..2],
            [2, 12]
        );
    }

    #[test]
    fn updates_through_shared_reference() {
        let lr = live(20, 4);
        let gid = lr.insert(vec![Value::Int(100), Value::str("new")]).unwrap();
        assert_eq!(gid, 20);
        assert_eq!(lr.row(gid).unwrap()[1], Value::str("new"));
        assert!(lr.answer(&SelectionQuery::point(0, 100i64)));

        let removed = lr.delete(5).unwrap().expect("gid 5 live");
        assert_eq!(removed[0], Value::Int(5));
        assert!(lr.delete(5).unwrap().is_none(), "double delete is a no-op");
        assert!(!lr.answer(&SelectionQuery::point(0, 5i64)));
        assert_eq!(lr.len(), 20);
        assert!(lr.row(5).is_none());
        assert_eq!(lr.row(6).unwrap()[0], Value::Int(6));
    }

    #[test]
    fn batches_execute_under_read_locks() {
        let rel = relation(300);
        let lr = live(300, 4);
        let batch = QueryBatch::new((0..40i64).map(|k| match k % 2 {
            0 => SelectionQuery::point(0, k * 9),
            _ => SelectionQuery::range_closed(0, k * 5, k * 5 + 12),
        }));
        let got = lr.execute(&batch).unwrap();
        for (q, &ans) in batch.queries().iter().zip(&got.answers) {
            assert_eq!(ans, rel.eval_scan(q), "{q:?}");
        }
        assert!(got.report.total_steps > 0);
        let rows = lr.execute_rows(&batch).unwrap();
        for (q, ids) in batch.queries().iter().zip(&rows.rows) {
            assert_eq!(ids.len(), rel.count_where(q), "{q:?}");
        }
    }

    #[test]
    fn update_log_records_in_gid_order() {
        let lr = live(4, 2);
        let g1 = lr.insert(vec![Value::Int(50), Value::str("a")]).unwrap();
        lr.delete(0).unwrap().unwrap();
        let g2 = lr.insert(vec![Value::Int(51), Value::str("b")]).unwrap();
        let log = lr.pending_log();
        assert_eq!(log.len(), 3);
        assert!(matches!(log.entries()[0], UpdateEntry::Insert { gid, .. } if gid == g1));
        assert!(matches!(log.entries()[1], UpdateEntry::Delete { gid } if gid == 0));
        assert!(matches!(log.entries()[2], UpdateEntry::Insert { gid, .. } if gid == g2));
    }

    #[test]
    fn freeze_replay_reproduces_state_and_ids() {
        let lr = live(50, 3);
        lr.delete(7).unwrap();
        lr.insert(vec![Value::Int(500), Value::str("mid")]).unwrap();

        // Checkpoint: freeze the state, confirm, then keep writing.
        let frozen = lr.freeze();
        assert_eq!(
            frozen.epoch,
            Epoch::new(frozen.covered as u64),
            "epoch ≡ absolute log position from birth"
        );
        let (state, covered) = (frozen.state, frozen.covered);
        lr.confirm_checkpoint(covered);
        lr.insert(vec![Value::Int(501), Value::str("late")])
            .unwrap();
        lr.delete(3).unwrap();

        // Recover: wrap the frozen state, replay the pending suffix.
        let recovered = LiveRelation::from_sharded(state);
        recovered.replay(&lr.pending_log()).unwrap();

        assert_eq!(recovered.len(), lr.len());
        for gid in 0..53 {
            assert_eq!(recovered.row(gid), lr.row(gid), "gid {gid}");
        }
        for q in [
            SelectionQuery::point(0, 500i64),
            SelectionQuery::point(0, 501i64),
            SelectionQuery::point(0, 3i64),
            SelectionQuery::range_closed(0, 0i64, 600i64),
        ] {
            assert_eq!(recovered.matching_ids(&q), lr.matching_ids(&q), "{q:?}");
        }
    }

    /// Regression: `confirm_checkpoint` used to truncate by *count*, so
    /// two checkpoints racing on the same state would each drain one
    /// prefix — the second one swallowing entries its snapshot never
    /// covered. Marks are absolute log positions now: confirming the
    /// same mark twice is idempotent and never touches newer entries.
    #[test]
    fn racing_checkpoint_confirms_never_drop_uncovered_entries() {
        let lr = live(4, 2);
        lr.insert(vec![Value::Int(50), Value::str("a")]).unwrap();
        lr.insert(vec![Value::Int(51), Value::str("b")]).unwrap();
        // Two concurrent checkpoints freeze the same state.
        let (m1, m2) = (lr.freeze().covered, lr.freeze().covered);
        assert_eq!(m1, m2, "same state, same absolute mark");
        // A post-freeze update covered by neither snapshot.
        lr.insert(vec![Value::Int(52), Value::str("c")]).unwrap();
        lr.confirm_checkpoint(m1);
        lr.confirm_checkpoint(m2); // second confirm must be a no-op
        assert_eq!(
            lr.pending_log().len(),
            1,
            "the uncovered entry survives both confirms"
        );
        assert!(matches!(
            lr.pending_log().entries()[0],
            UpdateEntry::Insert { gid: 6, .. }
        ));
    }

    #[test]
    fn replay_rejects_histories_that_do_not_match() {
        let lr = live(10, 2);
        // A log recorded against a different state: gid 99 was never live.
        let log = UpdateLog::from_entries(vec![UpdateEntry::Delete { gid: 99 }]);
        assert_eq!(
            lr.replay(&log).unwrap_err(),
            EngineError::ReplayMissingRow { gid: 99 }
        );
        // An insert logged under a gid the replay cannot reproduce.
        let log = UpdateLog::from_entries(vec![UpdateEntry::Insert {
            gid: 77,
            row: vec![Value::Int(1), Value::str("x")],
        }]);
        assert_eq!(
            lr.replay(&log).unwrap_err(),
            EngineError::ReplayGidMismatch {
                expected: 77,
                found: 10
            }
        );
    }

    #[test]
    fn maintenance_is_changed_bounded_up_to_the_descent() {
        let lr = live(0, 2);
        for i in 0..200i64 {
            lr.insert(vec![Value::Int(i), Value::str("x")]).unwrap();
        }
        for gid in (0..200).step_by(2) {
            lr.delete(gid).unwrap().unwrap();
        }
        let report = lr.boundedness_report();
        assert_eq!(report.len(), 300, "one record per applied update");
        assert_eq!(report.total_changed(), 300 * 4, "|ΔD|=1, |ΔO|=3 each");
        // Bounded by |CHANGED| times the B⁺-tree descent factor.
        let c = f64::from(log2_floor(200).max(1));
        assert!(
            report.is_per_update_bounded(c),
            "worst {}",
            report.worst_ratio()
        );
        // And decidedly not free: the work is real.
        assert!(report.total_work() > 0);
    }

    #[test]
    fn invalid_rows_are_rejected_typed() {
        let lr = live(5, 2);
        let err = lr.insert(vec![Value::Int(1)]).unwrap_err();
        assert!(
            matches!(err, EngineError::Indexed(IndexedError::RowRejected(_))),
            "{err}"
        );
        assert_eq!(lr.len(), 5, "nothing was applied");
        assert!(lr.pending_log().is_empty(), "nothing was logged");
    }

    #[test]
    fn concurrent_inserts_assign_unique_gids() {
        let lr = live(0, 4);
        let gids: Vec<usize> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let lr = &lr;
                    scope.spawn(move || {
                        (0..50i64)
                            .map(|i| {
                                lr.insert(vec![
                                    Value::Int(t * 1000 + i),
                                    Value::str(format!("w{t}")),
                                ])
                                .unwrap()
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let mut sorted = gids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 200, "no gid assigned twice");
        assert_eq!(lr.len(), 200);
        // The log replays to the same state.
        let fresh =
            LiveRelation::build(&relation(0), ShardBy::Hash { col: 0 }, 4, &[0, 1]).unwrap();
        fresh.replay(&lr.pending_log()).unwrap();
        assert_eq!(fresh.len(), 200);
        for gid in 0..200 {
            assert_eq!(fresh.row(gid), lr.row(gid), "gid {gid}");
        }
    }

    #[test]
    fn compact_cancels_pairs_and_keeps_survivor_order() {
        let lr = live(3, 2);
        let a = lr.insert(vec![Value::Int(100), Value::str("a")]).unwrap();
        let b = lr.insert(vec![Value::Int(101), Value::str("b")]).unwrap();
        lr.delete(0).unwrap().unwrap(); // pre-log row: delete must survive
        lr.delete(a).unwrap().unwrap(); // cancels with a's insert
        let c = lr.insert(vec![Value::Int(102), Value::str("c")]).unwrap();
        let compacted = lr.pending_log().compact();
        assert_eq!(
            compacted.entries(),
            &[
                UpdateEntry::Insert {
                    gid: b,
                    row: vec![Value::Int(101), Value::str("b")]
                },
                UpdateEntry::Delete { gid: 0 },
                UpdateEntry::Insert {
                    gid: c,
                    row: vec![Value::Int(102), Value::str("c")]
                },
            ],
            "pair (insert {a}, delete {a}) cancelled, survivors in order"
        );
        // A fully cancelling history compacts to the single
        // watermark-bearing pair: the highest-gid pair survives so a
        // recovery still advances the id allocator to where the history
        // left it (19 insert+delete pairs vanish; one stays).
        let lr = live(0, 2);
        for i in 0..20i64 {
            let gid = lr.insert(vec![Value::Int(i), Value::str("x")]).unwrap();
            lr.delete(gid).unwrap().unwrap();
        }
        assert_eq!(lr.pending_log().len(), 40);
        let compacted = lr.pending_log().compact();
        assert_eq!(
            compacted.entries(),
            &[
                UpdateEntry::Insert {
                    gid: 19,
                    row: vec![Value::Int(19), Value::str("x")]
                },
                UpdateEntry::Delete { gid: 19 },
            ],
            "only the watermark pair survives total churn"
        );
        assert_eq!(compacted.next_gid_watermark(), Some(20));
        // Replaying the compacted log reproduces the allocator exactly:
        // the next insert gets the same gid the original node would give.
        let replayed = live(0, 2);
        replayed.replay_compacted(&compacted).unwrap();
        assert_eq!(
            replayed
                .insert(vec![Value::Int(9), Value::str("y")])
                .unwrap(),
            lr.insert(vec![Value::Int(9), Value::str("y")]).unwrap(),
            "future gid assignment is preserved through compaction"
        );
    }

    #[test]
    fn compacted_replay_matches_uncompacted_on_answers_and_gids() {
        // A churny history with pairs scattered through it.
        let lr = live(10, 3);
        let mut hot = Vec::new();
        for i in 0..30i64 {
            let gid = lr
                .insert(vec![Value::Int(500 + i), Value::str("hot")])
                .unwrap();
            if i % 3 != 0 {
                hot.push(gid);
            }
        }
        for gid in [10, 13, 16, 19, 22, 25] {
            if !hot.contains(&gid) {
                lr.delete(gid).unwrap();
            }
        }
        lr.delete(4).unwrap().unwrap(); // pre-log delete survives compaction
        let log = lr.pending_log();
        let compacted = log.compact();
        assert!(compacted.len() < log.len(), "something was cancelled");

        let plain = live(10, 3);
        plain.replay(&log).unwrap();
        let short = live(10, 3);
        short.replay_compacted(&compacted).unwrap();

        assert_eq!(plain.len(), short.len());
        for gid in 0..45 {
            assert_eq!(plain.row(gid), short.row(gid), "gid {gid}");
        }
        for q in [
            SelectionQuery::range_closed(0, 0i64, 600i64),
            SelectionQuery::point(1, "hot"),
            SelectionQuery::point(0, 4i64),
        ] {
            assert_eq!(plain.matching_ids(&q), short.matching_ids(&q), "{q:?}");
        }
        // Replay work was bounded by the net change, not the history.
        assert_eq!(short.boundedness_report().len(), compacted.len());
    }

    #[test]
    fn strict_replay_still_rejects_gid_gaps() {
        let lr = live(5, 2);
        let log = UpdateLog::from_entries(vec![UpdateEntry::Insert {
            gid: 9,
            row: vec![Value::Int(1), Value::str("x")],
        }]);
        assert_eq!(
            lr.replay(&log).unwrap_err(),
            EngineError::ReplayGidMismatch {
                expected: 9,
                found: 5
            }
        );
        // The tolerant twin burns the gap instead…
        let lr = live(5, 2);
        lr.replay_compacted(&log).unwrap();
        assert_eq!(lr.row(9).unwrap()[0], Value::Int(1));
        assert!(lr.row(7).is_none(), "burned ids read as deleted");
        // …but still rejects an id that runs backwards.
        let lr = live(5, 2);
        let log = UpdateLog::from_entries(vec![UpdateEntry::Insert {
            gid: 2,
            row: vec![Value::Int(1), Value::str("x")],
        }]);
        assert_eq!(
            lr.replay_compacted(&log).unwrap_err(),
            EngineError::ReplayGidMismatch {
                expected: 2,
                found: 5
            }
        );
    }

    /// A sink that records the staged stream, for asserting the hook's
    /// ordering contract without any real I/O.
    #[derive(Debug, Default)]
    struct RecordingSink {
        staged: Mutex<Vec<UpdateEntry>>,
        committed: Mutex<Vec<u64>>,
        fail_stage: std::sync::atomic::AtomicBool,
    }

    impl WalSink for RecordingSink {
        fn stage(&self, entry: &UpdateEntry) -> Result<u64, EngineError> {
            if self.fail_stage.load(std::sync::atomic::Ordering::Relaxed) {
                return Err(EngineError::WalSink {
                    message: "disk full".into(),
                });
            }
            let mut staged = self.staged.lock().unwrap();
            staged.push(entry.clone());
            Ok(staged.len() as u64 - 1)
        }

        fn commit(&self, ticket: u64) -> Result<(), EngineError> {
            self.committed.lock().unwrap().push(ticket);
            Ok(())
        }
    }

    #[test]
    fn wal_sink_stages_in_gid_order_even_under_racing_writers() {
        let sink = Arc::new(RecordingSink::default());
        let mut lr = live(0, 4);
        lr.set_wal_sink(Some(sink.clone() as Arc<dyn WalSink>));
        assert!(lr.has_wal_sink());
        std::thread::scope(|scope| {
            for t in 0..4i64 {
                let lr = &lr;
                scope.spawn(move || {
                    for i in 0..40i64 {
                        let gid = lr
                            .insert(vec![Value::Int(t * 1000 + i), Value::str("w")])
                            .unwrap();
                        if i % 2 == 0 {
                            lr.delete(gid).unwrap().unwrap();
                        }
                    }
                });
            }
        });
        // The staged stream is exactly the update log: same entries, same
        // order — the invariant a durable WAL replays by.
        let staged = sink.staged.lock().unwrap();
        assert_eq!(staged.as_slice(), lr.pending_log().entries());
        assert_eq!(
            sink.committed.lock().unwrap().len(),
            staged.len(),
            "every staged record was committed"
        );
    }

    #[test]
    fn apply_batch_matches_singleton_ops_and_commits_once() {
        let sink = Arc::new(RecordingSink::default());
        let mut lr = live(10, 3);
        lr.set_wal_sink(Some(sink.clone() as Arc<dyn WalSink>));
        let applied = lr
            .apply_batch([
                UpdateOp::Insert(vec![Value::Int(500), Value::str("a")]),
                UpdateOp::Insert(vec![Value::Int(501), Value::str("b")]),
                UpdateOp::Delete(3),
                UpdateOp::Delete(999), // unknown gid: a no-op, not an error
                UpdateOp::Delete(10),  // the row the first op inserted
            ])
            .unwrap();
        assert_eq!(applied.len(), 5);
        assert_eq!(applied[0], Applied::Inserted(10));
        assert_eq!(applied[1], Applied::Inserted(11));
        assert!(matches!(&applied[2], Applied::Deleted(Some(row)) if row[0] == Value::Int(3)));
        assert_eq!(applied[3], Applied::Deleted(None));
        assert!(matches!(&applied[4], Applied::Deleted(Some(row)) if row[0] == Value::Int(500)));
        // Same state as the singleton APIs would leave.
        assert_eq!(lr.len(), 10);
        assert!(lr.answer(&SelectionQuery::point(0, 501i64)));
        assert!(!lr.answer(&SelectionQuery::point(0, 3i64)));
        // The no-op delete staged nothing; the four real ops staged in
        // op order and were covered by exactly ONE commit — the whole
        // point of the batch API.
        assert_eq!(sink.staged.lock().unwrap().len(), 4);
        assert_eq!(
            sink.committed.lock().unwrap().as_slice(),
            &[3],
            "one commit, of the last staged ticket"
        );
        // The log replays to the same state (batching changes commit
        // cadence, never history).
        let fresh = live(10, 3);
        fresh.replay(&lr.pending_log()).unwrap();
        for gid in 0..12 {
            assert_eq!(fresh.row(gid), lr.row(gid), "gid {gid}");
        }
    }

    #[test]
    fn apply_batch_failure_keeps_and_commits_the_prefix() {
        let sink = Arc::new(RecordingSink::default());
        let mut lr = live(5, 2);
        lr.set_wal_sink(Some(sink.clone() as Arc<dyn WalSink>));
        let err = lr
            .apply_batch([
                UpdateOp::Insert(vec![Value::Int(100), Value::str("ok")]),
                UpdateOp::Insert(vec![Value::Int(1)]), // wrong arity: rejected
                UpdateOp::Insert(vec![Value::Int(101), Value::str("never")]),
            ])
            .unwrap_err();
        assert!(matches!(err, EngineError::Indexed(_)), "{err}");
        assert_eq!(lr.len(), 6, "the prefix op stays applied");
        assert!(lr.answer(&SelectionQuery::point(0, 100i64)));
        assert!(
            !lr.answer(&SelectionQuery::point(0, 101i64)),
            "suffix never ran"
        );
        assert_eq!(
            sink.committed.lock().unwrap().as_slice(),
            &[0],
            "the applied prefix was committed durable before the error"
        );
    }

    #[test]
    fn failed_stage_applies_and_logs_nothing() {
        let sink = Arc::new(RecordingSink::default());
        let mut lr = live(3, 2);
        lr.set_wal_sink(Some(sink.clone() as Arc<dyn WalSink>));
        sink.fail_stage
            .store(true, std::sync::atomic::Ordering::Relaxed);
        let err = lr.insert(vec![Value::Int(9), Value::str("x")]).unwrap_err();
        assert!(matches!(err, EngineError::WalSink { .. }), "{err}");
        let err = lr.delete(0).unwrap_err();
        assert!(matches!(err, EngineError::WalSink { .. }), "{err}");
        assert_eq!(lr.len(), 3, "nothing applied");
        assert!(lr.pending_log().is_empty(), "nothing logged");
        assert_eq!(lr.row(0).unwrap()[0], Value::Int(0), "row 0 still live");
        assert!(sink.committed.lock().unwrap().is_empty());
        // A failed stage also never ticked the epoch clock: epoch must
        // keep naming exactly the applied-update count.
        assert_eq!(lr.current_epoch(), Epoch::ZERO);
    }

    // --- MVCC epoch pinning -------------------------------------------------

    #[test]
    fn epoch_clock_ticks_once_per_applied_update() {
        let lr = live(10, 3);
        assert_eq!(lr.current_epoch(), Epoch::ZERO, "birth epoch");
        let gid = lr.insert(vec![Value::Int(100), Value::str("a")]).unwrap();
        assert_eq!(lr.current_epoch(), Epoch::new(1));
        lr.delete(gid).unwrap().unwrap();
        assert_eq!(lr.current_epoch(), Epoch::new(2));
        lr.delete(gid).unwrap(); // no-op delete: no tick
        assert_eq!(lr.current_epoch(), Epoch::new(2));
        assert_eq!(
            lr.current_epoch().get(),
            lr.pending_log().len() as u64,
            "epoch ≡ absolute log position"
        );
    }

    #[test]
    fn pinned_reads_see_the_pinned_instance_despite_writes() {
        let lr = live(50, 4);
        let pin = lr.pin();
        let at = pin.epoch();
        // Writes land on every shard after the pin.
        for i in 0..40i64 {
            lr.insert(vec![Value::Int(1000 + i), Value::str("post")])
                .unwrap();
        }
        for gid in [0, 1, 2, 3] {
            lr.delete(gid).unwrap().unwrap();
        }
        // Resolved at the pin, none of that is visible.
        let q_new = SelectionQuery::range_closed(0, 1000i64, 2000i64);
        let q_old = SelectionQuery::range_closed(0, 0i64, 3i64);
        for s in 0..lr.shard_count() {
            let hits = lr.eval_bool_shard(s, at, std::slice::from_ref(&q_new), &[0]);
            assert!(!hits[0].1, "shard {s}: post-pin insert invisible at pin");
            let olds = lr.eval_rows_shard(s, at, std::slice::from_ref(&q_old), &[0]);
            // Deleted rows are still present at the pinned epoch.
            let globals = lr.globalize(s, &olds[0].1);
            for g in globals {
                assert!(g <= 3, "only the original rows");
            }
        }
        // The current epoch sees everything.
        assert!(lr.answer(&q_new));
        assert!(!lr.answer(&SelectionQuery::point(0, 0i64)));
        drop(pin);
    }

    #[test]
    fn undo_records_are_retained_per_pin_and_reclaimed_on_release() {
        let lr = live(40, 2);
        assert_eq!(lr.version_stats().retained_versions, 0);
        let pin = lr.pin();
        let gid = lr.insert(vec![Value::Int(100), Value::str("a")]).unwrap();
        lr.insert(vec![Value::Int(100), Value::str("b")]).unwrap();
        let stats = lr.version_stats();
        assert_eq!(
            stats.retained_versions, 2,
            "one undo record per pinned-over write"
        );
        assert_eq!(stats.retained_slots, 0, "insert undos copy no rows");
        assert_eq!(stats.pins, 1);
        assert_eq!(stats.watermark, pin.epoch());
        // A delete's undo is the one row-granular copy MVCC keeps.
        lr.delete(gid).unwrap().unwrap();
        let stats = lr.version_stats();
        assert_eq!(stats.retained_versions, 3);
        assert_eq!(
            stats.retained_slots, 1,
            "the delete undo keeps its dead row alive"
        );
        // The |CHANGED| accounting recorded every retention.
        assert_eq!(lr.version_report().len(), stats.retained_versions);
        drop(pin);
        let stats = lr.version_stats();
        assert_eq!(stats.retained_versions, 0, "released pin reclaims");
        assert_eq!(stats.retained_slots, 0);
        assert_eq!(stats.pins, 0);
        assert_eq!(stats.watermark, stats.current_epoch);
    }

    #[test]
    fn undo_records_are_o1_per_write_never_shard_clones() {
        let lr = live(0, 1);
        for i in 0..10i64 {
            lr.insert(vec![Value::Int(i), Value::str("x")]).unwrap();
        }
        assert_eq!(
            lr.version_stats().retained_versions,
            0,
            "no pins: writes retain nothing"
        );
        let pin = lr.pin();
        for i in 0..50i64 {
            lr.insert(vec![Value::Int(100 + i), Value::str("y")])
                .unwrap();
        }
        let stats = lr.version_stats();
        assert_eq!(
            stats.retained_versions, 50,
            "one O(1) undo record per pinned-over write"
        );
        assert_eq!(stats.retained_slots, 0, "no shard was ever cloned");
        let report = lr.version_report();
        assert_eq!(report.len(), 50);
        assert!(
            report.records().iter().all(|r| r.work == 1),
            "retention work is constant per write, independent of shard size"
        );
        drop(pin);
    }

    #[test]
    fn execute_is_a_consistent_cut_while_execute_read_committed_is_not_pinned() {
        let lr = live(200, 4);
        let batch = QueryBatch::new([SelectionQuery::range_closed(0, 0i64, 10_000i64)]);
        let pinned = lr.execute(&batch).unwrap();
        assert_eq!(pinned.report.epoch, Some(Epoch::ZERO));
        let rc = lr.execute_read_committed(&batch).unwrap();
        assert_eq!(rc.report.epoch, None, "the baseline records no cut");
        assert_eq!(pinned.answers, rc.answers, "quiescent: same answers");
        // execute_rows records the cut too.
        let rows = lr.execute_rows(&batch).unwrap();
        assert_eq!(rows.report.epoch, Some(Epoch::ZERO));
        assert_eq!(rows.rows[0].len(), 200);
    }

    #[test]
    fn a_racing_batch_counts_exactly_the_pinned_prefix() {
        // Deterministic interleave: pin, write, then evaluate at the pin
        // through the public batch API by holding our own pin via the
        // executor-internal surface.
        let lr = live(100, 4);
        let e = lr.register_pin();
        for i in 0..77i64 {
            lr.insert(vec![Value::Int(10_000 + i), Value::str("w")])
                .unwrap();
        }
        // A COUNT over everything, evaluated shard by shard at the pin.
        let q = SelectionQuery::range_closed(0, 0i64, 100_000i64);
        let mut count = 0;
        for s in 0..lr.shard_count() {
            count += lr.eval_rows_shard(s, e, std::slice::from_ref(&q), &[0])[0]
                .1
                .len();
        }
        assert_eq!(count, 100, "the cut at the pin sees none of the 77 writes");
        lr.release_pin(e);
        assert_eq!(lr.version_stats().retained_versions, 0);
        // And a fresh pinned batch sees all of them.
        let batch = QueryBatch::new([q]);
        let got = lr.execute_rows(&batch).unwrap();
        assert_eq!(got.rows[0].len(), 177);
        assert_eq!(got.report.epoch, Some(Epoch::new(77)));
    }

    #[test]
    fn advance_epoch_to_resumes_the_clock_monotonically() {
        let lr = live(5, 2);
        lr.advance_epoch_to(Epoch::new(40));
        assert_eq!(lr.current_epoch(), Epoch::new(40));
        lr.advance_epoch_to(Epoch::new(10)); // never backwards
        assert_eq!(lr.current_epoch(), Epoch::new(40));
        lr.insert(vec![Value::Int(9), Value::str("x")]).unwrap();
        assert_eq!(lr.current_epoch(), Epoch::new(41));
    }

    #[test]
    fn writers_are_never_blocked_by_a_reader_on_a_retired_version() {
        // A pin held across many writes must not make writers wait on
        // the pinned reader: a writer pays one O(1) ring append per
        // update, never a shard copy, no matter how far the reader's
        // pin trails. Exercise the full public path under real
        // concurrency and assert progress.
        let lr = Arc::new(live(100, 2));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            let reader_lr = Arc::clone(&lr);
            let reader_stop = Arc::clone(&stop);
            scope.spawn(move || {
                let batch = QueryBatch::new([SelectionQuery::range_closed(0, 0i64, 1_000_000i64)]);
                while !reader_stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let got = reader_lr.execute_rows(&batch).unwrap();
                    let at = got.report.epoch.unwrap().get() as usize;
                    assert_eq!(
                        got.rows[0].len(),
                        100 + at,
                        "every batch equals the oracle at its own pinned epoch"
                    );
                }
            });
            for i in 0..300i64 {
                lr.insert(vec![Value::Int(10_000 + i), Value::str("w")])
                    .unwrap();
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(lr.len(), 400);
        assert_eq!(lr.current_epoch(), Epoch::new(300));
        assert_eq!(
            lr.version_stats().retained_versions,
            0,
            "no pins left, nothing retained"
        );
    }
}
