//! Persistent worker-pool execution: the serving-session executor.
//!
//! [`QueryBatch::execute`] fans each batch out on `std::thread::scope`,
//! which spawns and joins one OS thread per touched shard *per batch*.
//! That is correct and simple, but a serving tier pays the spawn/join
//! tax on every request — on small batches the tax exceeds the work,
//! which is exactly the negative scaling the bench trajectory recorded
//! (8 shards slower than 1). A [`PooledExecutor`] removes it:
//!
//! * **Workers are spawned once** per serving session, sized by
//!   [`PoolConfig::workers`] (default: the machine's available
//!   parallelism — more workers than cores cannot answer faster, they
//!   only add context switches). Batches are submitted as per-shard work
//!   items over an [`std::sync::mpsc`] channel the workers share.
//! * **Admission control** caps how many batches may be in flight at
//!   once ([`PoolConfig::max_inflight`]). Excess submitters wait at the
//!   gate instead of piling work into the queue, so a burst of writers
//!   or batch clients degrades latency smoothly instead of collapsing
//!   throughput.
//! * **Panic containment matches the scoped path**: a worker that
//!   panics evaluating a shard reports
//!   [`EngineError::WorkerPanicked`] for that batch — and the worker
//!   thread itself survives (the panic is caught), so the pool keeps
//!   serving subsequent batches.
//!
//! The executor serves anything that implements [`BatchServe`] —
//! [`ShardedRelation`] (plain borrows) and
//! [`crate::live::LiveRelation`] (per-shard read locks) in this crate,
//! and `pitract-wal`'s `DurableLiveRelation` by delegation. Results,
//! metering, and reports are bit-identical to the scoped executor: the
//! same routing, the same per-shard [`eval_assigned`] metering protocol,
//! and a merge that carries shard ids explicitly.

use crate::batch::{
    eval_assigned, report_from, route_batch, BatchAnswers, BatchRows, MergedResults, QueryBatch,
    WorkerResults,
};
use crate::error::EngineError;
use crate::live::LiveRelation;
use crate::planner::QueryPlan;
use crate::shard::ShardedRelation;
use pitract_core::epoch::Epoch;
use pitract_obs::{Counter, Gauge, Histogram, Recorder};
use pitract_relation::SelectionQuery;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sizing and admission tuning for a [`WorkerPool`].
#[derive(Debug, Clone, Default)]
pub struct PoolConfig {
    /// Worker threads to spawn. `0` (the default) means the machine's
    /// available parallelism. A relation with fewer shards than cores
    /// gains nothing from extra workers, so sizing to
    /// `min(shard_count, cores)` is the sweet spot for a dedicated
    /// serving session.
    pub workers: usize,
    /// How many batches may be in flight at once; further submitters
    /// block at the admission gate until a running batch completes.
    /// `0` (the default) means `2 × workers` — enough to keep every
    /// worker busy while the next batch stages, without letting a
    /// burst queue unboundedly ahead of the workers.
    pub max_inflight: usize,
}

impl PoolConfig {
    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }

    fn resolved_inflight(&self, workers: usize) -> usize {
        if self.max_inflight > 0 {
            self.max_inflight
        } else {
            workers.saturating_mul(2).max(1)
        }
    }
}

/// A unit of work shipped to a pool worker. Jobs are `'static`: they
/// capture `Arc`s to the relation, the queries, and the batch's result
/// collector — never borrows, so submitters and workers are decoupled.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A point-in-time summary of a serving session's pool: sizing, load,
/// and how much batches have had to wait at the admission gate
/// ([`PooledExecutor::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// The in-flight batch cap.
    pub max_inflight: usize,
    /// Batches currently admitted (running or merging).
    pub inflight: usize,
    /// Per-shard jobs submitted to the queue and not yet picked up by a
    /// worker — the queue depth.
    pub queued_jobs: usize,
    /// Batches admitted over the session's lifetime.
    pub batches_admitted: u64,
    /// How many of those found the gate full and had to wait.
    pub admission_waits: u64,
    /// Total time batches spent blocked at the admission gate.
    pub total_admission_wait: Duration,
}

impl PoolStats {
    /// Publish this summary into a recorder's registry so the pool's
    /// sizing and cumulative gate accounting appear in the same
    /// `MetricsSnapshot` as every live series (`pool_*` family).
    /// Monotonic totals are raised, never lowered, so repeated publishes
    /// keep the counters Prometheus-legal.
    pub fn publish(&self, recorder: &Recorder) {
        recorder.gauge("pool_workers").set(self.workers as i64);
        recorder
            .gauge("pool_max_inflight")
            .set(self.max_inflight as i64);
        recorder.gauge("pool_inflight").set(self.inflight as i64);
        recorder
            .gauge("pool_queued_jobs")
            .set(self.queued_jobs as i64);
        recorder
            .counter("pool_batches_admitted_total")
            .raise_to(self.batches_admitted);
        recorder
            .counter("pool_admission_waits_total")
            .raise_to(self.admission_waits);
        recorder
            .counter("pool_admission_wait_micros_total")
            .raise_to(u64::try_from(self.total_admission_wait.as_micros()).unwrap_or(u64::MAX));
    }
}

/// Interned `pool_*` instrument handles for one pool. All default to
/// no-op handles (a disabled [`Recorder`]), in which case every update
/// below is a single branch.
#[derive(Debug, Clone, Default)]
struct PoolInstruments {
    /// `pool_queued_jobs`: jobs submitted and not yet dequeued.
    queued_jobs: Gauge,
    /// `pool_inflight`: batches currently holding an admission slot.
    inflight: Gauge,
    /// `pool_admission_wait_micros`: per-batch time blocked at the gate.
    admission_wait: Histogram,
    /// `pool_batches_admitted_total`.
    admitted: Counter,
    /// `pool_admission_waits_total`: admissions that found the gate full.
    waits: Counter,
}

impl PoolInstruments {
    fn new(recorder: &Recorder) -> Self {
        PoolInstruments {
            queued_jobs: recorder.gauge("pool_queued_jobs"),
            inflight: recorder.gauge("pool_inflight"),
            admission_wait: recorder.histogram("pool_admission_wait_micros"),
            admitted: recorder.counter("pool_batches_admitted_total"),
            waits: recorder.counter("pool_admission_waits_total"),
        }
    }
}

/// The counting gate that caps in-flight batches, plus its wait
/// accounting.
#[derive(Debug)]
struct Admission {
    cap: usize,
    inflight: Mutex<usize>,
    freed: Condvar,
    admitted: AtomicU64,
    waits: AtomicU64,
    wait_nanos: AtomicU64,
    instruments: PoolInstruments,
}

impl Admission {
    /// Take one slot, blocking while the gate is full. Returns how long
    /// the caller waited (zero on the uncontended fast path).
    fn acquire(&self) -> Duration {
        let mut inflight = lock(&self.inflight);
        let mut waited = Duration::ZERO;
        if *inflight >= self.cap {
            let start = Instant::now();
            while *inflight >= self.cap {
                inflight = self
                    .freed
                    .wait(inflight)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            waited = start.elapsed();
            self.waits.fetch_add(1, Ordering::Relaxed);
            self.wait_nanos
                .fetch_add(waited.as_nanos() as u64, Ordering::Relaxed);
            self.instruments.waits.inc();
        }
        *inflight += 1;
        self.admitted.fetch_add(1, Ordering::Relaxed);
        self.instruments.admitted.inc();
        self.instruments.inflight.inc();
        self.instruments.admission_wait.record_duration(waited);
        waited
    }

    fn release(&self) {
        *lock(&self.inflight) -= 1;
        self.instruments.inflight.dec();
        self.freed.notify_one();
    }
}

/// RAII admission slot: released when the batch finishes, even on an
/// error path.
struct AdmissionSlot<'a>(&'a Admission);

impl Drop for AdmissionSlot<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// A persistent, sized pool of worker threads consuming [`Job`]s from a
/// shared channel. Dropping the pool closes the channel and joins every
/// worker (pending jobs are drained first — a job's collector must
/// never be left waiting on work that silently vanished).
#[derive(Debug)]
pub struct WorkerPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    admission: Arc<Admission>,
    /// Jobs submitted and not yet dequeued by a worker.
    queued: Arc<AtomicUsize>,
}

impl WorkerPool {
    /// Spawn a pool per `config` (see [`PoolConfig`] for the defaults),
    /// uninstrumented.
    pub fn new(config: PoolConfig) -> Self {
        Self::new_observed(config, &Recorder::default())
    }

    /// Spawn a pool per `config`, publishing `pool_*` queue/admission
    /// series into `recorder` (a disabled recorder makes this identical
    /// to [`WorkerPool::new`]).
    pub fn new_observed(config: PoolConfig, recorder: &Recorder) -> Self {
        let instruments = PoolInstruments::new(recorder);
        let workers = config.resolved_workers();
        let max_inflight = config.resolved_inflight(workers);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let queued = Arc::new(AtomicUsize::new(0));
        let handles = (0..workers)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let queued = Arc::clone(&queued);
                let queued_gauge = instruments.queued_jobs.clone();
                #[allow(clippy::expect_used)]
                std::thread::Builder::new()
                    .name(format!("pitract-pool-{i}"))
                    // lint:allow(no-bare-thread-spawn): this IS the pool's one spawn point
                    .spawn(move || worker_loop(&receiver, &queued, &queued_gauge))
                    // lint:allow(no-unwrap-in-serving): construction-time; a pool that cannot spawn is fatal
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers: handles,
            admission: Arc::new(Admission {
                cap: max_inflight,
                inflight: Mutex::new(0),
                freed: Condvar::new(),
                admitted: AtomicU64::new(0),
                waits: AtomicU64::new(0),
                wait_nanos: AtomicU64::new(0),
                instruments,
            }),
            queued,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The in-flight batch cap.
    pub fn max_inflight(&self) -> usize {
        self.admission.cap
    }

    /// A point-in-time load and wait summary.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.workers.len(),
            max_inflight: self.admission.cap,
            inflight: *lock(&self.admission.inflight),
            queued_jobs: self.queued.load(Ordering::Relaxed),
            batches_admitted: self.admission.admitted.load(Ordering::Relaxed),
            admission_waits: self.admission.waits.load(Ordering::Relaxed),
            total_admission_wait: Duration::from_nanos(
                self.admission.wait_nanos.load(Ordering::Relaxed),
            ),
        }
    }

    /// Block until an admission slot frees, then take one. Returns the
    /// RAII slot and how long the gate held the caller.
    fn admit(&self) -> (AdmissionSlot<'_>, Duration) {
        let waited = self.admission.acquire();
        (AdmissionSlot(&self.admission), waited)
    }

    #[allow(clippy::expect_used)]
    fn submit(&self, job: Job) {
        self.queued.fetch_add(1, Ordering::Relaxed);
        self.admission.instruments.queued_jobs.inc();
        self.sender
            .as_ref()
            // lint:allow(no-unwrap-in-serving): the sender is Some until Drop takes it
            .expect("pool sender lives until drop")
            .send(job)
            // lint:allow(no-unwrap-in-serving): workers only exit after the channel closes
            .expect("pool workers live until drop");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel is the shutdown signal; workers drain what
        // is queued and exit on the disconnect.
        drop(self.sender.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The worker body: pull jobs until the channel disconnects. Each job
/// already contains its own panic containment (see
/// [`PooledExecutor::run`]), but a defensive `catch_unwind` here keeps a
/// worker alive even if a job's bookkeeping itself panicked — one
/// poisoned batch must never shrink the pool.
fn worker_loop(receiver: &Mutex<Receiver<Job>>, queued: &AtomicUsize, queued_gauge: &Gauge) {
    loop {
        // Hold the receiver lock only for the dequeue, never while
        // running the job.
        let job = match lock(receiver).recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        queued.fetch_sub(1, Ordering::Relaxed);
        queued_gauge.dec();
        let _ = catch_unwind(AssertUnwindSafe(job));
    }
}

/// Where one batch's per-shard results rendezvous. The submitter waits
/// on the condvar until every job reported in (or one reported a
/// panic).
struct Collector<T> {
    state: Mutex<CollectorState<T>>,
    done: Condvar,
}

struct CollectorState<T> {
    /// One slot per scheduled shard job, filled as `(shard, results)`.
    slots: Vec<Option<(usize, WorkerResults<T>)>>,
    remaining: usize,
    panicked: Option<usize>,
}

impl<T> Collector<T> {
    fn new(jobs: usize) -> Self {
        Collector {
            state: Mutex::new(CollectorState {
                slots: (0..jobs).map(|_| None).collect(),
                remaining: jobs,
                panicked: None,
            }),
            done: Condvar::new(),
        }
    }

    fn finish(&self, slot: usize, shard: usize, outcome: Option<WorkerResults<T>>) {
        let mut state = lock(&self.state);
        match outcome {
            Some(results) => state.slots[slot] = Some((shard, results)),
            None => {
                state.panicked.get_or_insert(shard);
            }
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Wait for every job, then yield the per-shard results (in slot =
    /// ascending-shard order) or the first panicked shard.
    #[allow(clippy::expect_used)]
    fn wait(&self) -> Result<Vec<(usize, WorkerResults<T>)>, EngineError> {
        let mut state = lock(&self.state);
        while state.remaining > 0 {
            state = self
                .done
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if let Some(shard) = state.panicked {
            return Err(EngineError::WorkerPanicked { shard });
        }
        Ok(state
            .slots
            .iter_mut()
            // lint:allow(no-unwrap-in-serving): remaining == 0 and no panic ⇒ every slot was filled
            .map(|slot| slot.take().expect("every non-panicked slot was filled"))
            .collect())
    }
}

/// A relation the pooled executor can serve: routing, per-shard
/// evaluation, and local→global id translation. Implemented by
/// [`ShardedRelation`] and [`LiveRelation`] here, and by
/// `pitract-wal::DurableLiveRelation` by delegation to its inner live
/// relation.
///
/// The contract mirrors the scoped executor exactly: `route` validates
/// and plans every query; `eval_bool` / `eval_rows` answer one shard's
/// assigned slice with the shared per-query metering protocol; and
/// `global_ids` translates after shard evaluation (for a live relation,
/// under its ids lock — local→global maps are append-only, so
/// translation after the shard lock drops is race-free).
///
/// Relations that version their state additionally expose an epoch pin:
/// the executor calls [`BatchServe::pin_epoch`] once per batch before
/// any shard job runs, passes the pinned epoch to every `eval_*` call,
/// and releases it with [`BatchServe::unpin_epoch`] when the batch's
/// results have merged. Immutable relations keep the defaults (no pin,
/// evaluation ignores `at`).
pub trait BatchServe: Send + Sync {
    /// Validate, plan, and shard-route a query slice.
    fn route(
        &self,
        queries: &[SelectionQuery],
    ) -> Result<(Vec<QueryPlan>, Vec<Vec<usize>>), EngineError>;

    /// Number of shards.
    fn shard_count(&self) -> usize;

    /// Pin the relation's current epoch for one batch, or `None` for
    /// relations with no version history. A returned epoch MUST be
    /// balanced by exactly one [`BatchServe::unpin_epoch`].
    fn pin_epoch(&self) -> Option<Epoch> {
        None
    }

    /// Release a pin taken by [`BatchServe::pin_epoch`].
    fn unpin_epoch(&self, _epoch: Epoch) {}

    /// Boolean answers for one shard's assigned queries, evaluated at
    /// epoch `at` ([`Epoch::LATEST`] = current state).
    fn eval_bool(
        &self,
        shard: usize,
        at: Epoch,
        queries: &[SelectionQuery],
        assigned: &[usize],
    ) -> WorkerResults<bool>;

    /// Matching shard-local row ids for one shard's assigned queries,
    /// evaluated at epoch `at`.
    fn eval_rows(
        &self,
        shard: usize,
        at: Epoch,
        queries: &[SelectionQuery],
        assigned: &[usize],
    ) -> WorkerResults<Vec<usize>>;

    /// Translate shard-local row ids to global ids.
    fn global_ids(&self, shard: usize, locals: &[usize]) -> Vec<usize>;
}

impl BatchServe for ShardedRelation {
    fn route(
        &self,
        queries: &[SelectionQuery],
    ) -> Result<(Vec<QueryPlan>, Vec<Vec<usize>>), EngineError> {
        route_batch(
            queries,
            self.schema(),
            &self.shards()[0].indexed_columns(),
            self.slot_count(),
            self.shard_by(),
            self.shard_count(),
        )
    }

    fn shard_count(&self) -> usize {
        ShardedRelation::shard_count(self)
    }

    fn eval_bool(
        &self,
        shard: usize,
        _at: Epoch,
        queries: &[SelectionQuery],
        assigned: &[usize],
    ) -> WorkerResults<bool> {
        eval_assigned(queries, &self.shards()[shard], assigned, |sh, q, m| {
            sh.answer_metered(q, m)
        })
    }

    fn eval_rows(
        &self,
        shard: usize,
        _at: Epoch,
        queries: &[SelectionQuery],
        assigned: &[usize],
    ) -> WorkerResults<Vec<usize>> {
        eval_assigned(queries, &self.shards()[shard], assigned, |sh, q, m| {
            sh.matching_ids_metered(q, m)
        })
    }

    fn global_ids(&self, shard: usize, locals: &[usize]) -> Vec<usize> {
        locals.iter().map(|&l| self.global_id(shard, l)).collect()
    }
}

impl BatchServe for LiveRelation {
    fn route(
        &self,
        queries: &[SelectionQuery],
    ) -> Result<(Vec<QueryPlan>, Vec<Vec<usize>>), EngineError> {
        LiveRelation::route(self, queries)
    }

    fn shard_count(&self) -> usize {
        LiveRelation::shard_count(self)
    }

    fn pin_epoch(&self) -> Option<Epoch> {
        Some(self.register_pin())
    }

    fn unpin_epoch(&self, epoch: Epoch) {
        self.release_pin(epoch);
    }

    fn eval_bool(
        &self,
        shard: usize,
        at: Epoch,
        queries: &[SelectionQuery],
        assigned: &[usize],
    ) -> WorkerResults<bool> {
        self.eval_bool_shard(shard, at, queries, assigned)
    }

    fn eval_rows(
        &self,
        shard: usize,
        at: Epoch,
        queries: &[SelectionQuery],
        assigned: &[usize],
    ) -> WorkerResults<Vec<usize>> {
        self.eval_rows_shard(shard, at, queries, assigned)
    }

    fn global_ids(&self, shard: usize, locals: &[usize]) -> Vec<usize> {
        self.globalize(shard, locals)
    }
}

/// RAII epoch pin for one batch: taken after admission, released when
/// the batch's results have merged — on every path, including errors
/// and worker panics.
struct PinGuard<'a, R: BatchServe + ?Sized> {
    relation: &'a R,
    epoch: Option<Epoch>,
}

impl<'a, R: BatchServe + ?Sized> PinGuard<'a, R> {
    fn pin(relation: &'a R) -> Self {
        PinGuard {
            relation,
            epoch: relation.pin_epoch(),
        }
    }

    /// The epoch shard jobs evaluate at: the pinned one, or the
    /// [`Epoch::LATEST`] read-committed sentinel when the relation does
    /// not version.
    fn at(&self) -> Epoch {
        self.epoch.unwrap_or(Epoch::LATEST)
    }
}

impl<R: BatchServe + ?Sized> Drop for PinGuard<'_, R> {
    fn drop(&mut self) {
        if let Some(epoch) = self.epoch {
            self.relation.unpin_epoch(epoch);
        }
    }
}

/// The persistent serving session: a relation plus the worker pool that
/// answers its batches. Create one per served relation and keep it for
/// the session's lifetime; submit batches from any number of threads.
#[derive(Debug)]
pub struct PooledExecutor<R: BatchServe + 'static> {
    relation: Arc<R>,
    pool: WorkerPool,
    instruments: ExecInstruments,
}

/// Interned executor-level instrument handles (`pool_*` latency/panics
/// plus the `engine_*` report totals for batches served on this pool).
#[derive(Debug, Clone, Default)]
struct ExecInstruments {
    /// `pool_batch_micros`: service latency from admission to merge.
    batch_micros: Histogram,
    /// `pool_worker_panics_total`: shard evaluations that panicked.
    panics: Counter,
    /// `engine_batches_total` served on this executor.
    batches: Counter,
    /// `engine_queries_total` answered on this executor.
    queries: Counter,
    /// `engine_steps_total`: metered evaluation steps across batches.
    steps: Counter,
}

impl ExecInstruments {
    fn new(recorder: &Recorder) -> Self {
        ExecInstruments {
            batch_micros: recorder.histogram("pool_batch_micros"),
            panics: recorder.counter("pool_worker_panics_total"),
            batches: recorder.counter("engine_batches_total"),
            queries: recorder.counter("engine_queries_total"),
            steps: recorder.counter("engine_steps_total"),
        }
    }
}

impl<R: BatchServe + 'static> PooledExecutor<R> {
    /// A serving session over `relation` with a dedicated pool sized by
    /// `config`, uninstrumented.
    pub fn new(relation: Arc<R>, config: PoolConfig) -> Self {
        Self::new_observed(relation, config, &Recorder::default())
    }

    /// A serving session whose pool and per-batch accounting publish
    /// into `recorder` (`pool_*` and `engine_*` series). With a
    /// disabled recorder this is identical to [`PooledExecutor::new`]:
    /// no clock reads, no atomics touched.
    pub fn new_observed(relation: Arc<R>, config: PoolConfig, recorder: &Recorder) -> Self {
        PooledExecutor {
            relation,
            pool: WorkerPool::new_observed(config, recorder),
            instruments: ExecInstruments::new(recorder),
        }
    }

    /// A serving session with the default pool sizing, capped at the
    /// relation's shard count (extra workers could never be busy).
    pub fn with_default_pool(relation: Arc<R>) -> Self {
        let workers = PoolConfig::default()
            .resolved_workers()
            .min(relation.shard_count())
            .max(1);
        Self::new(
            relation,
            PoolConfig {
                workers,
                max_inflight: 0,
            },
        )
    }

    /// The served relation.
    pub fn relation(&self) -> &Arc<R> {
        &self.relation
    }

    /// The worker pool (for sizing introspection).
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// A point-in-time pool summary: sizing, load, and cumulative
    /// admission-gate waits.
    pub fn stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Answer every query in the batch on the pool — the persistent
    /// twin of [`QueryBatch::execute`], same answers, same report.
    ///
    /// For a versioned relation the whole batch is answered at one
    /// pinned epoch, recorded in [`crate::batch::BatchReport::epoch`]:
    /// every shard job sees the same database instance even while
    /// writers land mid-batch.
    pub fn execute(&self, batch: &QueryBatch) -> Result<BatchAnswers, EngineError> {
        let queries = batch.queries_shared();
        let (plans, routed) = self.relation.route(&queries)?;
        // Admission strictly before the pin: a batch waiting at the
        // gate must not force writers to retain versions for it.
        let (_slot, waited) = self.pool.admit();
        let served = self
            .instruments
            .batch_micros
            .is_enabled()
            .then(Instant::now);
        let pin = PinGuard::pin(self.relation.as_ref());
        let at = pin.at();
        let merged = self.run(
            &queries,
            &routed,
            move |relation, shard, queries, assigned| {
                relation.eval_bool(shard, at, queries, assigned)
            },
        )?;
        let mut answers = vec![false; queries.len()];
        for (qi, per_shard) in merged.iter().enumerate() {
            answers[qi] = per_shard.iter().any(|(_, hit, _)| *hit);
        }
        let mut report = report_from(plans, &routed, &merged);
        report.epoch = pin.epoch;
        report.admission_wait = Some(waited);
        self.account(served, &report);
        Ok(BatchAnswers { answers, report })
    }

    /// Enumerate matching global row ids for every query on the pool —
    /// the persistent twin of [`QueryBatch::execute_rows`], answered at
    /// one pinned epoch like [`Self::execute`].
    pub fn execute_rows(&self, batch: &QueryBatch) -> Result<BatchRows, EngineError> {
        let queries = batch.queries_shared();
        let (plans, routed) = self.relation.route(&queries)?;
        let (_slot, waited) = self.pool.admit();
        let served = self
            .instruments
            .batch_micros
            .is_enabled()
            .then(Instant::now);
        let pin = PinGuard::pin(self.relation.as_ref());
        let at = pin.at();
        let merged = self.run(
            &queries,
            &routed,
            move |relation, shard, queries, assigned| {
                relation.eval_rows(shard, at, queries, assigned)
            },
        )?;
        let mut rows: Vec<Vec<usize>> = vec![Vec::new(); queries.len()];
        for (qi, per_shard) in merged.iter().enumerate() {
            for (shard, locals, _) in per_shard {
                rows[qi].extend(self.relation.global_ids(*shard, locals));
            }
            rows[qi].sort_unstable();
        }
        let mut report = report_from(plans, &routed, &merged);
        report.epoch = pin.epoch;
        report.admission_wait = Some(waited);
        self.account(served, &report);
        Ok(BatchRows { rows, report })
    }

    /// Record one served batch's latency and report totals (single
    /// no-op branch per handle when uninstrumented).
    fn account(&self, served: Option<Instant>, report: &crate::batch::BatchReport) {
        if let Some(started) = served {
            self.instruments
                .batch_micros
                .record_duration(started.elapsed());
        }
        self.instruments.batches.inc();
        self.instruments.queries.add(report.per_query.len() as u64);
        self.instruments.steps.add(report.total_steps);
    }

    /// Submit one batch's per-shard work items and wait for the merge:
    /// routing inversion, one job per touched shard, rendezvous at the
    /// collector. The caller holds the admission slot and the epoch pin
    /// for the batch. Returns the same per-query `(shard, result,
    /// steps)` shape as the scoped `fan_out`, so both executors share
    /// the merge and report code.
    fn run<T, F>(
        &self,
        queries: &Arc<[SelectionQuery]>,
        routed: &[Vec<usize>],
        eval: F,
    ) -> Result<MergedResults<T>, EngineError>
    where
        T: Send + 'static,
        F: Fn(&R, usize, &[SelectionQuery], &[usize]) -> WorkerResults<T> + Send + Sync + 'static,
    {
        // Invert the routing into per-shard work lists (shards no query
        // routes to get no job).
        let mut work: Vec<Vec<usize>> = vec![Vec::new(); self.relation.shard_count()];
        for (qi, shards) in routed.iter().enumerate() {
            for &s in shards {
                work[s].push(qi);
            }
        }
        let work: Vec<(usize, Vec<usize>)> = work
            .into_iter()
            .enumerate()
            .filter(|(_, assigned)| !assigned.is_empty())
            .collect();

        let collector = Arc::new(Collector::new(work.len()));
        let eval = Arc::new(eval);
        for (slot, (shard, assigned)) in work.into_iter().enumerate() {
            let relation = Arc::clone(&self.relation);
            let queries = Arc::clone(queries);
            let collector = Arc::clone(&collector);
            let eval = Arc::clone(&eval);
            let panics = self.instruments.panics.clone();
            self.pool.submit(Box::new(move || {
                // Contain a panicking evaluation to this batch: report
                // the shard and keep the worker thread alive.
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    eval(&relation, shard, &queries, &assigned)
                }))
                .ok();
                if outcome.is_none() {
                    panics.inc();
                }
                collector.finish(slot, shard, outcome);
            }));
        }
        let per_shard = collector.wait()?;

        // Merge exactly like the scoped fan-out: slots are in ascending
        // shard order, results within a shard in ascending query order,
        // and every triple carries its shard id.
        let mut merged: Vec<Vec<(usize, T, u64)>> = routed
            .iter()
            .map(|shards| Vec::with_capacity(shards.len()))
            .collect();
        for (s, results) in per_shard {
            for (qi, out, steps) in results {
                debug_assert!(routed[qi].contains(&s));
                merged[qi].push((s, out, steps));
            }
        }
        Ok(merged)
    }
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardBy;
    use pitract_relation::{ColType, Relation, Schema, Value};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn relation(n: i64) -> Relation {
        let schema = Schema::new(&[("id", ColType::Int), ("city", ColType::Str)]);
        let rows = (0..n)
            .map(|i| vec![Value::Int(i), Value::str(format!("city{}", i % 10))])
            .collect();
        Relation::from_rows(schema, rows).unwrap()
    }

    fn mixed_batch(n: i64) -> QueryBatch {
        QueryBatch::new((0..60i64).map(|k| match k % 3 {
            0 => pitract_relation::SelectionQuery::point(0, (k * 37) % (n + 20)),
            1 => pitract_relation::SelectionQuery::range_closed(0, k * 11, k * 11 + 25),
            _ => pitract_relation::SelectionQuery::and(
                pitract_relation::SelectionQuery::point(1, format!("city{}", k % 10).as_str()),
                pitract_relation::SelectionQuery::range_closed(0, k * 7, k * 7 + 40),
            ),
        }))
    }

    #[test]
    fn pooled_answers_match_scoped_at_every_shard_count() {
        let n = 500i64;
        let rel = relation(n);
        let batch = mixed_batch(n);
        for shards in [1, 2, 3, 8] {
            let sr = Arc::new(
                ShardedRelation::build(&rel, ShardBy::Hash { col: 0 }, shards, &[0, 1]).unwrap(),
            );
            let scoped = batch.execute(&sr).unwrap();
            let exec = PooledExecutor::with_default_pool(Arc::clone(&sr));
            let pooled = exec.execute(&batch).unwrap();
            assert_eq!(pooled.answers, scoped.answers, "shards={shards}");
            assert_eq!(
                pooled.report.total_steps, scoped.report.total_steps,
                "metering must not drift between executors (shards={shards})"
            );
            let scoped_rows = batch.execute_rows(&sr).unwrap();
            let pooled_rows = exec.execute_rows(&batch).unwrap();
            assert_eq!(pooled_rows.rows, scoped_rows.rows, "shards={shards}");
        }
    }

    #[test]
    fn pooled_serves_a_live_relation_concurrently_with_writers() {
        let lr = Arc::new(
            LiveRelation::build(&relation(400), ShardBy::Hash { col: 0 }, 4, &[0, 1]).unwrap(),
        );
        let exec = PooledExecutor::with_default_pool(Arc::clone(&lr));
        // Queries over the stable region [0, 400) are immune to the
        // concurrent inserts of keys >= 10_000.
        let batch =
            QueryBatch::new((0..50i64).map(|k| pitract_relation::SelectionQuery::point(0, k * 7)));
        std::thread::scope(|scope| {
            let writer_lr = Arc::clone(&lr);
            scope.spawn(move || {
                for i in 0..200i64 {
                    writer_lr
                        .insert(vec![Value::Int(10_000 + i), Value::str("w")])
                        .unwrap();
                }
            });
            for _ in 0..20 {
                let got = exec.execute(&batch).unwrap();
                assert!(got.answers.iter().all(|&a| a), "stable region always hits");
            }
        });
        let rows = exec.execute_rows(&batch).unwrap();
        assert!(rows.rows.iter().all(|ids| ids.len() == 1));
    }

    /// The observed constructor publishes the pool and engine series
    /// into the recorder, and the disabled default keeps them absent.
    #[test]
    fn observed_executor_publishes_pool_and_engine_series() {
        let recorder = Recorder::new();
        let mut lr =
            LiveRelation::build(&relation(300), ShardBy::Hash { col: 0 }, 3, &[0, 1]).unwrap();
        lr.set_recorder(&recorder);
        let lr = Arc::new(lr);
        let exec = PooledExecutor::new_observed(
            Arc::clone(&lr),
            PoolConfig {
                workers: 2,
                max_inflight: 2,
            },
            &recorder,
        );
        let batch = mixed_batch(300);
        let got = exec.execute(&batch).unwrap();
        lr.publish_metrics();
        let snap = recorder.snapshot();
        let queries = got.answers.len() as u64;
        assert_eq!(snap.counter("engine_batches_total"), Some(1));
        assert_eq!(snap.counter("engine_queries_total"), Some(queries));
        assert_eq!(
            snap.counter("engine_steps_total"),
            Some(got.report.total_steps)
        );
        assert_eq!(snap.counter("pool_batches_admitted_total"), Some(1));
        assert_eq!(snap.histogram("pool_batch_micros").unwrap().count, 1);
        assert_eq!(
            snap.histogram("pool_admission_wait_micros").unwrap().count,
            1
        );
        assert_eq!(snap.gauge("pool_inflight"), Some(0), "batch finished");
        assert_eq!(snap.gauge("pool_workers"), None, "publish() not called");
        exec.stats().publish(&recorder);
        assert_eq!(recorder.snapshot().gauge("pool_workers"), Some(2));
        // Every routed query ticked exactly one plan-path counter.
        let plan_total: u64 = [
            "point-probe",
            "range-probe",
            "index-nested-loop",
            "full-scan",
        ]
        .iter()
        .filter_map(|p| snap.counter(&format!("engine_plans_total{{path=\"{p}\"}}")))
        .sum();
        assert_eq!(plan_total, queries);
        assert!(snap.gauge("mvcc_current_epoch").is_some());

        // The unobserved twin records nothing.
        let silent = PooledExecutor::new(
            lr,
            PoolConfig {
                workers: 2,
                max_inflight: 2,
            },
        );
        silent.execute(&batch).unwrap();
        assert_eq!(
            recorder.snapshot().counter("engine_batches_total"),
            Some(1),
            "disabled recorder leaves the registry untouched"
        );
    }

    /// A serving double whose evaluation can panic on demand and which
    /// records evaluation concurrency — the fixture for the lifecycle
    /// and admission tests.
    #[derive(Debug)]
    struct Probe {
        shards: usize,
        panic_on_shard: Option<usize>,
        evaluating: AtomicUsize,
        peak: AtomicUsize,
        delay: std::time::Duration,
    }

    impl Probe {
        fn new(shards: usize) -> Self {
            Probe {
                shards,
                panic_on_shard: None,
                evaluating: AtomicUsize::new(0),
                peak: AtomicUsize::new(0),
                delay: std::time::Duration::ZERO,
            }
        }

        fn enter(&self) {
            let now = self.evaluating.fetch_add(1, Ordering::SeqCst) + 1;
            self.peak.fetch_max(now, Ordering::SeqCst);
            if !self.delay.is_zero() {
                std::thread::sleep(self.delay);
            }
        }

        fn exit(&self) {
            self.evaluating.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl BatchServe for Probe {
        fn route(
            &self,
            queries: &[SelectionQuery],
        ) -> Result<(Vec<QueryPlan>, Vec<Vec<usize>>), EngineError> {
            // Every query routes to every shard; plans are irrelevant to
            // these tests, so reuse the real planner on a scan.
            let plans = queries
                .iter()
                .map(|q| crate::planner::Planner::plan(&[], 1, q))
                .collect();
            let routed = queries.iter().map(|_| (0..self.shards).collect()).collect();
            Ok((plans, routed))
        }

        fn shard_count(&self) -> usize {
            self.shards
        }

        fn eval_bool(
            &self,
            shard: usize,
            _at: Epoch,
            _queries: &[SelectionQuery],
            assigned: &[usize],
        ) -> WorkerResults<bool> {
            self.enter();
            if self.panic_on_shard == Some(shard) {
                self.exit();
                panic!("probe shard {shard} poisoned");
            }
            let out = assigned.iter().map(|&qi| (qi, true, 1)).collect();
            self.exit();
            out
        }

        fn eval_rows(
            &self,
            _shard: usize,
            _at: Epoch,
            _queries: &[SelectionQuery],
            assigned: &[usize],
        ) -> WorkerResults<Vec<usize>> {
            assigned.iter().map(|&qi| (qi, vec![0], 1)).collect()
        }

        fn global_ids(&self, _shard: usize, locals: &[usize]) -> Vec<usize> {
            locals.to_vec()
        }
    }

    fn one_query_batch() -> QueryBatch {
        QueryBatch::new([pitract_relation::SelectionQuery::point(0, 1i64)])
    }

    #[test]
    fn worker_panic_is_typed_and_does_not_poison_the_pool() {
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut probe = Probe::new(3);
        probe.panic_on_shard = Some(1);
        let exec = PooledExecutor::new(
            Arc::new(probe),
            PoolConfig {
                workers: 2,
                max_inflight: 2,
            },
        );
        let err = exec.execute(&one_query_batch()).unwrap_err();
        assert_eq!(err, EngineError::WorkerPanicked { shard: 1 });

        // The pool survived: subsequent batches on the same executor
        // still run to completion with typed errors — with only 2
        // workers, 4 more 3-shard batches (12 jobs) would deadlock if
        // the first panic had killed a worker thread.
        for _ in 0..4 {
            let err = exec.execute(&one_query_batch()).unwrap_err();
            assert_eq!(err, EngineError::WorkerPanicked { shard: 1 });
        }
        std::panic::set_hook(prev_hook);
        assert_eq!(exec.pool().workers(), 2, "no worker thread died");
    }

    #[test]
    fn panicked_batch_does_not_block_healthy_batches_after_it() {
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let sr = Arc::new(
            ShardedRelation::build(&relation(100), ShardBy::Hash { col: 0 }, 2, &[0]).unwrap(),
        );
        let mut probe = Probe::new(2);
        probe.panic_on_shard = Some(0);
        let poisoned = PooledExecutor::new(
            Arc::new(probe),
            PoolConfig {
                workers: 1,
                max_inflight: 1,
            },
        );
        let err = poisoned.execute(&one_query_batch()).unwrap_err();
        assert!(matches!(err, EngineError::WorkerPanicked { .. }));
        std::panic::set_hook(prev_hook);
        // A fresh healthy session still works end to end (and the
        // poisoned session's pool shut down cleanly on drop).
        drop(poisoned);
        let exec = PooledExecutor::with_default_pool(sr);
        let got = exec
            .execute(&QueryBatch::new([pitract_relation::SelectionQuery::point(
                0, 5i64,
            )]))
            .unwrap();
        assert_eq!(got.answers, vec![true]);
    }

    #[test]
    fn admission_gate_caps_in_flight_batches() {
        let mut probe = Probe::new(1);
        probe.delay = std::time::Duration::from_millis(5);
        let probe = Arc::new(probe);
        let exec = Arc::new(PooledExecutor::new(
            Arc::clone(&probe),
            PoolConfig {
                workers: 4,
                max_inflight: 1,
            },
        ));
        // 6 submitters race 1 admission slot on a 1-shard relation: at
        // most one evaluation can ever be in flight.
        std::thread::scope(|scope| {
            for _ in 0..6 {
                let exec = Arc::clone(&exec);
                scope.spawn(move || {
                    for _ in 0..3 {
                        exec.execute(&one_query_batch()).unwrap();
                    }
                });
            }
        });
        assert_eq!(
            probe.peak.load(Ordering::SeqCst),
            1,
            "admission cap 1 admits one batch at a time"
        );

        // Re-run with the gate opened: concurrency is actually possible
        // (sanity that the fixture can observe > 1).
        let mut probe = Probe::new(4);
        probe.delay = std::time::Duration::from_millis(5);
        let probe = Arc::new(probe);
        let exec = Arc::new(PooledExecutor::new(
            Arc::clone(&probe),
            PoolConfig {
                workers: 4,
                max_inflight: 8,
            },
        ));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let exec = Arc::clone(&exec);
                scope.spawn(move || {
                    for _ in 0..3 {
                        exec.execute(&one_query_batch()).unwrap();
                    }
                });
            }
        });
        assert!(
            probe.peak.load(Ordering::SeqCst) > 1,
            "with the gate open, shard jobs do overlap"
        );
    }

    #[test]
    fn empty_batch_and_invalid_queries_behave_like_the_scoped_path() {
        let sr = Arc::new(
            ShardedRelation::build(&relation(10), ShardBy::Hash { col: 0 }, 2, &[0]).unwrap(),
        );
        let exec = PooledExecutor::with_default_pool(sr);
        let got = exec.execute(&QueryBatch::new([])).unwrap();
        assert!(got.answers.is_empty());
        assert_eq!(got.report.total_steps, 0);
        let err = exec
            .execute(&QueryBatch::new([pitract_relation::SelectionQuery::point(
                7, 1i64,
            )]))
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidQuery { index: 0, .. }));
    }

    #[test]
    fn pool_stats_count_admissions_and_gate_waits() {
        let mut probe = Probe::new(1);
        probe.delay = std::time::Duration::from_millis(2);
        let exec = Arc::new(PooledExecutor::new(
            Arc::new(probe),
            PoolConfig {
                workers: 2,
                max_inflight: 1,
            },
        ));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let exec = Arc::clone(&exec);
                scope.spawn(move || {
                    for _ in 0..3 {
                        exec.execute(&one_query_batch()).unwrap();
                    }
                });
            }
        });
        let stats = exec.stats();
        assert_eq!(stats.workers, 2);
        assert_eq!(stats.max_inflight, 1);
        assert_eq!(stats.batches_admitted, 12);
        assert_eq!(stats.inflight, 0, "every slot released");
        assert_eq!(stats.queued_jobs, 0, "every job drained");
        assert!(
            stats.admission_waits > 0,
            "4 submitters racing a 1-slot gate must have waited at least once"
        );
        assert!(stats.total_admission_wait > Duration::ZERO);
        // Per-batch wait is also surfaced in the report.
        let got = exec.execute(&one_query_batch()).unwrap();
        assert_eq!(got.report.admission_wait, Some(Duration::ZERO));
    }

    #[test]
    fn pooled_batches_pin_one_epoch_and_release_it() {
        let lr = Arc::new(
            LiveRelation::build(&relation(50), ShardBy::Hash { col: 0 }, 2, &[0, 1]).unwrap(),
        );
        let exec = PooledExecutor::with_default_pool(Arc::clone(&lr));
        let batch = QueryBatch::new([pitract_relation::SelectionQuery::point(0, 5i64)]);

        let got = exec.execute(&batch).unwrap();
        assert_eq!(
            got.report.epoch,
            Some(Epoch::ZERO),
            "fresh build is epoch 0"
        );
        lr.insert(vec![Value::Int(1000), Value::str("w")]).unwrap();
        lr.insert(vec![Value::Int(1001), Value::str("w")]).unwrap();
        let got = exec.execute_rows(&batch).unwrap();
        assert_eq!(
            got.report.epoch,
            Some(Epoch::new(2)),
            "epoch counts applied updates"
        );

        // Pins are balanced: nothing left registered, nothing retained.
        let stats = lr.version_stats();
        assert_eq!(stats.pins, 0, "executor released every batch pin");
        assert_eq!(stats.retained_versions, 0);

        // The immutable sharded path reports no epoch (read-committed).
        let sr = Arc::new(
            ShardedRelation::build(&relation(50), ShardBy::Hash { col: 0 }, 2, &[0, 1]).unwrap(),
        );
        let exec = PooledExecutor::with_default_pool(sr);
        let got = exec.execute(&batch).unwrap();
        assert_eq!(got.report.epoch, None);
    }

    #[test]
    fn default_pool_sizes_to_min_of_cores_and_shards() {
        let sr = Arc::new(
            ShardedRelation::build(&relation(10), ShardBy::Hash { col: 0 }, 2, &[0]).unwrap(),
        );
        let exec = PooledExecutor::with_default_pool(sr);
        let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
        assert_eq!(exec.pool().workers(), cores.clamp(1, 2));
        assert_eq!(exec.pool().max_inflight(), exec.pool().workers() * 2);
    }
}
