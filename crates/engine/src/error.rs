//! Typed errors for the serving layer.
//!
//! `ShardedRelation` and `QueryBatch` used to report failures as bare
//! `String`s, which composed poorly: callers could not match on the
//! failure class, and the persistence layer (`pitract-store`) had no way
//! to wrap an engine failure without re-parsing prose. [`EngineError`] is
//! the typed replacement — it implements [`std::error::Error`] so it can
//! sit inside other error enums as a `source()`.

use pitract_relation::{ColType, IndexedError};
use std::fmt;

/// Everything that can go wrong building, updating, or querying the
/// sharded serving layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// `shard_count` was zero.
    NoShards,
    /// The shard-key column does not exist in the schema.
    ShardColumnOutOfRange {
        /// The offending column index.
        col: usize,
        /// The schema's arity.
        arity: usize,
    },
    /// Range partitioning supplied the wrong number of split points.
    SplitCount {
        /// Shards requested.
        shard_count: usize,
        /// Splits supplied (must be `shard_count - 1`).
        got: usize,
    },
    /// Range split points were not strictly ascending.
    SplitsNotAscending,
    /// A range split point's `Value` variant does not inhabit the
    /// shard-key column's type (e.g. a `Str` split on an `Int` column):
    /// such a split can never separate tuples and previously produced a
    /// silently skewed partitioning.
    SplitTypeMismatch {
        /// Index of the offending split in the `splits` vector.
        position: usize,
        /// The shard-key column's declared type.
        expected: ColType,
    },
    /// A typed failure reported by the underlying indexed-relation layer
    /// (schema validation, index construction or reconstruction).
    Indexed(IndexedError),
    /// A query in a batch failed validation against the schema.
    InvalidQuery {
        /// Position of the query in the batch.
        index: usize,
        /// The validation failure.
        reason: String,
    },
    /// Reconstructed parts (e.g. from a persisted snapshot) were mutually
    /// inconsistent.
    InconsistentSnapshot(String),
    /// A shard worker panicked during batch fan-out. The failure is
    /// contained to the batch that triggered it: the caller gets this
    /// typed error instead of the panic unwinding through the serving
    /// process.
    WorkerPanicked {
        /// The shard whose worker panicked.
        shard: usize,
    },
    /// Replaying an update log produced a different global row id than
    /// the one the log recorded — the snapshot and the log do not belong
    /// to the same history.
    ReplayGidMismatch {
        /// The global id the log entry recorded at write time.
        expected: usize,
        /// The global id replay actually produced.
        found: usize,
    },
    /// Replaying a logged delete found no live row under the recorded
    /// global id.
    ReplayMissingRow {
        /// The global id the log entry names.
        gid: usize,
    },
    /// The installed durable write-ahead sink ([`crate::live::WalSink`])
    /// rejected a stage or failed a commit. After a failed *stage* the
    /// update was not applied; after a failed *commit* it is applied and
    /// staged but its durability is unconfirmed. The message carries the
    /// sink's own diagnosis (typically an I/O error rendered by the WAL
    /// layer, which this crate does not depend on).
    WalSink {
        /// What the sink reported.
        message: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NoShards => write!(f, "shard count must be at least 1"),
            EngineError::ShardColumnOutOfRange { col, arity } => {
                write!(
                    f,
                    "shard column {col} out of range: schema has arity {arity}"
                )
            }
            EngineError::SplitCount { shard_count, got } => write!(
                f,
                "range partitioning over {shard_count} shards needs {} splits, got {got}",
                shard_count.saturating_sub(1)
            ),
            EngineError::SplitsNotAscending => {
                write!(f, "range split points must be strictly ascending")
            }
            EngineError::SplitTypeMismatch { position, expected } => write!(
                f,
                "range split {position} does not have the shard-key column's type {expected:?}"
            ),
            EngineError::Indexed(e) => write!(f, "{e}"),
            EngineError::InvalidQuery { index, reason } => write!(f, "query {index}: {reason}"),
            EngineError::InconsistentSnapshot(msg) => {
                write!(f, "inconsistent snapshot parts: {msg}")
            }
            EngineError::WorkerPanicked { shard } => {
                write!(f, "shard {shard} worker panicked during batch fan-out")
            }
            EngineError::ReplayGidMismatch { expected, found } => write!(
                f,
                "log replay produced global id {found}, log recorded {expected}"
            ),
            EngineError::ReplayMissingRow { gid } => {
                write!(f, "log replay: no live row under global id {gid}")
            }
            EngineError::WalSink { message } => {
                write!(f, "write-ahead sink failed: {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Indexed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IndexedError> for EngineError {
    fn from(e: IndexedError) -> Self {
        EngineError::Indexed(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_specific() {
        assert_eq!(
            EngineError::NoShards.to_string(),
            "shard count must be at least 1"
        );
        assert_eq!(
            EngineError::ShardColumnOutOfRange { col: 9, arity: 2 }.to_string(),
            "shard column 9 out of range: schema has arity 2"
        );
        assert_eq!(
            EngineError::SplitCount {
                shard_count: 4,
                got: 1
            }
            .to_string(),
            "range partitioning over 4 shards needs 3 splits, got 1"
        );
        let e = EngineError::SplitTypeMismatch {
            position: 2,
            expected: ColType::Int,
        };
        assert!(e.to_string().contains("split 2"), "{e}");
        let q = EngineError::InvalidQuery {
            index: 0,
            reason: "no such column".into(),
        };
        assert_eq!(q.to_string(), "query 0: no such column");
        assert_eq!(
            EngineError::WorkerPanicked { shard: 3 }.to_string(),
            "shard 3 worker panicked during batch fan-out"
        );
        let r = EngineError::ReplayGidMismatch {
            expected: 7,
            found: 9,
        };
        assert!(
            r.to_string().contains('7') && r.to_string().contains('9'),
            "{r}"
        );
        assert!(EngineError::ReplayMissingRow { gid: 4 }
            .to_string()
            .contains("global id 4"));
    }

    #[test]
    fn is_a_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&EngineError::NoShards);
    }

    #[test]
    fn indexed_errors_convert_and_chain() {
        use std::error::Error as _;
        let e: EngineError = IndexedError::ColumnOutOfRange { col: 9, arity: 2 }.into();
        assert!(matches!(e, EngineError::Indexed(_)), "{e}");
        assert!(e.source().is_some(), "wrapped error is the source");
        assert_eq!(e.to_string(), "cannot index column 9: schema has arity 2");
    }
}
