//! Horizontal partitioning: one logical relation, `S` indexed shards.
//!
//! `Π(D)` from the paper scales out by splitting `D` into shards and
//! preprocessing each independently — preprocessing stays PTIME (it is a
//! disjoint union of per-shard builds), updates stay incremental (one
//! shard per tuple), and query answering gains the parallel dimension the
//! NC claim is about: shards can be probed concurrently, and shard-key
//! routing often proves most shards irrelevant without touching them.

use crate::error::EngineError;
use pitract_core::cost::Meter;
use pitract_core::hash::Fnv64;
use pitract_relation::indexed::IndexedRelation;
use pitract_relation::{IndexedError, Relation, Schema, SelectionQuery, Value};
use std::ops::Bound;

/// The pinned shard-routing hash: FNV-1a 64 over the value's canonical
/// encoding (the same byte layout as `Encode`, fed incrementally so the
/// per-query hot path never allocates). Deliberately *not*
/// `DefaultHasher` — see [`ShardedRelation::shard_of`].
fn shard_hash(value: &Value) -> u64 {
    let mut h = Fnv64::new();
    match value {
        Value::Int(i) => {
            h.write(&[0]);
            h.write(&i.to_le_bytes());
        }
        Value::Str(s) => {
            h.write(&[1]);
            h.write(&(s.len() as u64).to_le_bytes());
            h.write(s.as_bytes());
        }
    }
    h.finish()
}

/// The one routing function: which of `shard_count` shards a shard-key
/// `value` belongs to under `shard_by`. Shared by
/// [`ShardedRelation::shard_of`], the [`ShardedRelation::from_parts`]
/// membership validation, and the live serving layer
/// ([`crate::live::LiveRelation`]) so none of them can diverge.
pub(crate) fn route_shard(shard_by: &ShardBy, shard_count: usize, value: &Value) -> usize {
    match shard_by {
        ShardBy::Hash { .. } => (shard_hash(value) % shard_count as u64) as usize,
        ShardBy::Range { splits, .. } => splits.partition_point(|s| s <= value),
    }
}

/// The partitioning function assigning each tuple to a shard.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardBy {
    /// Shard `hash(t[col]) mod S` — uniform spread, point-routable.
    Hash {
        /// The shard-key column.
        col: usize,
    },
    /// Range partitioning on `col`: shard `i` holds tuples with
    /// `splits[i-1] ≤ t[col] < splits[i]` (first/last shard unbounded
    /// below/above). `splits` must be strictly ascending with exactly
    /// `S - 1` entries — both point- and range-routable.
    Range {
        /// The shard-key column.
        col: usize,
        /// The `S - 1` ascending split points.
        splits: Vec<Value>,
    },
}

impl ShardBy {
    /// The shard-key column.
    pub fn col(&self) -> usize {
        match self {
            ShardBy::Hash { col } | ShardBy::Range { col, .. } => *col,
        }
    }
}

/// A relation hash/range-partitioned across `S` independently indexed
/// shards, with global row ids stable under deletes.
#[derive(Debug, Clone)]
pub struct ShardedRelation {
    schema: Schema,
    shard_by: ShardBy,
    shards: Vec<IndexedRelation>,
    /// Per shard: local row id → global row id.
    global_ids: Vec<Vec<usize>>,
    /// Global row id → (shard, local id); tombstoned on delete.
    locations: Vec<Option<(usize, usize)>>,
    live: usize,
}

impl ShardedRelation {
    /// Partition `relation` into `shard_count` shards and index `cols` on
    /// each shard (the per-shard `Π`). PTIME: one pass to route plus an
    /// O(n/S log n/S) index build per shard per column.
    pub fn build(
        relation: &Relation,
        shard_by: ShardBy,
        shard_count: usize,
        cols: &[usize],
    ) -> Result<Self, EngineError> {
        validate_shard_by(relation.schema(), &shard_by, shard_count)?;
        let empty = Relation::new(relation.schema().clone());
        let shards = (0..shard_count)
            .map(|_| IndexedRelation::build(&empty, cols))
            .collect::<Result<Vec<_>, _>>()
            .map_err(EngineError::Indexed)?;
        let mut sharded = ShardedRelation {
            schema: relation.schema().clone(),
            shard_by,
            shards,
            global_ids: vec![Vec::new(); shard_count],
            locations: Vec::with_capacity(relation.len()),
            live: 0,
        };
        for row in relation.rows() {
            sharded.insert(row.clone())?;
        }
        Ok(sharded)
    }

    /// Schema of the logical relation.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards themselves (read-only; used by the batch executor).
    pub fn shards(&self) -> &[IndexedRelation] {
        &self.shards
    }

    /// Live tuples per shard (the balance diagnostic).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(IndexedRelation::len).collect()
    }

    /// Total live tuples.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Total row slots ever assigned across all shards — live rows plus
    /// tombstones. This is what a full scan must walk, so the planner
    /// estimates scans against it (estimating against [`Self::len`] under-
    /// counted after heavy churn and mis-ranked scan vs index paths).
    pub fn slot_count(&self) -> usize {
        self.shards.iter().map(IndexedRelation::slot_count).sum()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The partitioning function.
    pub fn shard_by(&self) -> &ShardBy {
        &self.shard_by
    }

    /// Which shard a tuple with shard-key `value` lives in.
    ///
    /// Hash routing uses a **pinned** hash (FNV-1a 64 over the value's
    /// canonical `Encode` bytes), not `std`'s `DefaultHasher`: the std
    /// algorithm is unspecified and may change between Rust releases,
    /// which would silently re-route every key of a persisted
    /// `ShardBy::Hash` snapshot loaded by a newer binary. The routing
    /// function is part of the on-disk contract now, so it must be
    /// stable across toolchains.
    pub fn shard_of(&self, value: &Value) -> usize {
        route_shard(&self.shard_by, self.shards.len(), value)
    }

    /// Insert a tuple, routing it to its shard and maintaining that
    /// shard's indexes. Returns the stable global row id.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<usize, EngineError> {
        self.schema
            .admits(&row)
            .map_err(|e| EngineError::Indexed(IndexedError::RowRejected(e)))?;
        let shard = self.shard_of(&row[self.shard_by.col()]);
        let local = self.shards[shard]
            .insert(row)
            .map_err(EngineError::Indexed)?;
        let gid = self.locations.len();
        debug_assert_eq!(local, self.global_ids[shard].len());
        self.global_ids[shard].push(gid);
        self.locations.push(Some((shard, local)));
        self.live += 1;
        Ok(gid)
    }

    /// Delete by global row id, maintaining the owning shard's indexes.
    /// Returns the removed tuple, or `None` if the id was already
    /// deleted/invalid.
    pub fn delete(&mut self, gid: usize) -> Option<Vec<Value>> {
        let (shard, local) = self.locations.get_mut(gid)?.take()?;
        #[allow(clippy::expect_used)]
        let row = self.shards[shard]
            .delete(local)
            // lint:allow(no-unwrap-in-serving): the location map just said this row is live
            .expect("location map and shard agree on live rows");
        self.live -= 1;
        Some(row)
    }

    /// The global id of a shard-local row id (used when merging per-shard
    /// row-id answers back into the logical relation's id space).
    pub fn global_id(&self, shard: usize, local: usize) -> usize {
        self.global_ids[shard][local]
    }

    /// The live tuple under a global row id.
    pub fn row(&self, gid: usize) -> Option<&[Value]> {
        let (shard, local) = (*self.locations.get(gid)?)?;
        self.shards[shard].row(local)
    }

    /// Which shards could possibly hold a tuple matching `q`.
    ///
    /// Every conjunct that constrains the shard-key column narrows the
    /// candidate set: a point selection pins a single shard under either
    /// partitioning; a range selection pins a contiguous shard interval
    /// under range partitioning. Conjuncts on other columns (and ranges
    /// under hash partitioning) keep the set unchanged, so the result is
    /// always a superset of the shards with matches — routing can prune,
    /// never drop answers.
    pub fn relevant_shards(&self, q: &SelectionQuery) -> Vec<usize> {
        relevant_shards_for(&self.shard_by, self.shards.len(), q)
    }

    /// Boolean answer, probing only the relevant shards sequentially.
    /// (The parallel path is [`crate::batch::QueryBatch`].)
    pub fn answer(&self, q: &SelectionQuery) -> bool {
        self.answer_metered(q, &Meter::new())
    }

    /// Metered Boolean answer over the relevant shards.
    pub fn answer_metered(&self, q: &SelectionQuery, meter: &Meter) -> bool {
        self.relevant_shards(q)
            .into_iter()
            .any(|s| self.shards[s].answer_metered(q, meter))
    }

    /// Global ids (ascending) of all live rows matching `q`.
    pub fn matching_ids(&self, q: &SelectionQuery) -> Vec<usize> {
        let meter = Meter::new();
        let mut ids: Vec<usize> = self
            .relevant_shards(q)
            .into_iter()
            .flat_map(|s| {
                self.shards[s]
                    .matching_ids_metered(q, &meter)
                    .into_iter()
                    .map(move |local| self.global_id(s, local))
            })
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Export all live tuples as one relation (shard-major order; a
    /// test/diagnostic aid).
    #[allow(clippy::expect_used)]
    pub fn to_relation(&self) -> Relation {
        let rows: Vec<Vec<Value>> = self
            .shards
            .iter()
            .flat_map(|s| s.to_relation().rows().to_vec())
            .collect();
        // lint:allow(no-unwrap-in-serving): every row came out of a validated shard
        Relation::from_rows(self.schema.clone(), rows).expect("shards hold validated rows")
    }

    /// Per-shard local-id → global-id maps, including entries for
    /// tombstoned rows (persistence accessor: `pitract-store` serializes
    /// these verbatim so reloaded relations keep the same global ids).
    pub fn global_id_maps(&self) -> &[Vec<usize>] {
        &self.global_ids
    }

    /// Global-id → `(shard, local id)` map with tombstones (persistence
    /// accessor, the inverse of [`Self::global_id_maps`]).
    pub fn locations(&self) -> &[Option<(usize, usize)>] {
        &self.locations
    }

    /// Reassemble a `ShardedRelation` from previously exported parts —
    /// the warm-start path used by `pitract-store` when loading a
    /// snapshot. Validates the same partitioning invariants as
    /// [`Self::build`] plus the mutual consistency of the id maps, so a
    /// structurally corrupt snapshot is rejected instead of producing a
    /// relation that answers queries differently from the original.
    pub fn from_parts(
        schema: Schema,
        shard_by: ShardBy,
        shards: Vec<IndexedRelation>,
        global_ids: Vec<Vec<usize>>,
        locations: Vec<Option<(usize, usize)>>,
    ) -> Result<Self, EngineError> {
        validate_shard_by(&schema, &shard_by, shards.len())?;
        let inconsistent = |msg: String| EngineError::InconsistentSnapshot(msg);
        if global_ids.len() != shards.len() {
            return Err(inconsistent(format!(
                "{} shards but {} global-id maps",
                shards.len(),
                global_ids.len()
            )));
        }
        let key_col = shard_by.col();
        for (s, shard) in shards.iter().enumerate() {
            if shard.schema() != &schema {
                return Err(inconsistent(format!("shard {s} schema differs")));
            }
            // Every live row must actually route to the shard holding it:
            // a misplaced row would be invisible to shard-key queries
            // (routing prunes to the shard the key *should* be in).
            for slot in shard.slots().iter().flatten() {
                let expect = route_shard(&shard_by, shards.len(), &slot[key_col]);
                if expect != s {
                    return Err(inconsistent(format!(
                        "shard {s} holds a row whose shard key routes to shard {expect}"
                    )));
                }
            }
            if global_ids[s].len() != shard.slot_count() {
                return Err(inconsistent(format!(
                    "shard {s} has {} row slots but {} global ids",
                    shard.slot_count(),
                    global_ids[s].len()
                )));
            }
            if let Some(&bad) = global_ids[s].iter().find(|&&g| g >= locations.len()) {
                return Err(inconsistent(format!(
                    "shard {s} maps a local row to global id {bad}, beyond {}",
                    locations.len()
                )));
            }
        }
        let mut live = 0usize;
        for (gid, loc) in locations.iter().enumerate() {
            let Some((s, local)) = *loc else { continue };
            let valid = s < shards.len()
                && local < global_ids[s].len()
                && global_ids[s][local] == gid
                && shards[s].row(local).is_some();
            if !valid {
                return Err(inconsistent(format!(
                    "global id {gid} points at ({s}, {local}), which does not map back"
                )));
            }
            live += 1;
        }
        let shard_live: usize = shards.iter().map(IndexedRelation::len).sum();
        if live != shard_live {
            return Err(inconsistent(format!(
                "location map lists {live} live rows, shards hold {shard_live}"
            )));
        }
        Ok(ShardedRelation {
            schema,
            shard_by,
            shards,
            global_ids,
            locations,
            live,
        })
    }

    /// Decompose into owned parts — the exact inverse of
    /// [`Self::from_parts`]. Used by the live serving layer
    /// ([`crate::live::LiveRelation`]) to take ownership of the shards so
    /// each can sit behind its own lock.
    #[allow(clippy::type_complexity)]
    pub fn into_parts(
        self,
    ) -> (
        Schema,
        ShardBy,
        Vec<IndexedRelation>,
        Vec<Vec<usize>>,
        Vec<Option<(usize, usize)>>,
    ) {
        (
            self.schema,
            self.shard_by,
            self.shards,
            self.global_ids,
            self.locations,
        )
    }
}

/// The routing-prune computation behind [`ShardedRelation::relevant_shards`],
/// shared with the live serving layer ([`crate::live::LiveRelation`]) so the
/// locked and unlocked paths can never prune differently.
pub(crate) fn relevant_shards_for(
    shard_by: &ShardBy,
    shard_count: usize,
    q: &SelectionQuery,
) -> Vec<usize> {
    let mut mask = vec![true; shard_count];
    for conjunct in q.conjuncts() {
        match conjunct {
            SelectionQuery::Point { col, value } if *col == shard_by.col() => {
                let keep = route_shard(shard_by, shard_count, value);
                for (i, m) in mask.iter_mut().enumerate() {
                    *m &= i == keep;
                }
            }
            SelectionQuery::Range { col, lo, hi } if *col == shard_by.col() => {
                if let ShardBy::Range { .. } = shard_by {
                    let first = match lo {
                        Bound::Included(v) | Bound::Excluded(v) => {
                            route_shard(shard_by, shard_count, v)
                        }
                        Bound::Unbounded => 0,
                    };
                    let last = match hi {
                        Bound::Included(v) | Bound::Excluded(v) => {
                            route_shard(shard_by, shard_count, v)
                        }
                        Bound::Unbounded => shard_count - 1,
                    };
                    for (i, m) in mask.iter_mut().enumerate() {
                        *m &= first <= i && i <= last;
                    }
                }
            }
            _ => {}
        }
    }
    (0..shard_count).filter(|&i| mask[i]).collect()
}

/// The build-time partitioning checks, shared by [`ShardedRelation::build`],
/// [`ShardedRelation::from_parts`], and [`crate::live::LiveRelation`].
pub(crate) fn validate_shard_by(
    schema: &Schema,
    shard_by: &ShardBy,
    shard_count: usize,
) -> Result<(), EngineError> {
    if shard_count == 0 {
        return Err(EngineError::NoShards);
    }
    let arity = schema.arity();
    if shard_by.col() >= arity {
        return Err(EngineError::ShardColumnOutOfRange {
            col: shard_by.col(),
            arity,
        });
    }
    if let ShardBy::Range { col, splits } = shard_by {
        if splits.len() + 1 != shard_count {
            return Err(EngineError::SplitCount {
                shard_count,
                got: splits.len(),
            });
        }
        // A split whose variant mismatches the column type compares via
        // the cross-variant tie-breaker (all Ints < all Strs), so it can
        // never separate tuples of the column's actual type — reject it
        // instead of silently accepting a skewed partitioning.
        let expected = schema.col_type(*col);
        if let Some(position) = splits.iter().position(|s| !expected.admits(s)) {
            return Err(EngineError::SplitTypeMismatch { position, expected });
        }
        if splits.windows(2).any(|w| w[0] >= w[1]) {
            return Err(EngineError::SplitsNotAscending);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitract_relation::ColType;

    fn schema() -> Schema {
        Schema::new(&[("id", ColType::Int), ("city", ColType::Str)])
    }

    fn relation(n: i64) -> Relation {
        let rows = (0..n)
            .map(|i| vec![Value::Int(i), Value::str(format!("city{}", i % 10))])
            .collect();
        Relation::from_rows(schema(), rows).unwrap()
    }

    fn int_splits(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn build_validates_inputs() {
        let rel = relation(10);
        assert!(ShardedRelation::build(&rel, ShardBy::Hash { col: 0 }, 0, &[0]).is_err());
        assert!(ShardedRelation::build(&rel, ShardBy::Hash { col: 9 }, 2, &[0]).is_err());
        assert!(ShardedRelation::build(&rel, ShardBy::Hash { col: 0 }, 2, &[7]).is_err());
        let wrong_arity = ShardBy::Range {
            col: 0,
            splits: int_splits(&[5]),
        };
        assert!(ShardedRelation::build(&rel, wrong_arity, 4, &[0]).is_err());
        let unsorted = ShardBy::Range {
            col: 0,
            splits: int_splits(&[7, 3, 5]),
        };
        assert!(ShardedRelation::build(&rel, unsorted, 4, &[0]).is_err());
    }

    #[test]
    fn build_errors_are_typed() {
        let rel = relation(10);
        assert_eq!(
            ShardedRelation::build(&rel, ShardBy::Hash { col: 0 }, 0, &[0]).unwrap_err(),
            EngineError::NoShards
        );
        assert_eq!(
            ShardedRelation::build(&rel, ShardBy::Hash { col: 9 }, 2, &[0]).unwrap_err(),
            EngineError::ShardColumnOutOfRange { col: 9, arity: 2 }
        );
        let unsorted = ShardBy::Range {
            col: 0,
            splits: int_splits(&[7, 3, 5]),
        };
        assert_eq!(
            ShardedRelation::build(&rel, unsorted, 4, &[0]).unwrap_err(),
            EngineError::SplitsNotAscending
        );
    }

    #[test]
    fn range_splits_must_match_shard_key_type() {
        // Regression: a Str split on an Int column was silently accepted.
        // Every Int sorts below every Str, so such a split can never
        // separate the column's actual values — the partitioning skews
        // instead of failing.
        let rel = relation(10);
        let mixed = ShardBy::Range {
            col: 0,
            splits: vec![Value::Int(5), Value::str("zzz")],
        };
        assert_eq!(
            ShardedRelation::build(&rel, mixed, 3, &[0]).unwrap_err(),
            EngineError::SplitTypeMismatch {
                position: 1,
                expected: ColType::Int,
            }
        );
        // Same check on a Str shard key with an Int split.
        let mixed = ShardBy::Range {
            col: 1,
            splits: vec![Value::Int(5)],
        };
        assert_eq!(
            ShardedRelation::build(&rel, mixed, 2, &[1]).unwrap_err(),
            EngineError::SplitTypeMismatch {
                position: 0,
                expected: ColType::Str,
            }
        );
        // Homogeneous, correctly typed splits still build.
        let ok = ShardBy::Range {
            col: 1,
            splits: vec![Value::str("city5")],
        };
        assert!(ShardedRelation::build(&rel, ok, 2, &[1]).is_ok());
    }

    /// Re-export every shard through the persistence accessors and
    /// `IndexedRelation::from_parts` — the same dance `pitract-store`
    /// does when loading a snapshot.
    fn export_shards(sr: &ShardedRelation) -> Vec<IndexedRelation> {
        sr.shards()
            .iter()
            .map(|s| {
                IndexedRelation::from_parts(
                    s.schema().clone(),
                    s.slots().to_vec(),
                    s.indexed_columns()
                        .into_iter()
                        .map(|c| {
                            let entries = s
                                .index_postings(c)
                                .unwrap()
                                .into_iter()
                                .map(|(k, v)| (k.clone(), v.to_vec()))
                                .collect();
                            (c, entries)
                        })
                        .collect(),
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn from_parts_roundtrips_exported_parts() {
        let mut sr = ShardedRelation::build(
            &relation(40),
            ShardBy::Range {
                col: 0,
                splits: int_splits(&[10, 25]),
            },
            3,
            &[0, 1],
        )
        .unwrap();
        sr.delete(7);
        sr.insert(vec![Value::Int(500), Value::str("late")])
            .unwrap();

        let rebuilt = ShardedRelation::from_parts(
            sr.schema().clone(),
            sr.shard_by().clone(),
            export_shards(&sr),
            sr.global_id_maps().to_vec(),
            sr.locations().to_vec(),
        )
        .unwrap();

        assert_eq!(rebuilt.len(), sr.len());
        for q in [
            SelectionQuery::point(0, 7i64),
            SelectionQuery::point(0, 500i64),
            SelectionQuery::range_closed(0, 5i64, 12i64),
            SelectionQuery::point(1, "late"),
        ] {
            assert_eq!(rebuilt.answer(&q), sr.answer(&q), "{q:?}");
            assert_eq!(rebuilt.matching_ids(&q), sr.matching_ids(&q), "{q:?}");
        }
    }

    #[test]
    fn from_parts_rejects_misrouted_rows() {
        // A row sitting in a shard its key does not route to is invisible
        // to shard-key queries; the maps can still be mutually consistent,
        // so membership needs its own check.
        let probe =
            ShardedRelation::build(&relation(0), ShardBy::Hash { col: 0 }, 2, &[0]).unwrap();
        let stray = (0..100i64)
            .find(|&k| probe.shard_of(&Value::Int(k)) == 1)
            .expect("some key routes to shard 1");
        let one_row =
            Relation::from_rows(schema(), vec![vec![Value::Int(stray), Value::str("x")]]).unwrap();
        let misplaced = IndexedRelation::build(&one_row, &[0]).unwrap();
        let empty = IndexedRelation::build(&relation(0), &[0]).unwrap();
        let err = ShardedRelation::from_parts(
            schema(),
            ShardBy::Hash { col: 0 },
            vec![misplaced, empty], // stray sits in shard 0, routes to 1
            vec![vec![0], vec![]],
            vec![Some((0, 0))],
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::InconsistentSnapshot(_)), "{err}");
    }

    #[test]
    fn from_parts_rejects_inconsistent_maps() {
        let sr = ShardedRelation::build(&relation(10), ShardBy::Hash { col: 0 }, 2, &[0]).unwrap();

        // Wrong number of global-id maps.
        let err = ShardedRelation::from_parts(
            sr.schema().clone(),
            sr.shard_by().clone(),
            export_shards(&sr),
            vec![Vec::new()],
            sr.locations().to_vec(),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::InconsistentSnapshot(_)), "{err}");

        // A location that does not map back.
        let mut bad_locations = sr.locations().to_vec();
        bad_locations[0] = Some((1, 999));
        let err = ShardedRelation::from_parts(
            sr.schema().clone(),
            sr.shard_by().clone(),
            export_shards(&sr),
            sr.global_id_maps().to_vec(),
            bad_locations,
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::InconsistentSnapshot(_)), "{err}");
    }

    #[test]
    fn every_tuple_lands_in_exactly_one_shard() {
        for shard_by in [
            ShardBy::Hash { col: 0 },
            ShardBy::Range {
                col: 0,
                splits: int_splits(&[25, 50, 75]),
            },
        ] {
            let sr = ShardedRelation::build(&relation(100), shard_by, 4, &[0, 1]).unwrap();
            assert_eq!(sr.len(), 100);
            assert_eq!(sr.shard_sizes().iter().sum::<usize>(), 100);
            assert_eq!(sr.to_relation().len(), 100);
        }
    }

    #[test]
    fn range_partitioning_respects_split_points() {
        let sr = ShardedRelation::build(
            &relation(100),
            ShardBy::Range {
                col: 0,
                splits: int_splits(&[10, 60]),
            },
            3,
            &[0],
        )
        .unwrap();
        // Shard 0: v < 10 (10 rows); shard 1: 10 ≤ v < 60 (50); shard 2: rest.
        assert_eq!(sr.shard_sizes(), vec![10, 50, 40]);
        assert_eq!(sr.shard_of(&Value::Int(9)), 0);
        assert_eq!(sr.shard_of(&Value::Int(10)), 1, "split point goes right");
        assert_eq!(sr.shard_of(&Value::Int(10_000)), 2);
    }

    #[test]
    fn answers_match_scan_oracle_on_all_query_shapes() {
        let rel = relation(200);
        for shard_by in [
            ShardBy::Hash { col: 1 },
            ShardBy::Range {
                col: 0,
                splits: int_splits(&[50, 100, 150]),
            },
        ] {
            let sr = ShardedRelation::build(&rel, shard_by, 4, &[0, 1]).unwrap();
            let queries = [
                SelectionQuery::point(0, 123i64),
                SelectionQuery::point(0, 999i64),
                SelectionQuery::point(1, "city7"),
                SelectionQuery::range_closed(0, 40i64, 55i64),
                SelectionQuery::range_closed(0, 900i64, 950i64),
                SelectionQuery::and(
                    SelectionQuery::point(1, "city3"),
                    SelectionQuery::range_closed(0, 100i64, 160i64),
                ),
            ];
            for q in &queries {
                assert_eq!(sr.answer(q), rel.eval_scan(q), "{q:?}");
            }
        }
    }

    #[test]
    fn point_queries_route_to_one_shard() {
        let hash =
            ShardedRelation::build(&relation(64), ShardBy::Hash { col: 0 }, 8, &[0]).unwrap();
        assert_eq!(
            hash.relevant_shards(&SelectionQuery::point(0, 7i64)).len(),
            1
        );
        // A non-key query touches every shard.
        assert_eq!(
            hash.relevant_shards(&SelectionQuery::point(1, "city1"))
                .len(),
            8
        );
        // Ranges do not route under hash partitioning.
        assert_eq!(
            hash.relevant_shards(&SelectionQuery::range_closed(0, 1i64, 2i64))
                .len(),
            8
        );
    }

    #[test]
    fn range_queries_route_to_contiguous_shards() {
        let sr = ShardedRelation::build(
            &relation(100),
            ShardBy::Range {
                col: 0,
                splits: int_splits(&[25, 50, 75]),
            },
            4,
            &[0],
        )
        .unwrap();
        assert_eq!(
            sr.relevant_shards(&SelectionQuery::range_closed(0, 30i64, 60i64)),
            vec![1, 2]
        );
        assert_eq!(
            sr.relevant_shards(&SelectionQuery::point(0, 80i64)),
            vec![3]
        );
        let half_open = SelectionQuery::Range {
            col: 0,
            lo: Bound::Unbounded,
            hi: Bound::Excluded(Value::Int(20)),
        };
        assert_eq!(sr.relevant_shards(&half_open), vec![0]);
        // A conjunction intersects its conjuncts' shard sets.
        let conj = SelectionQuery::and(
            SelectionQuery::range_closed(0, 30i64, 60i64),
            SelectionQuery::point(0, 40i64),
        );
        assert_eq!(sr.relevant_shards(&conj), vec![1]);
        // Contradictory shard-key points prune everything.
        let contradiction = SelectionQuery::and(
            SelectionQuery::point(0, 10i64),
            SelectionQuery::point(0, 90i64),
        );
        assert!(sr.relevant_shards(&contradiction).is_empty());
        assert!(!sr.answer(&contradiction));
    }

    #[test]
    fn inserts_and_deletes_keep_global_ids_stable() {
        let mut sr =
            ShardedRelation::build(&relation(20), ShardBy::Hash { col: 0 }, 4, &[0, 1]).unwrap();
        let gid = sr.insert(vec![Value::Int(100), Value::str("new")]).unwrap();
        assert_eq!(gid, 20);
        assert_eq!(sr.row(gid).unwrap()[1], Value::str("new"));
        assert!(sr.answer(&SelectionQuery::point(0, 100i64)));

        let removed = sr.delete(5).expect("gid 5 live");
        assert_eq!(removed[0], Value::Int(5));
        assert!(sr.delete(5).is_none(), "double delete is a no-op");
        assert!(!sr.answer(&SelectionQuery::point(0, 5i64)));
        assert_eq!(sr.len(), 20);
        // Other ids are untouched.
        assert_eq!(sr.row(6).unwrap()[0], Value::Int(6));
        assert!(sr.row(5).is_none());
    }

    #[test]
    fn matching_ids_are_global_and_sorted() {
        let sr =
            ShardedRelation::build(&relation(30), ShardBy::Hash { col: 0 }, 3, &[0, 1]).unwrap();
        // Build assigns global ids in row order, so city2 rows are 2,12,22.
        assert_eq!(
            sr.matching_ids(&SelectionQuery::point(1, "city2")),
            vec![2, 12, 22]
        );
        assert_eq!(
            sr.matching_ids(&SelectionQuery::range_closed(0, 4i64, 6i64)),
            vec![4, 5, 6]
        );
    }

    #[test]
    fn single_shard_degenerates_to_indexed_relation() {
        let rel = relation(50);
        let sr = ShardedRelation::build(&rel, ShardBy::Hash { col: 0 }, 1, &[0]).unwrap();
        assert_eq!(sr.shard_sizes(), vec![50]);
        for q in [
            SelectionQuery::point(0, 25i64),
            SelectionQuery::range_closed(0, 10i64, 12i64),
        ] {
            assert_eq!(sr.answer(&q), rel.eval_scan(&q));
        }
    }

    #[test]
    fn empty_relation_answers_false() {
        let sr =
            ShardedRelation::build(&Relation::new(schema()), ShardBy::Hash { col: 0 }, 4, &[0])
                .unwrap();
        assert!(sr.is_empty());
        assert!(!sr.answer(&SelectionQuery::point(0, 1i64)));
        assert!(sr.matching_ids(&SelectionQuery::point(0, 1i64)).is_empty());
    }
}
