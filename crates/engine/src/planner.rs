//! Cost-based access-path routing for selection queries.
//!
//! A real executor does not answer every query the same way; it picks the
//! cheapest access path the preprocessing supports. The [`Planner`]
//! encodes the routing policy of
//! [`pitract_relation::indexed::IndexedRelation::answer_metered`] as an
//! explicit, inspectable plan: point probe < range probe <
//! index-nested-loop conjunction < full scan. The batch executor uses the
//! plan for shard routing and for the batch cost report (estimated vs
//! metered steps per query); a plan/executor agreement test keeps the two
//! from drifting apart.

use pitract_core::cost::log2_floor;
use pitract_relation::SelectionQuery;

/// The access path a query is routed through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPath {
    /// One B⁺-tree descent on an indexed column; the posting list's
    /// existence is the answer. O(log n).
    PointProbe {
        /// The probed column.
        col: usize,
    },
    /// One descent to the range start plus a non-emptiness check. O(log n).
    RangeProbe {
        /// The probed column.
        col: usize,
    },
    /// Conjunction routed through one indexed conjunct; candidates are
    /// verified against the full predicate. O(log n + candidates).
    IndexNestedLoop {
        /// The column of the driving (indexed) conjunct.
        col: usize,
    },
    /// No usable index: every live tuple is inspected. O(n).
    FullScan,
}

impl AccessPath {
    /// Short label for reports and histograms.
    pub fn label(&self) -> &'static str {
        match self {
            AccessPath::PointProbe { .. } => "point-probe",
            AccessPath::RangeProbe { .. } => "range-probe",
            AccessPath::IndexNestedLoop { .. } => "index-nested-loop",
            AccessPath::FullScan => "full-scan",
        }
    }
}

/// A routed query: the chosen path and its estimated step cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryPlan {
    /// The chosen access path.
    pub path: AccessPath,
    /// Estimated meter steps on a relation of the planned size. Estimates
    /// use unit constants (2·log₂ n per descent, like the executor's
    /// descent charge) and a 1/16 selectivity guess for conjunction
    /// candidate verification.
    pub est_steps: u64,
}

/// Routes each query to the cheapest access path the indexes support.
#[derive(Debug, Clone, Copy, Default)]
pub struct Planner;

impl Planner {
    /// Plan `q` against a relation of `slots` row slots (live rows *plus*
    /// tombstones) with B⁺-trees on `indexed_cols`.
    ///
    /// The policy mirrors the executor exactly: an indexed point
    /// (sub)query beats an indexed range (sub)query beats a scan, and a
    /// conjunction drives through its first indexed point conjunct,
    /// falling back to its first indexed range conjunct.
    ///
    /// Scans are estimated against the **slot count**, not the live-row
    /// count: the executor's scan walks every slot including tombstones,
    /// so after heavy churn (many deletes) a live-count estimate was an
    /// undercount — metered steps exceeded the estimate and scan vs index
    /// paths could be mis-ranked. Callers thread `slot_count()` through
    /// here (see `ShardedRelation::slot_count`).
    pub fn plan(indexed_cols: &[usize], slots: usize, q: &SelectionQuery) -> QueryPlan {
        let descent = 2 * u64::from(log2_floor(slots.max(2) as u64)).max(1);
        let candidates = (slots as u64 / 16).max(1);
        let indexed = |col: &usize| indexed_cols.contains(col);
        match q {
            SelectionQuery::Point { col, .. } if indexed(col) => QueryPlan {
                path: AccessPath::PointProbe { col: *col },
                est_steps: descent,
            },
            SelectionQuery::Range { col, .. } if indexed(col) => QueryPlan {
                path: AccessPath::RangeProbe { col: *col },
                est_steps: descent + 1,
            },
            SelectionQuery::And(_, _) => {
                let conjuncts = q.conjuncts();
                let driving = conjuncts
                    .iter()
                    .find(|c| matches!(c, SelectionQuery::Point { col, .. } if indexed(col)))
                    .or_else(|| {
                        conjuncts.iter().find(
                            |c| matches!(c, SelectionQuery::Range { col, .. } if indexed(col)),
                        )
                    });
                match driving {
                    Some(SelectionQuery::Point { col, .. } | SelectionQuery::Range { col, .. }) => {
                        QueryPlan {
                            path: AccessPath::IndexNestedLoop { col: *col },
                            est_steps: descent + candidates,
                        }
                    }
                    _ => QueryPlan {
                        path: AccessPath::FullScan,
                        est_steps: slots as u64,
                    },
                }
            }
            _ => QueryPlan {
                path: AccessPath::FullScan,
                est_steps: slots as u64,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitract_core::cost::Meter;
    use pitract_relation::indexed::IndexedRelation;
    use pitract_relation::{ColType, Relation, Schema, Value};

    fn plan(cols: &[usize], rows: usize, q: &SelectionQuery) -> AccessPath {
        Planner::plan(cols, rows, q).path
    }

    #[test]
    fn routes_each_shape_to_its_cheapest_path() {
        let point = SelectionQuery::point(0, 1i64);
        let range = SelectionQuery::range_closed(1, 1i64, 2i64);
        assert_eq!(plan(&[0], 100, &point), AccessPath::PointProbe { col: 0 });
        assert_eq!(plan(&[1], 100, &point), AccessPath::FullScan);
        assert_eq!(plan(&[1], 100, &range), AccessPath::RangeProbe { col: 1 });
        assert_eq!(plan(&[], 100, &range), AccessPath::FullScan);

        let conj = SelectionQuery::and(range.clone(), point.clone());
        assert_eq!(
            plan(&[0, 1], 100, &conj),
            AccessPath::IndexNestedLoop { col: 0 },
            "a point conjunct beats a range conjunct"
        );
        assert_eq!(
            plan(&[1], 100, &conj),
            AccessPath::IndexNestedLoop { col: 1 },
            "an indexed range conjunct beats a scan"
        );
        assert_eq!(plan(&[], 100, &conj), AccessPath::FullScan);

        let nested = SelectionQuery::and(
            SelectionQuery::and(range, SelectionQuery::point(2, 5i64)),
            SelectionQuery::point(3, 7i64),
        );
        assert_eq!(
            plan(&[3], 100, &nested),
            AccessPath::IndexNestedLoop { col: 3 },
            "routing sees through nested And shapes"
        );
    }

    #[test]
    fn estimates_order_paths_cheapest_first() {
        let rows = 1 << 16;
        let point = Planner::plan(&[0], rows, &SelectionQuery::point(0, 1i64));
        let range = Planner::plan(&[0], rows, &SelectionQuery::range_closed(0, 1i64, 2i64));
        let conj = Planner::plan(
            &[0],
            rows,
            &SelectionQuery::and(
                SelectionQuery::point(0, 1i64),
                SelectionQuery::point(1, "x"),
            ),
        );
        let scan = Planner::plan(&[], rows, &SelectionQuery::point(0, 1i64));
        assert!(point.est_steps < range.est_steps);
        assert!(range.est_steps < conj.est_steps);
        assert!(conj.est_steps < scan.est_steps);
    }

    /// The planner's policy and the executor's routing must agree: on a
    /// relation where the plan says "indexed path", the metered execution
    /// must cost far less than a scan, and vice versa.
    #[test]
    fn plans_agree_with_executor_costs() {
        let n = 4096i64;
        let schema = Schema::new(&[("id", ColType::Int), ("tag", ColType::Str)]);
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| vec![Value::Int(i), Value::str(format!("t{}", i % 8))])
            .collect();
        let rel = Relation::from_rows(schema, rows).unwrap();
        let ir = IndexedRelation::build(&rel, &[0]).unwrap();
        let meter = Meter::new();
        let queries = [
            SelectionQuery::point(0, n + 1),
            SelectionQuery::range_closed(0, n + 1, n + 50),
            SelectionQuery::and(
                SelectionQuery::point(0, 17i64),
                SelectionQuery::point(1, "t1"),
            ),
            SelectionQuery::point(1, "absent"),
        ];
        for q in &queries {
            let plan = Planner::plan(&ir.indexed_columns(), ir.slot_count(), q);
            meter.take();
            ir.answer_metered(q, &meter);
            let steps = meter.take();
            match plan.path {
                AccessPath::FullScan => assert!(
                    steps >= ir.len() as u64 / 2,
                    "{q:?}: planned scan but executor spent only {steps}"
                ),
                _ => assert!(
                    steps < ir.len() as u64 / 4,
                    "{q:?}: planned {} but executor spent {steps} (scan-like)",
                    plan.path.label()
                ),
            }
        }
    }

    /// Regression: the full-scan estimate used the live-row count, but the
    /// executor's scan walks every slot including tombstones. On a heavily
    /// churned relation the metered steps then exceeded the estimate
    /// (estimate 100, actual 1000 below), which could mis-rank scan vs
    /// index paths. Planning against slot count restores the invariant
    /// that a scan's metered cost never exceeds its estimate.
    #[test]
    fn scan_plan_covers_metered_cost_on_churned_relation() {
        let n = 1000i64;
        let schema = Schema::new(&[("id", ColType::Int), ("tag", ColType::Str)]);
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| vec![Value::Int(i), Value::str(format!("t{}", i % 8))])
            .collect();
        let rel = Relation::from_rows(schema, rows).unwrap();
        let mut ir = IndexedRelation::build(&rel, &[0]).unwrap();
        // Heavy churn: delete 90% of the rows; slots stay at 1000.
        for id in 0..(n as usize) {
            if id % 10 != 0 {
                ir.delete(id);
            }
        }
        assert_eq!(ir.len(), 100);
        assert_eq!(ir.slot_count(), 1000);

        // Unindexed-column point query: a full scan on both plan and meter.
        let q = SelectionQuery::point(1, "absent");
        let plan = Planner::plan(&ir.indexed_columns(), ir.slot_count(), &q);
        assert_eq!(plan.path, AccessPath::FullScan);
        let meter = Meter::new();
        ir.answer_metered(&q, &meter);
        let steps = meter.take();
        assert_eq!(steps, 1000, "the scan walks every slot, tombstones too");
        assert!(
            plan.est_steps >= steps,
            "estimate {} must cover the metered scan cost {steps}",
            plan.est_steps
        );

        // Same agreement on the enumeration path.
        ir.matching_ids_metered(&q, &meter);
        let steps = meter.take();
        assert!(plan.est_steps >= steps, "enumeration scan {steps} covered");
    }
}
