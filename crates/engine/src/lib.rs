//! # pitract-engine — the sharded batch serving layer
//!
//! The paper's Definition 1 promises that after a one-time PTIME
//! preprocessing step `Π(D)`, every query is answerable in NC — *parallel*
//! polylog time. The sibling crates certify the polylog half with step
//! meters; this crate exercises the parallel half with real threads:
//!
//! * [`shard::ShardedRelation`] — `Π(D)` at scale: the data is hash- or
//!   range-partitioned across `S` shards, each an independently indexed
//!   [`pitract_relation::indexed::IndexedRelation`]. Inserts and deletes
//!   stay incremental (one shard touched per update), and shard-key-aware
//!   routing prunes the shards a query can possibly match.
//! * [`planner::Planner`] — a small cost-based router: every query is
//!   assigned the cheapest access path (point probe < range probe <
//!   index-nested-loop conjunction < full scan) with an estimated step
//!   cost, mirroring exactly the routing the executor performs.
//! * [`batch::QueryBatch`] — the serving API: a batch of selection
//!   queries fans out across shards on scoped threads
//!   (`std::thread::scope`, no extra dependencies), each shard answering
//!   its slice with a thread-local meter; Boolean or row-id results are
//!   merged and the per-query meters are aggregated into a
//!   [`batch::BatchReport`] cost report.
//! * [`live::LiveRelation`] — the concurrent serving tier: per-shard
//!   read/write locks so batches read-lock only the shards they route to
//!   while updates write-lock only the one shard a key routes to, with
//!   `|CHANGED|`-bounded maintenance accounting
//!   ([`pitract_incremental::bounded::UpdateRecord`]) and a replayable
//!   [`live::UpdateLog`] enabling checkpoint + recover through
//!   `pitract-store`. [`live::LiveRelation::apply_batch`] applies a run
//!   of updates with one WAL commit for the whole batch. Reads are
//!   MVCC: every applied update bumps a monotonic
//!   [`pitract_core::epoch::Epoch`], a batch pins one epoch and sees
//!   exactly that database instance across all its shards
//!   ([`live::EpochPin`]), and writers copy-on-write superseded shard
//!   versions instead of blocking or being blocked
//!   ([`live::VersionStats`] accounts the retained memory).
//! * [`pool::PooledExecutor`] — the persistent serving session: a sized
//!   worker pool spawned once, batches submitted as per-shard work items
//!   over a channel, an admission gate capping in-flight batches
//!   (queue depth and gate waits surfaced in [`pool::PoolStats`]), one
//!   pinned epoch per batch, and the same panic containment and
//!   metering as the scoped executor.
//! * [`error::EngineError`] — the typed failure surface of the builders
//!   and executors, so callers (including the `pitract-store` snapshot
//!   layer) can match on failure classes instead of parsing prose.
//!
//! The correctness contract — checked by unit, integration and property
//! tests — is that every batch answer equals the single-threaded scan
//! oracle [`pitract_relation::Relation::eval_scan`] on the same data.

#![warn(missing_docs)]
// Serving-stack panic hygiene (PR 9): no panicking escape hatches in
// non-test code. Individual invariant sites opt out locally with an
// `#[allow]` paired with a `// lint:allow(...)` justification that the
// `pitract-lint` pass checks.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(clippy::dbg_macro)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod error;
pub mod live;
pub mod planner;
pub mod pool;
pub mod shard;

pub use batch::{BatchAnswers, BatchReport, BatchRows, QueryBatch, QueryCost};
pub use error::EngineError;
pub use live::{
    publish_lockdep, Applied, EpochPin, Frozen, LiveRelation, UpdateEntry, UpdateLog, UpdateOp,
    VersionStats, WalSink,
};
pub use planner::{AccessPath, Planner, QueryPlan};
pub use pool::{BatchServe, PoolConfig, PoolStats, PooledExecutor, WorkerPool};
pub use shard::{ShardBy, ShardedRelation};
