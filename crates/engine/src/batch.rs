//! Batched, multi-threaded query serving over a [`ShardedRelation`].
//!
//! A [`QueryBatch`] is the unit of traffic: many independent selection
//! queries answered together. Execution fans out across shards with
//! `std::thread::scope` — one worker per shard that any query routes to —
//! and each worker answers its slice of the batch against its shard with
//! a thread-local [`Meter`] (the meter is deliberately not shared: the
//! paper's NC bound is per processor, so each shard accounts its own
//! steps). The per-shard results are then merged: Boolean answers OR
//! across shards, row-id answers union (translated to global ids), and
//! per-query meters aggregate into a [`BatchReport`].
//!
//! Shard routing happens before the fan-out: a query whose shard-key
//! constraints prove most shards irrelevant is simply never shipped to
//! them, so a well-partitioned point-lookup workload does O(1) shards of
//! work per query while still spreading the batch across all shards.

use crate::error::EngineError;
use crate::planner::{Planner, QueryPlan};
use crate::shard::{relevant_shards_for, ShardBy, ShardedRelation};
use pitract_core::cost::Meter;
use pitract_core::epoch::Epoch;
use pitract_relation::{Schema, SelectionQuery};
use std::sync::Arc;
use std::time::Duration;

/// A batch of Boolean selection queries to serve together.
///
/// The queries live behind an `Arc` so that submitting the batch to a
/// persistent [`crate::pool::PooledExecutor`] — whose workers outlive
/// the borrow — shares them by reference count instead of cloning the
/// whole batch per shard.
#[derive(Debug, Clone)]
pub struct QueryBatch {
    queries: Arc<[SelectionQuery]>,
}

/// One shard worker's output: `(query index, result, metered steps)` per
/// assigned query, in ascending query order. The worker-side currency
/// shared by the scoped fan-out and the persistent
/// [`crate::pool::PooledExecutor`].
pub type WorkerResults<T> = Vec<(usize, T, u64)>;

/// The merge-side currency: per query, one `(shard, result, steps)`
/// triple for every shard the query routed to. Both executors return
/// this shape so they share the merge and report code.
pub type MergedResults<T> = Vec<Vec<(usize, T, u64)>>;

/// Per-query accounting in a batch report.
#[derive(Debug, Clone)]
pub struct QueryCost {
    /// The access path the planner routed this query through.
    pub plan: QueryPlan,
    /// Metered steps actually spent, summed over all shards probed.
    pub steps: u64,
    /// How many shards the query was shipped to after routing.
    pub shards_probed: usize,
}

/// Aggregated cost accounting for one executed batch.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// One entry per query, in batch order.
    pub per_query: Vec<QueryCost>,
    /// Total metered steps across the whole batch (all queries, all
    /// shards).
    pub total_steps: u64,
    /// The epoch the whole batch was pinned to — the one database
    /// instance every answer is exact against. `None` when the target
    /// has no epoch clock ([`ShardedRelation`] is immutable while
    /// served) or the batch ran read-committed.
    pub epoch: Option<Epoch>,
    /// How long the batch waited at the pooled executor's admission
    /// gate before running. `None` on the scoped (non-pooled) path,
    /// which has no gate.
    pub admission_wait: Option<Duration>,
}

/// Boolean answers plus the cost report.
#[derive(Debug, Clone)]
pub struct BatchAnswers {
    /// One Boolean answer per query, in batch order.
    pub answers: Vec<bool>,
    /// The aggregated cost report.
    pub report: BatchReport,
}

/// Row-id answers (global ids, ascending) plus the cost report.
#[derive(Debug, Clone)]
pub struct BatchRows {
    /// Matching global row ids per query, in batch order.
    pub rows: Vec<Vec<usize>>,
    /// The aggregated cost report.
    pub report: BatchReport,
}

impl BatchReport {
    /// How many queries ran through each access path, in a stable
    /// (cheapest-first) label order.
    pub fn path_histogram(&self) -> Vec<(&'static str, usize)> {
        let mut hist: Vec<(&'static str, usize)> = Vec::new();
        for label in [
            "point-probe",
            "range-probe",
            "index-nested-loop",
            "full-scan",
        ] {
            let count = self
                .per_query
                .iter()
                .filter(|c| c.plan.path.label() == label)
                .count();
            if count > 0 {
                hist.push((label, count));
            }
        }
        hist
    }

    /// Total shards probed across the batch (the fan-out volume).
    pub fn shards_probed(&self) -> usize {
        self.per_query.iter().map(|c| c.shards_probed).sum()
    }
}

impl QueryBatch {
    /// A batch from any sequence of queries.
    pub fn new(queries: impl IntoIterator<Item = SelectionQuery>) -> Self {
        QueryBatch {
            queries: queries.into_iter().collect(),
        }
    }

    /// The queries, in batch order.
    pub fn queries(&self) -> &[SelectionQuery] {
        &self.queries
    }

    /// The shared handle to the queries — what the pooled executor ships
    /// to workers (jobs must be `'static`, so they hold a count, not a
    /// borrow).
    pub(crate) fn queries_shared(&self) -> Arc<[SelectionQuery]> {
        Arc::clone(&self.queries)
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Answer every query in the batch, fanning out across shards on
    /// scoped threads. Returns answers in batch order plus the aggregated
    /// cost report. Errors if any query fails schema validation, or with
    /// [`EngineError::WorkerPanicked`] if a shard worker panics.
    pub fn execute(&self, relation: &ShardedRelation) -> Result<BatchAnswers, EngineError> {
        let (plans, routed) = self.route(relation)?;
        let merged = fan_out(relation.shard_count(), &routed, |s, assigned| {
            eval_assigned(
                &self.queries,
                &relation.shards()[s],
                assigned,
                |sh, q, m| sh.answer_metered(q, m),
            )
        })?;
        let mut answers = vec![false; self.queries.len()];
        for (qi, per_shard) in merged.iter().enumerate() {
            answers[qi] = per_shard.iter().any(|(_, hit, _)| *hit);
        }
        Ok(BatchAnswers {
            answers,
            report: report_from(plans, &routed, &merged),
        })
    }

    /// Enumerate the matching global row ids for every query in the
    /// batch, fanning out across shards on scoped threads.
    pub fn execute_rows(&self, relation: &ShardedRelation) -> Result<BatchRows, EngineError> {
        let (plans, routed) = self.route(relation)?;
        let merged = fan_out(relation.shard_count(), &routed, |s, assigned| {
            eval_assigned(
                &self.queries,
                &relation.shards()[s],
                assigned,
                |sh, q, m| sh.matching_ids_metered(q, m),
            )
        })?;
        let mut rows: Vec<Vec<usize>> = vec![Vec::new(); self.queries.len()];
        for (qi, per_shard) in merged.iter().enumerate() {
            // The shard id is carried in the merged triple itself — never
            // inferred from the *position* within `routed[qi]`, which
            // would silently mistranslate local ids if routing ever
            // returned shards out of ascending order.
            for (shard, locals, _) in per_shard {
                rows[qi].extend(locals.iter().map(|&l| relation.global_id(*shard, l)));
            }
            rows[qi].sort_unstable();
        }
        Ok(BatchRows {
            rows,
            report: report_from(plans, &routed, &merged),
        })
    }

    /// Validate, plan, and shard-route every query.
    fn route(
        &self,
        relation: &ShardedRelation,
    ) -> Result<(Vec<QueryPlan>, Vec<Vec<usize>>), EngineError> {
        route_batch(
            &self.queries,
            relation.schema(),
            &relation.shards()[0].indexed_columns(),
            relation.slot_count(),
            relation.shard_by(),
            relation.shard_count(),
        )
    }
}

/// Validate, plan, and shard-route a slice of queries against a logical
/// relation described by its schema, indexed columns, total slot count
/// (live + tombstones — what a scan walks) and partitioning. Shared by
/// [`QueryBatch`] and the live serving layer so the two plan and route
/// identically.
pub(crate) fn route_batch(
    queries: &[SelectionQuery],
    schema: &Schema,
    indexed_cols: &[usize],
    slots: usize,
    shard_by: &ShardBy,
    shard_count: usize,
) -> Result<(Vec<QueryPlan>, Vec<Vec<usize>>), EngineError> {
    let mut plans = Vec::with_capacity(queries.len());
    let mut routed = Vec::with_capacity(queries.len());
    for (qi, q) in queries.iter().enumerate() {
        q.validate(schema).map_err(|e| EngineError::InvalidQuery {
            index: qi,
            reason: e,
        })?;
        plans.push(Planner::plan(indexed_cols, slots, q));
        routed.push(relevant_shards_for(shard_by, shard_count, q));
    }
    Ok((plans, routed))
}

/// Answer one shard's slice of a batch: every assigned query evaluated
/// against `shard` with a per-query metered step count (the meter is
/// reset around each query via `take`). The single worker-side metering
/// protocol shared by [`QueryBatch::execute`], [`QueryBatch::execute_rows`]
/// and the live layer's locked twins — the cost accounting cannot drift
/// between them.
pub(crate) fn eval_assigned<T>(
    queries: &[SelectionQuery],
    shard: &pitract_relation::indexed::IndexedRelation,
    assigned: &[usize],
    eval: impl Fn(&pitract_relation::indexed::IndexedRelation, &SelectionQuery, &Meter) -> T,
) -> WorkerResults<T> {
    let meter = Meter::new();
    assigned
        .iter()
        .map(|&qi| {
            meter.take();
            let out = eval(shard, &queries[qi], &meter);
            (qi, out, meter.take())
        })
        .collect()
}

/// Run `eval_shard` for every shard that any query routes to, one scoped
/// thread per such shard. `eval_shard(s, assigned)` must evaluate the
/// assigned query indices against shard `s` (acquiring whatever access it
/// needs — a plain borrow for [`ShardedRelation`], a read lock for the
/// live layer) and return one `(query index, result, metered steps)`
/// triple per assigned query, in ascending query order.
///
/// Returns, per query, one `(shard, result, steps)` triple for every
/// shard the query routed to. The shard id is carried **explicitly** in
/// each triple: downstream merges (global-id translation in particular)
/// must never pair results with `routed[qi]` by position, because
/// nothing in the routing contract promises an ascending — or any
/// particular — shard order. A worker that panics does **not** abort the
/// caller: the panic is contained to the batch and reported as
/// [`EngineError::WorkerPanicked`] (one poisoned query must not take down
/// a serving process that multiplexes many clients).
pub(crate) fn fan_out<T: Send>(
    shard_count: usize,
    routed: &[Vec<usize>],
    eval_shard: impl Fn(usize, &[usize]) -> WorkerResults<T> + Sync,
) -> Result<MergedResults<T>, EngineError> {
    // Invert the routing into per-shard work lists.
    let mut work: Vec<Vec<usize>> = vec![Vec::new(); shard_count];
    for (qi, shards) in routed.iter().enumerate() {
        for &s in shards {
            work[s].push(qi);
        }
    }
    let eval_shard = &eval_shard;
    // One worker per shard with work (shards no query routes to cost
    // nothing, not even a thread spawn); each worker answers its whole
    // slice with a thread-local meter per query.
    let per_shard_results: Result<Vec<(usize, WorkerResults<T>)>, EngineError> =
        std::thread::scope(|scope| {
            let handles: Vec<(usize, _)> = work
                .iter()
                .enumerate()
                .filter(|(_, assigned)| !assigned.is_empty())
                .map(|(s, assigned)| (s, scope.spawn(move || (s, eval_shard(s, assigned)))))
                .collect();
            // Join *every* handle even after a failure: leaving a panicked
            // handle unjoined would make the scope itself re-panic on exit,
            // defeating the containment.
            let mut results = Vec::with_capacity(handles.len());
            let mut panicked: Option<usize> = None;
            for (s, handle) in handles {
                match handle.join() {
                    Ok(r) => results.push(r),
                    Err(_) => {
                        panicked.get_or_insert(s);
                    }
                }
            }
            match panicked {
                Some(shard) => Err(EngineError::WorkerPanicked { shard }),
                None => Ok(results),
            }
        });
    // Re-assemble per query. Workers were spawned in ascending shard
    // order and, within a shard, results are in work-list (ascending
    // query) order — but consumers must rely on the carried shard id,
    // not this incidental ordering.
    let mut merged: Vec<Vec<(usize, T, u64)>> = routed
        .iter()
        .map(|shards| Vec::with_capacity(shards.len()))
        .collect();
    for (s, results) in per_shard_results? {
        for (qi, out, steps) in results {
            debug_assert!(routed[qi].contains(&s));
            merged[qi].push((s, out, steps));
        }
    }
    Ok(merged)
}

/// Aggregate plans, routing and per-shard meters into the batch report
/// (shared with the live serving layer and the pooled executor).
pub(crate) fn report_from<T>(
    plans: Vec<QueryPlan>,
    routed: &[Vec<usize>],
    merged: &[Vec<(usize, T, u64)>],
) -> BatchReport {
    let per_query: Vec<QueryCost> = plans
        .into_iter()
        .zip(routed)
        .zip(merged)
        .map(|((plan, shards), results)| QueryCost {
            plan,
            steps: results.iter().map(|(_, _, s)| s).sum(),
            shards_probed: shards.len(),
        })
        .collect();
    let total_steps = per_query.iter().map(|c| c.steps).sum();
    BatchReport {
        per_query,
        total_steps,
        epoch: None,
        admission_wait: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::AccessPath;
    use crate::shard::ShardBy;
    use pitract_relation::{ColType, Relation, Schema, Value};

    fn relation(n: i64) -> Relation {
        let schema = Schema::new(&[("id", ColType::Int), ("city", ColType::Str)]);
        let rows = (0..n)
            .map(|i| vec![Value::Int(i), Value::str(format!("city{}", i % 10))])
            .collect();
        Relation::from_rows(schema, rows).unwrap()
    }

    fn mixed_batch(n: i64) -> QueryBatch {
        QueryBatch::new((0..60i64).map(|k| match k % 3 {
            0 => SelectionQuery::point(0, (k * 37) % (n + 20)),
            1 => SelectionQuery::range_closed(0, k * 11, k * 11 + 25),
            _ => SelectionQuery::and(
                SelectionQuery::point(1, format!("city{}", k % 10).as_str()),
                SelectionQuery::range_closed(0, k * 7, k * 7 + 40),
            ),
        }))
    }

    #[test]
    fn batch_answers_match_scan_oracle_at_every_shard_count() {
        let n = 500i64;
        let rel = relation(n);
        let batch = mixed_batch(n);
        for shards in [1, 2, 3, 8] {
            let sr =
                ShardedRelation::build(&rel, ShardBy::Hash { col: 0 }, shards, &[0, 1]).unwrap();
            let got = batch.execute(&sr).unwrap();
            for (q, &ans) in batch.queries().iter().zip(&got.answers) {
                assert_eq!(ans, rel.eval_scan(q), "shards={shards} {q:?}");
            }
        }
    }

    #[test]
    fn batch_rows_match_count_oracle() {
        let n = 300i64;
        let rel = relation(n);
        let sr = ShardedRelation::build(&rel, ShardBy::Hash { col: 1 }, 4, &[0, 1]).unwrap();
        let batch = mixed_batch(n);
        let got = batch.execute_rows(&sr).unwrap();
        for (q, ids) in batch.queries().iter().zip(&got.rows) {
            assert_eq!(ids.len(), rel.count_where(q), "{q:?}");
            assert!(ids.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
            for &gid in ids {
                assert!(q.matches(sr.row(gid).unwrap()), "{q:?} id {gid}");
            }
        }
    }

    #[test]
    fn report_accounts_every_query_and_path() {
        let n = 400i64;
        let sr = ShardedRelation::build(&relation(n), ShardBy::Hash { col: 0 }, 4, &[0]).unwrap();
        let batch = QueryBatch::new([
            SelectionQuery::point(0, 3i64),
            SelectionQuery::range_closed(0, 10i64, 20i64),
            SelectionQuery::and(
                SelectionQuery::point(0, 3i64),
                SelectionQuery::point(1, "city3"),
            ),
            SelectionQuery::point(1, "absent"),
        ]);
        let got = batch.execute(&sr).unwrap();
        let report = &got.report;
        assert_eq!(report.per_query.len(), 4);
        assert_eq!(
            report.total_steps,
            report.per_query.iter().map(|c| c.steps).sum::<u64>()
        );
        assert_eq!(
            report.path_histogram(),
            vec![
                ("point-probe", 1),
                ("range-probe", 1),
                ("index-nested-loop", 1),
                ("full-scan", 1),
            ]
        );
        // The shard-key point queries were routed to a single shard; the
        // unindexed-column scan had to visit all four.
        assert_eq!(report.per_query[0].shards_probed, 1);
        assert_eq!(report.per_query[2].shards_probed, 1);
        assert_eq!(report.per_query[3].shards_probed, 4);
        // The scan dominates the metered work.
        assert!(report.per_query[3].steps >= n as u64 / 2);
        assert!(report.per_query[0].steps < 64);
        // Plans carried through the report match the planner's routing.
        assert_eq!(
            report.per_query[0].plan.path,
            AccessPath::PointProbe { col: 0 }
        );
    }

    #[test]
    fn concurrent_batches_share_one_sharded_relation() {
        let n = 400i64;
        let rel = relation(n);
        let sr = ShardedRelation::build(&rel, ShardBy::Hash { col: 0 }, 4, &[0, 1]).unwrap();
        let batch = mixed_batch(n);
        let expected: Vec<bool> = batch.queries().iter().map(|q| rel.eval_scan(q)).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| batch.execute(&sr).unwrap().answers))
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), expected);
            }
        });
    }

    #[test]
    fn invalid_queries_are_rejected_not_panicked() {
        let sr = ShardedRelation::build(&relation(10), ShardBy::Hash { col: 0 }, 2, &[0]).unwrap();
        let batch = QueryBatch::new([SelectionQuery::point(7, 1i64)]);
        let err = batch.execute(&sr).unwrap_err();
        assert!(
            matches!(err, EngineError::InvalidQuery { index: 0, .. }),
            "{err}"
        );
        assert!(err.to_string().contains("query 0"), "{err}");
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let sr = ShardedRelation::build(&relation(10), ShardBy::Hash { col: 0 }, 2, &[0]).unwrap();
        let got = QueryBatch::new([]).execute(&sr).unwrap();
        assert!(got.answers.is_empty());
        assert_eq!(got.report.total_steps, 0);
    }

    /// Regression: a panicking shard worker used to abort the whole
    /// caller through `.expect("shard worker panicked")` — one poisoned
    /// query could take down a serving process. The join error is now
    /// caught and surfaced as a typed `EngineError::WorkerPanicked`.
    #[test]
    fn worker_panic_is_contained_and_typed() {
        // Quiet the panic message the worker thread would print: the
        // panic here is the fixture, not a failure.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let routed = vec![vec![0], vec![1], vec![0, 2]];
        let got = fan_out::<bool>(3, &routed, |s, assigned| {
            if s == 2 {
                panic!("poisoned query");
            }
            assigned.iter().map(|&qi| (qi, true, 1)).collect()
        });
        std::panic::set_hook(prev_hook);
        assert_eq!(got.unwrap_err(), EngineError::WorkerPanicked { shard: 2 });

        // Healthy workers still fan out and merge.
        let got = fan_out::<bool>(3, &routed, |_, assigned| {
            assigned.iter().map(|&qi| (qi, true, 1)).collect()
        })
        .unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(got[2].len(), 2, "query 2 routed to shards 0 and 2");
    }

    /// Regression: `execute_rows` used to pair each per-shard result
    /// with `routed[qi]` by *position*, which translates local row ids
    /// through the wrong shard's id map whenever the routed shard list
    /// is not ascending — an invariant nothing in `relevant_shards_for`
    /// pins. The merge now carries the shard id in the triple itself.
    /// This drives `fan_out` with a deliberately descending routed list
    /// and checks the translation against both orderings.
    #[test]
    fn merge_carries_shard_ids_so_routed_order_cannot_mistranslate() {
        // Shard 0 owns global ids 100.., shard 1 owns 200.. — a
        // positional zip against descending routing would swap them.
        let global_id = |shard: usize, local: usize| (shard + 1) * 100 + local;
        for routed in [vec![vec![1usize, 0]], vec![vec![0usize, 1]]] {
            let merged = fan_out::<Vec<usize>>(2, &routed, |s, assigned| {
                // Every shard reports local ids [0, s + 1).
                assigned
                    .iter()
                    .map(|&qi| (qi, (0..=s).collect(), 1))
                    .collect()
            })
            .unwrap();
            let mut rows: Vec<usize> = merged[0]
                .iter()
                .flat_map(|(s, locals, _)| locals.iter().map(|&l| global_id(*s, l)))
                .collect();
            rows.sort_unstable();
            assert_eq!(
                rows,
                vec![100, 200, 201],
                "translation must follow the carried shard id, routed={routed:?}"
            );
        }
    }
}
