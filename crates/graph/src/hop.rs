//! Pruned 2-hop reachability labels — the third production-grade point on
//! Example 3's preprocessing spectrum.
//!
//! Every node gets two hub sets: `L_out(v)` (hubs reachable *from* v) and
//! `L_in(v)` (hubs that *reach* v). Then `u ⇝ v` iff `L_out(u) ∩ L_in(v) ≠
//! ∅` — a sorted-list intersection, no graph traversal at query time.
//! Construction processes nodes hub-first (highest degree first) and runs a
//! **pruned** BFS per hub: a node whose reachability to/from the hub is
//! already implied by existing labels is not expanded, which is what keeps
//! labels small on hub-dominated graphs (the pruned-landmark idea).
//!
//! Like the GRAIL index this operates on DAGs (condense SCCs first for
//! general digraphs — `crate::compress` does exactly that); unlike GRAIL
//! the query is *label-only*: no fallback traversal, so query cost is
//! bounded by label sizes rather than by the graph.

use crate::repr::Graph;
use pitract_core::cost::Meter;

/// Pruned 2-hop (hub) labeling for DAG reachability.
#[derive(Debug, Clone)]
pub struct HopLabels {
    /// Hubs reachable from v (ascending hub-rank order).
    lout: Vec<Vec<u32>>,
    /// Hubs reaching v (ascending hub-rank order).
    lin: Vec<Vec<u32>>,
    /// node → rank in the hub order (lower = processed earlier).
    rank: Vec<u32>,
}

/// Errors from [`HopLabels::build`] and [`HopLabels::from_parts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopError {
    /// The graph has a directed cycle; condense SCCs first.
    Cyclic,
    /// The graph is undirected; hop labels are defined on DAGs.
    NotDirected,
    /// Reconstructed label parts were malformed (see the payload for the
    /// violated invariant).
    Malformed(&'static str),
}

impl std::fmt::Display for HopError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HopError::Cyclic => write!(f, "graph has a directed cycle; condense SCCs first"),
            HopError::NotDirected => write!(f, "hop labels are defined on directed graphs"),
            HopError::Malformed(why) => write!(f, "malformed hop labels: {why}"),
        }
    }
}

impl std::error::Error for HopError {}

impl HopLabels {
    /// Build labels in hub-first order. O(Σ pruned-BFS work); rejects
    /// undirected and cyclic inputs.
    pub fn build(g: &Graph) -> Result<Self, HopError> {
        if !g.is_directed() {
            return Err(HopError::NotDirected);
        }
        let n = g.node_count();

        // Cycle check via Kahn.
        let mut indeg = vec![0usize; n];
        for v in 0..n {
            for &w in g.neighbors(v) {
                indeg[w] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut seen = 0usize;
        while let Some(u) = queue.pop() {
            seen += 1;
            for &w in g.neighbors(u) {
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push(w);
                }
            }
        }
        if seen != n {
            return Err(HopError::Cyclic);
        }

        let rev = if n > 0 {
            g.reversed()
        } else {
            Graph::new(0, true)
        };

        // Hub order: total degree descending, id ascending to break ties.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v) + rev.degree(v)), v));
        let mut rank = vec![0u32; n];
        for (r, &v) in order.iter().enumerate() {
            rank[v] = r as u32;
        }

        let mut labels = HopLabels {
            lout: vec![Vec::new(); n],
            lin: vec![Vec::new(); n],
            rank,
        };

        let mut visited = vec![false; n];
        for &hub in &order {
            let h = labels.rank[hub];
            // Forward pruned BFS: hub ⇝ v ⇒ h ∈ lin[v].
            labels.pruned_bfs(g, hub, h, true, &mut visited);
            // Backward pruned BFS: v ⇝ hub ⇒ h ∈ lout[v].
            labels.pruned_bfs(&rev, hub, h, false, &mut visited);
        }
        Ok(labels)
    }

    /// One pruned BFS from `hub`. `forward = true` labels `lin` (hub
    /// reaches the visited node); `false` labels `lout`.
    fn pruned_bfs(&mut self, g: &Graph, hub: usize, h: u32, forward: bool, visited: &mut [bool]) {
        let mut frontier = vec![hub];
        let mut touched = vec![hub];
        visited[hub] = true;
        while let Some(u) = frontier.pop() {
            // Prune: if the current labels already certify the relation
            // between hub and u, u's region is covered by an earlier hub.
            let already = if u != hub {
                if forward {
                    self.query(hub, u)
                } else {
                    self.query(u, hub)
                }
            } else {
                false
            };
            if already {
                continue;
            }
            if forward {
                self.lin[u].push(h);
            } else {
                self.lout[u].push(h);
            }
            for &w in g.neighbors(u) {
                if !visited[w] {
                    visited[w] = true;
                    touched.push(w);
                    frontier.push(w);
                }
            }
        }
        for v in touched {
            visited[v] = false;
        }
    }

    /// Is `v` reachable from `u` (reflexively)? Sorted-list intersection of
    /// `L_out(u)` and `L_in(v)`.
    pub fn query(&self, u: usize, v: usize) -> bool {
        if u == v {
            return true;
        }
        let (a, b) = (&self.lout[u], &self.lin[v]);
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Metered query: one tick per label element touched — E6-style cost
    /// evidence that queries are label-bounded, not graph-bounded.
    pub fn query_metered(&self, u: usize, v: usize, meter: &Meter) -> bool {
        if u == v {
            meter.tick();
            return true;
        }
        let (a, b) = (&self.lout[u], &self.lin[v]);
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            meter.tick();
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        meter.tick();
        false
    }

    /// Total number of label entries (the index size statistic).
    pub fn total_label_entries(&self) -> usize {
        self.lout.iter().map(Vec::len).sum::<usize>() + self.lin.iter().map(Vec::len).sum::<usize>()
    }

    /// Largest single label (worst-case query factor).
    pub fn max_label_len(&self) -> usize {
        self.lout
            .iter()
            .chain(self.lin.iter())
            .map(Vec::len)
            .max()
            .unwrap_or(0)
    }

    /// Number of labeled nodes.
    pub fn node_count(&self) -> usize {
        self.rank.len()
    }

    /// `L_out(v)` per node, in ascending hub-rank order (persistence
    /// accessor).
    pub fn out_labels(&self) -> &[Vec<u32>] {
        &self.lout
    }

    /// `L_in(v)` per node, in ascending hub-rank order (persistence
    /// accessor).
    pub fn in_labels(&self) -> &[Vec<u32>] {
        &self.lin
    }

    /// node → hub rank (persistence accessor).
    pub fn hub_ranks(&self) -> &[u32] {
        &self.rank
    }

    /// Reassemble labels from previously exported parts — the warm-start
    /// path used by `pitract-store`. Validates the structural invariants
    /// the query path relies on (equal lengths, `rank` a permutation of
    /// `0..n`, labels strictly ascending and in range), so corrupt parts
    /// are rejected instead of silently answering wrong.
    pub fn from_parts(
        lout: Vec<Vec<u32>>,
        lin: Vec<Vec<u32>>,
        rank: Vec<u32>,
    ) -> Result<Self, HopError> {
        let n = rank.len();
        if lout.len() != n || lin.len() != n {
            return Err(HopError::Malformed("label and rank lengths differ"));
        }
        let mut seen = vec![false; n];
        for &r in &rank {
            let r = r as usize;
            if r >= n || seen[r] {
                return Err(HopError::Malformed("rank is not a permutation of 0..n"));
            }
            seen[r] = true;
        }
        for label in lout.iter().chain(lin.iter()) {
            if label.iter().any(|&h| h as usize >= n) {
                return Err(HopError::Malformed("label entry beyond node count"));
            }
            if label.windows(2).any(|w| w[0] >= w[1]) {
                // The sorted-intersection query requires strictly
                // ascending hub ranks.
                return Err(HopError::Malformed("label not strictly ascending"));
            }
        }
        Ok(HopLabels { lout, lin, rank })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use crate::traverse::reachable_bfs;

    #[test]
    fn matches_bfs_on_random_dags() {
        for seed in 0..8u64 {
            let g = generate::random_dag(50, 140, seed);
            let labels = HopLabels::build(&g).expect("generator emits DAGs");
            for u in 0..50 {
                for v in 0..50 {
                    assert_eq!(
                        labels.query(u, v),
                        reachable_bfs(&g, u, v),
                        "seed {seed} pair ({u},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_bfs_on_layered_and_tree_dags() {
        for g in [
            generate::layered_dag(6, 12, 2, 3),
            generate::random_tree(80, 5),
            generate::path(60, true),
        ] {
            let n = g.node_count();
            let labels = HopLabels::build(&g).unwrap();
            for u in (0..n).step_by(3) {
                for v in (0..n).step_by(5) {
                    assert_eq!(labels.query(u, v), reachable_bfs(&g, u, v), "({u},{v})");
                }
            }
        }
    }

    #[test]
    fn hub_domination_keeps_labels_small() {
        // A star-of-paths: one hub feeding many chains. The hub is ranked
        // first, so every node's label should contain just a couple of
        // hubs instead of a full path signature.
        let mut edges = Vec::new();
        let arms = 20;
        let len = 20;
        for a in 0..arms {
            edges.push((0, 1 + a * len));
            for i in 0..len - 1 {
                edges.push((1 + a * len + i, 1 + a * len + i + 1));
            }
        }
        let n = 1 + arms * len;
        let g = Graph::directed_from_edges(n, &edges);
        let labels = HopLabels::build(&g).unwrap();
        // Correctness on a sample.
        for v in (0..n).step_by(7) {
            assert_eq!(labels.query(0, v), reachable_bfs(&g, 0, v));
        }
        // Size: far below the quadratic closure (n²/64 words ≈ 2.5k u64s);
        // also the average label stays small.
        let avg = labels.total_label_entries() as f64 / (2 * n) as f64;
        assert!(avg < 8.0, "average label size {avg:.1} too large");
    }

    #[test]
    fn cyclic_graphs_are_rejected() {
        let g = Graph::directed_from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(HopLabels::build(&g).unwrap_err(), HopError::Cyclic);
    }

    #[test]
    fn empty_and_isolated() {
        let g = Graph::directed_from_edges(4, &[]);
        let labels = HopLabels::build(&g).unwrap();
        for v in 0..4 {
            assert!(labels.query(v, v));
            assert!(!labels.query(v, (v + 1) % 4));
        }
        let empty = Graph::directed_from_edges(0, &[]);
        assert!(HopLabels::build(&empty).is_ok());
    }

    #[test]
    fn metered_queries_are_label_bounded() {
        let g = generate::random_dag(400, 1200, 17);
        let labels = HopLabels::build(&g).unwrap();
        let meter = Meter::new();
        let bound = 2 * labels.max_label_len() as u64 + 1;
        for (u, v) in [(0usize, 399usize), (7, 311), (200, 100)] {
            meter.take();
            labels.query_metered(u, v, &meter);
            assert!(
                meter.steps() <= bound,
                "query ({u},{v}) cost {} exceeds label bound {bound}",
                meter.steps()
            );
        }
    }

    #[test]
    fn from_parts_roundtrips_and_validates() {
        let g = generate::random_dag(60, 150, 3);
        let labels = HopLabels::build(&g).unwrap();
        let rebuilt = HopLabels::from_parts(
            labels.out_labels().to_vec(),
            labels.in_labels().to_vec(),
            labels.hub_ranks().to_vec(),
        )
        .unwrap();
        for u in (0..60).step_by(4) {
            for v in (0..60).step_by(3) {
                assert_eq!(rebuilt.query(u, v), labels.query(u, v), "({u},{v})");
            }
        }

        // Length mismatch.
        assert_eq!(
            HopLabels::from_parts(vec![vec![]], vec![], vec![0]).unwrap_err(),
            HopError::Malformed("label and rank lengths differ")
        );
        // Rank not a permutation.
        assert!(matches!(
            HopLabels::from_parts(vec![vec![], vec![]], vec![vec![], vec![]], vec![0, 0])
                .unwrap_err(),
            HopError::Malformed(_)
        ));
        // Label entry out of range.
        assert!(matches!(
            HopLabels::from_parts(vec![vec![7]], vec![vec![]], vec![0]).unwrap_err(),
            HopError::Malformed(_)
        ));
        // Unsorted label.
        assert!(matches!(
            HopLabels::from_parts(vec![vec![1, 0], vec![]], vec![vec![], vec![]], vec![0, 1])
                .unwrap_err(),
            HopError::Malformed(_)
        ));
    }

    #[test]
    fn hop_error_displays() {
        assert!(HopError::Cyclic.to_string().contains("cycle"));
        assert!(HopError::Malformed("x").to_string().contains("x"));
    }

    #[test]
    fn undirected_rejected_with_error() {
        // Regression: this used to abort the process via `assert!` instead
        // of returning an error the caller can handle (mirroring `Cyclic`).
        let g = Graph::undirected_from_edges(2, &[(0, 1)]);
        assert_eq!(HopLabels::build(&g).unwrap_err(), HopError::NotDirected);
    }
}
