//! Workload generators for every graph experiment.
//!
//! The paper's cited compression results [16, 31, 32] target social
//! networks; absent their proprietary datasets, E8 substitutes synthetic
//! graphs whose *structural knobs* (degree skew, cycle density, layering)
//! exercise the same code paths — see DESIGN.md's substitution table.
//! All generators are seeded and deterministic so experiments reproduce
//! run-to-run.

use crate::repr::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Erdős–Rényi G(n, p) digraph (no self-loops).
pub fn gnp_directed(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n, true);
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Erdős–Rényi G(n, p) undirected graph (no self-loops).
pub fn gnp_undirected(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n, false);
    for u in 0..n {
        for v in u + 1..n {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Random DAG: `m` edges drawn uniformly with endpoints ordered by id.
pub fn random_dag(n: usize, m: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n, true);
    let mut added = 0usize;
    while added < m && n >= 2 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a < b {
            g.add_edge(a, b);
            added += 1;
        }
    }
    g
}

/// Uniform random recursive tree as a directed out-tree rooted at 0
/// (parent of `i` is uniform over `0..i`).
pub fn random_tree(n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n, true);
    for i in 1..n {
        let p = rng.gen_range(0..i);
        g.add_edge(p, i);
    }
    g
}

/// Preferential-attachment ("social-network-like") digraph: each new node
/// attaches `m_per_node` out-edges to earlier nodes, chosen proportionally
/// to current degree — the degree-skewed workload for E8.
pub fn preferential_attachment(n: usize, m_per_node: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n, true);
    // Degree-proportional sampling via a repeated-endpoints urn.
    let mut urn: Vec<usize> = vec![0];
    for v in 1..n {
        for _ in 0..m_per_node.max(1) {
            let target = urn[rng.gen_range(0..urn.len())];
            if target != v {
                g.add_edge(v, target);
                urn.push(target);
            }
        }
        urn.push(v);
    }
    g
}

/// Layered DAG: `layers` layers of `width` nodes; each node has edges to
/// `fanout` random nodes of the next layer. The circuit-shaped workload
/// used by E11's CVP experiments and by E6 on deep reachability.
pub fn layered_dag(layers: usize, width: usize, fanout: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = layers * width;
    let mut g = Graph::new(n, true);
    for l in 0..layers.saturating_sub(1) {
        for i in 0..width {
            let u = l * width + i;
            for _ in 0..fanout {
                let v = (l + 1) * width + rng.gen_range(0..width);
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Undirected path 0–1–…–(n−1): the worst case for search-based baselines.
pub fn path(n: usize, directed: bool) -> Graph {
    let edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
    if directed {
        Graph::directed_from_edges(n, &edges)
    } else {
        Graph::undirected_from_edges(n, &edges)
    }
}

/// Directed cycle 0→1→…→(n−1)→0: collapses to a point under compression.
pub fn cycle(n: usize) -> Graph {
    let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    Graph::directed_from_edges(n, &edges)
}

/// √n×√n grid, undirected: the moderate-diameter workload for E7.
pub fn grid(side: usize) -> Graph {
    let n = side * side;
    let mut g = Graph::new(n, false);
    for r in 0..side {
        for c in 0..side {
            let u = r * side + c;
            if c + 1 < side {
                g.add_edge(u, u + 1);
            }
            if r + 1 < side {
                g.add_edge(u, u + side);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_per_seed() {
        assert_eq!(gnp_directed(30, 0.2, 7), gnp_directed(30, 0.2, 7));
        assert_ne!(
            gnp_directed(30, 0.2, 7).edges(),
            gnp_directed(30, 0.2, 8).edges()
        );
        assert_eq!(
            preferential_attachment(40, 2, 5).edges(),
            preferential_attachment(40, 2, 5).edges()
        );
    }

    #[test]
    fn gnp_density_tracks_p() {
        let g = gnp_directed(100, 0.1, 42);
        let expected = 100.0 * 99.0 * 0.1;
        let m = g.edge_count() as f64;
        assert!(
            (m - expected).abs() < expected * 0.5,
            "edge count {m} far from expectation {expected}"
        );
    }

    #[test]
    fn random_dag_is_acyclic() {
        let g = random_dag(50, 120, 3);
        for (u, v) in g.edges() {
            assert!(u < v, "DAG edge ({u},{v}) must ascend");
        }
    }

    #[test]
    fn random_tree_has_n_minus_1_edges_and_is_connected() {
        let g = random_tree(200, 11);
        assert_eq!(g.edge_count(), 199);
        let (dist, _) = crate::traverse::bfs(&g, 0);
        assert!(dist.iter().all(Option::is_some), "tree must be connected");
    }

    #[test]
    fn preferential_attachment_is_skewed() {
        let g = preferential_attachment(500, 2, 9);
        // In-degree skew: the max in-degree should far exceed the mean.
        let rev = g.reversed();
        let max_in = (0..500).map(|v| rev.degree(v)).max().unwrap();
        let mean_in = rev.edge_count() as f64 / 500.0;
        assert!(
            max_in as f64 > 4.0 * mean_in,
            "max in-degree {max_in} vs mean {mean_in:.2}: not skewed"
        );
    }

    #[test]
    fn layered_dag_edges_respect_layers() {
        let g = layered_dag(5, 10, 2, 21);
        for (u, v) in g.edges() {
            assert_eq!(v / 10, u / 10 + 1, "edge ({u},{v}) skips layers");
        }
    }

    #[test]
    fn path_cycle_grid_shapes() {
        assert_eq!(path(10, true).edge_count(), 9);
        assert_eq!(cycle(10).edge_count(), 10);
        let g = grid(4);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 2 * 4 * 3);
    }

    #[test]
    fn tiny_sizes_do_not_panic() {
        let _ = gnp_directed(0, 0.5, 1);
        let _ = gnp_undirected(1, 0.5, 1);
        let _ = random_dag(1, 5, 1);
        let _ = random_tree(1, 1);
        let _ = preferential_attachment(1, 2, 1);
        let _ = layered_dag(1, 3, 2, 1);
        let _ = path(0, false);
        let _ = grid(0);
    }
}
