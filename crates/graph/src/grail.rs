//! GRAIL-style interval reachability labels for DAGs: the middle point of
//! the preprocessing trade-off between "no index" (per-query BFS) and the
//! quadratic-space closure matrix of Example 3.
//!
//! Preprocessing performs `k` randomized DFS post-order sweeps. Each sweep
//! assigns `L_i(v) = [low_i(v), post_i(v)]`, where `post_i` is the DFS
//! post-order rank and `low_i(v)` is the minimum `low` over all out-edges
//! (computed in reverse topological order). The invariant — for any DAG —
//! is containment along reachability: `u ⇝ v ⟹ L_i(v) ⊆ L_i(u)` for every
//! sweep. Queries therefore use the labels as a **sound negative filter**
//! (any violated containment proves unreachability in O(k)) and fall back
//! to a label-pruned DFS otherwise.
//!
//! Space: O(k·n) — linear, unlike the closure's O(n²) bits — at the cost
//! of non-constant positive queries. E6's narrative gains a third column:
//! scan-per-query, linear-space index, quadratic-space index.

use crate::repr::Graph;
use pitract_core::cost::Meter;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Errors from [`GrailIndex::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrailError {
    /// The input graph has a directed cycle; labels require a DAG.
    Cyclic,
}

/// Interval labels from one randomized sweep.
#[derive(Debug, Clone)]
struct Sweep {
    post: Vec<u32>,
    low: Vec<u32>,
}

/// A k-sweep GRAIL reachability index over a DAG.
#[derive(Debug, Clone)]
pub struct GrailIndex {
    adj: Vec<Vec<usize>>,
    sweeps: Vec<Sweep>,
}

impl GrailIndex {
    /// Build with `k` randomized sweeps (k ≥ 1). O(k·(n + m)) after a
    /// topological sort; rejects cyclic inputs.
    pub fn build(g: &Graph, k: usize, seed: u64) -> Result<Self, GrailError> {
        assert!(g.is_directed(), "GRAIL labels are defined on DAGs");
        assert!(k >= 1, "at least one sweep required");
        let n = g.node_count();
        let adj: Vec<Vec<usize>> = (0..n).map(|v| g.neighbors(v).to_vec()).collect();

        // Topological order (Kahn) — also the cycle check.
        let mut indeg = vec![0usize; n];
        for ns in &adj {
            for &v in ns {
                indeg[v] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(u) = queue.pop() {
            topo.push(u);
            for &v in &adj[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        if topo.len() != n {
            return Err(GrailError::Cyclic);
        }

        let mut rng = StdRng::seed_from_u64(seed);
        let mut sweeps = Vec::with_capacity(k);
        for _ in 0..k {
            // Randomized DFS post-order with restarts in random root order.
            let mut roots: Vec<usize> = (0..n).collect();
            roots.shuffle(&mut rng);
            let mut shuffled_adj: Vec<Vec<usize>> = adj.clone();
            for ns in &mut shuffled_adj {
                ns.shuffle(&mut rng);
            }
            let mut post = vec![u32::MAX; n];
            let mut clock = 0u32;
            let mut visited = vec![false; n];
            for &root in &roots {
                if visited[root] {
                    continue;
                }
                // Iterative DFS assigning post-order numbers.
                let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
                visited[root] = true;
                while let Some(&(u, ci)) = stack.last() {
                    if ci < shuffled_adj[u].len() {
                        stack.last_mut().expect("nonempty").1 += 1;
                        let c = shuffled_adj[u][ci];
                        if !visited[c] {
                            visited[c] = true;
                            stack.push((c, 0));
                        }
                    } else {
                        post[u] = clock;
                        clock += 1;
                        stack.pop();
                    }
                }
            }
            // low over ALL out-edges, in reverse topological order.
            let mut low = post.clone();
            for &u in topo.iter().rev() {
                for &v in &adj[u] {
                    low[u] = low[u].min(low[v]);
                }
            }
            sweeps.push(Sweep { post, low });
        }
        Ok(GrailIndex { adj, sweeps })
    }

    /// Number of sweeps k.
    pub fn sweep_count(&self) -> usize {
        self.sweeps.len()
    }

    /// The containment filter: `false` means **provably unreachable**;
    /// `true` means "possibly reachable, verify".
    fn filter(&self, u: usize, v: usize) -> bool {
        self.sweeps
            .iter()
            .all(|s| s.low[u] <= s.low[v] && s.post[v] <= s.post[u])
    }

    /// Is `v` reachable from `u` (reflexively)? Sound and complete: the
    /// filter prunes, a guided DFS confirms.
    pub fn reachable(&self, u: usize, v: usize) -> bool {
        self.reachable_metered(u, v, &Meter::new())
    }

    /// Metered query: ticks per filter evaluation and per DFS node visit,
    /// so E6 can report how much the labels prune.
    pub fn reachable_metered(&self, u: usize, v: usize, meter: &Meter) -> bool {
        if u == v {
            return true;
        }
        meter.add(self.sweeps.len() as u64);
        if !self.filter(u, v) {
            return false;
        }
        // Label-pruned DFS.
        let n = self.adj.len();
        let mut visited = vec![false; n];
        let mut stack = vec![u];
        visited[u] = true;
        while let Some(x) = stack.pop() {
            meter.tick();
            for &y in &self.adj[x] {
                if y == v {
                    return true;
                }
                if !visited[y] {
                    meter.add(self.sweeps.len() as u64);
                    if self.filter(y, v) {
                        visited[y] = true;
                        stack.push(y);
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use crate::traverse::reachable_bfs;

    #[test]
    fn matches_bfs_on_random_dags() {
        for seed in 0..6u64 {
            let g = generate::random_dag(60, 150, seed);
            let idx = GrailIndex::build(&g, 3, seed).expect("generator emits DAGs");
            for u in 0..60 {
                for v in 0..60 {
                    assert_eq!(
                        idx.reachable(u, v),
                        reachable_bfs(&g, u, v),
                        "seed {seed} pair ({u},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_bfs_on_layered_dags() {
        let g = generate::layered_dag(8, 10, 2, 5);
        let idx = GrailIndex::build(&g, 2, 9).unwrap();
        for u in (0..80).step_by(3) {
            for v in (0..80).step_by(7) {
                assert_eq!(idx.reachable(u, v), reachable_bfs(&g, u, v), "({u},{v})");
            }
        }
    }

    #[test]
    fn filter_is_sound_never_prunes_reachable_pairs() {
        // If u ⇝ v the containment must hold in every sweep.
        let g = generate::random_dag(50, 120, 31);
        let idx = GrailIndex::build(&g, 4, 77).unwrap();
        for u in 0..50 {
            for v in 0..50 {
                if u != v && reachable_bfs(&g, u, v) {
                    assert!(idx.filter(u, v), "filter pruned reachable ({u},{v})");
                }
            }
        }
    }

    #[test]
    fn filter_prunes_most_negatives_on_deep_chains() {
        // Two disjoint long chains: cross-chain queries should die in the
        // filter without any DFS (steps ≈ k, not ≈ n).
        let n = 2000;
        let mut edges: Vec<(usize, usize)> = (1..n / 2).map(|i| (i - 1, i)).collect();
        edges.extend((n / 2 + 1..n).map(|i| (i - 1, i)));
        let g = Graph::directed_from_edges(n, &edges);
        let idx = GrailIndex::build(&g, 2, 3).unwrap();
        let meter = Meter::new();
        assert!(!idx.reachable_metered(0, n - 1, &meter));
        assert!(
            meter.steps() <= 8,
            "cross-chain negative cost {} — filter not pruning",
            meter.steps()
        );
    }

    #[test]
    fn cyclic_graphs_are_rejected() {
        let g = Graph::directed_from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(GrailIndex::build(&g, 2, 1).unwrap_err(), GrailError::Cyclic);
    }

    #[test]
    fn reflexive_and_empty_cases() {
        let g = Graph::directed_from_edges(4, &[]);
        let idx = GrailIndex::build(&g, 1, 1).unwrap();
        for v in 0..4 {
            assert!(idx.reachable(v, v));
        }
        assert!(!idx.reachable(0, 1));
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generate::random_dag(40, 80, 11);
        let a = GrailIndex::build(&g, 2, 42).unwrap();
        let b = GrailIndex::build(&g, 2, 42).unwrap();
        for u in 0..40 {
            for v in 0..40 {
                assert_eq!(a.reachable(u, v), b.reachable(u, v));
            }
        }
    }

    #[test]
    #[should_panic(expected = "DAGs")]
    fn undirected_rejected() {
        let g = Graph::undirected_from_edges(2, &[(0, 1)]);
        let _ = GrailIndex::build(&g, 1, 1);
    }
}
