//! Query-preserving compression for reachability — Section 4(5).
//!
//! "For a class Q of queries, preprocess a database D by finding a smaller
//! database D_c via an efficient compression function, such that for all
//! queries Q ∈ Q, Q(D) = Q(D_c)." For reachability queries the compression
//! of Fan et al. [SIGMOD 2012] is, in essence:
//!
//! 1. **Collapse strongly connected components** — intra-SCC reachability
//!    is constant-true, inter-SCC reachability factors through the
//!    condensation.
//! 2. **Merge reachability-equivalent nodes** of the condensation: nodes
//!    with identical (reflexive) ancestor *and* descendant sets answer
//!    every reachability query identically, so one representative suffices.
//!    (On a DAG, two distinct equivalent nodes are never reachable from one
//!    another: mutual membership in each other's descendant sets would form
//!    a cycle.)
//!
//! The result is a [`CompressedReach`] structure that answers exactly the
//! original queries — verified exhaustively in tests — while experiment E8
//! reports the size reduction and the query-time effect.

use crate::repr::Graph;
use crate::scc::condensation;
use pitract_core::cost::Meter;
use pitract_pram::matrix::BitMatrix;
use std::collections::HashMap;

/// A reachability-preserving compressed form of a directed graph.
#[derive(Debug, Clone)]
pub struct CompressedReach {
    /// node → SCC id.
    scc_of: Vec<usize>,
    /// SCC id → merged class id.
    class_of_scc: Vec<usize>,
    /// Does the node's SCC contain an internal cycle (size > 1 or
    /// self-loop)? Needed for `u ⇝ u` with non-trivial loops and for
    /// same-SCC pairs.
    cyclic_scc: Vec<bool>,
    /// The compressed graph: one node per equivalence class.
    compressed: Graph,
    /// All-pairs closure of the compressed graph (classes are few).
    class_closure: BitMatrix,
    original_size: usize,
}

impl CompressedReach {
    /// Compress in PTIME: condensation, closure, equivalence merge.
    pub fn build(g: &Graph) -> Self {
        assert!(g.is_directed(), "reachability compression expects digraphs");
        let original_size = g.size();
        let (cond, scc) = condensation(g);
        let k = cond.node_count();

        // Closure of the condensation (reflexive).
        let cond_edges = cond.edges();
        let adj = BitMatrix::from_edges(k, &cond_edges);
        let (closure, _) = adj.transitive_closure();

        // Ancestor bitsets = columns of the closure; descendant = rows.
        // Equivalence key: (proper-descendant row, proper-ancestor column),
        // i.e. the closure with the reflexive bit dropped. Keeping the
        // self-bit would make every key unique and the merge vacuous;
        // dropping it is sound because two distinct DAG nodes with equal
        // proper sets can never reach each other (mutual reachability would
        // be a cycle), so merged nodes answer every query identically.
        let words = k.div_ceil(64).max(1);
        let mut desc_rows: Vec<Vec<u64>> = vec![vec![0; words]; k];
        let mut anc_cols: Vec<Vec<u64>> = vec![vec![0; words]; k];
        for u in 0..k {
            for v in 0..k {
                if u != v && closure.reachable(u, v) {
                    desc_rows[u][v / 64] |= 1 << (v % 64);
                    anc_cols[v][u / 64] |= 1 << (u % 64);
                }
            }
        }
        let mut class_of_scc = vec![usize::MAX; k];
        let mut classes: HashMap<(Vec<u64>, Vec<u64>), usize> = HashMap::new();
        let mut representatives: Vec<usize> = Vec::new();
        for c in 0..k {
            let key = (desc_rows[c].clone(), anc_cols[c].clone());
            let id = *classes.entry(key).or_insert_with(|| {
                representatives.push(c);
                representatives.len() - 1
            });
            class_of_scc[c] = id;
        }
        let class_count = representatives.len();

        // Compressed graph: deduplicated class-level edges.
        let mut edges: Vec<(usize, usize)> = cond_edges
            .iter()
            .map(|&(u, v)| (class_of_scc[u], class_of_scc[v]))
            .filter(|&(u, v)| u != v)
            .collect();
        edges.sort_unstable();
        edges.dedup();
        let compressed = Graph::directed_from_edges(class_count, &edges);

        // Class-level closure for O(1) queries (class count is small).
        let (class_closure, _) =
            BitMatrix::from_edges(class_count, &compressed.edges()).transitive_closure();

        // Cyclic-SCC flags per node.
        let sizes = scc.sizes();
        let mut cyclic = vec![false; scc.count];
        for (c, &s) in sizes.iter().enumerate() {
            cyclic[c] = s > 1;
        }
        for v in 0..g.node_count() {
            if g.neighbors(v).contains(&v) {
                cyclic[scc.comp[v]] = true;
            }
        }

        CompressedReach {
            scc_of: scc.comp.clone(),
            class_of_scc,
            cyclic_scc: cyclic,
            compressed,
            class_closure,
            original_size,
        }
    }

    /// Answer the original query `u ⇝ v` on the compressed form. O(1).
    pub fn reachable(&self, u: usize, v: usize) -> bool {
        if u == v {
            return true;
        }
        let (cu, cv) = (self.scc_of[u], self.scc_of[v]);
        if cu == cv {
            // Same SCC with more than one node always cycles through.
            return self.cyclic_scc[cu];
        }
        let (ku, kv) = (self.class_of_scc[cu], self.class_of_scc[cv]);
        if ku == kv {
            // Distinct SCCs merged into one class are mutually unreachable.
            return false;
        }
        self.class_closure.reachable(ku, kv)
    }

    /// Metered query for E8.
    pub fn reachable_metered(&self, u: usize, v: usize, meter: &Meter) -> bool {
        meter.add(3);
        self.reachable(u, v)
    }

    /// The compressed graph (one node per equivalence class).
    pub fn compressed_graph(&self) -> &Graph {
        &self.compressed
    }

    /// Compression ratio `|G| / |G_c|` (≥ 1; larger is better), measured as
    /// (nodes + edges) like the paper's cited systems report.
    pub fn compression_ratio(&self) -> f64 {
        let c = self.compressed.size().max(1);
        self.original_size as f64 / c as f64
    }

    /// The SCC decomposition is exposed for diagnostics and tests.
    pub fn scc_of(&self, v: usize) -> usize {
        self.scc_of[v]
    }
}

/// Helper: compression statistics for experiment tables.
#[derive(Debug, Clone, Copy)]
pub struct CompressionStats {
    /// Nodes before / after.
    pub nodes: (usize, usize),
    /// Edges before / after.
    pub edges: (usize, usize),
    /// `|G| / |G_c|`.
    pub ratio: f64,
}

/// Compute before/after statistics in one call.
pub fn compression_stats(g: &Graph, c: &CompressedReach) -> CompressionStats {
    CompressionStats {
        nodes: (g.node_count(), c.compressed_graph().node_count()),
        edges: (g.edge_count(), c.compressed_graph().edge_count()),
        ratio: c.compression_ratio(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traverse::reachable_bfs;

    fn check_preserves(g: &Graph) {
        let c = CompressedReach::build(g);
        for u in 0..g.node_count() {
            for v in 0..g.node_count() {
                assert_eq!(
                    c.reachable(u, v),
                    u == v || reachable_bfs(g, u, v),
                    "pair ({u},{v}) on {:?}",
                    g.edges()
                );
            }
        }
    }

    #[test]
    fn preserves_on_small_shapes() {
        // Cycle + tail.
        check_preserves(&Graph::directed_from_edges(
            4,
            &[(0, 1), (1, 2), (2, 0), (2, 3)],
        ));
        // Diamond.
        check_preserves(&Graph::directed_from_edges(
            4,
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
        ));
        // Disconnected.
        check_preserves(&Graph::directed_from_edges(5, &[(0, 1), (3, 4)]));
        // Empty.
        check_preserves(&Graph::directed_from_edges(3, &[]));
        // Self loops.
        check_preserves(&Graph::directed_from_edges(3, &[(0, 0), (0, 1)]));
    }

    #[test]
    fn preserves_on_random_graphs() {
        let mut state = 0xC0FFEEu64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [5usize, 12, 30] {
            for density in [1usize, 2, 4] {
                let edges: Vec<(usize, usize)> = (0..n * density)
                    .map(|_| ((rnd() as usize) % n, (rnd() as usize) % n))
                    .collect();
                check_preserves(&Graph::directed_from_edges(n, &edges));
            }
        }
    }

    #[test]
    fn big_cycle_compresses_to_one_node() {
        let n = 100;
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = Graph::directed_from_edges(n, &edges);
        let c = CompressedReach::build(&g);
        assert_eq!(c.compressed_graph().node_count(), 1);
        assert!(c.compression_ratio() > 50.0);
        assert!(c.reachable(3, 97));
        assert!(c.reachable(97, 3));
    }

    #[test]
    fn diamond_middle_nodes_merge_into_one_class() {
        // 0 → 1 → 3, 0 → 2 → 3: nodes 1 and 2 have identical proper
        // ancestor ({0}) and descendant ({3}) sets, so they merge — the
        // signature compression move of Fan et al.
        let g = Graph::directed_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let c = CompressedReach::build(&g);
        assert_eq!(c.compressed_graph().node_count(), 3, "1 and 2 must merge");
        check_preserves(&g);
        // And the merged pair answers false between its own members.
        assert!(!c.reachable(1, 2));
        assert!(!c.reachable(2, 1));
    }

    #[test]
    fn wide_parallel_layers_compress_well() {
        // One source fanning out to 20 equivalent middles into one sink.
        let mut edges = Vec::new();
        for m in 1..=20 {
            edges.push((0, m));
            edges.push((m, 21));
        }
        let g = Graph::directed_from_edges(22, &edges);
        let c = CompressedReach::build(&g);
        assert_eq!(c.compressed_graph().node_count(), 3);
        assert!(c.compression_ratio() > 5.0);
        check_preserves(&g);
    }

    #[test]
    fn compression_never_lies_about_mutual_unreachability() {
        // Merged classes must answer false between their own members.
        // Construct two equivalent-but-distinct nodes: impossible to merge
        // wrongly if preservation holds on all pairs; stress with a bipartite
        // pattern.
        let mut edges = Vec::new();
        for u in 0..4 {
            for v in 4..8 {
                edges.push((u, v));
            }
        }
        let g = Graph::directed_from_edges(8, &edges);
        check_preserves(&g);
        let c = CompressedReach::build(&g);
        // Sources 0..4 all have identical closure rows/cols except the
        // reflexive bit — and all are mutually unreachable, so whatever the
        // merge decided, answers must be false:
        for u in 0..4 {
            for v in 0..4 {
                if u != v {
                    assert!(!c.reachable(u, v), "({u},{v})");
                }
            }
        }
    }

    #[test]
    fn stats_report_shrinkage() {
        let n = 60;
        // Three disjoint 20-cycles.
        let mut edges = Vec::new();
        for c in 0..3 {
            for i in 0..20 {
                edges.push((c * 20 + i, c * 20 + (i + 1) % 20));
            }
        }
        let g = Graph::directed_from_edges(n, &edges);
        let c = CompressedReach::build(&g);
        let stats = compression_stats(&g, &c);
        assert_eq!(stats.nodes.0, 60);
        assert!(stats.nodes.1 <= 3);
        assert!(stats.ratio > 10.0);
    }

    #[test]
    #[should_panic(expected = "digraph")]
    fn undirected_input_rejected() {
        CompressedReach::build(&Graph::undirected_from_edges(2, &[(0, 1)]));
    }
}
