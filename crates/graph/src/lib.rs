//! # pitract-graph — the graph substrate behind BDS, reachability and
//! query-preserving compression
//!
//! Three of the paper's central artifacts are graph problems:
//!
//! * **Breadth-Depth Search (BDS)** — Example 2, the P-complete problem
//!   shown ΠTP-complete under `≤NC_fa` (Theorem 5). [`bds`] implements the
//!   search itself (the "preprocess nothing" factorization Υ′ of Figure 1,
//!   which must re-run the full PTIME search per query) and the
//!   preprocessed visit-order index of Example 5 (the Υ_BDS factorization:
//!   O(1)/O(log n) per query).
//! * **Reachability** — Example 3, the NL-complete GAP problem: [`reach`]
//!   provides the per-query BFS baseline and the all-pairs closure index
//!   ("answer all queries in O(1) time by using the matrix").
//! * **Query-preserving compression** — Section 4(5) [Fan et al.]:
//!   [`compress`] collapses strongly connected components and merges
//!   reachability-equivalent nodes, producing a smaller graph that answers
//!   *exactly* the same reachability queries.
//!
//! Supporting modules: [`repr`] (adjacency representation), [`traverse`]
//! (BFS/DFS/components), [`scc`] (Tarjan condensation), [`generate`]
//! (workload generators for every experiment).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bds;
pub mod compress;
pub mod generate;
pub mod grail;
pub mod hop;
pub mod reach;
pub mod repr;
pub mod scc;
pub mod traverse;

pub use repr::Graph;
