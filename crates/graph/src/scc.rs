//! Strongly connected components (iterative Tarjan) and condensation —
//! the first stage of query-preserving reachability compression (E8).
//!
//! Collapsing each SCC to a single node preserves every inter-node
//! reachability fact: `u ⇝ v` in `G` iff `scc(u) ⇝ scc(v)` in the
//! condensation (with the intra-component case answered by membership).
//! That makes condensation the canonical example of the paper's Section
//! 4(5): a PTIME compression that preserves the answers to a query class —
//! not the data itself.

use crate::repr::Graph;

/// The SCC decomposition of a directed graph.
#[derive(Debug, Clone)]
pub struct SccDecomposition {
    /// `comp[v]` = component id of node `v`; ids are in **reverse
    /// topological order of the condensation** (Tarjan's output order:
    /// a component's id is smaller than its successors' ids... precisely:
    /// if C₁ ⇝ C₂ and C₁ ≠ C₂ then id(C₁) > id(C₂)).
    pub comp: Vec<usize>,
    /// Number of components.
    pub count: usize,
}

impl SccDecomposition {
    /// Nodes grouped by component id.
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.count];
        for (v, &c) in self.comp.iter().enumerate() {
            groups[c].push(v);
        }
        groups
    }

    /// Size of each component.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &c in &self.comp {
            sizes[c] += 1;
        }
        sizes
    }
}

/// Iterative Tarjan SCC. Directed graphs only.
pub fn tarjan_scc(g: &Graph) -> SccDecomposition {
    assert!(g.is_directed(), "SCCs are defined on directed graphs");
    let n = g.node_count();
    const UNSET: usize = usize::MAX;

    let mut index = vec![UNSET; n];
    let mut lowlink = vec![UNSET; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNSET; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut count = 0usize;

    // Explicit DFS frames: (node, next neighbor position).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        frames.push((root, 0));
        while let Some(&(v, ni)) = frames.last() {
            if ni == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let neighbors = g.neighbors(v);
            if ni < neighbors.len() {
                frames.last_mut().expect("nonempty").1 += 1;
                let w = neighbors[ni];
                if index[w] == UNSET {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    // v roots a component: pop the stack down to v.
                    loop {
                        let w = stack.pop().expect("component member on stack");
                        on_stack[w] = false;
                        comp[w] = count;
                        if w == v {
                            break;
                        }
                    }
                    count += 1;
                }
            }
        }
    }

    SccDecomposition { comp, count }
}

/// Condensation: one node per SCC, deduplicated edges between distinct
/// components. Returns the condensed graph plus the decomposition used.
pub fn condensation(g: &Graph) -> (Graph, SccDecomposition) {
    let scc = tarjan_scc(g);
    let mut edges = Vec::new();
    for (u, v) in g.edges() {
        let (cu, cv) = (scc.comp[u], scc.comp[v]);
        if cu != cv {
            edges.push((cu, cv));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    (Graph::directed_from_edges(scc.count, &edges), scc)
}

/// Does the component carry an internal cycle (size > 1, or a self-loop)?
/// Needed to answer `u ⇝ u`-style queries on the compressed form.
pub fn has_internal_cycle(g: &Graph, scc: &SccDecomposition, component: usize) -> bool {
    let mut size = 0;
    for (v, &c) in scc.comp.iter().enumerate() {
        if c == component {
            size += 1;
            if size > 1 {
                return true;
            }
            if g.neighbors(v).contains(&v) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traverse::reachable_bfs;

    fn two_cycles_and_tail() -> Graph {
        // Cycle {0,1,2} -> cycle {3,4} -> tail 5.
        Graph::directed_from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3), (4, 5)])
    }

    #[test]
    fn components_are_grouped_correctly() {
        let scc = tarjan_scc(&two_cycles_and_tail());
        assert_eq!(scc.count, 3);
        assert_eq!(scc.comp[0], scc.comp[1]);
        assert_eq!(scc.comp[1], scc.comp[2]);
        assert_eq!(scc.comp[3], scc.comp[4]);
        assert_ne!(scc.comp[0], scc.comp[3]);
        assert_ne!(scc.comp[3], scc.comp[5]);
    }

    #[test]
    fn tarjan_ids_are_reverse_topological() {
        let g = two_cycles_and_tail();
        let scc = tarjan_scc(&g);
        // Successor components must have *smaller* ids.
        for (u, v) in g.edges() {
            let (cu, cv) = (scc.comp[u], scc.comp[v]);
            if cu != cv {
                assert!(cu > cv, "edge ({u},{v}): id({cu}) must exceed id({cv})");
            }
        }
    }

    #[test]
    fn dag_has_singleton_components() {
        let g = Graph::directed_from_edges(4, &[(0, 1), (1, 2), (0, 3)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count, 4);
        let sizes = scc.sizes();
        assert!(sizes.iter().all(|&s| s == 1));
    }

    #[test]
    fn full_cycle_is_one_component() {
        let n = 50;
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let scc = tarjan_scc(&Graph::directed_from_edges(n, &edges));
        assert_eq!(scc.count, 1);
    }

    #[test]
    fn condensation_is_acyclic_and_preserves_reachability() {
        let g = two_cycles_and_tail();
        let (cond, scc) = condensation(&g);
        assert_eq!(cond.node_count(), 3);
        // Acyclicity: every edge goes from higher to lower id (reverse topo).
        for (u, v) in cond.edges() {
            assert!(u > v, "condensation edge ({u},{v}) violates topo ids");
        }
        // Reachability preservation across all node pairs.
        for u in 0..g.node_count() {
            for v in 0..g.node_count() {
                let original = reachable_bfs(&g, u, v);
                let compressed = if scc.comp[u] == scc.comp[v] {
                    u == v || has_internal_cycle(&g, &scc, scc.comp[u])
                } else {
                    reachable_bfs(&cond, scc.comp[u], scc.comp[v])
                };
                assert_eq!(original, compressed, "pair ({u},{v})");
            }
        }
    }

    #[test]
    fn condensation_deduplicates_edges() {
        // Two parallel inter-component edges collapse to one.
        let g = Graph::directed_from_edges(4, &[(0, 1), (1, 0), (0, 2), (1, 2), (2, 3)]);
        let (cond, _) = condensation(&g);
        assert_eq!(cond.node_count(), 3);
        assert_eq!(cond.edge_count(), 2);
    }

    #[test]
    fn self_loop_component_has_internal_cycle() {
        let g = Graph::directed_from_edges(2, &[(0, 0), (0, 1)]);
        let scc = tarjan_scc(&g);
        assert!(has_internal_cycle(&g, &scc, scc.comp[0]));
        assert!(!has_internal_cycle(&g, &scc, scc.comp[1]));
    }

    #[test]
    fn deep_recursion_does_not_overflow() {
        // 100k-node path: the iterative implementation must survive.
        let n = 100_000;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let scc = tarjan_scc(&Graph::directed_from_edges(n, &edges));
        assert_eq!(scc.count, n);
    }

    #[test]
    #[should_panic(expected = "directed")]
    fn undirected_graph_rejected() {
        tarjan_scc(&Graph::undirected_from_edges(2, &[(0, 1)]));
    }
}
