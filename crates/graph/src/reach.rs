//! Reachability indexes — Example 3 of the paper.
//!
//! The class Q₂ of reachability queries (the NL-complete GAP problem) is
//! Π-tractable two ways:
//!
//! * it is already in NC (transitive closure by matrix squaring — see
//!   `pitract_pram::matrix`), so even the trivial preprocessing works; and
//! * "better still", one can **precompute the all-pairs reachability
//!   matrix** in PTIME and answer every query in O(1) — that is
//!   [`ReachIndex`].
//!
//! The module also provides [`TreeIntervals`], the classic O(n)
//! preprocessing / O(1) ancestor test for the special case of trees, used
//! by the examples and by E6 as a cheaper index when the data is
//! tree-shaped.

use crate::repr::Graph;
use pitract_core::cost::Meter;
use pitract_pram::machine::Cost;
use pitract_pram::matrix::BitMatrix;

/// All-pairs reachability index: the "matrix" of Example 3.
#[derive(Debug, Clone)]
pub struct ReachIndex {
    closure: BitMatrix,
}

impl ReachIndex {
    /// PTIME preprocessing by a DFS from every node: O(n·(n+m)).
    pub fn build(g: &Graph) -> Self {
        let n = g.node_count();
        let mut closure = BitMatrix::zero(n);
        let mut stack = Vec::new();
        let mut seen = vec![false; n];
        for s in 0..n {
            seen.iter_mut().for_each(|b| *b = false);
            stack.push(s);
            seen[s] = true;
            while let Some(u) = stack.pop() {
                closure.set(s, u, true);
                for &v in g.neighbors(u) {
                    if !seen[v] {
                        seen[v] = true;
                        stack.push(v);
                    }
                }
            }
        }
        ReachIndex { closure }
    }

    /// NC preprocessing by repeated Boolean matrix squaring; returns the
    /// index together with the PRAM [`Cost`] (depth Θ(log² n)) — the E14
    /// witness that even the *preprocessing* of Example 3 parallelizes.
    pub fn build_parallel_model(g: &Graph) -> (Self, Cost) {
        let edges = g.edges();
        let adj = BitMatrix::from_edges(g.node_count(), &edges);
        let (closure, cost) = adj.transitive_closure();
        (ReachIndex { closure }, cost)
    }

    /// Is `t` reachable from `s` (reflexively)? O(1): one bit probe.
    pub fn reachable(&self, s: usize, t: usize) -> bool {
        self.closure.reachable(s, t)
    }

    /// Metered O(1) probe for E6.
    pub fn reachable_metered(&self, s: usize, t: usize, meter: &Meter) -> bool {
        meter.tick();
        self.reachable(s, t)
    }

    /// Number of reachable pairs (including reflexive ones) — a workload
    /// statistic reported by E6/E8.
    pub fn reachable_pairs(&self) -> u64 {
        self.closure.count_ones()
    }

    /// Dimension of the indexed graph.
    pub fn len(&self) -> usize {
        self.closure.dim()
    }

    /// Is the indexed graph empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Interval (pre/post order) labeling of a rooted tree: `u` is an ancestor
/// of `v` iff `in[u] ≤ in[v] < out[u]`. O(n) preprocessing, O(1) queries —
/// the tree-shaped special case of reachability indexing.
#[derive(Debug, Clone)]
pub struct TreeIntervals {
    tin: Vec<usize>,
    tout: Vec<usize>,
}

impl TreeIntervals {
    /// Build from a directed graph that must be a forest of out-trees
    /// (each node at most one parent, no cycles). Panics on malformed
    /// input — tree-shape is this structure's contract.
    pub fn build(g: &Graph, roots: &[usize]) -> Self {
        let n = g.node_count();
        let mut tin = vec![usize::MAX; n];
        let mut tout = vec![usize::MAX; n];
        let mut clock = 0usize;
        // Iterative pre/post-order.
        for &root in roots {
            assert!(tin[root] == usize::MAX, "root {root} already visited");
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            tin[root] = clock;
            clock += 1;
            while let Some(&(u, ci)) = stack.last() {
                let ns = g.neighbors(u);
                if ci < ns.len() {
                    stack.last_mut().expect("nonempty").1 += 1;
                    let c = ns[ci];
                    assert!(tin[c] == usize::MAX, "node {c} has two parents or a cycle");
                    tin[c] = clock;
                    clock += 1;
                    stack.push((c, 0));
                } else {
                    tout[u] = clock;
                    clock += 1;
                    stack.pop();
                }
            }
        }
        assert!(
            tin.iter().all(|&t| t != usize::MAX),
            "some nodes unreachable from the given roots"
        );
        TreeIntervals { tin, tout }
    }

    /// Is `u` an ancestor of `v` (reflexively)? O(1).
    pub fn is_ancestor(&self, u: usize, v: usize) -> bool {
        self.tin[u] <= self.tin[v] && self.tin[v] < self.tout[u]
    }

    /// Metered O(1) probe.
    pub fn is_ancestor_metered(&self, u: usize, v: usize, meter: &Meter) -> bool {
        meter.add(2);
        self.is_ancestor(u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traverse::reachable_bfs;

    fn random_digraph(n: usize, m: usize, seed: u64) -> Graph {
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let edges: Vec<(usize, usize)> = (0..m)
            .map(|_| ((rnd() as usize) % n, (rnd() as usize) % n))
            .collect();
        Graph::directed_from_edges(n, &edges)
    }

    #[test]
    fn index_matches_bfs_on_random_graphs() {
        for n in [1usize, 2, 10, 40] {
            let g = random_digraph(n, n * 2, n as u64 + 3);
            let idx = ReachIndex::build(&g);
            for s in 0..n {
                for t in 0..n {
                    assert_eq!(idx.reachable(s, t), reachable_bfs(&g, s, t), "({s},{t})");
                }
            }
        }
    }

    #[test]
    fn parallel_model_build_agrees_with_sequential() {
        let g = random_digraph(40, 90, 1234);
        let idx_seq = ReachIndex::build(&g);
        let (idx_par, cost) = ReachIndex::build_parallel_model(&g);
        for s in 0..40 {
            for t in 0..40 {
                assert_eq!(
                    idx_seq.reachable(s, t),
                    idx_par.reachable(s, t),
                    "({s},{t})"
                );
            }
        }
        // Depth must be polylog: the NC claim.
        assert!(
            cost.depth_within(pitract_core::cost::CostClass::PolyLog(2), 40, 3.0),
            "closure depth {} not polylog",
            cost.depth
        );
    }

    #[test]
    fn probes_are_constant_cost() {
        let g = random_digraph(100, 300, 9);
        let idx = ReachIndex::build(&g);
        let meter = Meter::new();
        idx.reachable_metered(0, 99, &meter);
        assert_eq!(meter.steps(), 1);
    }

    #[test]
    fn reachability_is_reflexive() {
        let g = Graph::directed_from_edges(3, &[]);
        let idx = ReachIndex::build(&g);
        for v in 0..3 {
            assert!(idx.reachable(v, v));
        }
        assert!(!idx.reachable(0, 1));
    }

    #[test]
    fn reachable_pairs_counts_closure_bits() {
        // Path 0→1→2: pairs (0,0),(1,1),(2,2),(0,1),(0,2),(1,2) = 6.
        let g = Graph::directed_from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(ReachIndex::build(&g).reachable_pairs(), 6);
    }

    #[test]
    fn tree_intervals_match_reachability() {
        //       0        5
        //      / \       |
        //     1   2      6
        //        / \
        //       3   4
        let g = Graph::directed_from_edges(7, &[(0, 1), (0, 2), (2, 3), (2, 4), (5, 6)]);
        let ti = TreeIntervals::build(&g, &[0, 5]);
        for u in 0..7 {
            for v in 0..7 {
                assert_eq!(ti.is_ancestor(u, v), reachable_bfs(&g, u, v), "({u},{v})");
            }
        }
    }

    #[test]
    fn tree_interval_probe_is_constant() {
        let n = 10_000;
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        let g = Graph::directed_from_edges(n, &edges);
        let ti = TreeIntervals::build(&g, &[0]);
        let meter = Meter::new();
        assert!(ti.is_ancestor_metered(0, n - 1, &meter));
        assert_eq!(meter.steps(), 2);
        assert!(!ti.is_ancestor(n - 1, 0));
    }

    #[test]
    #[should_panic(expected = "two parents")]
    fn tree_intervals_reject_dags() {
        let g = Graph::directed_from_edges(3, &[(0, 2), (1, 2)]);
        TreeIntervals::build(&g, &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "unreachable from the given roots")]
    fn tree_intervals_reject_missing_roots() {
        let g = Graph::directed_from_edges(3, &[(0, 1)]);
        TreeIntervals::build(&g, &[0]);
    }
}
