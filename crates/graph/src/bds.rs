//! Breadth-Depth Search — Example 2, the paper's ΠTP-complete problem.
//!
//! A breadth-depth search starts at the lowest-numbered node, **visits all
//! of the current node's unvisited neighbors at once** (breadth), pushing
//! them onto a stack *in reverse numbering order* so the lowest-numbered
//! child is on top, then continues from the top of the stack (depth). When
//! the stack empties, the search restarts at the lowest-numbered unvisited
//! node, so every node receives a visit position.
//!
//! The decision problem BDS asks: *is u visited before v?* It is P-complete
//! [Greenlaw–Hoover–Ruzzo], so without preprocessing each query costs a
//! full PTIME search — the Υ′ factorization of Figure 1. Preprocessing the
//! graph once into its visit order (Example 5's list `M`) turns every query
//! into an O(log n) binary search or an O(1) array probe — the Υ_BDS
//! factorization. Experiment E7 measures exactly this dichotomy.

use crate::repr::Graph;
use pitract_core::cost::Meter;
use pitract_pram::listrank::rank_list;
use pitract_pram::machine::Cost;

/// Run the full breadth-depth search of `g` induced by the node numbering;
/// returns the visit order (a permutation of `0..n`). O(n + m + n·deg·log)
/// — PTIME, the preprocessing function Π of Example 5.
pub fn bds_order(g: &Graph) -> Vec<usize> {
    bds_order_metered(g, &Meter::new())
}

/// [`bds_order`] ticking the meter per visited node and scanned edge —
/// used to price the "no preprocessing" side of E7.
pub fn bds_order_metered(g: &Graph, meter: &Meter) -> Vec<usize> {
    let n = g.node_count();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut stack: Vec<usize> = Vec::new();

    for start in 0..n {
        if visited[start] {
            continue;
        }
        // Restart at the lowest-numbered unvisited node.
        visited[start] = true;
        order.push(start);
        meter.tick();
        stack.push(start);
        while let Some(u) = stack.pop() {
            // Visit all unvisited neighbors of u in numbering order…
            let mut children = Vec::new();
            for &w in g.neighbors(u) {
                meter.tick();
                if !visited[w] {
                    visited[w] = true;
                    children.push(w);
                }
            }
            children.sort_unstable();
            for &w in &children {
                order.push(w);
                meter.tick();
            }
            // …and push them in reverse order: lowest-numbered on top.
            for &w in children.iter().rev() {
                stack.push(w);
            }
        }
    }
    order
}

/// Breadth-depth search started at a chosen node `s` (the paper's "starts
/// at a node s"); visits only s's connected component, in BDS order.
pub fn bds_order_from(g: &Graph, s: usize) -> Vec<usize> {
    let n = g.node_count();
    assert!(s < n, "start node {s} out of range for n={n}");
    let mut visited = vec![false; n];
    let mut order = Vec::new();
    visited[s] = true;
    order.push(s);
    let mut stack = vec![s];
    while let Some(u) = stack.pop() {
        let mut children = Vec::new();
        for &w in g.neighbors(u) {
            if !visited[w] {
                visited[w] = true;
                children.push(w);
            }
        }
        children.sort_unstable();
        order.extend(&children);
        for &w in children.iter().rev() {
            stack.push(w);
        }
    }
    order
}

/// Answer "is u visited before v" by running the full search — the
/// baseline with no preprocessing (factorization Υ′ of Figure 1).
pub fn visited_before_by_search(g: &Graph, u: usize, v: usize, meter: &Meter) -> bool {
    let order = bds_order_metered(g, meter);
    let mut pos = vec![0usize; g.node_count()];
    for (i, &w) in order.iter().enumerate() {
        pos[w] = i;
    }
    pos[u] < pos[v]
}

/// The preprocessed BDS index of Example 5: the visit order `M` plus its
/// inverse. Queries cost O(1) via the inverse array, or O(log n) via
/// binary search over `(node, position)` pairs — both paths are provided
/// because the paper's construction argues the O(log |M|) bound.
#[derive(Debug, Clone)]
pub struct BdsIndex {
    /// The visit order M (position → node).
    order: Vec<usize>,
    /// Inverse permutation (node → position).
    position: Vec<usize>,
}

impl BdsIndex {
    /// Preprocess: one full BDS in PTIME.
    pub fn build(g: &Graph) -> Self {
        let order = bds_order(g);
        let mut position = vec![0usize; order.len()];
        for (i, &w) in order.iter().enumerate() {
            position[w] = i;
        }
        BdsIndex { order, position }
    }

    /// The visit order M.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Visit position of a node — O(1).
    pub fn position(&self, v: usize) -> usize {
        self.position[v]
    }

    /// Is `u` visited before `v`? O(1): two array probes.
    pub fn visited_before(&self, u: usize, v: usize) -> bool {
        self.position[u] < self.position[v]
    }

    /// O(1) query with metering (two probes + one comparison).
    pub fn visited_before_metered(&self, u: usize, v: usize, meter: &Meter) -> bool {
        meter.add(3);
        self.visited_before(u, v)
    }

    /// Derive the position array from the visit list `M` **in the NC cost
    /// model**: treat M as a linked list and pointer-jump it
    /// (`pitract_pram::listrank`), O(log n) depth. This certifies that
    /// turning Example 5's preprocessing output into its O(1)-query form
    /// is itself parallel-cheap — the paper's NC budget covers not just
    /// answering but the index-shaping step.
    ///
    /// Returns the recomputed positions and the PRAM cost; the positions
    /// must (and in tests do) equal [`BdsIndex::position`].
    pub fn positions_parallel_model(&self) -> (Vec<usize>, Cost) {
        let n = self.order.len();
        if n == 0 {
            return (Vec::new(), Cost::ZERO);
        }
        // Successor pointers along the visit list.
        let mut next: Vec<Option<usize>> = vec![None; n];
        for w in self.order.windows(2) {
            next[w[0]] = Some(w[1]);
        }
        let (ranks, cost) = rank_list(&next).expect("visit order is acyclic");
        // rank = distance to the tail; position = n − 1 − rank.
        let positions = ranks.iter().map(|&r| n - 1 - r as usize).collect();
        (positions, cost)
    }

    /// The paper's O(log |M|) variant: binary searches over the sorted
    /// `(node, position)` pairs, one tick per comparison. Provided to match
    /// Example 5's complexity argument literally.
    pub fn visited_before_binary_search(&self, u: usize, v: usize, meter: &Meter) -> bool {
        // `position` is already indexed by node; a faithful binary-search
        // rendition searches a sorted array of node ids (0..n), which is the
        // identity — we still pay the logarithmic probes the paper budgets.
        let n = self.position.len();
        let find = |x: usize| -> usize {
            let mut lo = 0usize;
            let mut hi = n;
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                meter.tick();
                if mid < x {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            self.position[lo]
        };
        find(u) < find(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example: star with center 0 and leaves 1..=3, plus an
    /// appendage 2–4. Numbering drives the order.
    fn sample() -> Graph {
        Graph::undirected_from_edges(5, &[(0, 1), (0, 2), (0, 3), (2, 4)])
    }

    #[test]
    fn bds_order_on_sample() {
        // Start 0: visit 1,2,3 (breadth), stack [3,2,1] with 1 on top.
        // Pop 1: no new neighbors. Pop 2: visit 4. Pop 4, pop 3: done.
        assert_eq!(bds_order(&sample()), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bds_differs_from_bfs_and_dfs() {
        // Graph where BDS, BFS and DFS all disagree:
        // 0–1, 0–2, 1–3, 1–4, 2–5.
        let g = Graph::undirected_from_edges(6, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)]);
        let bds = bds_order(&g);
        // BDS: visit 1,2 from 0; continue at 1: visit 3,4; continue at 3
        // (no new), 4 (no new), then 2: visit 5.
        assert_eq!(bds, vec![0, 1, 2, 3, 4, 5]);
        let dfs = crate::traverse::dfs_preorder(&g, 0);
        // DFS goes deep before 2: [0,1,3,4,2,5].
        assert_eq!(dfs, vec![0, 1, 3, 4, 2, 5]);
        assert_ne!(bds, dfs);
        // BFS visits level by level: same as BDS here; check the deeper
        // structure where they split.
        let g2 = Graph::undirected_from_edges(7, &[(0, 1), (0, 2), (1, 3), (3, 5), (2, 4), (4, 6)]);
        let bds2 = bds_order(&g2);
        let (_, bfs2) = crate::traverse::bfs(&g2, 0);
        // BDS: 0 visits 1,2; continue at 1: visit 3; at 3: visit 5; then 2:
        // visit 4; at 4: visit 6 → [0,1,2,3,5,4,6].
        assert_eq!(bds2, vec![0, 1, 2, 3, 5, 4, 6]);
        // BFS: [0,1,2,3,4,5,6].
        assert_eq!(bfs2, vec![0, 1, 2, 3, 4, 5, 6]);
        assert_ne!(bds2, bfs2);
    }

    #[test]
    fn disconnected_graphs_restart_at_lowest_unvisited() {
        let g = Graph::undirected_from_edges(5, &[(3, 4)]);
        assert_eq!(bds_order(&g), vec![0, 1, 2, 3, 4]);
        let g2 = Graph::undirected_from_edges(4, &[(1, 3)]);
        assert_eq!(bds_order(&g2), vec![0, 1, 3, 2]);
    }

    #[test]
    fn order_is_always_a_permutation() {
        for (n, edges) in [
            (1usize, vec![]),
            (6, vec![(0usize, 5usize), (5, 2), (2, 1), (1, 4)]),
            (
                8,
                vec![(7, 6), (6, 5), (5, 4), (4, 3), (3, 2), (2, 1), (1, 0)],
            ),
        ] {
            let g = Graph::undirected_from_edges(n, &edges);
            let mut order = bds_order(&g);
            order.sort_unstable();
            assert_eq!(order, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn index_agrees_with_full_search() {
        let g = Graph::undirected_from_edges(
            9,
            &[(0, 4), (4, 8), (8, 1), (1, 5), (5, 2), (2, 6), (3, 7)],
        );
        let idx = BdsIndex::build(&g);
        let meter = Meter::new();
        for u in 0..9 {
            for v in 0..9 {
                assert_eq!(
                    idx.visited_before(u, v),
                    visited_before_by_search(&g, u, v, &meter),
                    "({u},{v})"
                );
                assert_eq!(
                    idx.visited_before(u, v),
                    idx.visited_before_binary_search(u, v, &meter),
                    "binary-search path ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn preprocessed_queries_are_constant_while_search_is_linear() {
        // Long path: the full search must walk everything; the index pays 3.
        let n = 2000;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = Graph::undirected_from_edges(n, &edges);
        let idx = BdsIndex::build(&g);

        let meter = Meter::new();
        idx.visited_before_metered(n - 1, n - 2, &meter);
        assert_eq!(meter.take(), 3);

        visited_before_by_search(&g, n - 1, n - 2, &meter);
        assert!(
            meter.steps() >= n as u64,
            "full search only {} steps on n={n}",
            meter.steps()
        );
    }

    #[test]
    fn binary_search_path_is_logarithmic() {
        let n = 1 << 14;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = Graph::undirected_from_edges(n, &edges);
        let idx = BdsIndex::build(&g);
        let meter = Meter::new();
        idx.visited_before_binary_search(123, 9876, &meter);
        pitract_core::cost::assert_steps_within(
            meter.steps(),
            pitract_core::cost::CostClass::Log,
            n as u64,
            3.0,
        );
    }

    #[test]
    fn positions_invert_the_order() {
        let g = sample();
        let idx = BdsIndex::build(&g);
        for (i, &v) in idx.order().iter().enumerate() {
            assert_eq!(idx.position(v), i);
        }
    }

    #[test]
    fn parallel_position_derivation_matches_and_is_log_depth() {
        use pitract_core::cost::CostClass;
        for n in [1usize, 2, 64, 1024, 4096] {
            let edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
            let g = Graph::undirected_from_edges(n, &edges);
            let idx = BdsIndex::build(&g);
            let (positions, cost) = idx.positions_parallel_model();
            for (v, &pos) in positions.iter().enumerate() {
                assert_eq!(pos, idx.position(v), "n={n} node {v}");
            }
            if n > 1 {
                assert!(
                    cost.depth_within(CostClass::Log, n as u64, 4.0),
                    "n={n}: depth {}",
                    cost.depth
                );
            }
        }
    }

    #[test]
    fn bds_from_visits_only_the_component_of_s() {
        let g = Graph::undirected_from_edges(6, &[(0, 1), (1, 2), (4, 5)]);
        assert_eq!(bds_order_from(&g, 4), vec![4, 5]);
        assert_eq!(bds_order_from(&g, 1), vec![1, 0, 2]);
        // Starting at node 0 matches the prefix of the full search.
        let full = bds_order(&g);
        let from0 = bds_order_from(&g, 0);
        assert_eq!(&full[..from0.len()], &from0[..]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bds_from_rejects_bad_start() {
        bds_order_from(&sample(), 99);
    }
}
