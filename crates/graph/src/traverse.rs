//! Breadth-first / depth-first traversals and connected components.
//!
//! These are the per-query PTIME baselines of the experiments: E6 answers
//! each reachability query with a fresh (metered) BFS, which is exactly the
//! cost profile the paper argues is infeasible on big data without
//! preprocessing.

use crate::repr::Graph;
use pitract_core::cost::Meter;
use std::collections::VecDeque;

/// BFS from `source`: distances (`None` = unreachable) and visit order.
pub fn bfs(g: &Graph, source: usize) -> (Vec<Option<u64>>, Vec<usize>) {
    let n = g.node_count();
    let mut dist: Vec<Option<u64>> = vec![None; n];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    dist[source] = Some(0);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in g.neighbors(u) {
            if dist[v].is_none() {
                dist[v] = Some(dist[u].expect("dequeued node has distance") + 1);
                queue.push_back(v);
            }
        }
    }
    (dist, order)
}

/// Metered s→t reachability by BFS: one tick per scanned edge plus one per
/// dequeued node. This is the no-preprocessing baseline of E6.
pub fn reachable_bfs_metered(g: &Graph, s: usize, t: usize, meter: &Meter) -> bool {
    if s == t {
        return true;
    }
    let n = g.node_count();
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    seen[s] = true;
    queue.push_back(s);
    while let Some(u) = queue.pop_front() {
        meter.tick();
        for &v in g.neighbors(u) {
            meter.tick();
            if v == t {
                return true;
            }
            if !seen[v] {
                seen[v] = true;
                queue.push_back(v);
            }
        }
    }
    false
}

/// Unmetered s→t BFS reachability (the specification used as ground truth).
pub fn reachable_bfs(g: &Graph, s: usize, t: usize) -> bool {
    reachable_bfs_metered(g, s, t, &Meter::new())
}

/// Iterative DFS preorder from `source` (neighbors in adjacency order).
pub fn dfs_preorder(g: &Graph, source: usize) -> Vec<usize> {
    let n = g.node_count();
    let mut seen = vec![false; n];
    let mut order = Vec::new();
    let mut stack = vec![source];
    while let Some(u) = stack.pop() {
        if seen[u] {
            continue;
        }
        seen[u] = true;
        order.push(u);
        // Push in reverse so the first-listed neighbor is visited first.
        for &v in g.neighbors(u).iter().rev() {
            if !seen[v] {
                stack.push(v);
            }
        }
    }
    order
}

/// Connected components of an undirected graph: `comp[v]` = component id
/// (0-based, in order of discovery from node 0 upward).
pub fn components(g: &Graph) -> Vec<usize> {
    assert!(!g.is_directed(), "components() expects an undirected graph");
    let n = g.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let mut queue = VecDeque::from([start]);
        comp[start] = next;
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if comp[v] == usize::MAX {
                    comp[v] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        Graph::directed_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn bfs_distances_on_diamond() {
        let (dist, order) = bfs(&diamond(), 0);
        assert_eq!(dist, vec![Some(0), Some(1), Some(1), Some(2)]);
        assert_eq!(order[0], 0);
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn bfs_unreachable_nodes_have_no_distance() {
        let g = Graph::directed_from_edges(3, &[(0, 1)]);
        let (dist, _) = bfs(&g, 0);
        assert_eq!(dist[2], None);
    }

    #[test]
    fn reachability_matches_intuition() {
        let g = diamond();
        assert!(reachable_bfs(&g, 0, 3));
        assert!(!reachable_bfs(&g, 3, 0));
        assert!(reachable_bfs(&g, 1, 1), "trivially reachable from itself");
        assert!(!reachable_bfs(&g, 1, 2));
    }

    #[test]
    fn bfs_meter_counts_grow_with_graph() {
        let n = 1000;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = Graph::directed_from_edges(n, &edges);
        let meter = Meter::new();
        reachable_bfs_metered(&g, 0, n - 1, &meter);
        assert!(
            meter.steps() >= (n as u64) - 2,
            "full path walk expected, got {} steps",
            meter.steps()
        );
    }

    #[test]
    fn dfs_preorder_respects_adjacency_order() {
        let g = Graph::directed_from_edges(4, &[(0, 2), (0, 1), (2, 3)]);
        assert_eq!(dfs_preorder(&g, 0), vec![0, 2, 3, 1]);
    }

    #[test]
    fn components_of_forest() {
        let g = Graph::undirected_from_edges(6, &[(0, 1), (1, 2), (4, 5)]);
        let comp = components(&g);
        assert_eq!(comp[0], comp[2]);
        assert_ne!(comp[0], comp[3]);
        assert_eq!(comp[4], comp[5]);
        assert_ne!(comp[3], comp[4]);
    }

    #[test]
    #[should_panic(expected = "undirected")]
    fn components_rejects_directed_graphs() {
        components(&Graph::directed_from_edges(2, &[(0, 1)]));
    }
}
