//! Adjacency-list graph representation shared by every graph algorithm in
//! the workspace.
//!
//! One type covers both directed and undirected graphs (undirected edges
//! are stored in both adjacency lists); algorithms that require one kind
//! assert it. Nodes are `0..n` — the paper's "numbering on the nodes"
//! (Example 2) is simply the node id, which makes BDS deterministic.

use pitract_core::encode::Encode;

/// A graph over nodes `0..n` with adjacency lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    directed: bool,
    adj: Vec<Vec<usize>>,
    edge_count: usize,
}

impl Graph {
    /// Empty graph with `n` isolated nodes.
    pub fn new(n: usize, directed: bool) -> Self {
        Graph {
            directed,
            adj: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Build a directed graph from an edge list. Panics on out-of-range
    /// endpoints (caller input bug).
    pub fn directed_from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = Graph::new(n, true);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Build an undirected graph from an edge list.
    pub fn undirected_from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = Graph::new(n, false);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Add one edge. For undirected graphs both directions are stored.
    /// Self-loops are allowed (stored once).
    pub fn add_edge(&mut self, u: usize, v: usize) {
        let n = self.adj.len();
        assert!(u < n && v < n, "edge ({u},{v}) out of range for n={n}");
        self.adj[u].push(v);
        if !self.directed && u != v {
            self.adj[v].push(u);
        }
        self.edge_count += 1;
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges (undirected edges counted once).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Is this a directed graph?
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Out-neighbors of `u` (all neighbors for undirected graphs), in
    /// insertion order.
    pub fn neighbors(&self, u: usize) -> &[usize] {
        &self.adj[u]
    }

    /// Neighbors of `u` in ascending node-number order — the order BDS uses
    /// ("induced by the vertex numbering").
    pub fn neighbors_sorted(&self, u: usize) -> Vec<usize> {
        let mut ns = self.adj[u].to_vec();
        ns.sort_unstable();
        ns
    }

    /// Out-degree of `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Iterate all edges as `(u, v)` pairs. Undirected edges are yielded
    /// once, with `u ≤ v`.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.edge_count);
        for (u, ns) in self.adj.iter().enumerate() {
            for &v in ns {
                if self.directed || u <= v {
                    out.push((u, v));
                }
            }
        }
        out
    }

    /// Reverse all edges (directed graphs only).
    pub fn reversed(&self) -> Graph {
        assert!(
            self.directed,
            "reversing an undirected graph is a no-op bug"
        );
        let mut g = Graph::new(self.node_count(), true);
        for (u, ns) in self.adj.iter().enumerate() {
            for &v in ns {
                g.add_edge(v, u);
            }
        }
        g
    }

    /// Total size |G| = nodes + edges, the measure used in compression
    /// ratios (E8).
    pub fn size(&self) -> usize {
        self.node_count() + self.edge_count()
    }
}

impl Encode for Graph {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.directed.encode_into(out);
        (self.node_count() as u64).encode_into(out);
        let edges = self.edges();
        (edges.len() as u64).encode_into(out);
        for (u, v) in edges {
            (u as u64).encode_into(out);
            (v as u64).encode_into(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitract_core::encode::Encode;

    #[test]
    fn directed_adjacency() {
        let g = Graph::directed_from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(2), &[] as &[usize]);
        assert_eq!(g.edge_count(), 3);
        assert!(g.is_directed());
    }

    #[test]
    fn undirected_stores_both_directions() {
        let g = Graph::undirected_from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edges(), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn self_loops_stored_once() {
        let mut g = Graph::new(2, false);
        g.add_edge(0, 0);
        assert_eq!(g.neighbors(0), &[0]);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn neighbors_sorted_orders_by_number() {
        let g = Graph::directed_from_edges(5, &[(0, 4), (0, 1), (0, 3)]);
        assert_eq!(g.neighbors_sorted(0), vec![1, 3, 4]);
    }

    #[test]
    fn reversed_flips_directed_edges() {
        let g = Graph::directed_from_edges(3, &[(0, 1), (1, 2)]);
        let r = g.reversed();
        assert_eq!(r.neighbors(1), &[0]);
        assert_eq!(r.neighbors(2), &[1]);
        assert_eq!(r.neighbors(0), &[] as &[usize]);
    }

    #[test]
    fn size_counts_nodes_plus_edges() {
        let g = Graph::undirected_from_edges(10, &[(0, 1), (2, 3)]);
        assert_eq!(g.size(), 12);
    }

    #[test]
    fn encoding_is_deterministic_and_size_bearing() {
        let g = Graph::directed_from_edges(4, &[(0, 1), (2, 3)]);
        let e1 = g.encoded();
        let e2 = g.clone().encoded();
        assert_eq!(e1, e2);
        assert!(!e1.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        Graph::new(2, true).add_edge(0, 2);
    }
}
