//! Property-based tests for the graph crate: SCC laws, BDS determinism,
//! reachability index agreement, generator invariants.

use pitract_graph::bds::{bds_order, BdsIndex};
use pitract_graph::generate;
use pitract_graph::reach::ReachIndex;
use pitract_graph::scc::{condensation, tarjan_scc};
use pitract_graph::traverse::{components, reachable_bfs};
use pitract_graph::Graph;
use proptest::prelude::*;

proptest! {
    /// Two nodes share a Tarjan component iff they reach each other.
    #[test]
    fn scc_is_mutual_reachability(
        n in 1usize..25,
        edges in prop::collection::vec((0usize..25, 0usize..25), 0..60)
    ) {
        let edges: Vec<(usize, usize)> = edges.into_iter().map(|(u, v)| (u % n, v % n)).collect();
        let g = Graph::directed_from_edges(n, &edges);
        let scc = tarjan_scc(&g);
        for u in 0..n {
            for v in 0..n {
                let mutual = reachable_bfs(&g, u, v) && reachable_bfs(&g, v, u);
                prop_assert_eq!(scc.comp[u] == scc.comp[v], mutual, "({},{})", u, v);
            }
        }
    }

    /// The condensation is a DAG whose edges go from higher to lower
    /// component ids (Tarjan's reverse-topological numbering).
    #[test]
    fn condensation_is_topologically_numbered(
        n in 1usize..25,
        edges in prop::collection::vec((0usize..25, 0usize..25), 0..60)
    ) {
        let edges: Vec<(usize, usize)> = edges.into_iter().map(|(u, v)| (u % n, v % n)).collect();
        let g = Graph::directed_from_edges(n, &edges);
        let (cond, _) = condensation(&g);
        for (u, v) in cond.edges() {
            prop_assert!(u > v, "condensation edge ({},{})", u, v);
        }
    }

    /// BDS is deterministic and consistent with undirected components:
    /// within one component, all nodes are visited contiguously.
    #[test]
    fn bds_visits_components_contiguously(
        n in 1usize..30,
        edges in prop::collection::vec((0usize..30, 0usize..30), 0..50)
    ) {
        let edges: Vec<(usize, usize)> = edges.into_iter().map(|(u, v)| (u % n, v % n)).collect();
        let g = Graph::undirected_from_edges(n, &edges);
        let order = bds_order(&g);
        prop_assert_eq!(&order, &bds_order(&g), "determinism");
        let comp = components(&g);
        // Component blocks: once we leave a component we never return.
        let mut seen_done = std::collections::HashSet::new();
        let mut current = usize::MAX;
        for &v in &order {
            if comp[v] != current {
                prop_assert!(
                    seen_done.insert(comp[v]),
                    "component {} revisited in BDS order {:?}", comp[v], order
                );
                current = comp[v];
            }
        }
        // Index agrees with order.
        let idx = BdsIndex::build(&g);
        for (pos, &v) in order.iter().enumerate() {
            prop_assert_eq!(idx.position(v), pos);
        }
    }

    /// Reachability index agrees with BFS on generated workloads too
    /// (generators mustn't produce graphs that break the index).
    #[test]
    fn generators_feed_consistent_indexes(seed in any::<u64>(), kind in 0u8..4) {
        let g = match kind {
            0 => generate::gnp_directed(40, 0.06, seed),
            1 => generate::random_dag(40, 60, seed),
            2 => generate::preferential_attachment(40, 2, seed),
            _ => generate::layered_dag(5, 8, 2, seed),
        };
        let idx = ReachIndex::build(&g);
        for u in (0..40).step_by(5) {
            for v in (0..40).step_by(7) {
                prop_assert_eq!(idx.reachable(u, v), reachable_bfs(&g, u, v));
            }
        }
    }

    /// Tree generator really produces trees: n−1 edges, connected, no
    /// node reaches its ancestors.
    #[test]
    fn random_tree_is_a_tree(n in 1usize..60, seed in any::<u64>()) {
        let g = generate::random_tree(n, seed);
        prop_assert_eq!(g.edge_count(), n - 1);
        for v in 0..n {
            prop_assert!(reachable_bfs(&g, 0, v), "node {} unreachable", v);
            if v != 0 {
                prop_assert!(!reachable_bfs(&g, v, 0), "cycle through {}", v);
            }
        }
    }
}
