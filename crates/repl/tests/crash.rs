//! Replication crash-injection property tests: the transport and the
//! follower's local mirror are driven through the same crash model as
//! the primary's WAL — truncation at *every* byte offset, plus
//! arbitrary bit flips — and must either fail typed (a damaged
//! shipment applies nothing) or recover exactly (a follower killed
//! mid-catch-up restarts bit-identical to the oracle replay of its
//! confirmed prefix: answers AND global row ids).

use pitract_engine::{LiveRelation, ShardBy, UpdateEntry};
use pitract_relation::{ColType, Relation, Schema, SelectionQuery, Value};
use pitract_repl::{Follower, ReplError, SegmentPublisher, Shipment};
use pitract_store::SnapshotCatalog;
use pitract_wal::{DurableLiveRelation, SyncPolicy, WalConfig, WalReader};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn fresh_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pitract-repl-crash-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(segment_bytes: u64) -> WalConfig {
    WalConfig {
        segment_bytes,
        sync: SyncPolicy::GroupCommit,
    }
}

fn primary(root: &Path, segment_bytes: u64) -> (Arc<DurableLiveRelation>, SnapshotCatalog) {
    let schema = Schema::new(&[("id", ColType::Int)]);
    let rel = Relation::from_rows(schema, vec![]).unwrap();
    let live = LiveRelation::build(&rel, ShardBy::Hash { col: 0 }, 2, &[0]).unwrap();
    let catalog = SnapshotCatalog::open(root.join("snaps")).unwrap();
    let node = Arc::new(
        DurableLiveRelation::create(
            live,
            &catalog,
            "node",
            root.join("wal"),
            config(segment_bytes),
        )
        .unwrap(),
    );
    (node, catalog)
}

/// Apply generated ops to the primary; deletes only target still-live
/// gids so the stream is a plausible history.
fn drive(node: &DurableLiveRelation, ops: &[(u8, i64)]) {
    let mut live_gids: Vec<usize> = Vec::new();
    for &(op, key) in ops {
        if op % 4 == 0 && !live_gids.is_empty() {
            let gid = live_gids.remove(key as usize % live_gids.len());
            node.delete(gid).unwrap();
        } else {
            live_gids.push(node.insert(vec![Value::Int(key)]).unwrap());
        }
    }
}

/// The oracle for a follower's confirmed prefix: checkpoint state plus
/// the primary's WAL records below `below_lsn`.
fn oracle_at(catalog: &SnapshotCatalog, root: &Path, below_lsn: u64) -> LiveRelation {
    let (state, mark, _cut) = catalog.load("node").unwrap().into_checkpoint().unwrap();
    let oracle = LiveRelation::from_sharded(state);
    let reader = WalReader::open(root.join("wal")).unwrap();
    let entries: Vec<UpdateEntry> = reader
        .records()
        .iter()
        .filter(|r| r.lsn >= mark && r.lsn < below_lsn)
        .map(|r| r.entry.clone())
        .collect();
    oracle.replay_entries(&entries).unwrap();
    oracle
}

fn assert_matches_oracle(follower: &Follower, oracle: &LiveRelation, tag: &str) {
    assert_eq!(follower.len(), oracle.len(), "{tag}: live row count");
    for key in 0..1_000i64 {
        let q = SelectionQuery::point(0, key);
        assert_eq!(
            follower.matching_ids(&q),
            oracle.matching_ids(&q),
            "{tag}: gids for key {key}"
        );
    }
    for gid in 0..(oracle.len() + 8) {
        assert_eq!(follower.row(gid), oracle.row(gid), "{tag}: row {gid}");
    }
}

/// A shipment truncated at EVERY byte offset must fail typed and apply
/// nothing — a cut inside a frame is checksum/framing corruption, and a
/// cut exactly on a frame boundary is caught by the record count. This
/// is exhaustive over offsets, not sampled: every tear a transport can
/// produce is tried.
#[test]
fn shipment_truncated_at_every_byte_offset_fails_typed_and_applies_nothing() {
    let root = fresh_dir("tear");
    let (node, catalog) = primary(&root, u64::MAX);
    let publisher = SegmentPublisher::new(Arc::clone(&node));
    drive(
        &node,
        &[(1, 10), (2, 11), (0, 0), (3, 12), (1, 13), (0, 2), (2, 14)],
    );
    let follower =
        Follower::bootstrap(&catalog, "node", root.join("mirror"), config(u64::MAX)).unwrap();
    let ship = publisher.poll(0).unwrap();
    assert!(ship.records() >= 5, "the stream has substance");

    for cut in 0..ship.frames().len() {
        let torn = Shipment::from_parts(
            ship.base(),
            ship.end(),
            ship.records(),
            ship.frames()[..cut].to_vec(),
        );
        let err = follower
            .apply_shipment(&torn)
            .expect_err("every proper prefix must be rejected");
        assert!(
            matches!(err, ReplError::Wal(_) | ReplError::Misaligned { .. }),
            "cut at {cut}: unexpected error {err}"
        );
        assert_eq!(follower.applied_lsn(), 0, "cut at {cut}: nothing applied");
        assert_eq!(follower.len(), 0, "cut at {cut}: state untouched");
    }

    // The untampered shipment still applies after all those rejections.
    follower.apply_shipment(&ship).unwrap();
    assert_eq!(follower.applied_lsn(), ship.end());
    assert_eq!(follower.len(), node.len());
    std::fs::remove_dir_all(&root).unwrap();
}

proptest! {
    /// A bit flipped anywhere in a shipment's frames must fail typed and
    /// apply nothing (the flip lands in a length, an LSN, a payload, or
    /// a checksum — all are covered by the frame checksum or framing
    /// checks).
    #[test]
    fn shipment_bit_flips_fail_typed_and_apply_nothing(
        ops in prop::collection::vec((0u8..8, 0i64..1_000), 3..20),
        flip_seed in 0usize..1_000_000
    ) {
        let root = fresh_dir("flip");
        let (node, catalog) = primary(&root, u64::MAX);
        let publisher = SegmentPublisher::new(Arc::clone(&node));
        drive(&node, &ops);
        let follower =
            Follower::bootstrap(&catalog, "node", root.join("mirror"), config(u64::MAX)).unwrap();
        let ship = publisher.poll(0).unwrap();
        prop_assert!(!ship.is_empty());

        let mut frames = ship.frames().to_vec();
        let at = flip_seed % frames.len();
        frames[at] ^= 0x01;
        let garbled = Shipment::from_parts(ship.base(), ship.end(), ship.records(), frames);
        // Either the damage is caught (typed) — or, if the flip struck a
        // frame's length field in a way that still frames correctly, the
        // record count / LSN alignment checks catch it. In no case may
        // partial state land.
        if follower.apply_shipment(&garbled).is_ok() {
            // The only undetectable flip would be one that keeps every
            // checksum valid — impossible for a single-bit flip under
            // FNV-1a over (lsn, payload), so reaching here means the
            // scanner legitimately decoded identical bytes.
            prop_assert_eq!(garbled.frames(), ship.frames(), "silent acceptance");
        } else {
            prop_assert_eq!(follower.applied_lsn(), 0, "nothing applied");
            prop_assert_eq!(follower.len(), 0, "state untouched");
            // And the pristine shipment still applies.
            follower.apply_shipment(&ship).unwrap();
            prop_assert_eq!(follower.len(), node.len());
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    /// Kill a follower mid-catch-up — its mirror cut at an arbitrary
    /// byte offset, the crash model of an append-only log — and restart
    /// it: the recovered replica must be bit-identical (answers AND
    /// global row ids) to the oracle replay of its confirmed prefix, and
    /// must then drain to full convergence with the primary.
    #[test]
    fn follower_killed_mid_catch_up_restarts_to_its_exact_confirmed_prefix(
        ops in prop::collection::vec((0u8..8, 0i64..1_000), 4..28),
        step_bytes in 48usize..256,
        cut_seed in 0usize..1_000_000
    ) {
        let root = fresh_dir("kill");
        let (node, catalog) = primary(&root, 160);
        let publisher = SegmentPublisher::new(Arc::clone(&node));
        drive(&node, &ops);
        node.wal().sync().unwrap();

        // Catch up partway in bounded steps, then "crash": drop the
        // follower and truncate its mirror's last segment at an
        // arbitrary byte offset.
        let mirror_dir = root.join("mirror");
        let follower =
            Follower::bootstrap(&catalog, "node", &mirror_dir, config(160)).unwrap();
        let sub = follower.attach(&publisher);
        let steps = 1 + cut_seed % 3;
        for _ in 0..steps {
            follower.catch_up_step(&publisher, sub, step_bytes).unwrap();
        }
        let applied_before = follower.applied_lsn();
        drop(follower);

        let mut segs: Vec<PathBuf> = std::fs::read_dir(&mirror_dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|x| x == "seg"))
            .collect();
        segs.sort();
        let mut full_mirror_survives = true;
        if let Some(last) = segs.last() {
            let full = std::fs::read(last).unwrap();
            let cut = cut_seed % (full.len() + 1);
            std::fs::write(last, &full[..cut]).unwrap();
            // Everything in earlier (sealed) segments plus the complete
            // frames below the cut survives; recovery decides exactly
            // which — the oracle comparison below is the real check.
            full_mirror_survives = cut == full.len();
        }

        // Restart: the recovered cursor is exactly what the mirror
        // confirms, and the state is the oracle replay of that prefix.
        let back = Follower::bootstrap(&catalog, "node", &mirror_dir, config(160)).unwrap();
        let recovered = back.applied_lsn();
        prop_assert!(recovered <= applied_before, "no invented records");
        if full_mirror_survives {
            prop_assert_eq!(recovered, applied_before, "an uncut mirror loses nothing");
        }
        let oracle = oracle_at(&catalog, &root, recovered);
        assert_matches_oracle(&back, &oracle, "post-crash");
        prop_assert_eq!(back.current_epoch(), back.applied_epoch());

        // And the restarted follower re-attaches and drains: the re-ship
        // of the truncated suffix converges bit-identically with the
        // primary.
        let sub = back.attach(&publisher);
        let report = back.catch_up(&publisher, sub).unwrap();
        prop_assert_eq!(report.lag, 0);
        let oracle = oracle_at(&catalog, &root, report.applied_lsn);
        assert_matches_oracle(&back, &oracle, "post-drain");
        prop_assert_eq!(back.len(), node.len());
        std::fs::remove_dir_all(&root).unwrap();
    }
}
