//! The primary side: publish WAL segments as a polled tail subscription.
//!
//! A [`SegmentPublisher`] wraps the primary's
//! [`DurableLiveRelation`] and serves two jobs:
//!
//! * **Shipping.** [`SegmentPublisher::poll`] returns every record in
//!   `[from, durable)` as a [`Shipment`] — record frames in the exact
//!   on-disk segment wire format (length + LSN + store-codec payload +
//!   FNV-1a-64 checksum), read back from the segment files and capped
//!   at the primary's durable frontier. Re-framing is byte-exact
//!   because the format is deterministic; a follower validates a
//!   shipment with the same scanner that validates segments on disk.
//! * **Retention.** Attached followers register their applied LSN in
//!   the publisher's subscription table; the minimum across the table
//!   is the [retention watermark](SegmentPublisher::retention_watermark)
//!   that [`SegmentPublisher::compact_primary`] hands the WAL
//!   compactor, so a compaction pass can never touch a segment an
//!   attached follower has yet to fetch.
//!
//! The subscription table sits behind a `FollowerCatchup`-ranked lock
//! (see the `pitract-core` lockdep table): it is held across the
//! compaction pass — pure file I/O plus the WAL tiers above rank 45 —
//! and never across anything that re-enters the engine.

use crate::ReplError;
use pitract_core::lockdep::{LockRank, OrderedMutex};
use pitract_obs::{Counter, Recorder};
use pitract_wal::compactor::CompactionReport;
use pitract_wal::segment::{encode_record, parse_segment_file_name, scan_segment};
use pitract_wal::DurableLiveRelation;
use std::path::PathBuf;
use std::sync::Arc;

/// A handle naming one attached follower in the publisher's
/// subscription table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubscriptionId(u64);

/// One polled run of the primary's log: record frames for every WAL
/// record in `[base, end)` that still exists (the primary's compactor
/// may have cancelled insert+delete pairs inside the range — the
/// follower's replay burns those gid gaps), in the on-disk segment wire
/// format.
#[derive(Debug)]
pub struct Shipment {
    base: u64,
    end: u64,
    frames: Vec<u8>,
    records: usize,
    segments_read: usize,
}

impl Shipment {
    /// Reassemble a shipment on the receive side of a transport (the
    /// publisher hands out whole `Shipment`s in-process; a network
    /// transport moves the four parts and rebuilds one here). The
    /// follower's apply path re-validates everything — frame checksums,
    /// LSN monotonicity, and that exactly `records` frames arrived — so
    /// a reassembled shipment is no more trusted than a polled one.
    pub fn from_parts(base: u64, end: u64, records: usize, frames: Vec<u8>) -> Self {
        Shipment {
            base,
            end,
            frames,
            records,
            segments_read: 0,
        }
    }

    /// The LSN this shipment was fetched from (its records all sit at
    /// or above it).
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The LSN after the last position this shipment covers: applying
    /// it advances the follower's cursor here. May exceed the last
    /// record's LSN when the trailing records of the range were
    /// compacted away.
    pub fn end(&self) -> u64 {
        self.end
    }

    /// The raw record frames, back to back — exactly the bytes a
    /// segment file holds after its header.
    pub fn frames(&self) -> &[u8] {
        &self.frames
    }

    /// Number of record frames shipped.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Number of segment files the poll read frames out of.
    pub fn segments_read(&self) -> usize {
        self.segments_read
    }

    /// Does this shipment advance the follower at all?
    pub fn is_empty(&self) -> bool {
        self.end <= self.base
    }
}

/// The subscription table: who is attached, and how far each has
/// applied. Small (one row per follower), so linear scans suffice.
#[derive(Debug, Default)]
struct SubTable {
    next_id: u64,
    /// `(id, applied_lsn)` per attached follower.
    rows: Vec<(u64, u64)>,
    /// Effective floor of the last compaction routed through this
    /// publisher: records below it may be gone, so fetches must start
    /// at or above it.
    compaction_floor: u64,
}

/// Primary-side replication endpoint: a polled tail subscription over
/// the primary's WAL plus the follower retention table. See the module
/// docs.
#[derive(Debug)]
pub struct SegmentPublisher {
    primary: Arc<DurableLiveRelation>,
    subs: OrderedMutex<SubTable>,
    shipped_segments: Counter,
}

impl SegmentPublisher {
    /// Publish `primary`'s WAL. Unobserved; see
    /// [`Self::new_observed`].
    pub fn new(primary: Arc<DurableLiveRelation>) -> Self {
        Self::new_observed(primary, &Recorder::default())
    }

    /// Publish `primary`'s WAL, counting shipped segments into
    /// `recorder` as `repl_segments_shipped_total` (next to the
    /// `wal_*` series the primary already publishes there).
    pub fn new_observed(primary: Arc<DurableLiveRelation>, recorder: &Recorder) -> Self {
        SegmentPublisher {
            primary,
            // Publisher table = sub-order 0 of the FollowerCatchup
            // rank; follower mirrors use sub-order 1, so the one legal
            // nesting is publisher-before-follower.
            subs: OrderedMutex::with_sub_order(LockRank::FollowerCatchup, 0, SubTable::default()),
            shipped_segments: recorder.counter("repl_segments_shipped_total"),
        }
    }

    /// The primary this publisher ships from.
    pub fn primary(&self) -> &Arc<DurableLiveRelation> {
        &self.primary
    }

    /// The primary's durable frontier: every record below it is fsynced
    /// and therefore shippable.
    pub fn durable_lsn(&self) -> u64 {
        self.primary.wal().durable_lsn()
    }

    /// Attach a follower whose applied cursor is `applied_lsn`. Until
    /// [`Self::detach`], compaction routed through this publisher
    /// retains every segment holding records at or above the follower's
    /// (monotonically advanced) cursor.
    pub fn attach(&self, applied_lsn: u64) -> SubscriptionId {
        let mut subs = self.subs.lock();
        let id = subs.next_id;
        subs.next_id += 1;
        subs.rows.push((id, applied_lsn));
        SubscriptionId(id)
    }

    /// Advance an attached follower's applied cursor (monotonic: a
    /// stale advance is ignored). Unknown ids are ignored — detaching
    /// twice or advancing after detach is harmless.
    pub fn advance(&self, sub: SubscriptionId, applied_lsn: u64) {
        let mut subs = self.subs.lock();
        if let Some(row) = subs.rows.iter_mut().find(|(id, _)| *id == sub.0) {
            row.1 = row.1.max(applied_lsn);
        }
    }

    /// Detach a follower: its cursor no longer holds retention.
    pub fn detach(&self, sub: SubscriptionId) {
        self.subs.lock().rows.retain(|(id, _)| *id != sub.0);
    }

    /// The retention watermark: the minimum applied LSN across attached
    /// followers, or `None` when nobody is attached (nothing extra to
    /// retain).
    pub fn retention_watermark(&self) -> Option<u64> {
        self.subs.lock().rows.iter().map(|(_, lsn)| *lsn).min()
    }

    /// The effective floor of the last compaction routed through this
    /// publisher. [`Self::poll`] refuses (typed) to fetch below it.
    pub fn compaction_floor(&self) -> u64 {
        self.subs.lock().compaction_floor
    }

    /// Compact the primary's WAL under the current retention watermark:
    /// segments holding records an attached follower still needs are
    /// left byte-for-byte untouched. The subscription table stays
    /// locked across the pass, so a follower cannot attach-then-fetch
    /// into a range the running pass is about to drop. This is the
    /// *only* compaction entry point that preserves the publisher's
    /// shipping guarantee — compacting the primary directly bypasses
    /// the watermark.
    pub fn compact_primary(&self) -> Result<CompactionReport, ReplError> {
        let mut subs = self.subs.lock();
        let retention = subs.rows.iter().map(|(_, lsn)| *lsn).min();
        let report = self.primary.compact_wal_retaining(retention)?;
        let mark = self.primary.checkpoint_mark();
        let effective = retention.map_or(mark, |r| r.min(mark));
        subs.compaction_floor = subs.compaction_floor.max(effective);
        Ok(report)
    }

    /// Fetch every durable record in `[from, durable_frontier)`. Equivalent
    /// to [`Self::poll_bytes`] with no byte budget.
    pub fn poll(&self, from: u64) -> Result<Shipment, ReplError> {
        self.poll_bytes(from, usize::MAX)
    }

    /// Fetch durable records starting at `from`, stopping once the
    /// shipment holds at least `max_bytes` of frames (at least one
    /// record is always shipped when any is available). The fetch first
    /// flushes the primary's WAL — the shipment's cap *is* the durable
    /// frontier, so a follower can never apply a record the primary
    /// could still lose to a crash.
    ///
    /// Fails typed with [`ReplError::Stale`] when `from` is below the
    /// publisher's compaction floor (the records may no longer exist;
    /// the follower must re-bootstrap).
    pub fn poll_bytes(&self, from: u64, max_bytes: usize) -> Result<Shipment, ReplError> {
        let floor = self.compaction_floor();
        if from < floor {
            return Err(ReplError::Stale { from, floor });
        }
        // Flush first: everything below the returned frontier is stable
        // on the primary, so shipping up to it never replicates an
        // unconfirmed suffix.
        let durable = self.primary.wal().sync()?;
        if durable <= from {
            return Ok(Shipment {
                base: from,
                end: from,
                frames: Vec::new(),
                records: 0,
                segments_read: 0,
            });
        }

        // Enumerate segment files; segment i holds LSNs in
        // [base_i, base_{i+1}), so files entirely below `from` are
        // skipped without being read.
        let mut files: Vec<(u64, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(self.primary.wal_dir())? {
            let path = entry?.path();
            if let Some(base) = path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(parse_segment_file_name)
            {
                files.push((base, path));
            }
        }
        files.sort();

        let mut frames = Vec::new();
        let mut records = 0usize;
        let mut segments_read = 0usize;
        let mut last_shipped: Option<u64> = None;
        let mut capped = false;
        'files: for (i, (base, path)) in files.iter().enumerate() {
            let upper = files.get(i + 1).map(|(b, _)| *b).unwrap_or(u64::MAX);
            if upper <= from || *base >= durable {
                continue;
            }
            let last = i + 1 == files.len();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
            // The active segment may be mid-append under us: a read
            // snapshot can end inside a frame, which the scanner treats
            // as a torn tail (`last = true`). Those unconfirmed bytes
            // are above the durable frontier anyway.
            let bytes = std::fs::read(path)?;
            let scan = scan_segment(&bytes, *base, last, name)?;
            let mut contributed = false;
            for (lsn, payload) in &scan.records {
                if *lsn < from {
                    continue;
                }
                if *lsn >= durable {
                    break 'files;
                }
                frames.extend_from_slice(&encode_record(*lsn, payload));
                records += 1;
                contributed = true;
                last_shipped = Some(*lsn);
                if frames.len() >= max_bytes {
                    segments_read += 1;
                    capped = true;
                    break 'files;
                }
            }
            if contributed {
                segments_read += 1;
            }
        }
        // Uncapped, the shipment covers the whole range up to the
        // durable frontier even when its trailing records were
        // compacted away — the follower bridges the gap by advancing
        // its cursor (and epoch clock) without replaying anything.
        let end = if capped {
            // Safe: capped implies at least one shipped record.
            last_shipped.map_or(from, |l| l + 1)
        } else {
            durable
        };
        self.shipped_segments.add(segments_read as u64);
        Ok(Shipment {
            base: from,
            end,
            frames,
            records,
            segments_read,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitract_engine::LiveRelation;
    use pitract_engine::ShardBy;
    use pitract_relation::{ColType, Relation, Schema, Value};
    use pitract_store::SnapshotCatalog;
    use pitract_wal::{SyncPolicy, WalConfig};
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicUsize, Ordering};

    static SEQ: AtomicUsize = AtomicUsize::new(0);

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pitract-replpub-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn primary(root: &Path, rows: i64) -> Arc<DurableLiveRelation> {
        let schema = Schema::new(&[("id", ColType::Int)]);
        let data: Vec<Vec<Value>> = (0..rows).map(|i| vec![Value::Int(i)]).collect();
        let rel = Relation::from_rows(schema, data).unwrap();
        let live = LiveRelation::build(&rel, ShardBy::Hash { col: 0 }, 2, &[0]).unwrap();
        let catalog = SnapshotCatalog::open(root.join("snaps")).unwrap();
        Arc::new(
            DurableLiveRelation::create(
                live,
                &catalog,
                "node",
                root.join("wal"),
                WalConfig {
                    segment_bytes: 160,
                    sync: SyncPolicy::GroupCommit,
                },
            )
            .unwrap(),
        )
    }

    #[test]
    fn poll_ships_exactly_the_durable_tail_in_wire_format() {
        let root = fresh_dir("wire");
        let node = primary(&root, 4);
        for i in 0..10i64 {
            node.insert(vec![Value::Int(100 + i)]).unwrap();
        }
        let publisher = SegmentPublisher::new(Arc::clone(&node));
        let ship = publisher.poll(0).unwrap();
        assert_eq!(ship.base(), 0);
        assert_eq!(ship.end(), 10);
        assert_eq!(ship.records(), 10);
        assert!(ship.segments_read() > 1, "tiny segments force rotation");
        // The frames parse with the on-disk segment scanner.
        let mut bytes = pitract_wal::segment::segment_header(0);
        bytes.extend_from_slice(ship.frames());
        let scan = scan_segment(&bytes, 0, false, "shipment").unwrap();
        assert_eq!(scan.records.len(), 10);
        assert_eq!(scan.records.first().unwrap().0, 0);
        assert_eq!(scan.records.last().unwrap().0, 9);
        // Re-polling from the end is empty, not an error.
        let again = publisher.poll(ship.end()).unwrap();
        assert!(again.is_empty());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn byte_budget_caps_a_shipment_without_losing_records() {
        let root = fresh_dir("cap");
        let node = primary(&root, 0);
        for i in 0..20i64 {
            node.insert(vec![Value::Int(i)]).unwrap();
        }
        let publisher = SegmentPublisher::new(Arc::clone(&node));
        let mut from = 0u64;
        let mut total = 0usize;
        let mut polls = 0usize;
        while polls < 100 {
            let ship = publisher.poll_bytes(from, 64).unwrap();
            if ship.is_empty() {
                break;
            }
            total += ship.records();
            from = ship.end();
            polls += 1;
        }
        assert_eq!(total, 20, "every record arrives across capped polls");
        assert!(polls > 1, "the budget actually split the stream");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn retention_watermark_tracks_the_slowest_attached_follower() {
        let root = fresh_dir("watermark");
        let node = primary(&root, 0);
        let publisher = SegmentPublisher::new(Arc::clone(&node));
        assert_eq!(publisher.retention_watermark(), None);
        let slow = publisher.attach(3);
        let fast = publisher.attach(17);
        assert_eq!(publisher.retention_watermark(), Some(3));
        publisher.advance(slow, 11);
        assert_eq!(publisher.retention_watermark(), Some(11));
        // Advances are monotonic; a stale advance cannot move it back.
        publisher.advance(slow, 5);
        assert_eq!(publisher.retention_watermark(), Some(11));
        publisher.detach(slow);
        assert_eq!(publisher.retention_watermark(), Some(17));
        publisher.detach(fast);
        assert_eq!(publisher.retention_watermark(), None);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn polling_below_the_compaction_floor_is_stale_typed() {
        let root = fresh_dir("stale");
        let node = primary(&root, 0);
        let catalog = SnapshotCatalog::open(root.join("snaps")).unwrap();
        for i in 0..30i64 {
            node.insert(vec![Value::Int(i)]).unwrap();
        }
        node.checkpoint(&catalog, "node").unwrap();
        node.wal().rotate_now().unwrap();
        let publisher = SegmentPublisher::new(Arc::clone(&node));
        // Nobody attached: compaction drops everything below the mark.
        publisher.compact_primary().unwrap();
        let err = publisher.poll(0).unwrap_err();
        assert!(matches!(err, ReplError::Stale { from: 0, .. }), "{err}");
        // At or above the floor still serves.
        let floor = publisher.compaction_floor();
        assert!(floor > 0);
        assert!(publisher.poll(floor).is_ok());
        std::fs::remove_dir_all(&root).unwrap();
    }
}
