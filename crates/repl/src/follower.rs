//! The follower side: bootstrap from a checkpoint, stream the primary's
//! log, serve epoch-pinned replica reads.
//!
//! A [`Follower`] is a read replica built from exactly the pieces a
//! crashed primary recovers from — which is why its guarantees are the
//! recovery guarantees:
//!
//! * **Bootstrap** loads the primary's checkpoint snapshot
//!   (`(state, wal_lsn, epoch)`), replays whatever its *local* segment
//!   mirror already holds past the mark (the restart path), and fixes
//!   the epoch ↔ LSN dictionary at the checkpoint cut:
//!   `epoch(lsn) = cut + (lsn − mark)`. The dictionary is derived from
//!   the checkpoint alone, so it survives follower restarts unchanged.
//! * **Catch-up** polls the publisher for durable record frames,
//!   validates them with the on-disk segment scanner (torn or garbled
//!   shipments fail typed), persists them to the local mirror *first*
//!   (durability before state, same as the primary's WAL-before-apply
//!   order), then replays them into the live relation with compacted
//!   semantics — gid gaps left by primary compaction burn as
//!   tombstones, so answers *and* global row ids stay bit-identical to
//!   the primary's prefix. LSN gaps advance the epoch clock without
//!   replaying, keeping the dictionary exact:
//!   `current_epoch == epoch_of_lsn(applied_lsn)` after every step.
//! * **Serving** implements [`BatchServe`] by delegating to the inner
//!   [`LiveRelation`], whose MVCC pin is taken at the current epoch —
//!   i.e. **the epoch of the last LSN this follower replayed**. Every
//!   served batch is a consistent cut that is a true prefix of the
//!   primary, and concurrent catch-up ticks never tear a pinned read.
//!
//! Locking: the mirror state is a `FollowerCatchup`-ranked lock
//! (sub-order 1, after the publisher's table) held only across local
//! file appends and fsyncs — never across replay, which re-enters the
//! engine's ranks 10–40. Catch-up cycles are serialized by a lock-free
//! turnstile ([`ReplError::CatchUpInProgress`] when contended), so the
//! replay itself runs with no replication lock held.

use crate::publisher::{SegmentPublisher, Shipment, SubscriptionId};
use crate::ReplError;
use pitract_core::epoch::Epoch;
use pitract_core::lockdep::{LockRank, OrderedMutex};
use pitract_engine::batch::WorkerResults;
use pitract_engine::planner::QueryPlan;
use pitract_engine::{
    BatchAnswers, BatchRows, BatchServe, EngineError, LiveRelation, QueryBatch, UpdateEntry,
};
use pitract_obs::{Gauge, Histogram, Recorder};
use pitract_relation::{Schema, SelectionQuery, Value};
use pitract_store::codec::Reader as CodecReader;
use pitract_store::{fsync_dir, SnapshotCatalog};
use pitract_wal::segment::{
    scan_dir, scan_segment, segment_file_name, segment_header, SEGMENT_HEADER_LEN,
};
use pitract_wal::{SyncPolicy, WalConfig, WalError, WalReader};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Typed catch-up progress: where the follower stands against its
/// primary after a catch-up cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatchUpReport {
    /// The LSN after the last position this follower has applied: its
    /// served state covers exactly the primary records below it.
    pub applied_lsn: u64,
    /// The primary's durable frontier at the time of the report.
    pub primary_lsn: u64,
    /// `primary_lsn − applied_lsn`: how many log positions the
    /// follower's consistent cut trails the primary by.
    pub lag: u64,
}

/// The follower's local segment mirror: shipped frames are appended to
/// segment files in the follower's own WAL directory — original
/// primary LSNs preserved — so a follower restart recovers with the
/// same scanner, truncation, and replay machinery as a crashed primary.
#[derive(Debug)]
struct Mirror {
    dir: PathBuf,
    /// The active local segment, append-positioned. `None` until the
    /// first shipped frame (or when the last local segment was a
    /// headerless husk).
    file: Option<std::fs::File>,
    active_bytes: u64,
    segment_bytes: u64,
    fsync: bool,
}

impl Mirror {
    /// Append one already-validated record frame, rotating to a fresh
    /// segment (based at the record's LSN) when the active one is full.
    fn append(&mut self, lsn: u64, frame: &[u8]) -> Result<(), WalError> {
        if self.file.is_none() || self.active_bytes >= self.segment_bytes {
            if let Some(prev) = self.file.take() {
                if self.fsync {
                    // Seal the closing segment before the new one
                    // exists: the scanner treats every non-last segment
                    // as crash-free.
                    prev.sync_all()?;
                }
            }
            let path = self.dir.join(segment_file_name(lsn));
            let mut file = std::fs::OpenOptions::new()
                .create_new(true)
                .write(true)
                .open(&path)?;
            file.write_all(&segment_header(lsn))?;
            if self.fsync {
                file.sync_all()?;
                fsync_dir(&self.dir)?;
            }
            self.active_bytes = SEGMENT_HEADER_LEN as u64;
            self.file = Some(file);
        }
        if let Some(file) = self.file.as_mut() {
            file.write_all(frame)?;
            self.active_bytes += frame.len() as u64;
        }
        Ok(())
    }

    /// Flush the active segment (once per catch-up step, before apply).
    fn sync(&mut self) -> Result<(), WalError> {
        if self.fsync {
            if let Some(file) = self.file.as_ref() {
                file.sync_all()?;
            }
        }
        Ok(())
    }
}

/// Lock-free catch-up turnstile: exactly one cycle may run at a time,
/// and replay must not happen under a replication lock — so exclusion
/// is an atomic claim, not a mutex.
struct Turn<'a>(&'a AtomicBool);

impl<'a> Turn<'a> {
    fn claim(flag: &'a AtomicBool) -> Result<Self, ReplError> {
        flag.compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .map_err(|_| ReplError::CatchUpInProgress)?;
        Ok(Turn(flag))
    }
}

impl Drop for Turn<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::Release);
    }
}

/// A read replica: checkpoint-bootstrapped, log-shipped, serving
/// batches pinned to the epoch of the last LSN it replayed. See the
/// module docs for the full contract.
#[derive(Debug)]
pub struct Follower {
    live: LiveRelation,
    mirror: OrderedMutex<Mirror>,
    /// Serializes catch-up cycles without holding a lock across replay.
    applying: AtomicBool,
    /// The follower's cursor in the *primary's* LSN coordinate.
    applied: AtomicU64,
    /// The checkpoint's WAL mark: LSN half of the epoch dictionary.
    wal_base: u64,
    /// The checkpoint's cut epoch: epoch half of the dictionary.
    epoch_base: u64,
    lag_gauge: Gauge,
    replay_micros: Histogram,
}

impl Follower {
    /// Bootstrap (or restart — same code path, same as the primary's
    /// recovery) a follower: load the checkpoint saved under `name` in
    /// `catalog`, replay whatever `mirror_dir` already holds past the
    /// checkpoint mark, and fix the epoch ↔ LSN dictionary at the
    /// checkpoint cut. `config.segment_bytes` sizes the local mirror
    /// segments; `config.sync` chooses whether catch-up fsyncs shipped
    /// frames before applying them ([`SyncPolicy::Never`] skips the
    /// flush, trading replica rebuild-on-power-loss for speed).
    pub fn bootstrap(
        catalog: &SnapshotCatalog,
        name: &str,
        mirror_dir: impl Into<PathBuf>,
        config: WalConfig,
    ) -> Result<Self, ReplError> {
        Self::bootstrap_observed(catalog, name, mirror_dir, config, &Recorder::default())
    }

    /// [`Self::bootstrap`] with metrics: the replica's `engine_*` /
    /// `mvcc_*` series plus `replication_lag_lsn` and
    /// `repl_replay_micros` land in `recorder`, next to whatever the
    /// primary publishes into its own.
    pub fn bootstrap_observed(
        catalog: &SnapshotCatalog,
        name: &str,
        mirror_dir: impl Into<PathBuf>,
        config: WalConfig,
        recorder: &Recorder,
    ) -> Result<Self, ReplError> {
        let dir = mirror_dir.into();
        std::fs::create_dir_all(&dir)?;
        let (state, mark, cut) = catalog
            .load(name)?
            .into_checkpoint()
            .map_err(WalError::from)?;

        // Scan the local mirror exactly like primary recovery scans its
        // WAL: truncate the torn tail a crash mid-append left behind,
        // fail typed on closed-segment damage.
        let scan = scan_dir(&dir)?;
        let mut active: Option<(PathBuf, u64)> = None;
        if let Some(seg) = scan.segments.last() {
            if seg.clean_len >= SEGMENT_HEADER_LEN as u64 {
                if seg.clean_len < seg.file_len {
                    let file = std::fs::OpenOptions::new().write(true).open(&seg.path)?;
                    file.set_len(seg.clean_len)?;
                    file.sync_all()?;
                }
                active = Some((seg.path.clone(), seg.clean_len));
            } else {
                // Torn at birth: the header never hit the disk, nothing
                // in it was confirmed.
                std::fs::remove_file(&seg.path)?;
            }
        }
        let reader = WalReader::from_scan_observed(&scan, recorder)?;

        let mut live = LiveRelation::from_sharded(state);
        live.set_recorder(recorder);
        let tail = reader.tail_log(mark);
        let compacted = tail.compact();
        live.replay_compacted(&compacted)?;
        if let Some(watermark) = tail.next_gid_watermark() {
            live.burn_gids_to(watermark);
        }
        let applied = reader.next_lsn().max(mark);
        // The dictionary is fixed by the checkpoint alone — mark ↔ cut —
        // so it is identical on every restart of this follower, and LSN
        // gaps (primary compaction) advance the clock by their span, not
        // by the record count the replay happened to tick.
        live.advance_epoch_to(Epoch::new(cut.get() + (applied - mark)));

        let file = match &active {
            Some((path, _)) => Some(std::fs::OpenOptions::new().append(true).open(path)?),
            None => None,
        };
        let mirror = Mirror {
            dir,
            file,
            active_bytes: active.map_or(0, |(_, len)| len),
            segment_bytes: config.segment_bytes,
            fsync: !matches!(config.sync, SyncPolicy::Never),
        };
        Ok(Follower {
            live,
            // Follower mirror = sub-order 1 of the FollowerCatchup
            // rank, after the publisher's table (sub-order 0).
            mirror: OrderedMutex::with_sub_order(LockRank::FollowerCatchup, 1, mirror),
            applying: AtomicBool::new(false),
            applied: AtomicU64::new(applied),
            wal_base: mark,
            epoch_base: cut.get(),
            lag_gauge: recorder.gauge("replication_lag_lsn"),
            replay_micros: recorder.histogram("repl_replay_micros"),
        })
    }

    /// The LSN after the last primary record this follower has applied.
    pub fn applied_lsn(&self) -> u64 {
        self.applied.load(Ordering::SeqCst)
    }

    /// The epoch of the follower's current consistent cut — the epoch
    /// of the last LSN it replayed, which is what served batches pin.
    pub fn applied_epoch(&self) -> Epoch {
        self.epoch_of_lsn(self.applied_lsn())
    }

    /// The follower's epoch ↔ LSN dictionary, fixed at the bootstrap
    /// checkpoint: the epoch whose state covers exactly the primary
    /// records below `lsn`.
    pub fn epoch_of_lsn(&self, lsn: u64) -> Epoch {
        Epoch::new(self.epoch_base + lsn.saturating_sub(self.wal_base))
    }

    /// Inverse of [`Self::epoch_of_lsn`]: the first primary LSN *not*
    /// covered by `epoch`.
    pub fn lsn_of_epoch(&self, epoch: Epoch) -> u64 {
        self.wal_base + epoch.get().saturating_sub(self.epoch_base)
    }

    /// Register this follower in `publisher`'s retention table at its
    /// current cursor. Until detached, the primary's compactor (routed
    /// through the publisher) cannot drop a segment this follower has
    /// yet to fetch.
    pub fn attach(&self, publisher: &SegmentPublisher) -> SubscriptionId {
        publisher.attach(self.applied_lsn())
    }

    /// Catch up to the primary's durable frontier: poll, validate,
    /// persist, replay — repeating until a poll comes back empty. `sub`
    /// is advanced after every applied shipment, releasing retention as
    /// the follower progresses. Fails typed and applies nothing of a
    /// shipment that does not validate.
    pub fn catch_up(
        &self,
        publisher: &SegmentPublisher,
        sub: SubscriptionId,
    ) -> Result<CatchUpReport, ReplError> {
        let turn = Turn::claim(&self.applying)?;
        loop {
            let advanced = self.step(publisher, sub, usize::MAX)?;
            if !advanced {
                drop(turn);
                return Ok(self.report(publisher));
            }
        }
    }

    /// One bounded catch-up step: apply at most one shipment of roughly
    /// `max_bytes` of frames. Returns the post-step report; compare
    /// `applied_lsn` before and after (or check `lag`) to see whether
    /// the step advanced. This is the granularity crash tests and
    /// incremental pollers drive.
    pub fn catch_up_step(
        &self,
        publisher: &SegmentPublisher,
        sub: SubscriptionId,
        max_bytes: usize,
    ) -> Result<CatchUpReport, ReplError> {
        let _turn = Turn::claim(&self.applying)?;
        self.step(publisher, sub, max_bytes)?;
        Ok(self.report(publisher))
    }

    /// Where this follower stands against `publisher` right now,
    /// without applying anything.
    pub fn report(&self, publisher: &SegmentPublisher) -> CatchUpReport {
        let applied_lsn = self.applied_lsn();
        let primary_lsn = publisher.durable_lsn().max(applied_lsn);
        let report = CatchUpReport {
            applied_lsn,
            primary_lsn,
            lag: primary_lsn - applied_lsn,
        };
        self.lag_gauge.set(report.lag as i64);
        report
    }

    /// Poll + validate + persist + replay one shipment. Returns whether
    /// the cursor advanced. Caller holds the turnstile.
    fn step(
        &self,
        publisher: &SegmentPublisher,
        sub: SubscriptionId,
        max_bytes: usize,
    ) -> Result<bool, ReplError> {
        let from = self.applied_lsn();
        let ship = publisher.poll_bytes(from, max_bytes)?;
        if ship.is_empty() {
            return Ok(false);
        }
        self.apply_locked(&ship)?;
        publisher.advance(sub, ship.end());
        self.report(publisher);
        Ok(true)
    }

    /// The receive half of the transport: validate and apply one
    /// [`Shipment`] — however it arrived — against this follower's
    /// cursor. In-process catch-up ([`Self::catch_up`]) uses this under
    /// the hood; a custom transport that moved the shipment over a wire
    /// calls it directly after [`Shipment::from_parts`]. All-or-nothing:
    /// a shipment that fails validation (torn, garbled, short a frame,
    /// misaligned with the cursor) is a typed error and changes nothing.
    pub fn apply_shipment(&self, ship: &Shipment) -> Result<(), ReplError> {
        let _turn = Turn::claim(&self.applying)?;
        if ship.is_empty() {
            return Ok(());
        }
        self.apply_locked(ship)
    }

    /// Validate + persist + replay one non-empty shipment. Caller holds
    /// the turnstile.
    fn apply_locked(&self, ship: &Shipment) -> Result<(), ReplError> {
        let from = self.applied_lsn();
        if ship.base() != from {
            return Err(ReplError::Misaligned {
                expected: from,
                found: ship.base(),
            });
        }

        // Validate the transfer with the segment scanner: a shipment is
        // a *closed* run of frames, so a tear (a frame cut short in
        // flight) is typed corruption here, never a silent prefix.
        let mut bytes = segment_header(ship.base());
        bytes.extend_from_slice(ship.frames());
        let scan = scan_segment(&bytes, ship.base(), false, "shipment")?;
        // A truncation that lands exactly on a frame boundary scans as a
        // valid *shorter* run — the record count in the shipment header
        // is what catches it.
        if scan.records.len() != ship.records() {
            return Err(ReplError::Wal(WalError::Corrupt {
                segment: "shipment".to_string(),
                offset: bytes.len() as u64,
                reason: format!(
                    "shipment claims {} records but {} frames arrived",
                    ship.records(),
                    scan.records.len()
                ),
            }));
        }
        let mut entries: Vec<(u64, Vec<u8>, UpdateEntry)> = Vec::with_capacity(scan.records.len());
        for (lsn, payload) in scan.records {
            if lsn < from || lsn >= ship.end() {
                return Err(ReplError::Misaligned {
                    expected: from,
                    found: lsn,
                });
            }
            let mut r = CodecReader::new(&payload);
            let entry = r.update_entry().map_err(|e| WalError::Corrupt {
                segment: "shipment".to_string(),
                offset: 0,
                reason: format!("record {lsn} payload does not decode: {e}"),
            })?;
            entries.push((lsn, payload, entry));
        }

        // Persist before apply — the same WAL-before-state order the
        // primary commits under. The mirror lock (FollowerCatchup) is
        // held across file appends and the flush only.
        {
            let mut mirror = self.mirror.lock();
            for (lsn, payload, _) in &entries {
                let frame = pitract_wal::segment::encode_record(*lsn, payload);
                mirror.append(*lsn, &frame)?;
            }
            mirror.sync()?;
        }

        // Replay with no replication lock held (replay re-enters the
        // engine's ranked tiers). Compacted semantics: a gid gap the
        // primary's compactor left burns as tombstones, so global row
        // ids stay bit-identical.
        let started = std::time::Instant::now();
        let to_apply: Vec<UpdateEntry> = entries.into_iter().map(|(_, _, e)| e).collect();
        self.live.replay_entries(&to_apply)?;
        // LSN gaps advance the clock by their span: the dictionary
        // invariant `current_epoch == epoch_of_lsn(applied)` holds
        // after every step, whatever compaction dropped.
        self.live.advance_epoch_to(self.epoch_of_lsn(ship.end()));
        self.replay_micros.record_duration(started.elapsed());

        self.applied.store(ship.end(), Ordering::SeqCst);
        Ok(())
    }

    // --- read-only serving surface -----------------------------------

    /// The replica's schema.
    pub fn schema(&self) -> &Schema {
        self.live.schema()
    }

    /// Live rows currently visible at the replica's cut.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Is the replica empty at its current cut?
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Shards the replica serves from.
    pub fn shard_count(&self) -> usize {
        self.live.shard_count()
    }

    /// Boolean answer for one query at the replica's current cut.
    pub fn answer(&self, q: &SelectionQuery) -> bool {
        self.live.answer(q)
    }

    /// Matching global row ids for one query at the replica's current
    /// cut — the primary's gids, bit-identical.
    pub fn matching_ids(&self, q: &SelectionQuery) -> Vec<usize> {
        self.live.matching_ids(q)
    }

    /// Read one row by its (primary) global id.
    pub fn row(&self, gid: usize) -> Option<Vec<Value>> {
        self.live.row(gid)
    }

    /// Execute a batch at one consistent pinned cut (the epoch of the
    /// last LSN replayed) — the single-threaded twin of serving this
    /// follower from a [`pitract_engine::PooledExecutor`].
    pub fn execute(&self, batch: &QueryBatch) -> Result<BatchAnswers, EngineError> {
        self.live.execute(batch)
    }

    /// Like [`Self::execute`], returning matching global row ids per
    /// query.
    pub fn execute_rows(&self, batch: &QueryBatch) -> Result<BatchRows, EngineError> {
        self.live.execute_rows(batch)
    }

    /// The replica's current epoch (== the epoch of its applied LSN).
    pub fn current_epoch(&self) -> Epoch {
        self.live.current_epoch()
    }
}

/// Serve a follower from a persistent [`pitract_engine::PooledExecutor`]
/// exactly like any other target: the pin taken per batch is the
/// replica's MVCC pin — the epoch of the last LSN it replayed — so
/// every pooled batch reads one consistent prefix of the primary even
/// while catch-up keeps applying.
impl BatchServe for Follower {
    fn route(
        &self,
        queries: &[SelectionQuery],
    ) -> Result<(Vec<QueryPlan>, Vec<Vec<usize>>), EngineError> {
        BatchServe::route(&self.live, queries)
    }

    fn shard_count(&self) -> usize {
        BatchServe::shard_count(&self.live)
    }

    fn pin_epoch(&self) -> Option<Epoch> {
        BatchServe::pin_epoch(&self.live)
    }

    fn unpin_epoch(&self, epoch: Epoch) {
        BatchServe::unpin_epoch(&self.live, epoch);
    }

    fn eval_bool(
        &self,
        shard: usize,
        at: Epoch,
        queries: &[SelectionQuery],
        assigned: &[usize],
    ) -> WorkerResults<bool> {
        BatchServe::eval_bool(&self.live, shard, at, queries, assigned)
    }

    fn eval_rows(
        &self,
        shard: usize,
        at: Epoch,
        queries: &[SelectionQuery],
        assigned: &[usize],
    ) -> WorkerResults<Vec<usize>> {
        BatchServe::eval_rows(&self.live, shard, at, queries, assigned)
    }

    fn global_ids(&self, shard: usize, locals: &[usize]) -> Vec<usize> {
        BatchServe::global_ids(&self.live, shard, locals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitract_engine::ShardBy;
    use pitract_relation::{ColType, Relation};
    use pitract_wal::DurableLiveRelation;
    use std::path::{Path, PathBuf};
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    static SEQ: AtomicUsize = AtomicUsize::new(0);

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pitract-replfol-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config() -> WalConfig {
        WalConfig {
            segment_bytes: 160,
            sync: SyncPolicy::GroupCommit,
        }
    }

    fn primary(root: &Path, rows: i64) -> (Arc<DurableLiveRelation>, SnapshotCatalog) {
        let schema = Schema::new(&[("id", ColType::Int)]);
        let data: Vec<Vec<Value>> = (0..rows).map(|i| vec![Value::Int(i)]).collect();
        let rel = Relation::from_rows(schema, data).unwrap();
        let live = LiveRelation::build(&rel, ShardBy::Hash { col: 0 }, 2, &[0]).unwrap();
        let catalog = SnapshotCatalog::open(root.join("snaps")).unwrap();
        let node = Arc::new(
            DurableLiveRelation::create(live, &catalog, "node", root.join("wal"), config())
                .unwrap(),
        );
        (node, catalog)
    }

    #[test]
    fn follower_catches_up_and_matches_the_primary_bit_for_bit() {
        let root = fresh_dir("basic");
        let (node, catalog) = primary(&root, 5);
        let publisher = SegmentPublisher::new(Arc::clone(&node));
        let follower =
            Follower::bootstrap(&catalog, "node", root.join("mirror"), config()).unwrap();
        let sub = follower.attach(&publisher);

        let mut deleted = Vec::new();
        for i in 0..40i64 {
            let gid = node.insert(vec![Value::Int(1000 + i)]).unwrap();
            if i % 3 == 0 {
                node.delete(gid).unwrap();
                deleted.push(gid);
            }
        }
        let report = follower.catch_up(&publisher, sub).unwrap();
        assert_eq!(report.lag, 0);
        assert_eq!(report.applied_lsn, node.wal().durable_lsn());
        assert_eq!(follower.len(), node.len());
        // Answers AND global row ids, bit-identical.
        for probe in [0i64, 3, 1000, 1001, 1003, 1039, 999_999] {
            let q = SelectionQuery::point(0, probe);
            assert_eq!(follower.answer(&q), node.answer(&q), "probe {probe}");
            assert_eq!(
                follower.matching_ids(&q),
                node.matching_ids(&q),
                "probe {probe}"
            );
        }
        for gid in deleted {
            assert_eq!(follower.row(gid), None);
        }
        // The pinned-epoch dictionary names the applied prefix.
        assert_eq!(
            follower.applied_epoch(),
            follower.current_epoch(),
            "current epoch is the applied cut"
        );
        assert_eq!(
            follower.lsn_of_epoch(follower.applied_epoch()),
            report.applied_lsn
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn follower_restart_resumes_from_its_mirror() {
        let root = fresh_dir("restart");
        let (node, catalog) = primary(&root, 0);
        let publisher = SegmentPublisher::new(Arc::clone(&node));
        for i in 0..25i64 {
            node.insert(vec![Value::Int(i)]).unwrap();
        }
        let follower =
            Follower::bootstrap(&catalog, "node", root.join("mirror"), config()).unwrap();
        let sub = follower.attach(&publisher);
        follower.catch_up(&publisher, sub).unwrap();
        let applied = follower.applied_lsn();
        let epoch = follower.applied_epoch();
        drop(follower);

        // More primary traffic while the follower is down.
        for i in 25..31i64 {
            node.insert(vec![Value::Int(i)]).unwrap();
        }
        let back = Follower::bootstrap(&catalog, "node", root.join("mirror"), config()).unwrap();
        assert_eq!(back.applied_lsn(), applied, "mirror replayed");
        assert_eq!(back.applied_epoch(), epoch, "dictionary is stable");
        let sub = back.attach(&publisher);
        let report = back.catch_up(&publisher, sub).unwrap();
        assert_eq!(report.lag, 0);
        assert_eq!(back.len(), node.len());
        let q = SelectionQuery::point(0, 30);
        assert_eq!(back.matching_ids(&q), node.matching_ids(&q));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn catch_up_bridges_compaction_gaps_with_identical_gids() {
        let root = fresh_dir("gaps");
        let (node, catalog) = primary(&root, 0);
        let publisher = SegmentPublisher::new(Arc::clone(&node));
        // Churn whose pairs cancel inside closed segments, then compact
        // *before* the follower ever polls: the shipped stream has both
        // LSN gaps and gid gaps.
        let mut live_gids = Vec::new();
        for i in 0..30i64 {
            let gid = node.insert(vec![Value::Int(i)]).unwrap();
            if i % 2 == 0 {
                node.delete(gid).unwrap();
            } else {
                live_gids.push(gid);
            }
        }
        node.wal().rotate_now().unwrap();
        node.compact_wal().unwrap();

        let follower =
            Follower::bootstrap(&catalog, "node", root.join("mirror"), config()).unwrap();
        let sub = follower.attach(&publisher);
        let report = follower.catch_up(&publisher, sub).unwrap();
        assert_eq!(report.lag, 0);
        assert_eq!(follower.len(), node.len());
        for i in 0..30i64 {
            let q = SelectionQuery::point(0, i);
            assert_eq!(follower.answer(&q), node.answer(&q), "probe {i}");
            assert_eq!(
                follower.matching_ids(&q),
                node.matching_ids(&q),
                "probe {i}"
            );
        }
        // The epoch dictionary still maps the cut to the full LSN span,
        // not the post-compaction record count.
        assert_eq!(follower.applied_epoch(), follower.current_epoch());
        assert_eq!(
            follower.lsn_of_epoch(follower.applied_epoch()),
            report.applied_lsn
        );
        // New inserts on both sides keep assigning identical gids.
        let gid = node.insert(vec![Value::Int(777)]).unwrap();
        follower.catch_up(&publisher, sub).unwrap();
        assert_eq!(
            follower.matching_ids(&SelectionQuery::point(0, 777)),
            vec![gid]
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn garbled_shipment_fails_typed_and_applies_nothing() {
        let root = fresh_dir("garble");
        let (node, catalog) = primary(&root, 0);
        let publisher = SegmentPublisher::new(Arc::clone(&node));
        for i in 0..6i64 {
            node.insert(vec![Value::Int(i)]).unwrap();
        }
        let follower =
            Follower::bootstrap(&catalog, "node", root.join("mirror"), config()).unwrap();
        // Hand-garble a shipment the way a broken transport would:
        // flip a payload byte (checksum mismatch) and cut a frame short
        // (closed-run tear). Both must be typed, neither applied.
        let ship = publisher.poll(0).unwrap();
        let frames = ship.frames();
        let mut flipped = segment_header(0);
        flipped.extend_from_slice(frames);
        let n = flipped.len();
        flipped[n - 10] ^= 0xFF;
        let err = scan_segment(&flipped, 0, false, "shipment").unwrap_err();
        assert!(matches!(err, WalError::Corrupt { .. }), "{err}");
        let mut torn = segment_header(0);
        torn.extend_from_slice(&frames[..frames.len() - 3]);
        let err = scan_segment(&torn, 0, false, "shipment").unwrap_err();
        assert!(matches!(err, WalError::Corrupt { .. }), "{err}");
        // The follower stays clean and can still catch up for real.
        assert_eq!(follower.applied_lsn(), 0);
        let sub = follower.attach(&publisher);
        follower.catch_up(&publisher, sub).unwrap();
        assert_eq!(follower.len(), node.len());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn concurrent_catch_up_is_excluded_typed() {
        let root = fresh_dir("turnstile");
        let (node, catalog) = primary(&root, 3);
        let publisher = SegmentPublisher::new(Arc::clone(&node));
        let follower =
            Follower::bootstrap(&catalog, "node", root.join("mirror"), config()).unwrap();
        let sub = follower.attach(&publisher);
        // Claim the turnstile by hand, as a racing cycle would.
        follower.applying.store(true, Ordering::SeqCst);
        let err = follower.catch_up(&publisher, sub).unwrap_err();
        assert!(matches!(err, ReplError::CatchUpInProgress), "{err}");
        follower.applying.store(false, Ordering::SeqCst);
        assert!(follower.catch_up(&publisher, sub).is_ok());
        std::fs::remove_dir_all(&root).unwrap();
    }
}
