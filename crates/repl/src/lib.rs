//! # pitract-repl — WAL-shipping replication with LSN-pinned followers
//!
//! The paper's preprocessing thesis makes single-node *reads* cheap;
//! serving them to "millions of users" requires reads to scale
//! horizontally while one primary owns writes. Everything needed for
//! that was already built for durability — WAL segments carry explicit
//! LSNs, closed segments are immutable, checkpoints name an exact
//! `(state, wal_lsn, epoch)` cut, and the epoch ↔ LSN dictionary maps
//! MVCC cuts onto log positions — so replication here is *log
//! shipping*, not a second consistency mechanism:
//!
//! * [`SegmentPublisher`] (primary side) exposes the primary's WAL as a
//!   polled tail subscription. Each [`Shipment`] is a run of record
//!   frames in the existing segment wire format (store codec payloads
//!   framed with FNV-1a-64 checksums), capped at the primary's durable
//!   frontier — a follower can never apply a record the primary could
//!   still lose. The publisher also owns the subscription table: the
//!   minimum applied LSN across attached followers is the **retention
//!   watermark** the primary's compactor honors, which closes the
//!   compaction/replication race by construction.
//! * [`Follower`] bootstraps from the primary's checkpoint snapshot,
//!   streams shipments into its own local segment mirror (durability
//!   first, then apply), and replays them into its own recovered
//!   [`pitract_engine::LiveRelation`]. Served batches pin **the epoch
//!   of the last LSN the follower replayed** — every read is a
//!   consistent cut that is a true prefix of the primary, bit-identical
//!   in both answers and global row ids.
//! * [`CatchUpReport`] is the typed progress statement
//!   (`applied_lsn` / `primary_lsn` / `lag`), and the stack publishes
//!   `replication_lag_lsn`, `repl_segments_shipped_total`, and
//!   `repl_replay_micros` through the `pitract-obs` registry next to
//!   the existing `wal_*` series.
//!
//! Torn or garbled transfers fail **typed** ([`ReplError`]), never
//! panic: shipments are validated with the same scanner that validates
//! on-disk segments, so a byte flipped in flight is a
//! [`pitract_wal::WalError::Corrupt`], and a shipment cut short is a
//! closed-segment tear — an error, not a silent prefix.
//!
//! Lock ordering: replication bookkeeping locks rank
//! `FollowerCatchup` (45) in the workspace lockdep table — above the
//! engine tiers (a catch-up section must *never* be held across replay,
//! which re-enters ranks 10–40) and below the WAL tiers (it may flush
//! mirror files while held). Catch-up itself is serialized by a
//! lock-free turnstile, so replay runs with no replication lock held.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// Serving-stack panic hygiene: no panicking escape hatches in non-test
// code. Individual invariant sites opt out locally with an `#[allow]`
// paired with a `// lint:allow(...)` justification that the
// `pitract-lint` pass checks.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(clippy::dbg_macro)]

pub mod follower;
pub mod publisher;

pub use follower::{CatchUpReport, Follower};
pub use publisher::{SegmentPublisher, Shipment, SubscriptionId};

use pitract_engine::EngineError;
use pitract_store::StoreError;
use pitract_wal::WalError;

/// Typed replication failures. Everything a garbled transfer, a lagging
/// disk, or a misuse can produce surfaces here — the replication stack
/// has no panicking paths.
#[derive(Debug)]
pub enum ReplError {
    /// A WAL-layer failure: I/O, a corrupt segment or shipment frame
    /// (checksum mismatch, non-monotonic LSN, a shipment cut short), or
    /// a snapshot-store failure during bootstrap.
    Wal(WalError),
    /// The engine rejected a replayed entry — e.g. a shipped insert's
    /// recorded gid does not match what the replica would assign, which
    /// means the stream is not a prefix of the primary's history.
    Engine(EngineError),
    /// A `catch_up` call found another catch-up cycle in flight on the
    /// same follower. Catch-up is single-writer by design (replays must
    /// apply in LSN order); retry after the running cycle completes.
    CatchUpInProgress,
    /// The publisher has compacted records below the requested fetch
    /// position away (the follower was detached, or attached too late):
    /// the follower's prefix can no longer be served from the log and
    /// it must re-bootstrap from a fresh checkpoint.
    Stale {
        /// The LSN the follower asked to fetch from.
        from: u64,
        /// The publisher's compaction floor: fetches must start at or
        /// above it.
        floor: u64,
    },
    /// A shipment did not line up with the follower's applied cursor —
    /// its first record sits below what the follower already applied,
    /// or beyond the range the shipment header claims.
    Misaligned {
        /// The cursor the follower expected the shipment to start at.
        expected: u64,
        /// The offending LSN found in the shipment.
        found: u64,
    },
}

impl std::fmt::Display for ReplError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplError::Wal(e) => write!(f, "replication wal error: {e}"),
            ReplError::Engine(e) => write!(f, "replication replay rejected: {e}"),
            ReplError::CatchUpInProgress => {
                write!(
                    f,
                    "another catch-up cycle is already running on this follower"
                )
            }
            ReplError::Stale { from, floor } => write!(
                f,
                "fetch from lsn {from} is below the publisher's compaction floor {floor}; \
                 the follower must re-bootstrap from a fresh checkpoint"
            ),
            ReplError::Misaligned { expected, found } => write!(
                f,
                "shipment misaligned: expected records from lsn {expected}, found {found}"
            ),
        }
    }
}

impl std::error::Error for ReplError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplError::Wal(e) => Some(e),
            ReplError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WalError> for ReplError {
    fn from(e: WalError) -> Self {
        ReplError::Wal(e)
    }
}

impl From<EngineError> for ReplError {
    fn from(e: EngineError) -> Self {
        ReplError::Engine(e)
    }
}

impl From<StoreError> for ReplError {
    fn from(e: StoreError) -> Self {
        // Reuse the WAL layer's store-error folding (it unwraps nested
        // engine errors where appropriate).
        ReplError::Wal(WalError::from(e))
    }
}

impl From<std::io::Error> for ReplError {
    fn from(e: std::io::Error) -> Self {
        ReplError::Wal(WalError::Io(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_chain() {
        let e = ReplError::Stale { from: 3, floor: 9 };
        assert!(e.to_string().contains("compaction floor 9"));
        let e = ReplError::from(WalError::Poisoned);
        assert!(std::error::Error::source(&e).is_some());
        let e = ReplError::Misaligned {
            expected: 5,
            found: 2,
        };
        assert!(e.to_string().contains("expected records from lsn 5"));
        assert!(ReplError::CatchUpInProgress
            .to_string()
            .contains("catch-up"));
    }
}
