//! RMQ `≤NC_fa` tree-LCA via the Cartesian tree.
//!
//! The classic equivalence behind Section 4(3)/(4): the leftmost minimum of
//! `A[i..=j]` is the lowest common ancestor of positions `i` and `j` in the
//! array's Cartesian tree (built with the "equal elements attach right"
//! convention so the root of any range is its *leftmost* minimum).
//!
//! Boolean form (the framework works with Boolean classes): the query
//! `(i, j, w)` asks "is the leftmost argmin of `[i, j]` exactly `w`?"; the
//! target query asks "is `LCA(i, j) = w`?". `α` builds the Cartesian tree
//! (data side only), `β` is the identity — and transferring the Euler-tour
//! LCA scheme backwards equips RMQ with O(1) queries, closing the loop the
//! paper draws between the two case studies.

use pitract_core::cost::CostClass;
use pitract_core::factor::identity_pair_factorization;
use pitract_core::lang::FnPairLanguage;
use pitract_core::reduce::{FReduction, FactorReduction};
use pitract_core::scheme::Scheme;
use pitract_index::lca::tree::{naive_lca, EulerTourLca, RootedTree};

/// Query triples: (i, j, candidate-answer w).
pub type Triple = (usize, usize, usize);

/// Source language: leftmost-argmin verification on arrays. The endpoint
/// pair is treated as unordered (like LCA's), so the reduction's iff holds
/// on *every* query string, well-formed or not, as Definition 4 demands.
pub fn rmq_language() -> FnPairLanguage<Vec<i64>, Triple> {
    FnPairLanguage::new("rmq-argmin", |d: &Vec<i64>, &(a, b, w): &Triple| {
        let (i, j) = (a.min(b), a.max(b));
        if j >= d.len() {
            return false;
        }
        let mut best = i;
        for k in i + 1..=j {
            if d[k] < d[best] {
                best = k;
            }
        }
        best == w
    })
}

/// Target language: LCA verification on rooted trees.
pub fn lca_language() -> FnPairLanguage<RootedTree, Triple> {
    FnPairLanguage::new("tree-lca", |d: &RootedTree, &(u, v, w): &Triple| {
        if u >= d.len() || v >= d.len() {
            return false;
        }
        naive_lca(d, u, v) == w
    })
}

/// Build the Cartesian tree of an array: O(n) stack construction, leftmost
/// minimum at the root, node ids = array positions.
///
/// Empty arrays get a single-node placeholder tree (the language rejects
/// all queries on them anyway, since any position is out of range).
pub fn cartesian_tree(data: &[i64]) -> RootedTree {
    if data.is_empty() {
        return RootedTree::from_parents(&[None]).expect("singleton tree");
    }
    let n = data.len();
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut stack: Vec<usize> = Vec::new();
    for i in 0..n {
        let mut last_popped: Option<usize> = None;
        while let Some(&top) = stack.last() {
            if data[top] > data[i] {
                stack.pop();
                last_popped = Some(top);
            } else {
                break;
            }
        }
        if let Some(p) = last_popped {
            // i replaces p in the spine; p hangs under i.
            parent[p] = Some(i);
        }
        if let Some(&top) = stack.last() {
            parent[i] = Some(top);
        }
        stack.push(i);
    }
    RootedTree::from_parents(&parent).expect("cartesian construction is acyclic")
}

/// The `≤NC_fa` reduction under identity factorizations on both sides.
#[allow(clippy::type_complexity)]
pub fn reduction(
) -> FactorReduction<(Vec<i64>, Triple), Vec<i64>, Triple, (RootedTree, Triple), RootedTree, Triple>
{
    FactorReduction::new(
        identity_pair_factorization(),
        identity_pair_factorization(),
        FReduction::new(
            "cartesian-tree",
            |d: &Vec<i64>| cartesian_tree(d),
            |q: &Triple| *q,
        ),
    )
}

/// The Π-tractability scheme for the target class: Euler tour + sparse
/// RMQ, O(1) LCA verification.
pub fn euler_lca_scheme() -> Scheme<RootedTree, (EulerTourLca, usize), Triple> {
    Scheme::new(
        "euler-tour LCA",
        CostClass::NLogN,
        CostClass::Constant,
        |d: &RootedTree| (EulerTourLca::build(d), d.len()),
        |(lca, n): &(EulerTourLca, usize), &(u, v, w): &Triple| {
            u < *n && v < *n && lca.query(u, v) == w
        },
    )
}

/// RMQ scheme obtained by transfer (Lemma 3, constructively): Cartesian
/// tree at preprocessing time, O(1) LCA probes at query time.
pub fn transferred_rmq_scheme() -> Scheme<Vec<i64>, (EulerTourLca, usize), Triple> {
    // β is a projection: constant parallel depth, as `≤NC_fa` requires.
    reduction().transfer(&euler_lca_scheme(), CostClass::Linear, CostClass::Constant)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitract_core::lang::PairLanguage;
    use pitract_core::problem::{DecisionProblem, FnProblem};

    fn arrays() -> Vec<Vec<i64>> {
        vec![
            vec![5],
            vec![2, 1],
            vec![1, 2],
            vec![3, 1, 4, 1, 5, 9, 2, 6],
            vec![7, 7, 7, 7],
            (0..64).map(|i| ((i * 37) % 23) as i64 - 11).collect(),
        ]
    }

    #[test]
    fn cartesian_tree_root_is_leftmost_minimum() {
        for data in arrays() {
            let t = cartesian_tree(&data);
            let min_pos = data
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.cmp(b.1).then(a.0.cmp(&b.0)))
                .map(|(i, _)| i)
                .unwrap();
            assert_eq!(t.root(), min_pos, "array {data:?}");
        }
    }

    #[test]
    fn cartesian_lca_equals_leftmost_argmin() {
        for data in arrays() {
            let t = cartesian_tree(&data);
            for i in 0..data.len() {
                for j in i..data.len() {
                    let mut best = i;
                    for k in i + 1..=j {
                        if data[k] < data[best] {
                            best = k;
                        }
                    }
                    assert_eq!(naive_lca(&t, i, j), best, "array {data:?} range [{i},{j}]");
                }
            }
        }
    }

    #[test]
    fn reduction_is_answer_preserving() {
        let rmq_problem = FnProblem::new("rmq", {
            let lang = rmq_language();
            move |x: &(Vec<i64>, Triple)| lang.contains(&x.0, &x.1)
        });
        let lca_problem = FnProblem::new("lca", {
            let lang = lca_language();
            move |x: &(RootedTree, Triple)| lang.contains(&x.0, &x.1)
        });
        let r = reduction();
        let mut probes = Vec::new();
        for data in arrays() {
            let n = data.len();
            for (i, j) in [(0usize, 0usize), (0, n - 1), (n / 3, 2 * n / 3)] {
                for w in [i, j, (i + j) / 2] {
                    probes.push((data.clone(), (i.min(j), j.max(i), w)));
                }
            }
        }
        assert_eq!(r.verify(&rmq_problem, &lca_problem, &probes), Ok(()));
        // Spot-check both polarities appear in the probe set.
        let positives = probes.iter().filter(|x| rmq_problem.accepts(x)).count();
        assert!(positives > 0 && positives < probes.len());
    }

    #[test]
    fn transferred_scheme_answers_rmq_in_constant_claimed_cost() {
        let scheme = transferred_rmq_scheme();
        assert!(scheme.claims_pi_tractable());
        assert_eq!(scheme.answer_cost(), CostClass::Constant);
        let lang = rmq_language();
        let instances: Vec<(Vec<i64>, Vec<Triple>)> = arrays()
            .into_iter()
            .map(|data| {
                let n = data.len();
                let queries = (0..n)
                    .flat_map(|i| (i..n).flat_map(move |j| [(i, j, i), (i, j, j)]))
                    .collect();
                (data, queries)
            })
            .collect();
        assert_eq!(scheme.verify_against(&lang, &instances), Ok(()));
    }

    #[test]
    fn out_of_range_queries_are_rejected_not_panicking() {
        let scheme = transferred_rmq_scheme();
        let p = scheme.preprocess(&vec![1, 2, 3]);
        assert!(!scheme.answer(&p, &(0, 9, 0)));
        assert!(!scheme.answer(&p, &(9, 9, 9)));
        let lang = rmq_language();
        assert!(!lang.contains(&vec![1, 2, 3], &(0, 9, 0)));
    }
}
