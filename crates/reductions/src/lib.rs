//! # pitract-reductions — the paper's reductions, made concrete
//!
//! Sections 5–7 of the paper are about *transformations between query
//! classes*: F-reductions `≤NC_F` preserve the data/query split, NC-factor
//! reductions `≤NC_fa` may re-factorize, and together with Lemma 3 they
//! carry Π-tractability schemes from one class to another. This crate
//! instantiates that machinery on the workspace's real query classes:
//!
//! | reduction | kind | paper hook |
//! |---|---|---|
//! | [`list_to_selection`] ListSearch → PointSelection | `≤NC_F` | Ex. 4: L_s and Q₁ are the same class in two outfits |
//! | [`point_to_range`] PointSelection → RangeSelection | `≤NC_F` | §4(1): point = degenerate range |
//! | [`rmq_lca`] RMQ → tree LCA (Cartesian tree) | `≤NC_fa` | §4(3)↔(4): the classic equivalence, data side |
//! | [`lca_to_rmq`] tree LCA → RMQ (Euler tour) | `≤NC_fa` | §4(4): Bender et al.'s route |
//! | [`connectivity_to_bds`] source-connectivity → BDS | `≤NC_fa` | Theorem 5's flavor: reducing *into* the complete problem |
//! | [`cvp_refactor`] CVP@Υ₀ → CVP@Υ_gate | `make_tractable` | Corollary 6 executed: a class that is not Π-tractable as factored becomes so after re-factorization |
//!
//! Every reduction is **verified** (both sides of the iff on randomized
//! probes) and **exercised** (the target's Π-tractability scheme is
//! transferred backwards and shown to answer the source class) — the
//! constructive content of Lemmas 2, 3, 8 and Corollary 6, running in CI
//! rather than sitting in prose.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod connectivity_to_bds;
pub mod cvp_refactor;
pub mod lca_to_rmq;
pub mod list_to_selection;
pub mod point_to_range;
pub mod rmq_lca;
