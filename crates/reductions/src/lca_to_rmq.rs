//! Tree-LCA `≤NC_fa` RMQ via the Euler tour — Bender et al.'s route, the
//! direction the paper's Section 4(4) preprocessing actually takes.
//!
//! `α` walks the tree once and emits the Euler structure (tour, first
//! occurrences, depths); the target language answers "is the tour node at
//! the depth-argmin between two first occurrences equal to w?". Note how
//! the occurrence map travels **with the data part** — the query part stays
//! the bare `(u, v, w)` triple. That placement is forced: `β` may only see
//! the query, and first occurrences depend on the tree. This is a small
//! live demonstration of why `≤NC_fa` lets the *data* side absorb
//! structure, the same liberty Theorem 5 exploits at full scale.

use pitract_core::cost::CostClass;
use pitract_core::factor::identity_pair_factorization;
use pitract_core::lang::FnPairLanguage;
use pitract_core::reduce::{FReduction, FactorReduction};
use pitract_core::scheme::Scheme;
use pitract_index::lca::tree::{naive_lca, RootedTree};
use pitract_index::rmq::sparse::SparseRmq;
use pitract_index::rmq::RangeMin;

/// Query triples: (u, v, candidate LCA w).
pub type Triple = (usize, usize, usize);

/// The Euler structure `α` produces: the data part of the target class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EulerData {
    /// Node visit sequence (2n − 1 entries).
    pub tour: Vec<usize>,
    /// First occurrence of each node in the tour.
    pub first: Vec<usize>,
    /// Depth of each tour entry.
    pub depths: Vec<u64>,
}

impl EulerData {
    /// Walk a tree into its Euler structure.
    pub fn from_tree(t: &RootedTree) -> Self {
        let (tour, first) = t.euler_tour();
        let depths = tour.iter().map(|&v| t.depth(v)).collect();
        EulerData {
            tour,
            first,
            depths,
        }
    }
}

/// Source language: LCA verification on rooted trees.
pub fn lca_language() -> FnPairLanguage<RootedTree, Triple> {
    FnPairLanguage::new("tree-lca", |d: &RootedTree, &(u, v, w): &Triple| {
        u < d.len() && v < d.len() && naive_lca(d, u, v) == w
    })
}

/// Target language: depth-argmin verification on Euler structures
/// (evaluated by scan — the *specification*; the scheme below is the fast
/// path).
pub fn euler_rmq_language() -> FnPairLanguage<EulerData, Triple> {
    FnPairLanguage::new("euler-rmq", |d: &EulerData, &(u, v, w): &Triple| {
        if u >= d.first.len() || v >= d.first.len() {
            return false;
        }
        let (a, b) = {
            let (fu, fv) = (d.first[u], d.first[v]);
            (fu.min(fv), fu.max(fv))
        };
        let mut best = a;
        for k in a + 1..=b {
            if d.depths[k] < d.depths[best] {
                best = k;
            }
        }
        d.tour[best] == w
    })
}

/// The `≤NC_fa` reduction: `α` = Euler walk, `β` = identity.
#[allow(clippy::type_complexity)]
pub fn reduction(
) -> FactorReduction<(RootedTree, Triple), RootedTree, Triple, (EulerData, Triple), EulerData, Triple>
{
    FactorReduction::new(
        identity_pair_factorization(),
        identity_pair_factorization(),
        FReduction::new(
            "euler-tour",
            |d: &RootedTree| EulerData::from_tree(d),
            |q: &Triple| *q,
        ),
    )
}

/// Π-tractability scheme for the target class: sparse-table RMQ over the
/// tour depths, O(1) per query.
pub fn sparse_euler_scheme() -> Scheme<EulerData, (EulerData, SparseRmq<u64>), Triple> {
    Scheme::new(
        "sparse-table euler RMQ",
        CostClass::NLogN,
        CostClass::Constant,
        |d: &EulerData| (d.clone(), SparseRmq::build(&d.depths)),
        |(d, rmq): &(EulerData, SparseRmq<u64>), &(u, v, w): &Triple| {
            if u >= d.first.len() || v >= d.first.len() {
                return false;
            }
            let (a, b) = {
                let (fu, fv) = (d.first[u], d.first[v]);
                (fu.min(fv), fu.max(fv))
            };
            d.tour[rmq.query(a, b)] == w
        },
    )
}

/// The transferred LCA scheme: Euler walk + sparse table at preprocessing,
/// O(1) probes per query — exactly Section 4(4)'s claim.
pub fn transferred_lca_scheme() -> Scheme<RootedTree, (EulerData, SparseRmq<u64>), Triple> {
    reduction().transfer(
        &sparse_euler_scheme(),
        CostClass::Linear,
        CostClass::Constant,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitract_core::lang::PairLanguage;
    use pitract_core::problem::FnProblem;

    fn random_tree(n: usize, seed: u64) -> RootedTree {
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let parents: Vec<Option<usize>> = (0..n)
            .map(|i| {
                if i == 0 {
                    None
                } else {
                    Some((rnd() as usize) % i)
                }
            })
            .collect();
        RootedTree::from_parents(&parents).unwrap()
    }

    fn probes() -> Vec<(RootedTree, Triple)> {
        let mut out = Vec::new();
        for n in [1usize, 2, 5, 17, 40] {
            let t = random_tree(n, n as u64 * 7 + 1);
            for (u, v) in [(0usize, n - 1), (n / 2, n / 3), (n - 1, n - 1)] {
                let w_true = naive_lca(&t, u, v);
                out.push((t.clone(), (u, v, w_true)));
                out.push((t.clone(), (u, v, (w_true + 1) % n)));
                out.push((t.clone(), (u, v, n + 5))); // out of range w
            }
        }
        out
    }

    #[test]
    fn reduction_is_answer_preserving() {
        let src = FnProblem::new("lca", {
            let lang = lca_language();
            move |x: &(RootedTree, Triple)| lang.contains(&x.0, &x.1)
        });
        let dst = FnProblem::new("euler-rmq", {
            let lang = euler_rmq_language();
            move |x: &(EulerData, Triple)| lang.contains(&x.0, &x.1)
        });
        assert_eq!(reduction().verify(&src, &dst, &probes()), Ok(()));
    }

    #[test]
    fn transferred_scheme_matches_naive_lca_everywhere() {
        let scheme = transferred_lca_scheme();
        assert!(scheme.claims_pi_tractable());
        for n in [1usize, 3, 10, 60] {
            let t = random_tree(n, n as u64 + 31);
            let p = scheme.preprocess(&t);
            for u in 0..n {
                for v in 0..n {
                    let w = naive_lca(&t, u, v);
                    assert!(scheme.answer(&p, &(u, v, w)), "n={n} ({u},{v})");
                    if n > 1 {
                        assert!(
                            !scheme.answer(&p, &(u, v, (w + 1) % n)),
                            "n={n} ({u},{v}) wrong w accepted"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn euler_data_shape() {
        let t = random_tree(20, 3);
        let d = EulerData::from_tree(&t);
        assert_eq!(d.tour.len(), 39);
        assert_eq!(d.depths.len(), 39);
        assert_eq!(d.first.len(), 20);
        for v in 0..20 {
            assert_eq!(d.tour[d.first[v]], v);
        }
    }

    #[test]
    fn chained_reduction_rmq_to_lca_to_rmq_roundtrips() {
        // Lemma 2 in action across crates: RMQ → LCA (Cartesian) composed
        // with LCA → Euler-RMQ. The composite maps array queries all the
        // way to Euler structures and must stay answer-preserving.
        let composite = crate::rmq_lca::reduction().compose(reduction());
        let src = FnProblem::new("rmq", {
            let lang = crate::rmq_lca::rmq_language();
            move |x: &(Vec<i64>, crate::rmq_lca::Triple)| lang.contains(&x.0, &x.1)
        });
        let dst = FnProblem::new("euler-rmq", {
            let lang = euler_rmq_language();
            move |x: &(EulerData, Triple)| lang.contains(&x.0, &x.1)
        });
        let arrays = [
            vec![3i64, 1, 4, 1, 5],
            vec![2, 2, 2],
            vec![9],
            (0..32).map(|i| ((i * 11) % 13) as i64).collect::<Vec<_>>(),
        ];
        let mut probes = Vec::new();
        for data in arrays {
            let n = data.len();
            for i in 0..n {
                for j in i..n {
                    probes.push((data.clone(), (i, j, i)));
                    probes.push((data.clone(), (i, j, j)));
                }
            }
        }
        assert_eq!(composite.verify(&src, &dst, &probes), Ok(()));
    }
}
