//! PointSelection `≤NC_F` RangeSelection: a point is a degenerate range.
//!
//! Section 4(1) extends Example 1 from point to range selections with the
//! same B⁺-tree preprocessing; this reduction states the inclusion of the
//! classes formally (`α = id`, `β` maps `A = c` to `c ≤ A ≤ c`) and lets
//! one transferred scheme serve both.

use pitract_core::cost::CostClass;
use pitract_core::lang::FnPairLanguage;
use pitract_core::reduce::FReduction;
use pitract_relation::{Relation, SelectionQuery};
use std::ops::Bound;

/// The target language: Boolean range selection.
pub fn range_selection_language() -> FnPairLanguage<Relation, SelectionQuery> {
    FnPairLanguage::new("range-selection", |d: &Relation, q: &SelectionQuery| {
        d.eval_scan(q)
    })
}

/// Rewrite a query, replacing every point constraint by the closed range
/// `[c, c]` (recursively through conjunctions).
fn pointless(q: &SelectionQuery) -> SelectionQuery {
    match q {
        SelectionQuery::Point { col, value } => SelectionQuery::Range {
            col: *col,
            lo: Bound::Included(value.clone()),
            hi: Bound::Included(value.clone()),
        },
        SelectionQuery::Range { col, lo, hi } => SelectionQuery::Range {
            col: *col,
            lo: lo.clone(),
            hi: hi.clone(),
        },
        SelectionQuery::And(a, b) => SelectionQuery::and(pointless(a), pointless(b)),
    }
}

/// The F-reduction: identity on data, point→range on queries.
pub fn reduction() -> FReduction<Relation, SelectionQuery, Relation, SelectionQuery> {
    FReduction::new("point→range", |d: &Relation| d.clone(), pointless)
}

/// β's cost class: a constant-size rewrite.
pub const BETA_COST: CostClass = CostClass::Constant;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list_to_selection::{point_selection_language, wrapped_schema};
    use pitract_relation::Value;

    fn relation(values: &[i64]) -> Relation {
        Relation::from_rows(
            wrapped_schema(),
            values.iter().map(|&v| vec![Value::Int(v)]).collect(),
        )
        .unwrap()
    }

    fn probes() -> Vec<(Relation, SelectionQuery)> {
        vec![
            (relation(&[1, 2, 3]), SelectionQuery::point(0, 2i64)),
            (relation(&[1, 2, 3]), SelectionQuery::point(0, 7i64)),
            (relation(&[]), SelectionQuery::point(0, 0i64)),
            (
                relation(&[5, 5]),
                SelectionQuery::and(
                    SelectionQuery::point(0, 5i64),
                    SelectionQuery::point(0, 5i64),
                ),
            ),
            (
                relation(&[1, 9]),
                SelectionQuery::range_closed(0, 2i64, 8i64),
            ),
        ]
    }

    #[test]
    fn reduction_preserves_membership() {
        assert_eq!(
            reduction().verify(
                &point_selection_language(),
                &range_selection_language(),
                &probes()
            ),
            Ok(())
        );
    }

    #[test]
    fn pointless_rewrites_points_to_degenerate_ranges() {
        let q = pointless(&SelectionQuery::point(0, 4i64));
        match q {
            SelectionQuery::Range { col, lo, hi } => {
                assert_eq!(col, 0);
                assert_eq!(lo, Bound::Included(Value::Int(4)));
                assert_eq!(hi, Bound::Included(Value::Int(4)));
            }
            other => panic!("expected a range, got {other:?}"),
        }
    }

    #[test]
    fn pointless_is_semantics_preserving_on_tuples() {
        let tuples = [
            vec![Value::Int(4)],
            vec![Value::Int(5)],
            vec![Value::Int(-4)],
        ];
        let queries = [
            SelectionQuery::point(0, 4i64),
            SelectionQuery::range_closed(0, -5i64, 0i64),
            SelectionQuery::and(
                SelectionQuery::point(0, 5i64),
                SelectionQuery::range_closed(0, 0i64, 9i64),
            ),
        ];
        for q in &queries {
            let rewritten = pointless(q);
            for t in &tuples {
                assert_eq!(q.matches(t), rewritten.matches(t), "{q:?} on {t:?}");
            }
        }
    }
}
