//! Source-connectivity `≤NC_fa` BDS — reducing *into* the paper's
//! ΠTP-complete problem (Theorem 5's working direction).
//!
//! Source problem: "is node t in the same component as node 0 of an
//! undirected graph G?". The reduction plants a **sentinel**: `α` renumbers
//! G so that the source keeps number 0, a fresh isolated node takes number
//! 1, and everything else shifts up by one. A breadth-depth search then
//! exhausts the component of node 0 first and — because restarts pick the
//! lowest-numbered unvisited node — visits the isolated sentinel
//! immediately afterwards. Hence:
//!
//! > t is connected to the source **iff** t's image is visited before the
//! > sentinel in the BDS of α(G).
//!
//! `β(t) = (shift(t), 1)` touches only the query. Transferring the BDS
//! visit-order index (Example 5's preprocessing) back along the reduction
//! equips connectivity with O(1) queries after one PTIME search.

use pitract_core::cost::CostClass;
use pitract_core::factor::identity_pair_factorization;
use pitract_core::problem::FnProblem;
use pitract_core::reduce::{FReduction, FactorReduction};
use pitract_core::scheme::Scheme;
use pitract_graph::bds::BdsIndex;
use pitract_graph::traverse::reachable_bfs;
use pitract_graph::Graph;

/// Source instance: an undirected graph (source = node 0) and a target.
pub type ConnInstance = (Graph, usize);
/// Target instance: a numbered undirected graph and a node pair.
pub type BdsInstance = (Graph, (usize, usize));

/// The source decision problem.
pub fn connectivity_problem() -> FnProblem<ConnInstance> {
    FnProblem::new("source-connectivity", |x: &ConnInstance| {
        x.1 < x.0.node_count() && reachable_bfs(&x.0, 0, x.1)
    })
}

/// The BDS decision problem (Example 2).
pub fn bds_problem() -> FnProblem<BdsInstance> {
    FnProblem::new("BDS", |x: &BdsInstance| {
        let (u, v) = x.1;
        let n = x.0.node_count();
        if u >= n || v >= n {
            return false;
        }
        let idx = BdsIndex::build(&x.0);
        idx.visited_before(u, v)
    })
}

/// Shift an original node id into the sentinel numbering.
pub fn shift(v: usize) -> usize {
    if v == 0 {
        0
    } else {
        v + 1
    }
}

/// `α`: add the isolated sentinel as node 1, shifting original ids ≥ 1 up.
pub fn plant_sentinel(g: &Graph) -> Graph {
    assert!(!g.is_directed(), "connectivity instances are undirected");
    let n = g.node_count();
    let edges: Vec<(usize, usize)> = g
        .edges()
        .into_iter()
        .map(|(u, v)| (shift(u), shift(v)))
        .collect();
    Graph::undirected_from_edges(n + 1, &edges)
}

/// The `≤NC_fa` reduction under identity factorizations.
pub fn reduction() -> FactorReduction<ConnInstance, Graph, usize, BdsInstance, Graph, (usize, usize)>
{
    FactorReduction::new(
        identity_pair_factorization(),
        identity_pair_factorization(),
        FReduction::new("sentinel-plant", plant_sentinel, |t: &usize| {
            (shift(*t), 1usize)
        }),
    )
}

/// The Π-tractability scheme for BDS (Example 5): one full search as
/// preprocessing, O(1) position probes per query.
pub fn bds_index_scheme() -> Scheme<Graph, (BdsIndex, usize), (usize, usize)> {
    Scheme::new(
        "BDS visit-order index",
        CostClass::NLogN,
        CostClass::Constant,
        |d: &Graph| (BdsIndex::build(d), d.node_count()),
        |(idx, n): &(BdsIndex, usize), &(u, v): &(usize, usize)| {
            u < *n && v < *n && idx.visited_before(u, v)
        },
    )
}

/// The transferred connectivity scheme: preprocess once (sentinel graph +
/// BDS), answer each "is t connected to the source?" in O(1).
pub fn transferred_connectivity_scheme() -> Scheme<Graph, (BdsIndex, usize), usize> {
    reduction().transfer(&bds_index_scheme(), CostClass::Linear, CostClass::Constant)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitract_core::problem::DecisionProblem;
    use pitract_graph::generate;

    fn probe_graphs() -> Vec<Graph> {
        vec![
            Graph::undirected_from_edges(1, &[]),
            Graph::undirected_from_edges(4, &[(0, 2)]),
            Graph::undirected_from_edges(6, &[(0, 1), (1, 2), (4, 5)]),
            generate::gnp_undirected(25, 0.08, 11),
            generate::gnp_undirected(25, 0.02, 12),
            generate::path(30, false),
        ]
    }

    #[test]
    fn sentinel_graph_shape() {
        let g = Graph::undirected_from_edges(3, &[(0, 1), (1, 2)]);
        let s = plant_sentinel(&g);
        assert_eq!(s.node_count(), 4);
        assert_eq!(s.degree(1), 0, "sentinel is isolated");
        assert_eq!(s.edges(), vec![(0, 2), (2, 3)]);
    }

    #[test]
    fn reduction_is_answer_preserving() {
        let src = connectivity_problem();
        let dst = bds_problem();
        let mut probes = Vec::new();
        for g in probe_graphs() {
            for t in 0..g.node_count() {
                probes.push((g.clone(), t));
            }
            probes.push((g.clone(), g.node_count() + 3)); // out of range
        }
        assert_eq!(reduction().verify(&src, &dst, &probes), Ok(()));
        // The probe set exercises both answers.
        let yes = probes.iter().filter(|x| src.accepts(x)).count();
        assert!(yes > 0 && yes < probes.len());
    }

    #[test]
    fn transferred_scheme_answers_connectivity() {
        let scheme = transferred_connectivity_scheme();
        assert!(scheme.claims_pi_tractable());
        for g in probe_graphs() {
            let p = scheme.preprocess(&g);
            for t in 0..g.node_count() {
                assert_eq!(
                    scheme.answer(&p, &t),
                    reachable_bfs(&g, 0, t),
                    "target {t} in {:?}",
                    g.edges()
                );
            }
        }
    }

    #[test]
    fn preprocessing_is_single_search_queries_are_probes() {
        // On a large graph, the transferred scheme preprocesses once and
        // then answers a batch of queries without re-searching: positions
        // of the index must answer all targets consistently with BFS.
        let g = generate::gnp_undirected(300, 0.004, 99);
        let scheme = transferred_connectivity_scheme();
        let p = scheme.preprocess(&g);
        let mut connected = 0;
        for t in 0..300 {
            if scheme.answer(&p, &t) {
                connected += 1;
            }
        }
        // Sanity: the component of 0 is nontrivial but not everything.
        assert!(connected >= 1);
        assert!(connected <= 300);
    }

    #[test]
    fn source_itself_is_always_connected() {
        let scheme = transferred_connectivity_scheme();
        for g in probe_graphs() {
            let p = scheme.preprocess(&g);
            assert!(scheme.answer(&p, &0), "source must connect to itself");
        }
    }
}
