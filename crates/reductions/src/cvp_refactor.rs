//! CVP re-factorized: Corollary 6 executed end to end.
//!
//! Under `Υ₀` (everything in the query part), CVP is **not** Π-tractable
//! unless P = NC (Theorem 9) — `pitract_circuit::factor::upsilon0_scheme`
//! is correct but its answering cost is linear. The paper's remedy is a
//! *re-factorization*: Lemma 3's construction composes the identity
//! reduction on `(CVP, Υ₀)` with a re-factorization reduction into
//! `(CVP, Υ_gate)`, where the gate-table scheme answers in O(1).
//!
//! [`tractabilize_cvp`] runs exactly that pipeline with the generic
//! machinery of `pitract_core::reduce::make_tractable` — no CVP-specific
//! glue — and the tests check the produced factorization and scheme
//! against ground truth. This is the workspace's executable form of "all
//! query classes in P can be made Π-tractable via `≤NC_fa` reductions".

use pitract_circuit::factor::{gate_factorization, gate_table_scheme, upsilon0, CvpInstance};
use pitract_core::cost::CostClass;
use pitract_core::reduce::{identity_factor_reduction, make_tractable, Tractabilization};

/// Run Lemma 3's construction on CVP: from the hopeless `Υ₀` factorization
/// to a working Π-tractability witness.
///
/// The produced factorization is the padded form of `Υ₀` (each part
/// carries the whole instance — the typed `@`-padding), and the produced
/// scheme preprocesses by building the gate table of the embedded circuit.
pub fn tractabilize_cvp() -> Tractabilization<CvpInstance, (), CvpInstance, Vec<bool>> {
    make_tractable(
        identity_factor_reduction(upsilon0()),
        gate_factorization(),
        &gate_table_scheme(),
        // α re-slices the padded instance: linear sequential work at
        // preprocessing time; β projects out the gate id: constant depth.
        CostClass::Linear,
        CostClass::Constant,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitract_circuit::factor::{cvp_problem, upsilon0_scheme};
    use pitract_circuit::generate::{adder_equals, layered, to_bits};
    use pitract_core::factor::Factorization;
    use pitract_core::problem::DecisionProblem;

    fn instances() -> Vec<CvpInstance> {
        let mut out: Vec<CvpInstance> = (0..5u64)
            .map(|seed| (layered(5, 12, 5, seed), to_bits(seed.wrapping_mul(19), 5)))
            .collect();
        // A structured family too: adders checking right and wrong sums.
        let mut inputs = to_bits(100, 8);
        inputs.extend(to_bits(55, 8));
        out.push((adder_equals(8, 155), inputs.clone()));
        out.push((adder_equals(8, 156), inputs));
        out
    }

    #[test]
    fn produced_scheme_decides_cvp_through_the_padded_factorization() {
        let result = tractabilize_cvp();
        let cvp = cvp_problem();
        for x in instances() {
            let d = result.factorization.pi1(&x);
            let q = result.factorization.pi2(&x);
            let pre = result.scheme.preprocess(&d);
            assert_eq!(
                result.scheme.answer(&pre, &q),
                cvp.accepts(&x),
                "instance with {} gates",
                x.0.size()
            );
        }
    }

    #[test]
    fn produced_scheme_claims_pi_tractability_where_upsilon0_cannot() {
        let result = tractabilize_cvp();
        assert!(
            result.scheme.claims_pi_tractable(),
            "re-factorized CVP must claim PTIME/NC"
        );
        assert!(
            !upsilon0_scheme().claims_pi_tractable(),
            "Υ₀ CVP must not (Theorem 9)"
        );
    }

    #[test]
    fn padded_factorization_roundtrips() {
        let result = tractabilize_cvp();
        for x in instances() {
            assert!(result.factorization.check_roundtrip(&x));
        }
    }

    #[test]
    fn preprocessing_is_reusable_across_gate_queries() {
        // The whole point of the re-factorization: one preprocessing pass,
        // many O(1) queries. The padded scheme fixes the query part per
        // instance, so re-query the *underlying* gate-table scheme instead.
        let scheme = gate_table_scheme();
        let f = gate_factorization();
        let x = instances().pop().unwrap();
        let d = f.pi1(&x);
        let pre = scheme.preprocess(&d);
        let truth = x.0.gate_table(&x.1);
        let hits = (0..x.0.size())
            .filter(|&g| scheme.answer(&pre, &g) == truth[g])
            .count();
        assert_eq!(hits, x.0.size(), "every gate query answered from one Π(D)");
    }
}
