//! ListSearch `≤NC_F` PointSelection.
//!
//! Example 4 of the paper factors the problem L_s (is there a tuple with
//! `t[A] = c`?) into the query class Q₁; the list-membership problem L₁ of
//! Section 4(2) is the same class wearing a different data type. The
//! F-reduction makes that identification formal: `α` wraps the list into a
//! single-column relation, `β` wraps the element into a point-selection
//! query — each side computable independently (no re-factorization), which
//! is what `≤NC_F` demands.

use pitract_core::cost::CostClass;
use pitract_core::lang::FnPairLanguage;
use pitract_core::reduce::FReduction;
use pitract_core::scheme::Scheme;
use pitract_relation::indexed::IndexedRelation;
use pitract_relation::{ColType, Relation, Schema, SelectionQuery, Value};

/// The source language: list membership (Section 4(2)'s L₁ as pairs).
pub fn list_search_language() -> FnPairLanguage<Vec<i64>, i64> {
    FnPairLanguage::new("list-search", |d: &Vec<i64>, q: &i64| d.contains(q))
}

/// The target language: Boolean point selection over single-column
/// relations (the paper's Q₁).
pub fn point_selection_language() -> FnPairLanguage<Relation, SelectionQuery> {
    FnPairLanguage::new("point-selection", |d: &Relation, q: &SelectionQuery| {
        d.eval_scan(q)
    })
}

/// Schema of the wrapped relation: one Int column "v".
pub fn wrapped_schema() -> Schema {
    Schema::new(&[("v", ColType::Int)])
}

/// The F-reduction `(α, β)`.
pub fn reduction() -> FReduction<Vec<i64>, i64, Relation, SelectionQuery> {
    FReduction::new(
        "list→relation",
        |d: &Vec<i64>| {
            let rows = d.iter().map(|&v| vec![Value::Int(v)]).collect();
            Relation::from_rows(wrapped_schema(), rows).expect("ints fit the schema")
        },
        |q: &i64| SelectionQuery::point(0, *q),
    )
}

/// The Π-tractability scheme for the *target* class: B⁺-tree indexing
/// (Example 1). Transfer through [`reduction`] yields a scheme for
/// list search — Lemma 8's compatibility, executed.
pub fn indexed_selection_scheme() -> Scheme<Relation, IndexedRelation, SelectionQuery> {
    Scheme::new(
        "B+tree point selection",
        CostClass::NLogN,
        CostClass::Log,
        |d: &Relation| IndexedRelation::build(d, &[0]).expect("column 0 exists"),
        |p: &IndexedRelation, q: &SelectionQuery| p.answer(q),
    )
}

/// The transferred scheme for list search (the deliverable of Lemma 8).
pub fn transferred_list_scheme() -> Scheme<Vec<i64>, IndexedRelation, i64> {
    reduction().transfer(
        &indexed_selection_scheme(),
        CostClass::Linear,   // α cost: one wrapping pass
        CostClass::Constant, // β cost: constant-size query rewrite
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probes() -> Vec<(Vec<i64>, i64)> {
        vec![
            (vec![3, 1, 4, 1, 5], 4),
            (vec![3, 1, 4, 1, 5], 9),
            (vec![], 0),
            (vec![-7], -7),
            (vec![i64::MAX, i64::MIN], i64::MIN),
        ]
    }

    #[test]
    fn reduction_preserves_membership() {
        let r = reduction();
        assert_eq!(
            r.verify(
                &list_search_language(),
                &point_selection_language(),
                &probes()
            ),
            Ok(())
        );
    }

    #[test]
    fn transferred_scheme_answers_list_search() {
        let scheme = transferred_list_scheme();
        assert!(
            scheme.claims_pi_tractable(),
            "Log answering, NLogN preprocessing"
        );
        let lang = list_search_language();
        let instances: Vec<(Vec<i64>, Vec<i64>)> = vec![
            (vec![10, 20, 30], vec![10, 15, 30, -1]),
            (vec![], vec![0, 1]),
            (
                (0..500).map(|i| i * 3).collect(),
                vec![0, 1, 2, 3, 1497, 1500],
            ),
        ];
        assert_eq!(scheme.verify_against(&lang, &instances), Ok(()));
    }

    #[test]
    fn transfer_composes_costs_correctly() {
        let scheme = transferred_list_scheme();
        assert_eq!(scheme.preprocess_cost(), CostClass::NLogN);
        assert_eq!(scheme.answer_cost(), CostClass::Log);
    }

    #[test]
    fn alpha_wraps_every_element() {
        let r = reduction();
        let rel = r.alpha(&vec![5, 5, 6]);
        assert_eq!(rel.len(), 3);
        assert_eq!(rel.row(0)[0], Value::Int(5));
    }

    #[test]
    fn composition_with_point_to_range_is_transitive() {
        // Lemma 8 transitivity: list → point-selection → range-selection.
        let combined = reduction().then(crate::point_to_range::reduction());
        let range_lang = crate::point_to_range::range_selection_language();
        assert_eq!(
            combined.verify(&list_search_language(), &range_lang, &probes()),
            Ok(())
        );
    }
}
