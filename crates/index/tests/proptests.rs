//! Property-based tests for the index crate: B⁺-tree against the standard
//! ordered map (including range scans), sorted-index statistics against
//! brute force, and LCA structures against the naive walk.

use pitract_index::bptree::BPlusTree;
use pitract_index::lca::lifting::BinaryLiftingLca;
use pitract_index::lca::tree::{naive_lca, EulerTourLca, RootedTree};
use pitract_index::sorted::SortedIndex;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::ops::Bound;

proptest! {
    /// Range scans over the B⁺-tree equal BTreeMap ranges for arbitrary
    /// bound combinations after arbitrary operation sequences.
    #[test]
    fn bptree_ranges_match_btreemap(
        order in 3usize..10,
        ops in prop::collection::vec((0u8..2, 0u64..100), 0..200),
        lo in 0u64..110,
        hi in 0u64..110,
        bounds_kind in 0u8..4,
    ) {
        let mut tree: BPlusTree<u64, u64> = BPlusTree::with_order(order);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for (op, key) in ops {
            if op == 0 {
                tree.insert(key, key * 3);
                model.insert(key, key * 3);
            } else {
                tree.remove(&key);
                model.remove(&key);
            }
        }
        let (blo, bhi) = match bounds_kind {
            0 => (Bound::Included(&lo), Bound::Included(&hi)),
            1 => (Bound::Excluded(&lo), Bound::Excluded(&hi)),
            2 => (Bound::Unbounded, Bound::Included(&hi)),
            _ => (Bound::Included(&lo), Bound::Unbounded),
        };
        let got: Vec<(u64, u64)> = tree.range(blo, bhi).map(|(k, v)| (*k, *v)).collect();
        let expect: Vec<(u64, u64)> = model
            .iter()
            .filter(|(k, _)| {
                let above = match blo {
                    Bound::Included(l) => *k >= l,
                    Bound::Excluded(l) => *k > l,
                    Bound::Unbounded => true,
                };
                let below = match bhi {
                    Bound::Included(h) => *k <= h,
                    Bound::Excluded(h) => *k < h,
                    Bound::Unbounded => true,
                };
                above && below
            })
            .map(|(k, v)| (*k, *v))
            .collect();
        prop_assert_eq!(got, expect);
        tree.check_invariants().map_err(TestCaseError::fail)?;
    }

    /// get / get_mut / contains_key agree, and get_mut edits persist.
    #[test]
    fn bptree_get_mut_consistency(keys in prop::collection::hash_set(0u64..300, 1..150)) {
        let keys: Vec<u64> = keys.into_iter().collect();
        let mut tree: BPlusTree<u64, u64> = BPlusTree::build(keys.iter().map(|&k| (k, k)));
        for &k in &keys {
            prop_assert!(tree.contains_key(&k));
            let v = tree.get_mut(&k).expect("present");
            *v += 1000;
        }
        for &k in &keys {
            prop_assert_eq!(tree.get(&k), Some(&(k + 1000)));
        }
        prop_assert_eq!(tree.get_mut(&10_000), None);
    }

    /// Sorted-index counting statistics match brute-force filters.
    #[test]
    fn sorted_index_statistics(xs in prop::collection::vec(0i64..100, 0..200), probe in -5i64..110) {
        let idx = SortedIndex::build(&xs);
        prop_assert_eq!(idx.contains(&probe), xs.contains(&probe));
        prop_assert_eq!(idx.count(&probe), xs.iter().filter(|&&x| x == probe).count());
        let hi = probe + 13;
        prop_assert_eq!(
            idx.count_range(Bound::Included(&probe), Bound::Included(&hi)),
            xs.iter().filter(|&&x| x >= probe && x <= hi).count()
        );
        // Predecessor/successor against brute force.
        prop_assert_eq!(
            idx.predecessor(&probe).copied(),
            xs.iter().copied().filter(|&x| x <= probe).max()
        );
        prop_assert_eq!(
            idx.successor(&probe).copied(),
            xs.iter().copied().filter(|&x| x >= probe).min()
        );
    }

    /// Both preprocessed LCA structures equal the naive walk on random
    /// trees and random query pairs.
    #[test]
    fn lca_structures_agree(n in 1usize..60, seed in any::<u64>(),
                            pairs in prop::collection::vec((0usize..60, 0usize..60), 1..30)) {
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let parents: Vec<Option<usize>> = (0..n)
            .map(|i| if i == 0 { None } else { Some((rnd() as usize) % i) })
            .collect();
        let tree = RootedTree::from_parents(&parents).expect("valid random tree");
        let euler = EulerTourLca::build(&tree);
        let lift = BinaryLiftingLca::build(&tree);
        for (a, b) in pairs {
            let (u, v) = (a % n, b % n);
            let expect = naive_lca(&tree, u, v);
            prop_assert_eq!(euler.query(u, v), expect, "euler ({},{})", u, v);
            prop_assert_eq!(lift.query(u, v), expect, "lifting ({},{})", u, v);
        }
    }

    /// kth_ancestor composes: the a-th ancestor of the b-th ancestor is
    /// the (a+b)-th ancestor (with clamping at the root).
    #[test]
    fn kth_ancestor_composes(n in 2usize..100, v in 0usize..100, a in 0u64..64, b in 0u64..64) {
        let v = v % n;
        let parents: Vec<Option<usize>> =
            (0..n).map(|i| if i == 0 { None } else { Some(i - 1) }).collect();
        let tree = RootedTree::from_parents(&parents).expect("path tree");
        let lift = BinaryLiftingLca::build(&tree);
        let two_step = lift.kth_ancestor(lift.kth_ancestor(v, a), b);
        let one_step = lift.kth_ancestor(v, a + b);
        prop_assert_eq!(two_step, one_step);
    }
}
