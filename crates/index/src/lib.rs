//! # pitract-index — the preprocessing structures of the paper's case studies
//!
//! Section 4 of the Π-tractability paper lists concrete query classes that
//! become answerable in (poly)logarithmic or constant time after PTIME
//! preprocessing. This crate implements every auxiliary structure those case
//! studies rely on, each with an instrumented (`*_metered`) query path so
//! tests can verify the claimed bounds with step counts:
//!
//! * [`bptree::BPlusTree`] — the B⁺-tree of Example 1 / Section 4(1):
//!   O(n log n)-ish construction, O(log n) point and range probes, plus
//!   insert/delete maintenance for the incremental-preprocessing story.
//! * [`sorted::SortedIndex`] — Section 4(2) "searching in a list": sort once
//!   (O(n log n)), binary-search per query (O(log n)).
//! * [`hash::HashIndex`] — the practical O(1)-expected alternative for point
//!   selections, used as a baseline in E1.
//! * [`rmq`] — Section 4(3) minimum range queries [Fischer & Heun]:
//!   a naive O(n)-per-query baseline, an O(n²)/O(1) table, an
//!   O(n log n)/O(1) sparse table, an O(n)/O(log n) segment tree (with
//!   point updates), and the O(n)/O(1) Fischer–Heun block structure.
//! * [`lca`] — Section 4(4) lowest common ancestors [Bender et al.]:
//!   Euler-tour + RMQ (trees, O(1) query), binary lifting (O(log n) query),
//!   and the all-pairs DAG structure (O(n³/word) preprocessing, O(1) query).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bptree;
pub mod hash;
pub mod lca;
pub mod rmq;
pub mod sorted;
