//! The sorted static index of Section 4(2): sort once, binary-search
//! forever.
//!
//! The paper's decision problem L₁ ("does element e appear in unordered
//! list M?") is made Π-tractable by the factorization that treats M as data
//! and e as query: preprocessing sorts M in O(|M| log |M|) and every
//! membership query then takes O(log |M|). [`SortedIndex`] is that
//! preprocessing result; its metered query path lets tests assert the
//! logarithmic claim step by step.

use pitract_core::cost::Meter;
use std::ops::Bound;

/// A sorted, deduplicating-free static index over keys (duplicates are kept;
/// membership and counting still work).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortedIndex<K: Ord> {
    keys: Vec<K>,
}

impl<K: Ord + Clone> SortedIndex<K> {
    /// Preprocess an unordered list: O(n log n) comparison sort.
    pub fn build(unordered: &[K]) -> Self {
        let mut keys = unordered.to_vec();
        keys.sort_unstable();
        SortedIndex { keys }
    }

    /// Build from a slice already known to be sorted. Panics (debug) if the
    /// input is not sorted — this is a construction-time contract, not a
    /// runtime condition.
    pub fn from_sorted(keys: Vec<K>) -> Self {
        debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
        SortedIndex { keys }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Membership query: O(log n).
    pub fn contains(&self, key: &K) -> bool {
        self.keys.binary_search(key).is_ok()
    }

    /// Membership with per-comparison metering: the instrumented form used
    /// by tests and the E3 experiment to certify O(log n).
    pub fn contains_metered(&self, key: &K, meter: &Meter) -> bool {
        let mut lo = 0usize;
        let mut hi = self.keys.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            meter.tick();
            match self.keys[mid].cmp(key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Number of entries equal to `key`: two binary searches, O(log n).
    pub fn count(&self, key: &K) -> usize {
        self.keys.partition_point(|k| k <= key) - self.keys.partition_point(|k| k < key)
    }

    /// Number of entries within the given bounds: O(log n).
    pub fn count_range(&self, lo: Bound<&K>, hi: Bound<&K>) -> usize {
        let start = match lo {
            Bound::Unbounded => 0,
            Bound::Included(k) => self.keys.partition_point(|x| x < k),
            Bound::Excluded(k) => self.keys.partition_point(|x| x <= k),
        };
        let end = match hi {
            Bound::Unbounded => self.keys.len(),
            Bound::Included(k) => self.keys.partition_point(|x| x <= k),
            Bound::Excluded(k) => self.keys.partition_point(|x| x < k),
        };
        end.saturating_sub(start)
    }

    /// Is any entry within the bounds? O(log n) — the Boolean
    /// range-selection query of Section 4(1).
    pub fn any_in_range(&self, lo: Bound<&K>, hi: Bound<&K>) -> bool {
        self.count_range(lo, hi) > 0
    }

    /// Greatest key ≤ `key` (predecessor), O(log n).
    pub fn predecessor(&self, key: &K) -> Option<&K> {
        let pos = self.keys.partition_point(|x| x <= key);
        pos.checked_sub(1).map(|i| &self.keys[i])
    }

    /// Smallest key ≥ `key` (successor), O(log n).
    pub fn successor(&self, key: &K) -> Option<&K> {
        let pos = self.keys.partition_point(|x| x < key);
        self.keys.get(pos)
    }

    /// The sorted keys.
    pub fn as_slice(&self) -> &[K] {
        &self.keys
    }
}

/// The no-preprocessing baseline: a linear scan over the unordered list,
/// metered per comparison. This is what Example 1 contrasts the index
/// against — on 1 PB it is the "1.9 days" side of the arithmetic.
pub fn scan_contains_metered<K: Ord>(unordered: &[K], key: &K, meter: &Meter) -> bool {
    for k in unordered {
        meter.tick();
        if k == key {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitract_core::cost::{assert_steps_within, CostClass};

    fn shuffled(n: u64) -> Vec<u64> {
        // Deterministic shuffle via multiplicative hashing.
        (0..n).map(|i| (i * 2654435761) % n).collect()
    }

    #[test]
    fn contains_agrees_with_scan() {
        let data = shuffled(500);
        let idx = SortedIndex::build(&data);
        for q in 0..600u64 {
            assert_eq!(idx.contains(&q), data.contains(&q), "q={q}");
        }
    }

    #[test]
    fn metered_contains_is_logarithmic() {
        let n = 1u64 << 16;
        let data: Vec<u64> = (0..n).collect();
        let idx = SortedIndex::build(&data);
        let meter = Meter::new();
        for q in [0u64, 1, n / 2, n - 1, n + 5] {
            meter.take();
            idx.contains_metered(&q, &meter);
            assert_steps_within(meter.steps(), CostClass::Log, n, 2.0);
        }
    }

    #[test]
    fn scan_baseline_is_linear_in_the_worst_case() {
        let n = 4096u64;
        let data = shuffled(n);
        let meter = Meter::new();
        scan_contains_metered(&data, &(n + 1), &meter); // absent: full scan
        assert_eq!(meter.steps(), n);
    }

    #[test]
    fn metered_and_plain_agree() {
        let data = shuffled(257);
        let idx = SortedIndex::build(&data);
        let meter = Meter::new();
        for q in 0..300u64 {
            assert_eq!(idx.contains(&q), idx.contains_metered(&q, &meter));
        }
    }

    #[test]
    fn count_handles_duplicates() {
        let idx = SortedIndex::build(&[5u64, 1, 5, 5, 9, 1]);
        assert_eq!(idx.count(&5), 3);
        assert_eq!(idx.count(&1), 2);
        assert_eq!(idx.count(&9), 1);
        assert_eq!(idx.count(&7), 0);
    }

    #[test]
    fn count_range_matches_filter() {
        let data = shuffled(300);
        let idx = SortedIndex::build(&data);
        for (lo, hi) in [(10u64, 20u64), (0, 0), (250, 400), (100, 100)] {
            let expect = data.iter().filter(|&&x| x >= lo && x <= hi).count();
            assert_eq!(
                idx.count_range(Bound::Included(&lo), Bound::Included(&hi)),
                expect,
                "[{lo},{hi}]"
            );
        }
    }

    #[test]
    fn count_range_bound_variants() {
        let idx = SortedIndex::build(&[1u64, 2, 3, 4, 5]);
        assert_eq!(idx.count_range(Bound::Excluded(&1), Bound::Excluded(&5)), 3);
        assert_eq!(idx.count_range(Bound::Unbounded, Bound::Included(&3)), 3);
        assert_eq!(idx.count_range(Bound::Included(&3), Bound::Unbounded), 3);
        assert_eq!(idx.count_range(Bound::Unbounded, Bound::Unbounded), 5);
        // Inverted range counts zero, never underflows.
        assert_eq!(idx.count_range(Bound::Included(&5), Bound::Included(&1)), 0);
    }

    #[test]
    fn any_in_range_is_boolean_range_selection() {
        let idx = SortedIndex::build(&[10u64, 20, 30]);
        assert!(idx.any_in_range(Bound::Included(&15), Bound::Included(&25)));
        assert!(!idx.any_in_range(Bound::Included(&21), Bound::Included(&29)));
    }

    #[test]
    fn predecessor_successor() {
        let idx = SortedIndex::build(&[10u64, 20, 30]);
        assert_eq!(idx.predecessor(&25), Some(&20));
        assert_eq!(idx.predecessor(&10), Some(&10));
        assert_eq!(idx.predecessor(&5), None);
        assert_eq!(idx.successor(&25), Some(&30));
        assert_eq!(idx.successor(&30), Some(&30));
        assert_eq!(idx.successor(&31), None);
    }

    #[test]
    fn empty_index_behaviour() {
        let idx = SortedIndex::<u64>::build(&[]);
        assert!(idx.is_empty());
        assert!(!idx.contains(&1));
        assert_eq!(idx.count_range(Bound::Unbounded, Bound::Unbounded), 0);
        assert_eq!(idx.predecessor(&1), None);
        assert_eq!(idx.successor(&1), None);
    }

    #[test]
    fn from_sorted_accepts_sorted_input() {
        let idx = SortedIndex::from_sorted(vec![1u64, 1, 2, 3]);
        assert_eq!(idx.len(), 4);
        assert!(idx.contains(&1));
    }
}
