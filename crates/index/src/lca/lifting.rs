//! Binary-lifting LCA: O(n log n) preprocessing, O(log n) per query.
//!
//! The middle point of the E5 trade-off curve: cheaper tables than the
//! Euler-tour structure, logarithmic instead of constant queries. Also
//! provides k-th ancestor jumps, which the naive baseline cannot do better
//! than linearly.

use super::tree::RootedTree;
use pitract_core::cost::Meter;

/// Binary-lifting ancestor tables over a rooted tree.
#[derive(Debug, Clone)]
pub struct BinaryLiftingLca {
    /// `up[k][v]` = the 2^k-th ancestor of `v` (clamped at the root).
    up: Vec<Vec<usize>>,
    depth: Vec<u64>,
}

impl BinaryLiftingLca {
    /// Build the doubling tables: O(n log n).
    pub fn build(tree: &RootedTree) -> Self {
        let n = tree.len();
        let levels = (n.max(2) as f64).log2().ceil() as usize + 1;
        let mut up = Vec::with_capacity(levels);
        // Level 0: the parent (root points at itself, clamping walks).
        let parents: Vec<usize> = (0..n).map(|v| tree.parent(v).unwrap_or(v)).collect();
        up.push(parents);
        for k in 1..levels {
            let prev = &up[k - 1];
            let next: Vec<usize> = (0..n).map(|v| prev[prev[v]]).collect();
            up.push(next);
        }
        BinaryLiftingLca {
            up,
            depth: (0..n).map(|v| tree.depth(v)).collect(),
        }
    }

    /// The `k`-th ancestor of `v` (clamped at the root): O(log k).
    pub fn kth_ancestor(&self, mut v: usize, k: u64) -> usize {
        // Clamp so every needed jump fits in the table; anything deeper than
        // the node's depth lands on the root anyway.
        let mut k = k.min(self.depth[v]);
        let mut level = 0usize;
        while k > 0 && level < self.up.len() {
            if k & 1 == 1 {
                v = self.up[level][v];
            }
            k >>= 1;
            level += 1;
        }
        v
    }

    /// `LCA(u, v)` in O(log n).
    pub fn query(&self, u: usize, v: usize) -> usize {
        self.query_impl(u, v, None)
    }

    /// Metered query ticking once per table jump — the O(log n) evidence.
    pub fn query_metered(&self, u: usize, v: usize, meter: &Meter) -> usize {
        self.query_impl(u, v, Some(meter))
    }

    fn query_impl(&self, mut u: usize, mut v: usize, meter: Option<&Meter>) -> usize {
        // Lift the deeper endpoint to the shallower one's depth.
        if self.depth[u] < self.depth[v] {
            std::mem::swap(&mut u, &mut v);
        }
        let mut diff = self.depth[u] - self.depth[v];
        let mut level = 0usize;
        while diff > 0 {
            if diff & 1 == 1 {
                if let Some(m) = meter {
                    m.tick();
                }
                u = self.up[level][u];
            }
            diff >>= 1;
            level += 1;
        }
        if u == v {
            return u;
        }
        // Descend the highest jump that keeps the endpoints apart.
        for k in (0..self.up.len()).rev() {
            if self.up[k][u] != self.up[k][v] {
                if let Some(m) = meter {
                    m.add(2);
                }
                u = self.up[k][u];
                v = self.up[k][v];
            }
        }
        self.up[0][u]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lca::tree::naive_lca;
    use pitract_core::cost::{assert_steps_within, CostClass, Meter};

    fn random_tree(n: usize, seed: u64) -> RootedTree {
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let parents: Vec<Option<usize>> = (0..n)
            .map(|i| {
                if i == 0 {
                    None
                } else {
                    Some((rnd() as usize) % i)
                }
            })
            .collect();
        RootedTree::from_parents(&parents).unwrap()
    }

    #[test]
    fn matches_naive_on_random_trees() {
        for n in [2usize, 5, 33, 128, 500] {
            let t = random_tree(n, n as u64 + 77);
            let lca = BinaryLiftingLca::build(&t);
            let mut state = 99u64;
            let mut rnd = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as usize
            };
            for _ in 0..300 {
                let (u, v) = (rnd() % n, rnd() % n);
                assert_eq!(lca.query(u, v), naive_lca(&t, u, v), "n={n} ({u},{v})");
            }
        }
    }

    #[test]
    fn kth_ancestor_on_a_path() {
        let parents: Vec<Option<usize>> = (0..100)
            .map(|i| if i == 0 { None } else { Some(i - 1) })
            .collect();
        let t = RootedTree::from_parents(&parents).unwrap();
        let lca = BinaryLiftingLca::build(&t);
        assert_eq!(lca.kth_ancestor(99, 0), 99);
        assert_eq!(lca.kth_ancestor(99, 1), 98);
        assert_eq!(lca.kth_ancestor(99, 64), 35);
        assert_eq!(lca.kth_ancestor(99, 99), 0);
        // Clamped beyond the root.
        assert_eq!(lca.kth_ancestor(99, 10_000), 0);
    }

    #[test]
    fn query_cost_is_logarithmic_on_paths() {
        let n = 1usize << 14;
        let parents: Vec<Option<usize>> = (0..n)
            .map(|i| if i == 0 { None } else { Some(i - 1) })
            .collect();
        let t = RootedTree::from_parents(&parents).unwrap();
        let lca = BinaryLiftingLca::build(&t);
        let meter = Meter::new();
        for (u, v) in [(n - 1, 0), (n - 1, n / 2), (n / 3, 2 * n / 3)] {
            meter.take();
            lca.query_metered(u, v, &meter);
            assert_steps_within(meter.steps(), CostClass::Log, n as u64, 3.0);
        }
    }

    #[test]
    fn lca_of_node_with_itself_and_with_root() {
        let t = random_tree(50, 5);
        let lca = BinaryLiftingLca::build(&t);
        for v in 0..50 {
            assert_eq!(lca.query(v, v), v);
            assert_eq!(lca.query(v, t.root()), t.root());
        }
    }

    #[test]
    fn ancestor_descendant_pairs() {
        // On a path, LCA(u, v) = the shallower node.
        let parents: Vec<Option<usize>> = (0..64)
            .map(|i| if i == 0 { None } else { Some(i - 1) })
            .collect();
        let t = RootedTree::from_parents(&parents).unwrap();
        let lca = BinaryLiftingLca::build(&t);
        assert_eq!(lca.query(10, 50), 10);
        assert_eq!(lca.query(50, 10), 10);
    }
}
