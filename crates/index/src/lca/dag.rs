//! All-pairs LCA on DAGs — the Section 4(4) case the paper attributes to
//! Bender et al. \[5\]: "G can be preprocessed by computing LCA for all pairs
//! of nodes in O(|G|³) time. Then given any nodes (u, v) in G, LCA(u, v)
//! can be found in O(1) time."
//!
//! On a DAG a pair may have several lowest common ancestors; this structure
//! returns the canonical *topologically deepest* one (the common ancestor
//! with maximal topological rank), which is always an LCA: any proper
//! descendant that were also a common ancestor would have a larger rank.
//!
//! Preprocessing: reflexive ancestor bitsets by a reverse-topological
//! sweep, then for each pair intersect two bitsets and take the highest
//! rank — O(n²·n/64) word operations, the "cubic-ish" budget the paper
//! allows. Queries are one table probe.

use pitract_core::cost::Meter;

/// Errors for [`DagLca::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DagError {
    /// An edge endpoint was out of range.
    BadEdge(usize, usize),
    /// The graph contains a cycle — not a DAG.
    Cyclic,
}

/// All-pairs DAG LCA table with O(1) lookups.
#[derive(Debug, Clone)]
pub struct DagLca {
    n: usize,
    /// `table[u * n + v]` = canonical LCA of (u, v), or `u32::MAX` if the
    /// pair has no common ancestor.
    table: Vec<u32>,
    /// Reflexive ancestor bitsets, one row of `words` u64s per node.
    anc: Vec<u64>,
    words: usize,
    topo_rank: Vec<u32>,
}

impl DagLca {
    /// Preprocess a DAG given as an edge list over `n` nodes.
    pub fn build(n: usize, edges: &[(usize, usize)]) -> Result<Self, DagError> {
        assert!(n < u32::MAX as usize, "too many nodes for u32 table");
        for &(u, v) in edges {
            if u >= n || v >= n {
                return Err(DagError::BadEdge(u, v));
            }
        }
        // Kahn topological order.
        let mut indeg = vec![0usize; n];
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in edges {
            adj[u].push(v);
            indeg[v] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(u) = queue.pop() {
            topo.push(u);
            for &v in &adj[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        if topo.len() != n {
            return Err(DagError::Cyclic);
        }
        let mut topo_rank = vec![0u32; n];
        for (r, &v) in topo.iter().enumerate() {
            topo_rank[v] = r as u32;
        }

        // Reflexive ancestor bitsets in topological order: anc(v) = {v} ∪
        // ⋃ anc(u) over in-edges u → v.
        let words = n.div_ceil(64).max(1);
        let mut anc = vec![0u64; n * words];
        let mut in_edges = vec![Vec::new(); n];
        for &(u, v) in edges {
            in_edges[v].push(u);
        }
        for &v in &topo {
            let (before, from_v) = anc.split_at_mut(v * words);
            let row_v = &mut from_v[..words];
            row_v[v / 64] |= 1 << (v % 64);
            for &u in &in_edges[v] {
                if u < v {
                    let row_u = &before[u * words..u * words + words];
                    for w in 0..words {
                        row_v[w] |= row_u[w];
                    }
                }
            }
            // Parents with u > v need a second borrow region; handle below.
            for &u in &in_edges[v] {
                if u > v {
                    for w in 0..words {
                        let bit = anc[u * words + w];
                        anc[v * words + w] |= bit;
                    }
                }
            }
        }

        // All-pairs table: intersect ancestor rows, take max topo rank.
        let mut table = vec![u32::MAX; n * n];
        for u in 0..n {
            for v in u..n {
                let mut best: Option<u32> = None;
                let (ru, rv) = (
                    &anc[u * words..(u + 1) * words],
                    &anc[v * words..(v + 1) * words],
                );
                for w in 0..words {
                    let mut common = ru[w] & rv[w];
                    while common != 0 {
                        let bit = common.trailing_zeros() as usize;
                        let node = w * 64 + bit;
                        common &= common - 1;
                        let rank = topo_rank[node];
                        if best.is_none_or(|b| topo_rank[b as usize] < rank) {
                            best = Some(node as u32);
                        }
                    }
                }
                let entry = best.unwrap_or(u32::MAX);
                table[u * n + v] = entry;
                table[v * n + u] = entry;
            }
        }

        Ok(DagLca {
            n,
            table,
            anc,
            words,
            topo_rank,
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Is the DAG empty?
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Is `w` a (reflexive) ancestor of `u`?
    pub fn is_ancestor(&self, w: usize, u: usize) -> bool {
        self.anc[u * self.words + w / 64] >> (w % 64) & 1 == 1
    }

    /// The canonical LCA of `(u, v)`, or `None` if they share no ancestor.
    /// O(1): one table probe.
    pub fn query(&self, u: usize, v: usize) -> Option<usize> {
        let e = self.table[u * self.n + v];
        (e != u32::MAX).then_some(e as usize)
    }

    /// Metered query (a single probe) — the O(1) evidence for E5.
    pub fn query_metered(&self, u: usize, v: usize, meter: &Meter) -> Option<usize> {
        meter.tick();
        self.query(u, v)
    }

    /// Topological rank of a node (larger = deeper).
    pub fn topo_rank(&self, v: usize) -> u32 {
        self.topo_rank[v]
    }

    /// Validate the LCA property of a candidate `w` for `(u, v)` from first
    /// principles — used by tests: `w` must be a common ancestor with no
    /// proper descendant that is also a common ancestor.
    pub fn is_lca_of(&self, w: usize, u: usize, v: usize) -> bool {
        if !(self.is_ancestor(w, u) && self.is_ancestor(w, v)) {
            return false;
        }
        (0..self.n).all(|x| {
            x == w || !(self.is_ancestor(x, u) && self.is_ancestor(x, v) && self.is_ancestor(w, x))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diamond: 0 → 1, 0 → 2, 1 → 3, 2 → 3.
    fn diamond() -> DagLca {
        DagLca::build(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn diamond_lcas() {
        let lca = diamond();
        assert_eq!(lca.query(1, 2), Some(0));
        assert_eq!(lca.query(1, 3), Some(1));
        assert_eq!(lca.query(3, 3), Some(3));
        assert_eq!(lca.query(0, 3), Some(0));
    }

    #[test]
    fn disconnected_pairs_have_no_lca() {
        let lca = DagLca::build(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(lca.query(1, 3), None);
        assert_eq!(lca.query(0, 2), None);
        assert_eq!(lca.query(0, 1), Some(0));
    }

    #[test]
    fn multiple_lcas_returns_a_valid_one() {
        // Two diamonds sharing sinks: 0→2, 0→3, 1→2, 1→3; LCA(2,3) may be 0
        // or 1 — either is valid; the structure must return one of them.
        let lca = DagLca::build(4, &[(0, 2), (0, 3), (1, 2), (1, 3)]).unwrap();
        let w = lca.query(2, 3).expect("common ancestor exists");
        assert!(lca.is_lca_of(w, 2, 3), "{w} is not an LCA");
    }

    #[test]
    fn answers_satisfy_the_lca_property_on_random_dags() {
        let mut state = 0x1234_5678u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [2usize, 8, 24, 48] {
            // Random DAG: edges only from lower to higher ids.
            let mut edges = Vec::new();
            for _ in 0..n * 2 {
                let a = (rnd() as usize) % n;
                let b = (rnd() as usize) % n;
                if a < b {
                    edges.push((a, b));
                }
            }
            let lca = DagLca::build(n, &edges).unwrap();
            for u in 0..n {
                for v in 0..n {
                    match lca.query(u, v) {
                        Some(w) => assert!(
                            lca.is_lca_of(w, u, v),
                            "n={n}: {w} not an LCA of ({u},{v}); edges={edges:?}"
                        ),
                        None => {
                            // No common ancestor at all.
                            for w in 0..n {
                                assert!(
                                    !(lca.is_ancestor(w, u) && lca.is_ancestor(w, v)),
                                    "missed common ancestor {w} of ({u},{v})"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn ancestors_are_reflexive_and_transitive() {
        let lca = DagLca::build(5, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        for v in 0..5 {
            assert!(lca.is_ancestor(v, v), "reflexivity at {v}");
        }
        assert!(lca.is_ancestor(0, 3));
        assert!(!lca.is_ancestor(3, 0));
        assert!(!lca.is_ancestor(0, 4));
    }

    #[test]
    fn tree_shaped_dag_matches_tree_lca() {
        use crate::lca::tree::{naive_lca, RootedTree};
        let parents = [None, Some(0), Some(0), Some(1), Some(1), Some(2)];
        let t = RootedTree::from_parents(&parents).unwrap();
        let edges: Vec<(usize, usize)> = parents
            .iter()
            .enumerate()
            .filter_map(|(c, p)| p.map(|p| (p, c)))
            .collect();
        let dag = DagLca::build(6, &edges).unwrap();
        for u in 0..6 {
            for v in 0..6 {
                assert_eq!(dag.query(u, v), Some(naive_lca(&t, u, v)), "({u},{v})");
            }
        }
    }

    #[test]
    fn cycle_is_rejected() {
        assert_eq!(
            DagLca::build(3, &[(0, 1), (1, 2), (2, 0)]).unwrap_err(),
            DagError::Cyclic
        );
    }

    #[test]
    fn bad_edge_is_rejected() {
        assert_eq!(
            DagLca::build(2, &[(0, 7)]).unwrap_err(),
            DagError::BadEdge(0, 7)
        );
    }

    #[test]
    fn metered_query_is_one_probe() {
        let lca = diamond();
        let meter = Meter::new();
        lca.query_metered(1, 2, &meter);
        assert_eq!(meter.steps(), 1);
    }
}
