//! Lowest-common-ancestor structures — Section 4(4) of the paper.
//!
//! The problem L₃: given a rooted tree or a DAG `G` and nodes `u`, `v`,
//! find `LCA(u, v)`. The paper cites Bender et al. \[5\]: trees admit
//! O(1)-query structures after near-linear preprocessing; DAGs admit an
//! all-pairs table computed in O(|G|³)-style preprocessing with O(1)
//! lookups. The E5 experiment compares:
//!
//! | structure | input | preprocessing | per query |
//! |---|---|---|---|
//! | [`tree::naive_lca`] | tree | none | O(height) walk |
//! | [`lifting::BinaryLiftingLca`] | tree | O(n log n) | O(log n) |
//! | [`tree::EulerTourLca`] | tree | O(n log n) | O(1) (one RMQ probe) |
//! | [`dag::DagLca`] | DAG | O(n³/64) | O(1) table lookup |

pub mod dag;
pub mod lifting;
pub mod tree;

pub use tree::{RootedTree, TreeError};
