//! Rooted trees, the Euler-tour LCA structure, and the no-preprocessing
//! baseline.
//!
//! The Euler tour reduces tree LCA to RMQ (the other direction of the
//! RMQ ⇆ LCA equivalence exploited in `pitract-reductions`): walk the tree
//! recording every node visit and its depth; `LCA(u, v)` is the
//! shallowest node between the first occurrences of `u` and `v` in the
//! tour. With a sparse-table RMQ over the depths this is O(1) per query
//! after O(n log n) preprocessing.

use crate::rmq::sparse::SparseRmq;
use crate::rmq::RangeMin;
use pitract_core::cost::Meter;

/// Construction errors for [`RootedTree::from_parents`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeError {
    /// No node had `parent = None`.
    NoRoot,
    /// More than one node had `parent = None` (second root reported).
    MultipleRoots(usize),
    /// A parent index was out of bounds.
    BadParent {
        /// The child holding the bad pointer.
        node: usize,
        /// The out-of-range parent value.
        parent: usize,
    },
    /// A parent chain loops (node on the cycle reported).
    Cycle(usize),
}

/// A rooted tree over nodes `0..n`, stored as parent and children arrays.
#[derive(Debug, Clone)]
pub struct RootedTree {
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    depth: Vec<u64>,
    root: usize,
}

impl RootedTree {
    /// Build from a parent array (exactly one `None` = root). Validates
    /// acyclicity and bounds.
    pub fn from_parents(parents: &[Option<usize>]) -> Result<Self, TreeError> {
        let n = parents.len();
        let mut root = None;
        for (node, &p) in parents.iter().enumerate() {
            match p {
                None => match root {
                    None => root = Some(node),
                    Some(_) => return Err(TreeError::MultipleRoots(node)),
                },
                Some(parent) if parent >= n => return Err(TreeError::BadParent { node, parent }),
                Some(_) => {}
            }
        }
        let root = root.ok_or(TreeError::NoRoot)?;

        let mut children = vec![Vec::new(); n];
        for (node, &p) in parents.iter().enumerate() {
            if let Some(parent) = p {
                children[parent].push(node);
            }
        }

        // BFS from the root assigns depths; unvisited nodes are on cycles.
        let mut depth = vec![u64::MAX; n];
        let mut queue = std::collections::VecDeque::from([root]);
        depth[root] = 0;
        while let Some(u) = queue.pop_front() {
            for &c in &children[u] {
                depth[c] = depth[u] + 1;
                queue.push_back(c);
            }
        }
        if let Some(stranded) = depth.iter().position(|&d| d == u64::MAX) {
            return Err(TreeError::Cycle(stranded));
        }

        Ok(RootedTree {
            parent: parents.to_vec(),
            children,
            depth,
            root,
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Is the tree empty? (Never true: construction requires a root.)
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The root node.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Parent of a node (`None` at the root).
    pub fn parent(&self, v: usize) -> Option<usize> {
        self.parent[v]
    }

    /// Children of a node.
    pub fn children(&self, v: usize) -> &[usize] {
        &self.children[v]
    }

    /// Depth of a node (root = 0).
    pub fn depth(&self, v: usize) -> u64 {
        self.depth[v]
    }

    /// Iterative Euler tour: `(visit order, first occurrence per node)`.
    /// The tour has `2n − 1` entries.
    pub fn euler_tour(&self) -> (Vec<usize>, Vec<usize>) {
        let n = self.len();
        let mut tour = Vec::with_capacity(2 * n - 1);
        let mut first = vec![usize::MAX; n];
        // Explicit stack of (node, next child position).
        let mut stack: Vec<(usize, usize)> = vec![(self.root, 0)];
        while let Some(&(u, ci)) = stack.last() {
            if ci == 0 {
                // First arrival.
                if first[u] == usize::MAX {
                    first[u] = tour.len();
                }
                tour.push(u);
            }
            if ci < self.children[u].len() {
                stack.last_mut().expect("nonempty").1 += 1;
                stack.push((self.children[u][ci], 0));
            } else {
                stack.pop();
                // Re-visit the parent on the way up.
                if let Some(&(p, _)) = stack.last() {
                    tour.push(p);
                }
            }
        }
        (tour, first)
    }
}

/// The no-preprocessing LCA baseline: walk the deeper node up until the
/// walks meet. O(height) per query — linear on path-shaped trees, the E5
/// baseline curve.
pub fn naive_lca(tree: &RootedTree, mut u: usize, mut v: usize) -> usize {
    while tree.depth(u) > tree.depth(v) {
        u = tree.parent(u).expect("deeper node has a parent");
    }
    while tree.depth(v) > tree.depth(u) {
        v = tree.parent(v).expect("deeper node has a parent");
    }
    while u != v {
        u = tree.parent(u).expect("non-root in lockstep walk");
        v = tree.parent(v).expect("non-root in lockstep walk");
    }
    u
}

/// Metered version of [`naive_lca`]: one tick per parent hop.
pub fn naive_lca_metered(tree: &RootedTree, mut u: usize, mut v: usize, meter: &Meter) -> usize {
    while tree.depth(u) > tree.depth(v) {
        meter.tick();
        u = tree.parent(u).expect("deeper node has a parent");
    }
    while tree.depth(v) > tree.depth(u) {
        meter.tick();
        v = tree.parent(v).expect("deeper node has a parent");
    }
    while u != v {
        meter.add(2);
        u = tree.parent(u).expect("non-root in lockstep walk");
        v = tree.parent(v).expect("non-root in lockstep walk");
    }
    u
}

/// Euler-tour + RMQ LCA: O(n log n) preprocessing, O(1) per query.
#[derive(Debug, Clone)]
pub struct EulerTourLca {
    tour: Vec<usize>,
    first: Vec<usize>,
    rmq: SparseRmq<u64>,
}

impl EulerTourLca {
    /// Preprocess the tree: tour + sparse table over tour depths.
    pub fn build(tree: &RootedTree) -> Self {
        let (tour, first) = tree.euler_tour();
        let depths: Vec<u64> = tour.iter().map(|&v| tree.depth(v)).collect();
        EulerTourLca {
            tour,
            first,
            rmq: SparseRmq::build(&depths),
        }
    }

    /// `LCA(u, v)` in O(1): one RMQ probe between the first occurrences.
    pub fn query(&self, u: usize, v: usize) -> usize {
        let (a, b) = {
            let (fu, fv) = (self.first[u], self.first[v]);
            if fu <= fv {
                (fu, fv)
            } else {
                (fv, fu)
            }
        };
        self.tour[self.rmq.query(a, b)]
    }

    /// Metered query: the constant probe count for E5.
    pub fn query_metered(&self, u: usize, v: usize, meter: &Meter) -> usize {
        let (a, b) = {
            let (fu, fv) = (self.first[u], self.first[v]);
            if fu <= fv {
                (fu, fv)
            } else {
                (fv, fu)
            }
        };
        self.tour[self.rmq.query_metered(a, b, meter)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fixed 9-node tree:
    /// ```text
    ///         0
    ///       / | \
    ///      1  2  3
    ///     / \     \
    ///    4   5     6
    ///   /         /
    ///  7         8
    /// ```
    fn sample_tree() -> RootedTree {
        RootedTree::from_parents(&[
            None,
            Some(0),
            Some(0),
            Some(0),
            Some(1),
            Some(1),
            Some(3),
            Some(4),
            Some(6),
        ])
        .unwrap()
    }

    #[test]
    fn construction_computes_depths_and_children() {
        let t = sample_tree();
        assert_eq!(t.root(), 0);
        assert_eq!(t.depth(0), 0);
        assert_eq!(t.depth(7), 3);
        assert_eq!(t.children(1), &[4, 5]);
        assert_eq!(t.parent(8), Some(6));
        assert_eq!(t.len(), 9);
    }

    #[test]
    fn construction_errors() {
        // A single self-loop has no root at all, which is reported before
        // cycle detection can run.
        assert_eq!(
            RootedTree::from_parents(&[Some(0)]).unwrap_err(),
            TreeError::NoRoot
        );
        assert_eq!(
            RootedTree::from_parents(&[Some(1), Some(0), None]).unwrap_err(),
            TreeError::Cycle(0)
        );
        assert_eq!(
            RootedTree::from_parents(&[None, None]).unwrap_err(),
            TreeError::MultipleRoots(1)
        );
        assert_eq!(
            RootedTree::from_parents(&[Some(5), None]).unwrap_err(),
            TreeError::BadParent { node: 0, parent: 5 }
        );
        assert_eq!(
            RootedTree::from_parents(&[]).unwrap_err(),
            TreeError::NoRoot
        );
    }

    #[test]
    fn euler_tour_shape() {
        let t = sample_tree();
        let (tour, first) = t.euler_tour();
        assert_eq!(tour.len(), 2 * t.len() - 1);
        assert_eq!(tour[0], 0);
        assert_eq!(*tour.last().unwrap(), 0);
        for v in 0..t.len() {
            assert_eq!(tour[first[v]], v, "first occurrence of {v}");
        }
        // Adjacent tour entries differ by exactly one tree edge.
        for w in tour.windows(2) {
            let (a, b) = (w[0], w[1]);
            assert!(
                t.parent(a) == Some(b) || t.parent(b) == Some(a),
                "tour step {a} -> {b} is not an edge"
            );
        }
    }

    #[test]
    fn naive_lca_known_answers() {
        let t = sample_tree();
        assert_eq!(naive_lca(&t, 7, 5), 1);
        assert_eq!(naive_lca(&t, 7, 8), 0);
        assert_eq!(naive_lca(&t, 4, 4), 4);
        assert_eq!(naive_lca(&t, 0, 8), 0);
        assert_eq!(naive_lca(&t, 6, 8), 6);
    }

    #[test]
    fn euler_lca_matches_naive_on_sample() {
        let t = sample_tree();
        let lca = EulerTourLca::build(&t);
        for u in 0..t.len() {
            for v in 0..t.len() {
                assert_eq!(lca.query(u, v), naive_lca(&t, u, v), "LCA({u},{v})");
            }
        }
    }

    #[test]
    fn euler_lca_matches_naive_on_random_trees() {
        let mut state = 0xACE1u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [2usize, 3, 10, 50, 200] {
            // Random tree: parent of i is a uniform node < i.
            let parents: Vec<Option<usize>> = (0..n)
                .map(|i| {
                    if i == 0 {
                        None
                    } else {
                        Some((rnd() as usize) % i)
                    }
                })
                .collect();
            let t = RootedTree::from_parents(&parents).unwrap();
            let lca = EulerTourLca::build(&t);
            for _ in 0..200 {
                let u = (rnd() as usize) % n;
                let v = (rnd() as usize) % n;
                assert_eq!(lca.query(u, v), naive_lca(&t, u, v), "n={n} ({u},{v})");
            }
        }
    }

    #[test]
    fn euler_query_is_constant_while_naive_is_linear_on_paths() {
        // Path tree of depth n-1: the naive walk pays O(n); Euler stays O(1).
        let n = 4096usize;
        let parents: Vec<Option<usize>> = (0..n)
            .map(|i| if i == 0 { None } else { Some(i - 1) })
            .collect();
        let t = RootedTree::from_parents(&parents).unwrap();
        let lca = EulerTourLca::build(&t);

        let meter = Meter::new();
        lca.query_metered(n - 1, n - 2, &meter);
        let euler_steps = meter.take();
        naive_lca_metered(&t, n - 1, 0, &meter);
        let naive_steps = meter.take();

        assert!(euler_steps <= 5, "euler probe cost {euler_steps}");
        assert!(
            naive_steps >= (n as u64) - 2,
            "naive walk only {naive_steps} steps on a path of {n}"
        );
        assert_eq!(lca.query(n - 1, n - 2), n - 2);
    }

    #[test]
    fn singleton_tree() {
        let t = RootedTree::from_parents(&[None]).unwrap();
        let lca = EulerTourLca::build(&t);
        assert_eq!(lca.query(0, 0), 0);
        assert_eq!(naive_lca(&t, 0, 0), 0);
    }
}
