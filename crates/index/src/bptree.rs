//! A B⁺-tree: the preprocessing structure of Example 1 / Section 4(1).
//!
//! The paper's opening example makes point selections Π-tractable by
//! building a B⁺-tree over an attribute in PTIME, after which every point
//! (and range) selection costs O(log |D|) instead of a linear scan — "we
//! can get the results in seconds … rather than 1.9 days". This module
//! implements that structure from scratch:
//!
//! * arena-based nodes (`Vec`-indexed, no `Rc`/`RefCell`), leaves linked
//!   left-to-right for range scans;
//! * point lookup, insert (with node splits), delete (with borrow/merge
//!   rebalancing) — deletion matters because Section 1's "incremental
//!   preprocessing" story needs maintainable indexes;
//! * ordered iteration and half-open/closed range scans via leaf links;
//! * a metered lookup path ([`BPlusTree::get_metered`]) counting key
//!   comparisons, used by tests and experiment E1 to certify the O(log n)
//!   claim; and
//! * [`BPlusTree::check_invariants`], a full structural audit used by the
//!   property-based tests (occupancy, ordering, separator correctness,
//!   uniform depth, leaf-chain consistency).

use pitract_core::cost::Meter;
use std::fmt;
use std::ops::Bound;

/// Maximum keys a node may hold before it splits. See [`BPlusTree::new`].
pub const DEFAULT_ORDER: usize = 32;

#[derive(Debug, Clone)]
enum Node<K, V> {
    Internal {
        /// Separator keys; `children[i]` holds keys < `keys[i]`,
        /// `children[i+1]` holds keys ≥ `keys[i]` (separators are copies of
        /// the first key of the right subtree's leftmost leaf).
        keys: Vec<K>,
        children: Vec<usize>,
    },
    Leaf {
        keys: Vec<K>,
        vals: Vec<V>,
        /// Next leaf to the right, forming the scan chain.
        next: Option<usize>,
    },
    /// Placeholder for slots being edited or on the free list.
    Free,
}

/// A B⁺-tree mapping ordered keys to values. Unique keys: inserting an
/// existing key replaces its value (relations index row ids per key via
/// multi-value payloads at a higher layer).
#[derive(Clone)]
pub struct BPlusTree<K, V> {
    nodes: Vec<Node<K, V>>,
    free_slots: Vec<usize>,
    root: usize,
    first_leaf: usize,
    len: usize,
    order: usize,
}

impl<K: Ord + Clone, V> BPlusTree<K, V> {
    /// Empty tree with the default node capacity.
    pub fn new() -> Self {
        Self::with_order(DEFAULT_ORDER)
    }

    /// Empty tree whose nodes hold at most `order` keys (≥ 3). Small orders
    /// exercise splits/merges heavily and are used by the property tests.
    pub fn with_order(order: usize) -> Self {
        assert!(order >= 3, "order must be at least 3, got {order}");
        let mut tree = BPlusTree {
            nodes: Vec::new(),
            free_slots: Vec::new(),
            root: 0,
            first_leaf: 0,
            len: 0,
            order,
        };
        let root = tree.alloc(Node::Leaf {
            keys: Vec::new(),
            vals: Vec::new(),
            next: None,
        });
        tree.root = root;
        tree.first_leaf = root;
        tree
    }

    /// Bulk preprocessing: build from arbitrary (unsorted) pairs. O(n log n).
    pub fn build(entries: impl IntoIterator<Item = (K, V)>) -> Self {
        let mut tree = Self::new();
        for (k, v) in entries {
            tree.insert(k, v);
        }
        tree
    }

    /// Bulk-load from **strictly ascending** key/value pairs in O(n):
    /// leaves are packed directly at a 2/3 fill factor and internal levels
    /// built bottom-up — the preprocessing fast path for static data
    /// (Example 1's one-time Π(D) without per-key descents).
    ///
    /// Panics if keys are not strictly ascending (construction-time
    /// contract; use [`BPlusTree::build`] for unsorted input).
    pub fn bulk_load(entries: Vec<(K, V)>) -> Self {
        Self::bulk_load_with_order(DEFAULT_ORDER, entries)
    }

    /// [`BPlusTree::bulk_load`] with an explicit node order.
    pub fn bulk_load_with_order(order: usize, entries: Vec<(K, V)>) -> Self {
        let mut tree = Self::with_order(order);
        if entries.is_empty() {
            return tree;
        }
        assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "bulk_load requires strictly ascending keys"
        );
        let n = entries.len();
        tree.len = n;
        let min = tree.min_keys().max(1);
        let fill = ((order * 2) / 3).clamp(min, order);

        // Pack leaves; avoid an underfull final leaf by splitting the last
        // two chunks evenly when the remainder is too small.
        let mut chunk_sizes = Vec::new();
        let mut remaining = n;
        while remaining > 0 {
            if remaining <= order {
                chunk_sizes.push(remaining);
                break;
            }
            if remaining < fill + min {
                // Split what's left into two legal halves.
                chunk_sizes.push(remaining / 2);
                chunk_sizes.push(remaining - remaining / 2);
                break;
            }
            chunk_sizes.push(fill);
            remaining -= fill;
        }

        let mut iter = entries.into_iter();
        // (leftmost key, node index) per node of the current level.
        let mut level: Vec<(K, usize)> = Vec::with_capacity(chunk_sizes.len());
        let mut prev_leaf: Option<usize> = None;
        for size in chunk_sizes {
            let mut keys = Vec::with_capacity(size);
            let mut vals = Vec::with_capacity(size);
            for _ in 0..size {
                let (k, v) = iter.next().expect("sizes sum to n");
                keys.push(k);
                vals.push(v);
            }
            let leftmost = keys[0].clone();
            let idx = tree.alloc(Node::Leaf {
                keys,
                vals,
                next: None,
            });
            if let Some(prev) = prev_leaf {
                match &mut tree.nodes[prev] {
                    Node::Leaf { next, .. } => *next = Some(idx),
                    _ => unreachable!("previous node is a leaf"),
                }
            }
            prev_leaf = Some(idx);
            level.push((leftmost, idx));
        }
        // The initial empty-root leaf is replaced wholesale.
        let empty_root = tree.root;
        tree.release(empty_root);
        tree.first_leaf = level[0].1;

        // Build internal levels until one node remains.
        let min_children = tree.min_keys() + 1;
        let max_children = order + 1;
        let fill_children = ((max_children * 2) / 3).clamp(min_children, max_children);
        while level.len() > 1 {
            let mut sizes = Vec::new();
            let mut remaining = level.len();
            while remaining > 0 {
                if remaining <= max_children {
                    sizes.push(remaining);
                    break;
                }
                if remaining < fill_children + min_children {
                    sizes.push(remaining / 2);
                    sizes.push(remaining - remaining / 2);
                    break;
                }
                sizes.push(fill_children);
                remaining -= fill_children;
            }
            let mut next_level = Vec::with_capacity(sizes.len());
            let mut members = level.into_iter();
            for size in sizes {
                let group: Vec<(K, usize)> = (&mut members).take(size).collect();
                let leftmost = group[0].0.clone();
                let keys: Vec<K> = group.iter().skip(1).map(|(k, _)| k.clone()).collect();
                let children: Vec<usize> = group.iter().map(|(_, i)| *i).collect();
                let idx = tree.alloc(Node::Internal { keys, children });
                next_level.push((leftmost, idx));
            }
            level = next_level;
        }
        tree.root = level[0].1;
        tree
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Node capacity in keys.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Height of the tree (1 for a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut idx = self.root;
        loop {
            match &self.nodes[idx] {
                Node::Internal { children, .. } => {
                    h += 1;
                    idx = children[0];
                }
                Node::Leaf { .. } => return h,
                Node::Free => unreachable!("free node reached from root"),
            }
        }
    }

    fn min_keys(&self) -> usize {
        self.order / 2
    }

    fn alloc(&mut self, node: Node<K, V>) -> usize {
        if let Some(idx) = self.free_slots.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn release(&mut self, idx: usize) {
        self.nodes[idx] = Node::Free;
        self.free_slots.push(idx);
    }

    fn take(&mut self, idx: usize) -> Node<K, V> {
        std::mem::replace(&mut self.nodes[idx], Node::Free)
    }

    fn put(&mut self, idx: usize, node: Node<K, V>) {
        self.nodes[idx] = node;
    }

    fn key_count(&self, idx: usize) -> usize {
        match &self.nodes[idx] {
            Node::Internal { keys, .. } | Node::Leaf { keys, .. } => keys.len(),
            Node::Free => unreachable!("key_count of free node"),
        }
    }

    // ------------------------------------------------------------------
    // Lookup
    // ------------------------------------------------------------------

    /// Point lookup: O(log n) comparisons.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut idx = self.root;
        loop {
            match &self.nodes[idx] {
                Node::Internal { keys, children } => {
                    let pos = keys.partition_point(|k| k <= key);
                    idx = children[pos];
                }
                Node::Leaf { keys, vals, .. } => {
                    return keys.binary_search(key).ok().map(|p| &vals[p]);
                }
                Node::Free => unreachable!("free node reached from root"),
            }
        }
    }

    /// Does the tree contain `key`?
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Mutable point lookup: O(log n). Used by secondary indexes that keep
    /// posting lists as values and edit them in place.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let mut idx = self.root;
        loop {
            match &self.nodes[idx] {
                Node::Internal { keys, children } => {
                    let pos = keys.partition_point(|k| k <= key);
                    idx = children[pos];
                }
                Node::Leaf { keys, .. } => {
                    let pos = keys.binary_search(key).ok()?;
                    // Re-borrow mutably now that the position is known.
                    match &mut self.nodes[idx] {
                        Node::Leaf { vals, .. } => return Some(&mut vals[pos]),
                        _ => unreachable!("node kind changed between borrows"),
                    }
                }
                Node::Free => unreachable!("free node reached from root"),
            }
        }
    }

    /// Point lookup ticking the meter once per key comparison — the
    /// instrumented path behind experiment E1's O(log n) verdict.
    pub fn get_metered(&self, key: &K, meter: &Meter) -> Option<&V> {
        let mut idx = self.root;
        loop {
            match &self.nodes[idx] {
                Node::Internal { keys, children } => {
                    let pos = metered_upper_bound(keys, key, meter);
                    idx = children[pos];
                }
                Node::Leaf { keys, vals, .. } => {
                    return metered_eq_search(keys, key, meter).map(|p| &vals[p]);
                }
                Node::Free => unreachable!("free node reached from root"),
            }
        }
    }

    // ------------------------------------------------------------------
    // Insert
    // ------------------------------------------------------------------

    /// Insert a key/value pair; returns the previous value if the key was
    /// already present. Amortized O(log n).
    pub fn insert(&mut self, key: K, val: V) -> Option<V> {
        let (old, split) = self.insert_rec(self.root, key, val);
        if let Some((sep, right)) = split {
            let new_root = self.alloc(Node::Internal {
                keys: vec![sep],
                children: vec![self.root, right],
            });
            self.root = new_root;
        }
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn insert_rec(&mut self, idx: usize, key: K, val: V) -> (Option<V>, Option<(K, usize)>) {
        match self.take(idx) {
            Node::Leaf {
                mut keys,
                mut vals,
                next,
            } => match keys.binary_search(&key) {
                Ok(pos) => {
                    let old = std::mem::replace(&mut vals[pos], val);
                    self.put(idx, Node::Leaf { keys, vals, next });
                    (Some(old), None)
                }
                Err(pos) => {
                    keys.insert(pos, key);
                    vals.insert(pos, val);
                    if keys.len() > self.order {
                        let mid = keys.len() / 2;
                        let right_keys = keys.split_off(mid);
                        let right_vals = vals.split_off(mid);
                        let sep = right_keys[0].clone();
                        let right_idx = self.alloc(Node::Leaf {
                            keys: right_keys,
                            vals: right_vals,
                            next,
                        });
                        self.put(
                            idx,
                            Node::Leaf {
                                keys,
                                vals,
                                next: Some(right_idx),
                            },
                        );
                        (None, Some((sep, right_idx)))
                    } else {
                        self.put(idx, Node::Leaf { keys, vals, next });
                        (None, None)
                    }
                }
            },
            Node::Internal {
                mut keys,
                mut children,
            } => {
                let pos = keys.partition_point(|k| *k <= key);
                let child = children[pos];
                let (old, split) = self.insert_rec(child, key, val);
                if let Some((sep, right)) = split {
                    keys.insert(pos, sep);
                    children.insert(pos + 1, right);
                }
                if keys.len() > self.order {
                    let mid = keys.len() / 2;
                    let sep = keys[mid].clone();
                    let right_keys = keys.split_off(mid + 1);
                    keys.pop(); // the separator moves up, not right
                    let right_children = children.split_off(mid + 1);
                    let right_idx = self.alloc(Node::Internal {
                        keys: right_keys,
                        children: right_children,
                    });
                    self.put(idx, Node::Internal { keys, children });
                    (old, Some((sep, right_idx)))
                } else {
                    self.put(idx, Node::Internal { keys, children });
                    (old, None)
                }
            }
            Node::Free => unreachable!("insert into free node"),
        }
    }

    // ------------------------------------------------------------------
    // Remove
    // ------------------------------------------------------------------

    /// Remove a key, returning its value if present. Amortized O(log n),
    /// with borrow-or-merge rebalancing keeping occupancy ≥ order/2.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let removed = self.remove_rec(self.root, key);
        if removed.is_some() {
            self.len -= 1;
            // Collapse a root that lost all separators.
            let collapse_to = match &self.nodes[self.root] {
                Node::Internal { keys, children } if keys.is_empty() => Some(children[0]),
                _ => None,
            };
            if let Some(child) = collapse_to {
                let old_root = self.root;
                self.root = child;
                self.release(old_root);
            }
        }
        removed
    }

    fn remove_rec(&mut self, idx: usize, key: &K) -> Option<V> {
        match self.take(idx) {
            Node::Leaf {
                mut keys,
                mut vals,
                next,
            } => {
                let removed = match keys.binary_search(key) {
                    Ok(pos) => {
                        keys.remove(pos);
                        Some(vals.remove(pos))
                    }
                    Err(_) => None,
                };
                self.put(idx, Node::Leaf { keys, vals, next });
                removed
            }
            Node::Internal {
                mut keys,
                mut children,
            } => {
                let pos = keys.partition_point(|k| k <= key);
                let child = children[pos];
                let removed = self.remove_rec(child, key);
                if removed.is_some() {
                    self.fix_child(&mut keys, &mut children, pos);
                }
                self.put(idx, Node::Internal { keys, children });
                removed
            }
            Node::Free => unreachable!("remove from free node"),
        }
    }

    /// Restore occupancy of `children[pos]` after a removal underneath it.
    fn fix_child(&mut self, keys: &mut Vec<K>, children: &mut Vec<usize>, pos: usize) {
        let min = self.min_keys();
        if self.key_count(children[pos]) >= min {
            return;
        }
        // Try borrowing from the left sibling.
        if pos > 0 && self.key_count(children[pos - 1]) > min {
            self.borrow_from_left(keys, children, pos);
            return;
        }
        // Try borrowing from the right sibling.
        if pos + 1 < children.len() && self.key_count(children[pos + 1]) > min {
            self.borrow_from_right(keys, children, pos);
            return;
        }
        // Merge with a sibling (into the left node of the pair).
        if pos > 0 {
            self.merge_children(keys, children, pos - 1);
        } else {
            self.merge_children(keys, children, pos);
        }
    }

    fn borrow_from_left(&mut self, keys: &mut [K], children: &mut [usize], pos: usize) {
        let left_idx = children[pos - 1];
        let child_idx = children[pos];
        let mut left = self.take(left_idx);
        let mut child = self.take(child_idx);
        match (&mut left, &mut child) {
            (
                Node::Leaf {
                    keys: lk, vals: lv, ..
                },
                Node::Leaf {
                    keys: ck, vals: cv, ..
                },
            ) => {
                let k = lk.pop().expect("left sibling above minimum");
                let v = lv.pop().expect("left sibling above minimum");
                ck.insert(0, k);
                cv.insert(0, v);
                keys[pos - 1] = ck[0].clone();
            }
            (
                Node::Internal {
                    keys: lk,
                    children: lc,
                },
                Node::Internal {
                    keys: ck,
                    children: cc,
                },
            ) => {
                // Rotate through the parent separator.
                let sep = std::mem::replace(
                    &mut keys[pos - 1],
                    lk.pop().expect("left sibling above minimum"),
                );
                ck.insert(0, sep);
                cc.insert(0, lc.pop().expect("left sibling above minimum"));
            }
            _ => unreachable!("siblings at the same depth share a node kind"),
        }
        self.put(left_idx, left);
        self.put(child_idx, child);
    }

    fn borrow_from_right(&mut self, keys: &mut [K], children: &mut [usize], pos: usize) {
        let child_idx = children[pos];
        let right_idx = children[pos + 1];
        let mut child = self.take(child_idx);
        let mut right = self.take(right_idx);
        match (&mut child, &mut right) {
            (
                Node::Leaf {
                    keys: ck, vals: cv, ..
                },
                Node::Leaf {
                    keys: rk, vals: rv, ..
                },
            ) => {
                ck.push(rk.remove(0));
                cv.push(rv.remove(0));
                keys[pos] = rk[0].clone();
            }
            (
                Node::Internal {
                    keys: ck,
                    children: cc,
                },
                Node::Internal {
                    keys: rk,
                    children: rc,
                },
            ) => {
                let sep = std::mem::replace(&mut keys[pos], rk.remove(0));
                ck.push(sep);
                cc.push(rc.remove(0));
            }
            _ => unreachable!("siblings at the same depth share a node kind"),
        }
        self.put(child_idx, child);
        self.put(right_idx, right);
    }

    /// Merge `children[left_pos + 1]` into `children[left_pos]`.
    fn merge_children(&mut self, keys: &mut Vec<K>, children: &mut Vec<usize>, left_pos: usize) {
        let sep = keys.remove(left_pos);
        let right_idx = children.remove(left_pos + 1);
        let left_idx = children[left_pos];
        let right = self.take(right_idx);
        let mut left = self.take(left_idx);
        match (&mut left, right) {
            (
                Node::Leaf {
                    keys: lk,
                    vals: lv,
                    next: lnext,
                },
                Node::Leaf {
                    keys: rk,
                    vals: rv,
                    next: rnext,
                },
            ) => {
                lk.extend(rk);
                lv.extend(rv);
                *lnext = rnext;
            }
            (
                Node::Internal {
                    keys: lk,
                    children: lc,
                },
                Node::Internal {
                    keys: rk,
                    children: rc,
                },
            ) => {
                lk.push(sep);
                lk.extend(rk);
                lc.extend(rc);
            }
            _ => unreachable!("siblings at the same depth share a node kind"),
        }
        self.put(left_idx, left);
        self.release(right_idx);
    }

    // ------------------------------------------------------------------
    // Range scans and iteration
    // ------------------------------------------------------------------

    /// Scan entries within the bounds in key order — the B⁺-tree range
    /// selection of Section 4(1): O(log n) to locate the start, then one
    /// step per reported entry along the leaf chain.
    pub fn range<'a>(&'a self, lo: Bound<&'a K>, hi: Bound<&'a K>) -> RangeIter<'a, K, V> {
        let (leaf, pos) = match lo {
            Bound::Unbounded => (self.first_leaf, 0),
            Bound::Included(k) => self.leaf_position(k, false),
            Bound::Excluded(k) => self.leaf_position(k, true),
        };
        RangeIter {
            tree: self,
            leaf: Some(leaf),
            pos,
            hi,
        }
    }

    /// All entries in key order.
    pub fn iter(&self) -> RangeIter<'_, K, V> {
        self.range(Bound::Unbounded, Bound::Unbounded)
    }

    /// Is any key within the bounds? The Boolean range query of Section
    /// 4(1): O(log n).
    pub fn any_in_range(&self, lo: Bound<&K>, hi: Bound<&K>) -> bool {
        self.range(lo, hi).next().is_some()
    }

    /// Locate the leaf and in-leaf position of the first key `> k`
    /// (`exclusive = true`) or `≥ k` (`exclusive = false`).
    fn leaf_position(&self, k: &K, exclusive: bool) -> (usize, usize) {
        let mut idx = self.root;
        loop {
            match &self.nodes[idx] {
                Node::Internal { keys, children } => {
                    let pos = keys.partition_point(|s| s <= k);
                    idx = children[pos];
                }
                Node::Leaf { keys, .. } => {
                    let pos = if exclusive {
                        keys.partition_point(|x| x <= k)
                    } else {
                        keys.partition_point(|x| x < k)
                    };
                    return (idx, pos);
                }
                Node::Free => unreachable!("free node reached from root"),
            }
        }
    }

    // ------------------------------------------------------------------
    // Structural audit
    // ------------------------------------------------------------------

    /// Verify every structural invariant; returns a description of the
    /// first violation. Run by the property-based tests after every
    /// operation batch.
    ///
    /// Checked: key ordering within nodes, separator windows, child counts,
    /// minimum occupancy (non-root), uniform leaf depth, leaf-chain
    /// completeness and order, stored length, and absence of reachable
    /// `Free` nodes.
    pub fn check_invariants(&self) -> Result<(), String>
    where
        K: fmt::Debug,
    {
        let mut leaves = Vec::new();
        let (depth, count) = self.check_rec(self.root, None, None, true, &mut leaves)?;
        let _ = depth;
        if count != self.len {
            return Err(format!("len says {} but leaves hold {count}", self.len));
        }
        // Leaf chain must visit exactly the leaves, in order.
        if leaves.is_empty() {
            return Err("tree must always have at least one leaf".into());
        }
        if self.first_leaf != leaves[0] {
            return Err(format!(
                "first_leaf is {} but leftmost leaf is {}",
                self.first_leaf, leaves[0]
            ));
        }
        let mut chain = Vec::new();
        let mut cur = Some(self.first_leaf);
        while let Some(idx) = cur {
            chain.push(idx);
            if chain.len() > self.nodes.len() {
                return Err("leaf chain contains a cycle".into());
            }
            cur = match &self.nodes[idx] {
                Node::Leaf { next, .. } => *next,
                _ => return Err(format!("leaf chain reaches non-leaf node {idx}")),
            };
        }
        if chain != leaves {
            return Err(format!(
                "leaf chain {chain:?} disagrees with tree order {leaves:?}"
            ));
        }
        Ok(())
    }

    fn check_rec(
        &self,
        idx: usize,
        lo: Option<&K>,
        hi: Option<&K>,
        is_root: bool,
        leaves: &mut Vec<usize>,
    ) -> Result<(usize, usize), String>
    where
        K: fmt::Debug,
    {
        match &self.nodes[idx] {
            Node::Free => Err(format!("reachable free node {idx}")),
            Node::Leaf { keys, vals, .. } => {
                if keys.len() != vals.len() {
                    return Err(format!(
                        "leaf {idx}: {} keys, {} vals",
                        keys.len(),
                        vals.len()
                    ));
                }
                if !is_root && keys.len() < self.min_keys() {
                    return Err(format!(
                        "leaf {idx} underfull: {} < {}",
                        keys.len(),
                        self.min_keys()
                    ));
                }
                if keys.len() > self.order {
                    return Err(format!("leaf {idx} overfull: {}", keys.len()));
                }
                if !keys.windows(2).all(|w| w[0] < w[1]) {
                    return Err(format!("leaf {idx} keys not strictly sorted"));
                }
                for k in keys {
                    if let Some(lo) = lo {
                        if k < lo {
                            return Err(format!("leaf {idx}: key {k:?} below window"));
                        }
                    }
                    if let Some(hi) = hi {
                        if k >= hi {
                            return Err(format!("leaf {idx}: key {k:?} at/above window"));
                        }
                    }
                }
                leaves.push(idx);
                Ok((1, keys.len()))
            }
            Node::Internal { keys, children } => {
                if children.len() != keys.len() + 1 {
                    return Err(format!(
                        "internal {idx}: {} keys but {} children",
                        keys.len(),
                        children.len()
                    ));
                }
                let min = if is_root { 1 } else { self.min_keys() };
                if keys.len() < min {
                    return Err(format!("internal {idx} underfull: {} < {min}", keys.len()));
                }
                if keys.len() > self.order {
                    return Err(format!("internal {idx} overfull: {}", keys.len()));
                }
                if !keys.windows(2).all(|w| w[0] < w[1]) {
                    return Err(format!("internal {idx} keys not strictly sorted"));
                }
                let mut depth = None;
                let mut count = 0;
                for (i, &child) in children.iter().enumerate() {
                    let child_lo = if i == 0 { lo } else { Some(&keys[i - 1]) };
                    let child_hi = if i == keys.len() { hi } else { Some(&keys[i]) };
                    let (d, c) = self.check_rec(child, child_lo, child_hi, false, leaves)?;
                    count += c;
                    match depth {
                        None => depth = Some(d),
                        Some(d0) if d0 != d => {
                            return Err(format!("internal {idx}: ragged depth {d0} vs {d}"));
                        }
                        _ => {}
                    }
                }
                Ok((depth.expect("internal has children") + 1, count))
            }
        }
    }
}

impl<K: Ord + Clone, V> Default for BPlusTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone + fmt::Debug, V: fmt::Debug> fmt::Debug for BPlusTree<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BPlusTree")
            .field("len", &self.len)
            .field("order", &self.order)
            .field("height", &self.height())
            .finish()
    }
}

/// Ordered iterator over a key range, walking the leaf chain.
pub struct RangeIter<'a, K, V> {
    tree: &'a BPlusTree<K, V>,
    leaf: Option<usize>,
    pos: usize,
    hi: Bound<&'a K>,
}

impl<'a, K: Ord + Clone, V> Iterator for RangeIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let leaf = self.leaf?;
            match &self.tree.nodes[leaf] {
                Node::Leaf { keys, vals, next } => {
                    if self.pos >= keys.len() {
                        self.leaf = *next;
                        self.pos = 0;
                        continue;
                    }
                    let k = &keys[self.pos];
                    let stop = match self.hi {
                        Bound::Unbounded => false,
                        Bound::Included(h) => k > h,
                        Bound::Excluded(h) => k >= h,
                    };
                    if stop {
                        self.leaf = None;
                        return None;
                    }
                    let v = &vals[self.pos];
                    self.pos += 1;
                    return Some((k, v));
                }
                _ => unreachable!("leaf chain reaches non-leaf"),
            }
        }
    }
}

/// Binary search for `partition_point(|k| k <= key)` ticking the meter once
/// per comparison.
fn metered_upper_bound<K: Ord>(keys: &[K], key: &K, meter: &Meter) -> usize {
    let mut lo = 0usize;
    let mut hi = keys.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        meter.tick();
        if keys[mid] <= *key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Metered exact-match binary search.
fn metered_eq_search<K: Ord>(keys: &[K], key: &K, meter: &Meter) -> Option<usize> {
    let mut lo = 0usize;
    let mut hi = keys.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        meter.tick();
        match keys[mid].cmp(key) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return Some(mid),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitract_core::cost::{assert_steps_within, CostClass, Meter};
    use std::collections::BTreeMap;

    fn assert_ok(tree: &BPlusTree<u64, u64>) {
        if let Err(e) = tree.check_invariants() {
            panic!("invariant violation: {e}");
        }
    }

    #[test]
    fn empty_tree_basics() {
        let tree: BPlusTree<u64, u64> = BPlusTree::new();
        assert!(tree.is_empty());
        assert_eq!(tree.get(&1), None);
        assert_eq!(tree.height(), 1);
        assert_ok(&tree);
    }

    #[test]
    fn insert_get_replace() {
        let mut tree = BPlusTree::with_order(4);
        assert_eq!(tree.insert(1, 10), None);
        assert_eq!(tree.insert(2, 20), None);
        assert_eq!(tree.insert(1, 11), Some(10));
        assert_eq!(tree.len(), 2);
        assert_eq!(tree.get(&1), Some(&11));
        assert_eq!(tree.get(&3), None);
        assert_ok(&tree);
    }

    #[test]
    fn sequential_inserts_split_correctly() {
        let mut tree = BPlusTree::with_order(4);
        for i in 0..1000u64 {
            tree.insert(i, i * 2);
        }
        assert_eq!(tree.len(), 1000);
        assert!(tree.height() > 2, "splits must have happened");
        for i in 0..1000u64 {
            assert_eq!(tree.get(&i), Some(&(i * 2)), "key {i}");
        }
        assert_eq!(tree.get(&1000), None);
        assert_ok(&tree);
    }

    #[test]
    fn reverse_and_shuffled_inserts() {
        for order in [3usize, 4, 5, 8, 32] {
            let mut tree = BPlusTree::with_order(order);
            let keys: Vec<u64> = (0..500).map(|i| (i * 7919) % 500).collect();
            for &k in &keys {
                tree.insert(k, k);
            }
            assert_eq!(tree.len(), 500, "order {order}");
            for k in 0..500u64 {
                assert_eq!(tree.get(&k), Some(&k), "order {order} key {k}");
            }
            assert_ok(&tree);
        }
    }

    #[test]
    fn iteration_is_sorted_and_complete() {
        let mut tree = BPlusTree::with_order(5);
        let keys: Vec<u64> = (0..300).map(|i| (i * 2654435761) % 1000).collect();
        let mut expect: Vec<u64> = keys.clone();
        expect.sort_unstable();
        expect.dedup();
        for &k in &keys {
            tree.insert(k, k + 1);
        }
        let got: Vec<u64> = tree.iter().map(|(k, _)| *k).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn range_scans_match_btreemap() {
        let mut tree = BPlusTree::with_order(4);
        let mut reference = BTreeMap::new();
        for i in 0..500u64 {
            let k = (i * 37) % 997;
            tree.insert(k, i);
            reference.insert(k, i);
        }
        let cases = [
            (Bound::Included(100u64), Bound::Included(300u64)),
            (Bound::Excluded(100), Bound::Excluded(300)),
            (Bound::Included(0), Bound::Included(0)),
            (Bound::Excluded(996), Bound::Unbounded),
            (Bound::Unbounded, Bound::Excluded(50)),
            (Bound::Unbounded, Bound::Unbounded),
            (Bound::Included(500), Bound::Included(400)), // inverted: empty
        ];
        for (lo, hi) in cases {
            let got: Vec<(u64, u64)> = tree
                .range(as_ref(&lo), as_ref(&hi))
                .map(|(k, v)| (*k, *v))
                .collect();
            let expect: Vec<(u64, u64)> = reference
                .iter()
                .filter(|(k, _)| in_bounds(**k, &lo, &hi))
                .map(|(k, v)| (*k, *v))
                .collect();
            assert_eq!(got, expect, "bounds {lo:?}..{hi:?}");
        }

        fn as_ref(b: &Bound<u64>) -> Bound<&u64> {
            match b {
                Bound::Included(k) => Bound::Included(k),
                Bound::Excluded(k) => Bound::Excluded(k),
                Bound::Unbounded => Bound::Unbounded,
            }
        }
        fn in_bounds(k: u64, lo: &Bound<u64>, hi: &Bound<u64>) -> bool {
            (match lo {
                Bound::Included(l) => k >= *l,
                Bound::Excluded(l) => k > *l,
                Bound::Unbounded => true,
            }) && (match hi {
                Bound::Included(h) => k <= *h,
                Bound::Excluded(h) => k < *h,
                Bound::Unbounded => true,
            })
        }
    }

    #[test]
    fn any_in_range_boolean_query() {
        let tree = BPlusTree::build((0..100u64).map(|i| (i * 10, i)));
        assert!(tree.any_in_range(Bound::Included(&15), Bound::Included(&25)));
        assert!(!tree.any_in_range(Bound::Included(&11), Bound::Included(&19)));
        assert!(tree.any_in_range(Bound::Unbounded, Bound::Unbounded));
    }

    #[test]
    fn remove_simple_and_missing() {
        let mut tree = BPlusTree::with_order(4);
        for i in 0..10u64 {
            tree.insert(i, i);
        }
        assert_eq!(tree.remove(&3), Some(3));
        assert_eq!(tree.remove(&3), None);
        assert_eq!(tree.remove(&100), None);
        assert_eq!(tree.len(), 9);
        assert_eq!(tree.get(&3), None);
        assert_ok(&tree);
    }

    #[test]
    fn remove_everything_in_order() {
        let mut tree = BPlusTree::with_order(4);
        for i in 0..200u64 {
            tree.insert(i, i);
        }
        for i in 0..200u64 {
            assert_eq!(tree.remove(&i), Some(i), "removing {i}");
            assert_ok(&tree);
        }
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1);
    }

    #[test]
    fn remove_everything_reverse_order() {
        let mut tree = BPlusTree::with_order(3);
        for i in 0..200u64 {
            tree.insert(i, i);
        }
        for i in (0..200u64).rev() {
            assert_eq!(tree.remove(&i), Some(i), "removing {i}");
            assert_ok(&tree);
        }
        assert!(tree.is_empty());
    }

    #[test]
    fn interleaved_inserts_and_removes_match_btreemap() {
        let mut tree = BPlusTree::with_order(4);
        let mut reference: BTreeMap<u64, u64> = BTreeMap::new();
        let mut state = 12345u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..3000 {
            let k = rnd() % 200;
            if rnd() % 3 == 0 {
                assert_eq!(tree.remove(&k), reference.remove(&k), "step {step}");
            } else {
                let v = rnd();
                assert_eq!(tree.insert(k, v), reference.insert(k, v), "step {step}");
            }
            assert_eq!(tree.len(), reference.len(), "step {step}");
        }
        assert_ok(&tree);
        let got: Vec<(u64, u64)> = tree.iter().map(|(k, v)| (*k, *v)).collect();
        let expect: Vec<(u64, u64)> = reference.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn metered_lookup_is_logarithmic() {
        let n = 1u64 << 16;
        let tree = BPlusTree::build((0..n).map(|i| (i, i)));
        let meter = Meter::new();
        for q in [0u64, 1, n / 3, n / 2, n - 1, n + 7] {
            meter.take();
            tree.get_metered(&q, &meter);
            // height * log2(order) comparisons: comfortably O(log n).
            assert_steps_within(meter.steps(), CostClass::Log, n, 3.0);
        }
    }

    #[test]
    fn metered_and_plain_get_agree() {
        let tree = BPlusTree::build((0..1000u64).map(|i| (i * 3, i)));
        let meter = Meter::new();
        for q in 0..3100u64 {
            assert_eq!(tree.get(&q), tree.get_metered(&q, &meter), "q={q}");
        }
    }

    #[test]
    fn node_slots_are_recycled() {
        let mut tree = BPlusTree::with_order(3);
        for round in 0..5 {
            for i in 0..100u64 {
                tree.insert(i, i);
            }
            for i in 0..100u64 {
                tree.remove(&i);
            }
            assert!(tree.is_empty(), "round {round}");
        }
        // Five grow/shrink cycles must not grow the arena five-fold.
        assert!(
            tree.nodes.len() < 300,
            "arena grew to {} slots — free list unused?",
            tree.nodes.len()
        );
    }

    #[test]
    #[should_panic(expected = "order must be at least 3")]
    fn tiny_order_rejected() {
        let _ = BPlusTree::<u64, u64>::with_order(2);
    }

    // ------------------------------------------------------------------
    // Bulk loading
    // ------------------------------------------------------------------

    #[test]
    fn bulk_load_matches_incremental_build() {
        for n in [0usize, 1, 2, 5, 21, 22, 100, 1000, 4096] {
            for order in [3usize, 4, 8, 32] {
                let entries: Vec<(u64, u64)> = (0..n as u64).map(|i| (i * 3, i)).collect();
                let bulk = BPlusTree::bulk_load_with_order(order, entries.clone());
                assert_eq!(bulk.len(), n, "n={n} order={order}");
                if let Err(e) = bulk.check_invariants() {
                    panic!("bulk invariants (n={n}, order={order}): {e}");
                }
                let got: Vec<(u64, u64)> = bulk.iter().map(|(k, v)| (*k, *v)).collect();
                assert_eq!(got, entries, "n={n} order={order}");
                // Spot probes.
                if n > 0 {
                    assert_eq!(bulk.get(&0), Some(&0));
                    assert_eq!(bulk.get(&((n as u64 - 1) * 3)), Some(&(n as u64 - 1)));
                    assert_eq!(bulk.get(&1), None);
                }
            }
        }
    }

    #[test]
    fn bulk_loaded_tree_supports_mutation() {
        let entries: Vec<(u64, u64)> = (0..500u64).map(|i| (i * 2, i)).collect();
        let mut tree = BPlusTree::bulk_load_with_order(5, entries);
        for i in 0..500u64 {
            tree.insert(i * 2 + 1, i);
        }
        assert_eq!(tree.len(), 1000);
        for i in (0..1000u64).step_by(3) {
            tree.remove(&i);
        }
        assert_ok(&tree);
        let keys: Vec<u64> = tree.iter().map(|(k, _)| *k).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn bulk_load_rejects_unsorted_input() {
        let _ = BPlusTree::bulk_load(vec![(2u64, 0u64), (1, 0)]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn bulk_load_rejects_duplicate_keys() {
        let _ = BPlusTree::bulk_load(vec![(1u64, 0u64), (1, 1)]);
    }

    // ------------------------------------------------------------------
    // Failure injection: the invariant auditor must catch corruption.
    // ------------------------------------------------------------------

    #[test]
    fn auditor_catches_length_lies() {
        let mut tree = BPlusTree::build((0..100u64).map(|i| (i, i)));
        tree.len += 1;
        let err = tree.check_invariants().unwrap_err();
        assert!(err.contains("len says"), "unexpected error: {err}");
    }

    #[test]
    fn auditor_catches_unsorted_leaf_keys() {
        let mut tree = BPlusTree::with_order(8);
        for i in 0..6u64 {
            tree.insert(i, i);
        }
        // Single-leaf tree: swap two keys in place.
        if let Node::Leaf { keys, .. } = &mut tree.nodes[tree.root] {
            keys.swap(0, 1);
        }
        let err = tree.check_invariants().unwrap_err();
        assert!(err.contains("sorted"), "unexpected error: {err}");
    }

    #[test]
    fn auditor_catches_broken_leaf_chain() {
        let mut tree = BPlusTree::with_order(3);
        for i in 0..50u64 {
            tree.insert(i, i);
        }
        // Sever the chain at the first leaf.
        let first = tree.first_leaf;
        if let Node::Leaf { next, .. } = &mut tree.nodes[first] {
            *next = None;
        }
        let err = tree.check_invariants().unwrap_err();
        assert!(err.contains("chain"), "unexpected error: {err}");
    }

    #[test]
    fn auditor_catches_wrong_first_leaf() {
        let mut tree = BPlusTree::with_order(3);
        for i in 0..50u64 {
            tree.insert(i, i);
        }
        tree.first_leaf = tree.root; // the root is internal here
        let err = tree.check_invariants().unwrap_err();
        assert!(
            err.contains("first_leaf") || err.contains("chain"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn auditor_catches_separator_violations() {
        let mut tree = BPlusTree::with_order(3);
        for i in 0..50u64 {
            tree.insert(i, i);
        }
        // Plant an out-of-window key in the leftmost leaf.
        let first = tree.first_leaf;
        if let Node::Leaf { keys, .. } = &mut tree.nodes[first] {
            let last = keys.len() - 1;
            keys[last] = 999; // beyond every separator above it
        }
        let err = tree.check_invariants().unwrap_err();
        assert!(
            err.contains("window") || err.contains("sorted"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn string_keys_work() {
        let mut tree: BPlusTree<String, usize> = BPlusTree::with_order(4);
        for w in ["pear", "apple", "fig", "date", "cherry", "banana"] {
            tree.insert(w.to_string(), w.len());
        }
        assert_eq!(tree.get(&"fig".to_string()), Some(&3));
        let words: Vec<String> = tree.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(
            words,
            vec!["apple", "banana", "cherry", "date", "fig", "pear"]
        );
    }
}
