//! A separate-chaining hash index: the O(1)-expected point-lookup
//! preprocessing alternative.
//!
//! Example 1 of the paper uses a B⁺-tree; real systems often hash instead.
//! The E1 experiment compares scan vs B⁺-tree vs hash, so the hash index is
//! implemented here from scratch (multiplicative Fibonacci hashing, powers
//! of two buckets, load-factor-driven resize) rather than wrapping
//! `std::collections` — the point of the workspace is to own every substrate
//! the experiments touch, including this one.

use pitract_core::cost::Meter;
use std::hash::{Hash, Hasher};

const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// A minimal 64-bit mixing hasher (FxHash-style multiply-xor), sufficient
/// for the integer- and string-keyed workloads of the experiments.
#[derive(Default)]
struct MixHasher {
    state: u64,
}

impl Hasher for MixHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state.rotate_left(5) ^ u64::from(b)).wrapping_mul(FIB);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.state = (self.state.rotate_left(5) ^ v).wrapping_mul(FIB);
    }
}

fn hash_of<K: Hash>(key: &K) -> u64 {
    let mut h = MixHasher::default();
    key.hash(&mut h);
    h.finish()
}

/// A separate-chaining hash index from keys to value lists (a secondary
/// index: one key may map to many row ids).
#[derive(Debug, Clone)]
pub struct HashIndex<K, V> {
    buckets: Vec<Vec<(K, V)>>,
    len: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> HashIndex<K, V> {
    /// Create with capacity for roughly `expected` entries.
    pub fn with_capacity(expected: usize) -> Self {
        let nbuckets = expected.next_power_of_two().max(8);
        HashIndex {
            buckets: vec![Vec::new(); nbuckets],
            len: 0,
        }
    }

    /// Build from `(key, value)` pairs — the PTIME preprocessing pass.
    pub fn build(entries: impl IntoIterator<Item = (K, V)>) -> Self {
        let mut idx = HashIndex::with_capacity(16);
        for (k, v) in entries {
            idx.insert(k, v);
        }
        idx
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bucket_of(&self, key: &K) -> usize {
        (hash_of(key) as usize) & (self.buckets.len() - 1)
    }

    /// Insert one entry (duplicates allowed: a key can hold many values).
    pub fn insert(&mut self, key: K, value: V) {
        if self.len + 1 > self.buckets.len() * 2 {
            self.grow();
        }
        let b = self.bucket_of(&key);
        self.buckets[b].push((key, value));
        self.len += 1;
    }

    fn grow(&mut self) {
        let mut bigger: Vec<Vec<(K, V)>> = vec![Vec::new(); self.buckets.len() * 2];
        let mask = bigger.len() - 1;
        for bucket in self.buckets.drain(..) {
            for (k, v) in bucket {
                let b = (hash_of(&k) as usize) & mask;
                bigger[b].push((k, v));
            }
        }
        self.buckets = bigger;
    }

    /// Does any entry have this key? Expected O(1).
    pub fn contains_key(&self, key: &K) -> bool {
        self.buckets[self.bucket_of(key)]
            .iter()
            .any(|(k, _)| k == key)
    }

    /// Metered variant ticking once per chain element touched — used to
    /// demonstrate the expected-O(1) probe cost in E1.
    pub fn contains_key_metered(&self, key: &K, meter: &Meter) -> bool {
        for (k, _) in &self.buckets[self.bucket_of(key)] {
            meter.tick();
            if k == key {
                return true;
            }
        }
        meter.tick(); // the final (failed) probe of an empty/missing chain
        false
    }

    /// All values stored under `key`.
    pub fn get_all(&self, key: &K) -> Vec<&V> {
        self.buckets[self.bucket_of(key)]
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v)
            .collect()
    }

    /// First value stored under `key`, if any.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.buckets[self.bucket_of(key)]
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Remove all entries under `key`, returning how many were removed.
    pub fn remove_all(&mut self, key: &K) -> usize {
        let b = self.bucket_of(key);
        let before = self.buckets[b].len();
        self.buckets[b].retain(|(k, _)| k != key);
        let removed = before - self.buckets[b].len();
        self.len -= removed;
        removed
    }

    /// Longest chain length — a health metric asserted by tests.
    pub fn max_chain_len(&self) -> usize {
        self.buckets.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitract_core::cost::Meter;

    #[test]
    fn build_and_probe() {
        let idx = HashIndex::build((0u64..1000).map(|i| (i, i * 10)));
        assert_eq!(idx.len(), 1000);
        assert!(idx.contains_key(&999));
        assert!(!idx.contains_key(&1000));
        assert_eq!(idx.get(&5), Some(&50));
        assert_eq!(idx.get(&5000), None);
    }

    #[test]
    fn duplicate_keys_keep_all_values() {
        let mut idx = HashIndex::with_capacity(4);
        idx.insert("a", 1);
        idx.insert("a", 2);
        idx.insert("b", 3);
        let mut vals: Vec<i32> = idx.get_all(&"a").into_iter().copied().collect();
        vals.sort_unstable();
        assert_eq!(vals, vec![1, 2]);
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn remove_all_removes_every_duplicate() {
        let mut idx = HashIndex::with_capacity(4);
        idx.insert(7u64, 'x');
        idx.insert(7, 'y');
        idx.insert(8, 'z');
        assert_eq!(idx.remove_all(&7), 2);
        assert!(!idx.contains_key(&7));
        assert!(idx.contains_key(&8));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.remove_all(&7), 0);
    }

    #[test]
    fn growth_keeps_all_entries_findable() {
        let mut idx = HashIndex::with_capacity(1);
        for i in 0u64..10_000 {
            idx.insert(i, ());
        }
        for i in 0u64..10_000 {
            assert!(idx.contains_key(&i), "lost key {i}");
        }
        assert!(!idx.contains_key(&10_000));
    }

    #[test]
    fn chains_stay_short_on_sequential_keys() {
        let idx = HashIndex::build((0u64..100_000).map(|i| (i, ())));
        // Expected chain length is ≤ 2 (load factor); allow generous slack
        // for the tail of the distribution.
        assert!(
            idx.max_chain_len() <= 16,
            "max chain {} too long — hashing is degenerate",
            idx.max_chain_len()
        );
    }

    #[test]
    fn metered_probe_touches_few_entries() {
        let idx = HashIndex::build((0u64..65_536).map(|i| (i, ())));
        let meter = Meter::new();
        let mut worst = 0;
        for q in (0u64..70_000).step_by(997) {
            meter.take();
            idx.contains_key_metered(&q, &meter);
            worst = worst.max(meter.steps());
        }
        assert!(worst <= 16, "worst probe cost {worst} not O(1)-like");
    }

    #[test]
    fn string_keys_work() {
        let idx = HashIndex::build(
            ["alpha", "beta", "gamma"]
                .iter()
                .map(|s| (s.to_string(), s.len())),
        );
        assert_eq!(idx.get(&"beta".to_string()), Some(&4));
        assert!(!idx.contains_key(&"delta".to_string()));
    }

    #[test]
    fn empty_index() {
        let idx: HashIndex<u64, ()> = HashIndex::with_capacity(0);
        assert!(idx.is_empty());
        assert!(!idx.contains_key(&0));
        assert_eq!(idx.max_chain_len(), 0);
    }
}
