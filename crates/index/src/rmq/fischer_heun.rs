//! Fischer–Heun RMQ: linear-space preprocessing, O(1) queries — the exact
//! structure the paper cites for Section 4(3) [Fischer & Heun, SICOMP 2011].
//!
//! The array is cut into blocks of `b ≈ (log₂ n)/4` elements.
//!
//! * Across blocks: a sparse table over the per-block minima — O((n/b)·
//!   log(n/b)) = O(n) space for this block size.
//! * Within blocks: two blocks whose elements have the same *Cartesian
//!   tree* share every range-argmin, so each block is summarized by its
//!   Cartesian tree number (the ≤ 2b-bit push/pop signature of a stack
//!   scan). One in-block lookup table of O(b²) entries is materialized per
//!   *distinct signature* — at most 4^b = O(√n) of them — and shared.
//!
//! A query touches at most: one in-block table (same-block case), or two
//! in-block tables plus one sparse-table probe — constant work.

use super::{check_range, sparse::SparseRmq, RangeMin};
use pitract_core::cost::Meter;
use std::collections::HashMap;

/// Fischer–Heun block-decomposition RMQ.
#[derive(Debug, Clone)]
pub struct FischerHeunRmq<T> {
    data: Vec<T>,
    block_len: usize,
    /// Global index of the leftmost minimum of each block.
    block_argmin: Vec<usize>,
    /// Sparse table over the block minima (values copied out so the inner
    /// structure owns plain data).
    summary: SparseRmq<T>,
    /// Cartesian signature of each block.
    signatures: Vec<u64>,
    /// Per-signature in-block argmin tables: `table[i * b + j]` = offset of
    /// the leftmost argmin of in-block range [i, j] (entries with i > j are
    /// unused).
    in_block: HashMap<u64, Vec<u8>>,
}

impl<T: Ord + Clone> FischerHeunRmq<T> {
    /// Build in O(n) time and space.
    pub fn build(data: &[T]) -> Self {
        let n = data.len();
        let block_len = block_len_for(n);
        let nblocks = n.div_ceil(block_len).max(1);

        let mut block_argmin = Vec::with_capacity(nblocks);
        let mut signatures = Vec::with_capacity(nblocks);
        let mut in_block: HashMap<u64, Vec<u8>> = HashMap::new();

        for b in 0..nblocks {
            let start = b * block_len;
            let end = (start + block_len).min(n);
            if start >= n {
                break;
            }
            let block = &data[start..end];
            // Leftmost block minimum.
            let mut best = 0usize;
            for (k, v) in block.iter().enumerate().skip(1) {
                if *v < block[best] {
                    best = k;
                }
            }
            block_argmin.push(start + best);
            // Cartesian signature + shared in-block table.
            let sig = cartesian_signature(block);
            signatures.push(sig);
            in_block
                .entry(sig)
                .or_insert_with(|| build_in_block_table(block, block_len));
        }

        let summary_vals: Vec<T> = block_argmin.iter().map(|&i| data[i].clone()).collect();
        FischerHeunRmq {
            data: data.to_vec(),
            block_len,
            block_argmin,
            summary: SparseRmq::build(&summary_vals),
            signatures,
            in_block,
        }
    }

    /// Block length in use (≈ log₂(n)/4, at least 1).
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// Number of distinct Cartesian signatures — at most 4^b, the sharing
    /// that makes the structure linear-space.
    pub fn distinct_signatures(&self) -> usize {
        self.in_block.len()
    }

    /// In-block argmin via the shared signature table, as a global index.
    fn in_block_query(&self, block: usize, lo: usize, hi: usize) -> usize {
        let table = &self.in_block[&self.signatures[block]];
        let off = table[lo * self.block_len + hi] as usize;
        block * self.block_len + off
    }

    fn query_unchecked(&self, i: usize, j: usize) -> usize {
        let b = self.block_len;
        let (bi, bj) = (i / b, j / b);
        if bi == bj {
            return self.in_block_query(bi, i - bi * b, j - bj * b);
        }
        // Suffix of bi, full middle blocks, prefix of bj — scanned left to
        // right keeping the strictly-smallest, so ties resolve leftmost.
        let mut best = self.in_block_query(bi, i - bi * b, b - 1);
        if bi < bj - 1 {
            let mid_block = self.summary.query(bi + 1, bj - 1);
            let cand = self.block_argmin[mid_block];
            if self.data[cand] < self.data[best] {
                best = cand;
            }
        }
        let cand = self.in_block_query(bj, 0, j - bj * b);
        if self.data[cand] < self.data[best] {
            best = cand;
        }
        best
    }

    /// Query with constant metering (≤ 3 probes + 2 comparisons) — the O(1)
    /// evidence for E4.
    pub fn query_metered(&self, i: usize, j: usize, meter: &Meter) -> usize {
        check_range(i, j, self.data.len());
        meter.add(5);
        self.query_unchecked(i, j)
    }
}

impl<T: Ord + Clone> RangeMin<T> for FischerHeunRmq<T> {
    fn len(&self) -> usize {
        self.data.len()
    }

    fn data(&self) -> &[T] {
        &self.data
    }

    fn query(&self, i: usize, j: usize) -> usize {
        check_range(i, j, self.data.len());
        self.query_unchecked(i, j)
    }
}

/// Block length ≈ log₂(n)/4, clamped to [1, 16] so signatures fit in u64
/// (2 bits per element ⇒ ≤ 32 bits).
fn block_len_for(n: usize) -> usize {
    if n < 16 {
        return 1;
    }
    (((n as f64).log2() / 4.0).floor() as usize).clamp(1, 16)
}

/// Cartesian tree number of a block: scan left to right with an increasing
/// stack; emit a 0-bit per pop and a 1-bit per push. Two blocks get the
/// same number iff their Cartesian trees coincide, i.e. iff every range
/// argmin position coincides.
fn cartesian_signature<T: Ord>(block: &[T]) -> u64 {
    let mut sig = 0u64;
    let mut stack: Vec<&T> = Vec::new();
    for v in block {
        while let Some(&top) = stack.last() {
            if top > v {
                stack.pop();
                sig <<= 1; // pop = 0
            } else {
                break;
            }
        }
        stack.push(v);
        sig = (sig << 1) | 1; // push = 1
    }
    sig
}

/// Dense in-block argmin table for one representative block: O(b²) time.
/// The table is indexed `[lo * block_len + hi]`; short final blocks simply
/// leave their out-of-range entries untouched (queries never reach them
/// because global bounds were checked first).
fn build_in_block_table<T: Ord>(block: &[T], block_len: usize) -> Vec<u8> {
    debug_assert!(block_len <= u8::MAX as usize + 1);
    let mut table = vec![0u8; block_len * block_len];
    for lo in 0..block.len() {
        let mut best = lo;
        table[lo * block_len + lo] = lo as u8;
        for hi in lo + 1..block.len() {
            if block[hi] < block[best] {
                best = hi;
            }
            table[lo * block_len + hi] = best as u8;
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmq::testkit;

    #[test]
    fn matches_reference_everywhere() {
        for n in [1usize, 2, 3, 15, 16, 17, 63, 64, 65, 200, 257] {
            let data = testkit::array(n, 0xF15C + n as u64);
            let rmq = FischerHeunRmq::build(&data);
            testkit::check_all_ranges(&rmq, &data);
        }
    }

    #[test]
    fn large_array_spot_checks() {
        let n = 100_000;
        let data = testkit::array(n, 99);
        let rmq = FischerHeunRmq::build(&data);
        let ranges = [
            (0usize, n - 1),
            (0, 0),
            (n - 1, n - 1),
            (12_345, 54_321),
            (99_990, 99_999),
            (7, 8),
        ];
        for (i, j) in ranges {
            assert_eq!(
                rmq.query(i, j),
                testkit::reference(&data, i, j),
                "range [{i},{j}]"
            );
        }
    }

    #[test]
    fn signature_distinguishes_shapes_not_values() {
        // Same Cartesian tree, different values.
        assert_eq!(
            cartesian_signature(&[1, 5, 3]),
            cartesian_signature(&[10, 50, 30])
        );
        // Different shapes.
        assert_ne!(
            cartesian_signature(&[1, 2, 3]),
            cartesian_signature(&[3, 2, 1])
        );
    }

    #[test]
    fn signatures_are_shared_across_blocks() {
        // Strictly increasing data: every full block has the same shape, so
        // very few distinct in-block tables exist (full blocks share one;
        // a short final block may add another).
        let data: Vec<i64> = (0..10_000).collect();
        let rmq = FischerHeunRmq::build(&data);
        assert!(
            rmq.distinct_signatures() <= 2,
            "monotone data produced {} signatures",
            rmq.distinct_signatures()
        );
    }

    #[test]
    fn block_len_grows_with_n() {
        assert_eq!(block_len_for(8), 1);
        assert!(block_len_for(1 << 16) >= 4);
        assert!(block_len_for(1 << 20) >= 5);
        assert!(block_len_for(usize::MAX) <= 16);
    }

    #[test]
    fn constant_metered_cost() {
        let data = testkit::array(1 << 16, 4);
        let rmq = FischerHeunRmq::build(&data);
        let meter = pitract_core::cost::Meter::new();
        for (i, j) in [(0usize, (1 << 16) - 1), (3, 3), (1000, 50_000)] {
            meter.take();
            rmq.query_metered(i, j, &meter);
            assert_eq!(meter.steps(), 5, "[{i},{j}]");
        }
    }

    #[test]
    fn leftmost_on_ties_across_blocks() {
        // Force equal minima in different blocks.
        let mut data = vec![5i64; 64];
        data[3] = -7;
        data[40] = -7;
        data[60] = -7;
        let rmq = FischerHeunRmq::build(&data);
        assert_eq!(rmq.query(0, 63), 3);
        assert_eq!(rmq.query(4, 63), 40);
        assert_eq!(rmq.query(41, 63), 60);
    }

    #[test]
    #[should_panic(expected = "invalid RMQ range")]
    fn bad_range_panics() {
        FischerHeunRmq::build(&[1, 2, 3]).query(3, 3);
    }
}
