//! Sparse-table RMQ: O(n log n) preprocessing, O(1) queries.
//!
//! The classic doubling table: `sp[k][i]` holds the leftmost argmin of the
//! window `[i, i + 2^k)`. Any query `[i, j]` is covered by two overlapping
//! power-of-two windows, so answering costs two lookups and one comparison.
//! This is both an E4 contestant and the engine inside the Euler-tour LCA
//! structure (Section 4(4)) and the Fischer–Heun block summary.

use super::{check_range, RangeMin};
use pitract_core::cost::Meter;

/// Sparse-table RMQ over an owned array.
#[derive(Debug, Clone)]
pub struct SparseRmq<T> {
    data: Vec<T>,
    /// `levels[k][i]` = leftmost argmin of `[i, i + 2^(k+1))`; level 0 of
    /// the classical table (windows of size 1) is implicit (identity).
    levels: Vec<Vec<u32>>,
}

impl<T: Ord + Clone> SparseRmq<T> {
    /// Build the doubling table: O(n log n) time and space.
    pub fn build(data: &[T]) -> Self {
        let n = data.len();
        assert!(n <= u32::MAX as usize, "array too large for u32 indices");
        let mut levels: Vec<Vec<u32>> = Vec::new();
        if n >= 2 {
            // Level for windows of size 2.
            let mut prev: Vec<u32> = (0..n - 1)
                .map(|i| {
                    if data[i + 1] < data[i] {
                        i as u32 + 1
                    } else {
                        i as u32
                    }
                })
                .collect();
            let mut width = 2usize;
            levels.push(prev.clone());
            while width * 2 <= n {
                let next_len = n - width * 2 + 1;
                let mut next = Vec::with_capacity(next_len);
                for i in 0..next_len {
                    let a = prev[i];
                    let b = prev[i + width];
                    next.push(if data[b as usize] < data[a as usize] {
                        b
                    } else {
                        a
                    });
                }
                width *= 2;
                levels.push(next.clone());
                prev = next;
            }
        }
        SparseRmq {
            data: data.to_vec(),
            levels,
        }
    }

    /// Query with metering: exactly two table probes and one comparison —
    /// the O(1) evidence for E4.
    pub fn query_metered(&self, i: usize, j: usize, meter: &Meter) -> usize {
        check_range(i, j, self.data.len());
        meter.add(3);
        self.query_unchecked(i, j)
    }

    fn query_unchecked(&self, i: usize, j: usize) -> usize {
        let span = j - i + 1;
        if span == 1 {
            return i;
        }
        // Largest k with 2^(k+1) <= span, indexing into `levels`.
        let k = (usize::BITS - 1 - span.leading_zeros()) as usize - 1;
        let width = 1usize << (k + 1);
        let a = self.levels[k][i] as usize;
        let b = self.levels[k][j + 1 - width] as usize;
        if self.data[b] < self.data[a] {
            b
        } else {
            a
        }
    }

    /// Table entries held — E4 reports this against the Fischer–Heun
    /// structure's linear space.
    pub fn table_entries(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }
}

impl<T: Ord + Clone> RangeMin<T> for SparseRmq<T> {
    fn len(&self) -> usize {
        self.data.len()
    }

    fn data(&self) -> &[T] {
        &self.data
    }

    fn query(&self, i: usize, j: usize) -> usize {
        check_range(i, j, self.data.len());
        self.query_unchecked(i, j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmq::testkit;

    #[test]
    fn matches_reference_everywhere() {
        for n in [1usize, 2, 3, 4, 5, 8, 9, 17, 64, 100] {
            let data = testkit::array(n, 0x5EED + n as u64);
            let rmq = SparseRmq::build(&data);
            testkit::check_all_ranges(&rmq, &data);
        }
    }

    #[test]
    fn leftmost_on_ties_with_overlapping_windows() {
        // Equal minima straddling the two query windows.
        let data = vec![9, 1, 9, 9, 1, 9];
        let rmq = SparseRmq::build(&data);
        assert_eq!(rmq.query(0, 5), 1);
        assert_eq!(rmq.query(2, 5), 4);
        assert_eq!(rmq.query(1, 4), 1);
    }

    #[test]
    fn constant_probe_count() {
        let data = testkit::array(1 << 14, 11);
        let rmq = SparseRmq::build(&data);
        let meter = pitract_core::cost::Meter::new();
        for (i, j) in [(0usize, (1 << 14) - 1), (5, 6), (100, 9000)] {
            meter.take();
            rmq.query_metered(i, j, &meter);
            assert_eq!(meter.steps(), 3, "query [{i},{j}] not O(1)");
        }
    }

    #[test]
    fn space_is_n_log_n_ish() {
        let n = 1024;
        let rmq = SparseRmq::build(&testkit::array(n, 2));
        let entries = rmq.table_entries();
        assert!(entries <= n * 10, "table has {entries} entries");
        assert!(entries >= n, "table suspiciously small: {entries}");
    }

    #[test]
    fn singleton_and_pair() {
        let rmq = SparseRmq::build(&[42]);
        assert_eq!(rmq.query(0, 0), 0);
        let rmq = SparseRmq::build(&[2, 1]);
        assert_eq!(rmq.query(0, 1), 1);
        assert_eq!(rmq.query(0, 0), 0);
        assert_eq!(rmq.query(1, 1), 1);
    }

    #[test]
    #[should_panic(expected = "invalid RMQ range")]
    fn bad_range_panics() {
        SparseRmq::build(&[1, 2, 3]).query(1, 3);
    }
}
