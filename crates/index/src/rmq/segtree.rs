//! Segment-tree RMQ: O(n) build, O(log n) query, **point updates**.
//!
//! The segment tree trades the O(1) query of the static structures for
//! updatability — exactly the trade-off behind the paper's "incremental
//! preprocessing" discussion (Section 1, justification (3)): when the data
//! changes by ΔD, rebuilding a sparse table costs O(n log n), while a
//! segment tree absorbs each point change in O(log n). Experiment E10 uses
//! this as the maintainable-index contestant.

use super::{check_range, RangeMin};
use pitract_core::cost::Meter;

/// Array-backed segment tree over minima (leftmost argmin convention).
#[derive(Debug, Clone)]
pub struct SegTreeRmq<T> {
    data: Vec<T>,
    /// Heap-shaped argmin tree: `tree[1]` is the root; node i has children
    /// 2i and 2i+1; leaves map to positions `size..size+n`.
    tree: Vec<u32>,
    size: usize,
}

impl<T: Ord + Clone> SegTreeRmq<T> {
    /// Build in O(n).
    pub fn build(data: &[T]) -> Self {
        let n = data.len();
        assert!(n <= u32::MAX as usize, "array too large for u32 indices");
        let size = n.next_power_of_two().max(1);
        // Sentinel: out-of-range leaves point at u32::MAX and always lose.
        let mut tree = vec![u32::MAX; 2 * size];
        for i in 0..n {
            tree[size + i] = i as u32;
        }
        let mut t = SegTreeRmq {
            data: data.to_vec(),
            tree,
            size,
        };
        for node in (1..size).rev() {
            t.tree[node] = t.combine(t.tree[2 * node], t.tree[2 * node + 1]);
        }
        t
    }

    /// Leftmost-argmin combiner with the out-of-range sentinel.
    fn combine(&self, a: u32, b: u32) -> u32 {
        match (a, b) {
            (u32::MAX, b) => b,
            (a, u32::MAX) => a,
            (a, b) => {
                if self.data[b as usize] < self.data[a as usize] {
                    b
                } else {
                    a
                }
            }
        }
    }

    /// Replace `data[pos]` with `value` and repair the path to the root:
    /// O(log n) — the bounded-maintenance operation of E10.
    pub fn update(&mut self, pos: usize, value: T) {
        assert!(pos < self.data.len(), "update position {pos} out of bounds");
        self.data[pos] = value;
        let mut node = (self.size + pos) / 2;
        while node >= 1 {
            self.tree[node] = self.combine(self.tree[2 * node], self.tree[2 * node + 1]);
            node /= 2;
        }
    }

    /// Query ticking the meter once per visited node — certifies O(log n).
    pub fn query_metered(&self, i: usize, j: usize, meter: &Meter) -> usize {
        check_range(i, j, self.data.len());
        self.query_impl(i, j, Some(meter))
    }

    fn query_impl(&self, i: usize, j: usize, meter: Option<&Meter>) -> usize {
        // Iterative bottom-up range query, collecting left-side candidates
        // in order and right-side candidates in reverse, so the leftmost
        // argmin can be picked deterministically.
        let mut lo = self.size + i;
        let mut hi = self.size + j + 1;
        let mut left_cands: Vec<u32> = Vec::new();
        let mut right_cands: Vec<u32> = Vec::new();
        while lo < hi {
            if let Some(m) = meter {
                m.tick();
            }
            if lo & 1 == 1 {
                left_cands.push(self.tree[lo]);
                lo += 1;
            }
            if hi & 1 == 1 {
                hi -= 1;
                right_cands.push(self.tree[hi]);
            }
            lo /= 2;
            hi /= 2;
        }
        let mut best = u32::MAX;
        for &c in left_cands.iter().chain(right_cands.iter().rev()) {
            best = self.combine(best, c);
        }
        best as usize
    }
}

impl<T: Ord + Clone> RangeMin<T> for SegTreeRmq<T> {
    fn len(&self) -> usize {
        self.data.len()
    }

    fn data(&self) -> &[T] {
        &self.data
    }

    fn query(&self, i: usize, j: usize) -> usize {
        check_range(i, j, self.data.len());
        self.query_impl(i, j, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmq::testkit;
    use pitract_core::cost::{assert_steps_within, CostClass, Meter};

    #[test]
    fn matches_reference_everywhere() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 31, 64, 100] {
            let data = testkit::array(n, 0xD00D + n as u64);
            let rmq = SegTreeRmq::build(&data);
            testkit::check_all_ranges(&rmq, &data);
        }
    }

    #[test]
    fn leftmost_on_ties() {
        let data = vec![3, 0, 5, 0, 0, 7];
        let rmq = SegTreeRmq::build(&data);
        assert_eq!(rmq.query(0, 5), 1);
        assert_eq!(rmq.query(2, 5), 3);
        assert_eq!(rmq.query(4, 5), 4);
    }

    #[test]
    fn updates_repair_answers() {
        let mut rmq = SegTreeRmq::build(&testkit::array(64, 5));
        let mut shadow = rmq.data().to_vec();
        let updates = [
            (0usize, -900i64),
            (63, -950),
            (31, 7),
            (0, 100),
            (10, -1000),
        ];
        for (pos, val) in updates {
            rmq.update(pos, val);
            shadow[pos] = val;
            for (i, j) in [(0usize, 63usize), (0, 31), (31, 63), (pos, pos)] {
                assert_eq!(
                    rmq.query(i, j),
                    testkit::reference(&shadow, i, j),
                    "after update ({pos},{val}) range [{i},{j}]"
                );
            }
        }
    }

    #[test]
    fn update_then_full_revalidation() {
        let mut rmq = SegTreeRmq::build(&testkit::array(33, 9));
        rmq.update(16, -10_000);
        rmq.update(0, 10_000);
        let shadow = rmq.data().to_vec();
        testkit::check_all_ranges(&rmq, &shadow);
    }

    #[test]
    fn query_cost_is_logarithmic() {
        let n = 1usize << 15;
        let rmq = SegTreeRmq::build(&testkit::array(n, 13));
        let meter = Meter::new();
        for (i, j) in [(0usize, n - 1), (1, n - 2), (n / 3, 2 * n / 3)] {
            meter.take();
            rmq.query_metered(i, j, &meter);
            assert_steps_within(meter.steps(), CostClass::Log, n as u64, 2.0);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn update_out_of_bounds_panics() {
        SegTreeRmq::build(&[1, 2, 3]).update(3, 0);
    }

    #[test]
    #[should_panic(expected = "invalid RMQ range")]
    fn bad_range_panics() {
        SegTreeRmq::build(&[1, 2, 3]).query(0, 5);
    }
}
