//! All-pairs RMQ: the quadratic-space extreme of the preprocessing
//! trade-off.
//!
//! Precomputing the answer for every `(i, j)` pair is the bluntest way to
//! buy O(1) queries — Example 3 of the paper does exactly this for
//! reachability ("precompute a matrix that records the reachability between
//! all pairs"). Here it doubles as the mutation-free reference for the
//! subtler structures and as an E4 data point showing that Π-tractability
//! caps the preprocessing *output* at polynomial size but says nothing about
//! it being small.

use super::{check_range, RangeMin};

/// RMQ answered from a precomputed triangular table, O(n²) space.
#[derive(Debug, Clone)]
pub struct AllPairsRmq<T> {
    data: Vec<T>,
    /// Row i stores argmins for ranges [i, i], [i, i+1], … packed densely.
    table: Vec<u32>,
    row_offsets: Vec<usize>,
}

impl<T: Ord + Clone> AllPairsRmq<T> {
    /// Precompute all range minima by dynamic programming: O(n²) time and
    /// space. Panics if the array has more than `u32::MAX` elements.
    pub fn build(data: &[T]) -> Self {
        let n = data.len();
        assert!(n <= u32::MAX as usize, "array too large for u32 indices");
        let mut table = Vec::with_capacity(n * (n + 1) / 2);
        let mut row_offsets = Vec::with_capacity(n);
        for i in 0..n {
            row_offsets.push(table.len());
            let mut best = i;
            table.push(best as u32);
            for j in i + 1..n {
                if data[j] < data[best] {
                    best = j;
                }
                table.push(best as u32);
            }
        }
        AllPairsRmq {
            data: data.to_vec(),
            table,
            row_offsets,
        }
    }

    /// Size of the precomputed table in entries — E4 reports this to show
    /// the quadratic space cost.
    pub fn table_entries(&self) -> usize {
        self.table.len()
    }
}

impl<T: Ord + Clone> RangeMin<T> for AllPairsRmq<T> {
    fn len(&self) -> usize {
        self.data.len()
    }

    fn data(&self) -> &[T] {
        &self.data
    }

    fn query(&self, i: usize, j: usize) -> usize {
        check_range(i, j, self.data.len());
        self.table[self.row_offsets[i] + (j - i)] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmq::testkit;

    #[test]
    fn matches_reference_everywhere() {
        for n in [1usize, 2, 7, 33, 64] {
            let data = testkit::array(n, 0xABCD + n as u64);
            let rmq = AllPairsRmq::build(&data);
            testkit::check_all_ranges(&rmq, &data);
        }
    }

    #[test]
    fn table_is_triangular() {
        let rmq = AllPairsRmq::build(&testkit::array(10, 3));
        assert_eq!(rmq.table_entries(), 10 * 11 / 2);
    }

    #[test]
    fn leftmost_on_ties() {
        let rmq = AllPairsRmq::build(&[2, 0, 0, 2, 0]);
        assert_eq!(rmq.query(0, 4), 1);
        assert_eq!(rmq.query(3, 4), 4);
    }

    #[test]
    #[should_panic(expected = "invalid RMQ range")]
    fn bad_range_panics() {
        AllPairsRmq::build(&[1, 2]).query(1, 0);
    }
}
