//! Range-minimum query structures — Section 4(3) of the paper.
//!
//! The problem L₂: given a static array `A[0..n)` and `i ≤ j`, return a
//! position of the minimum of `A[i..=j]`. The paper cites Fischer & Heun's
//! result that O(n)-bit PTIME preprocessing suffices for O(1) queries; this
//! module implements the whole spectrum the E4 experiment compares:
//!
//! | structure | preprocessing | per query |
//! |---|---|---|
//! | [`naive::NaiveRmq`] | none | O(n) scan |
//! | [`table::AllPairsRmq`] | O(n²) | O(1) |
//! | [`sparse::SparseRmq`] | O(n log n) | O(1) |
//! | [`segtree::SegTreeRmq`] | O(n) | O(log n), supports point updates |
//! | [`fischer_heun::FischerHeunRmq`] | O(n) | O(1) |
//!
//! **Contract.** Every implementation returns the *leftmost* index attaining
//! the minimum, so results are comparable bit-for-bit across structures —
//! the cross-validation property test in the crate root relies on this.

pub mod fischer_heun;
pub mod naive;
pub mod segtree;
pub mod sparse;
pub mod table;

/// Common interface of all RMQ structures.
pub trait RangeMin<T: Ord> {
    /// Number of array elements.
    fn len(&self) -> usize;

    /// Is the underlying array empty?
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The underlying array.
    fn data(&self) -> &[T];

    /// Leftmost index of the minimum in the inclusive range `[i, j]`.
    ///
    /// Panics if `i > j` or `j ≥ len()` — malformed queries are caller
    /// bugs, mirroring the paper's precondition `1 ≤ i ≤ j ≤ n`.
    fn query(&self, i: usize, j: usize) -> usize;

    /// The minimum value itself.
    fn min_value(&self, i: usize, j: usize) -> &T {
        &self.data()[self.query(i, j)]
    }
}

/// Validate query bounds; shared by all implementations.
pub(crate) fn check_range(i: usize, j: usize, len: usize) {
    assert!(
        i <= j && j < len,
        "invalid RMQ range [{i}, {j}] on array of length {len}"
    );
}

#[cfg(test)]
pub(crate) mod testkit {
    //! Shared generators and the cross-implementation oracle check.
    use super::*;

    /// Deterministic pseudo-random array.
    pub fn array(n: usize, seed: u64) -> Vec<i64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1000) as i64 - 500
            })
            .collect()
    }

    /// Leftmost-argmin reference.
    pub fn reference(data: &[i64], i: usize, j: usize) -> usize {
        let mut best = i;
        for k in i + 1..=j {
            if data[k] < data[best] {
                best = k;
            }
        }
        best
    }

    /// Exhaustively compare `rmq` against the reference on all ranges.
    pub fn check_all_ranges<R: RangeMin<i64>>(rmq: &R, data: &[i64]) {
        for i in 0..data.len() {
            for j in i..data.len() {
                let got = rmq.query(i, j);
                let expect = reference(data, i, j);
                assert_eq!(
                    got, expect,
                    "range [{i},{j}] on {data:?}: got {got}, want {expect}"
                );
            }
        }
    }
}
