//! The no-preprocessing RMQ baseline: scan the queried range.
//!
//! This is the "PTIME but infeasible on big data" side of the paper's
//! dichotomy — correct, zero preprocessing cost, O(n) per query. Experiment
//! E4 uses it as the reference curve the preprocessed structures must beat.

use super::{check_range, RangeMin};
use pitract_core::cost::Meter;

/// RMQ by linear scan of the queried range.
#[derive(Debug, Clone)]
pub struct NaiveRmq<T> {
    data: Vec<T>,
}

impl<T: Ord + Clone> NaiveRmq<T> {
    /// "Preprocess" by storing the array as-is (O(n) copy, no structure).
    pub fn build(data: &[T]) -> Self {
        NaiveRmq {
            data: data.to_vec(),
        }
    }

    /// Scan with per-comparison metering — certifies the O(n) baseline cost
    /// in E4.
    pub fn query_metered(&self, i: usize, j: usize, meter: &Meter) -> usize {
        check_range(i, j, self.data.len());
        let mut best = i;
        for k in i + 1..=j {
            meter.tick();
            if self.data[k] < self.data[best] {
                best = k;
            }
        }
        best
    }
}

impl<T: Ord + Clone> RangeMin<T> for NaiveRmq<T> {
    fn len(&self) -> usize {
        self.data.len()
    }

    fn data(&self) -> &[T] {
        &self.data
    }

    fn query(&self, i: usize, j: usize) -> usize {
        check_range(i, j, self.data.len());
        let mut best = i;
        for k in i + 1..=j {
            if self.data[k] < self.data[best] {
                best = k;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmq::testkit;

    #[test]
    fn matches_reference_everywhere() {
        for n in [1usize, 2, 3, 17, 50] {
            let data = testkit::array(n, 0xBEEF + n as u64);
            let rmq = NaiveRmq::build(&data);
            testkit::check_all_ranges(&rmq, &data);
        }
    }

    #[test]
    fn leftmost_on_ties() {
        let rmq = NaiveRmq::build(&[5, 1, 1, 1, 5]);
        assert_eq!(rmq.query(0, 4), 1);
        assert_eq!(rmq.query(2, 4), 2);
    }

    #[test]
    fn single_element_ranges() {
        let rmq = NaiveRmq::build(&[3, 1, 2]);
        for i in 0..3 {
            assert_eq!(rmq.query(i, i), i);
        }
    }

    #[test]
    fn metered_cost_is_range_length() {
        let data = testkit::array(100, 7);
        let rmq = NaiveRmq::build(&data);
        let meter = Meter::new();
        rmq.query_metered(10, 60, &meter);
        assert_eq!(meter.steps(), 50);
    }

    #[test]
    #[should_panic(expected = "invalid RMQ range")]
    fn inverted_range_panics() {
        NaiveRmq::build(&[1, 2, 3]).query(2, 1);
    }

    #[test]
    #[should_panic(expected = "invalid RMQ range")]
    fn out_of_bounds_panics() {
        NaiveRmq::build(&[1, 2, 3]).query(0, 3);
    }
}
