//! |CHANGED|-based accounting for incremental algorithms.
//!
//! Ramalingam & Reps: charge an incremental algorithm against
//! `|CHANGED| = |ΔD| + |ΔO|`, the part of the cost *inherent* to the
//! update. Every maintenance structure in this crate emits one
//! [`UpdateRecord`] per applied change; [`BoundednessReport`] aggregates a
//! run and answers "was the measured work a function of |CHANGED| (times a
//! constant), or did it secretly scale with |D|?" — the E10 verdict.

/// Cost record for one applied update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateRecord {
    /// Size of the input change |ΔD| (e.g. 1 for a single edge insert).
    pub delta_input: u64,
    /// Size of the output change |ΔO| (e.g. newly reachable nodes).
    pub delta_output: u64,
    /// Work actually performed by the incremental algorithm.
    pub work: u64,
}

impl UpdateRecord {
    /// `|CHANGED| = |ΔD| + |ΔO|`.
    pub fn changed(&self) -> u64 {
        self.delta_input + self.delta_output
    }
}

/// Aggregate over a run of updates.
#[derive(Debug, Default, Clone)]
pub struct BoundednessReport {
    records: Vec<UpdateRecord>,
}

impl BoundednessReport {
    /// Empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one update's record.
    pub fn push(&mut self, r: UpdateRecord) {
        self.records.push(r);
    }

    /// Number of recorded updates.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Is the report empty?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The recorded updates.
    pub fn records(&self) -> &[UpdateRecord] {
        &self.records
    }

    /// Total work across the run.
    pub fn total_work(&self) -> u64 {
        self.records.iter().map(|r| r.work).sum()
    }

    /// Total |CHANGED| across the run.
    pub fn total_changed(&self) -> u64 {
        self.records.iter().map(|r| r.changed()).sum()
    }

    /// **Amortized boundedness**: total work ≤ `c · (total |CHANGED| + 1)`.
    /// Amortization is the honest notion for insertion-only maintenance
    /// (one update may pay for work that later updates then skip).
    pub fn is_amortized_bounded(&self, c: f64) -> bool {
        (self.total_work() as f64) <= c * (self.total_changed() as f64 + 1.0)
    }

    /// **Per-update boundedness**: every record individually satisfies
    /// `work ≤ c · (|CHANGED| + 1)`. Stricter; fails for algorithms that
    /// are only amortized-bounded.
    pub fn is_per_update_bounded(&self, c: f64) -> bool {
        self.records
            .iter()
            .all(|r| (r.work as f64) <= c * (r.changed() as f64 + 1.0))
    }

    /// The worst per-update ratio `work / (|CHANGED| + 1)` — reported by
    /// the E10 table.
    pub fn worst_ratio(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.work as f64 / (r.changed() as f64 + 1.0))
            .fold(0.0, f64::max)
    }

    /// Publish this report's totals into a metrics registry under
    /// `prefix` (e.g. `engine_maintenance`), so the |CHANGED| accounting
    /// appears in the same `MetricsSnapshot` as every live series:
    /// `{prefix}_updates_total`, `{prefix}_changed_total`, and
    /// `{prefix}_work_total` as monotonic counters (raised, never
    /// lowered, so republishing a growing report stays Prometheus-legal)
    /// plus the `{prefix}_worst_ratio_milli` gauge (the worst per-update
    /// `work / (|CHANGED| + 1)` ratio in thousandths).
    pub fn publish(&self, recorder: &pitract_obs::Recorder, prefix: &str) {
        recorder
            .counter(&format!("{prefix}_updates_total"))
            .raise_to(self.len() as u64);
        recorder
            .counter(&format!("{prefix}_changed_total"))
            .raise_to(self.total_changed());
        recorder
            .counter(&format!("{prefix}_work_total"))
            .raise_to(self.total_work());
        recorder
            .gauge(&format!("{prefix}_worst_ratio_milli"))
            .set((self.worst_ratio() * 1000.0) as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(di: u64, do_: u64, w: u64) -> UpdateRecord {
        UpdateRecord {
            delta_input: di,
            delta_output: do_,
            work: w,
        }
    }

    #[test]
    fn changed_sums_both_deltas() {
        assert_eq!(rec(1, 4, 10).changed(), 5);
        assert_eq!(rec(0, 0, 0).changed(), 0);
    }

    #[test]
    fn bounded_run_passes_both_checks() {
        let mut report = BoundednessReport::new();
        for i in 0..100 {
            report.push(rec(1, i % 5, 2 * (1 + i % 5)));
        }
        assert!(report.is_per_update_bounded(2.0));
        assert!(report.is_amortized_bounded(2.0));
    }

    #[test]
    fn unbounded_run_fails() {
        let mut report = BoundednessReport::new();
        // Work grows with a hidden |D| = 1000 even when nothing changes.
        for _ in 0..50 {
            report.push(rec(1, 0, 1000));
        }
        assert!(!report.is_per_update_bounded(10.0));
        assert!(!report.is_amortized_bounded(10.0));
    }

    #[test]
    fn amortized_but_not_per_update() {
        let mut report = BoundednessReport::new();
        // One expensive update whose output change is charged to others:
        // 9 updates with |ΔO|=10, work 1; one with |ΔO|=0, work 90.
        for _ in 0..9 {
            report.push(rec(1, 10, 1));
        }
        report.push(rec(1, 0, 90));
        assert!(!report.is_per_update_bounded(2.0));
        assert!(report.is_amortized_bounded(2.0));
    }

    #[test]
    fn worst_ratio_identifies_the_spike() {
        let mut report = BoundednessReport::new();
        report.push(rec(1, 1, 2)); // ratio 2/3
        report.push(rec(1, 0, 50)); // ratio 25
        assert!((report.worst_ratio() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_trivially_bounded() {
        let report = BoundednessReport::new();
        assert!(report.is_per_update_bounded(1.0));
        assert!(report.is_amortized_bounded(1.0));
        assert_eq!(report.worst_ratio(), 0.0);
    }
}
