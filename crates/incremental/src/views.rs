//! Incremental view maintenance with |CHANGED| accounting — where the
//! paper's Sections 4(6) and 4(7) meet.
//!
//! A materialized view is preprocessed state `Π(D)`; under updates ΔD the
//! paper wants `ΔΠ` computed at a cost governed by the change, not by |D|.
//! For single-column range views this is genuinely bounded: deciding
//! whether a new row belongs to a view is O(1) per view, and |ΔO| is the
//! number of view extensions that actually change. [`MaintainedViews`]
//! wraps a `ViewSet` with [`UpdateRecord`] bookkeeping so E10-style
//! boundedness verdicts extend to the views case study.

use crate::bounded::{BoundednessReport, UpdateRecord};
use pitract_relation::value::Value;
use pitract_relation::views::{MaterializedView, ViewSet};

/// A view set whose maintenance is |CHANGED|-accounted.
#[derive(Debug, Default)]
pub struct MaintainedViews {
    views: ViewSet,
    view_count: u64,
    report: BoundednessReport,
}

impl MaintainedViews {
    /// Empty maintained set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a materialized view.
    pub fn add(&mut self, view: MaterializedView) {
        self.views.add(view);
        self.view_count += 1;
    }

    /// The underlying view set (for query answering).
    pub fn views(&self) -> &ViewSet {
        &self.views
    }

    /// Apply a base insert: each view pays one membership test; views the
    /// row belongs to also pay one append (the |ΔO| part).
    pub fn on_insert(&mut self, row: &[Value]) {
        let delta_output = self.count_affected(row);
        self.views.on_insert(row);
        self.report.push(UpdateRecord {
            delta_input: 1,
            delta_output,
            // One predicate test per view plus one append per affected view.
            work: self.view_count + delta_output,
        });
    }

    /// Apply a base delete (mirrors [`MaintainedViews::on_insert`]).
    ///
    /// Deletion inside a view uses swap-remove: O(1) once the row is
    /// located; locating costs up to |V(D)| in this implementation, which
    /// the record reports honestly (a production system would keep a
    /// per-view row index to make this O(1) too).
    pub fn on_delete(&mut self, row: &[Value], located_cost: u64) {
        let delta_output = self.count_affected(row);
        self.views.on_delete(row);
        self.report.push(UpdateRecord {
            delta_input: 1,
            delta_output,
            work: self.view_count + delta_output + located_cost,
        });
    }

    fn count_affected(&self, row: &[Value]) -> u64 {
        // Count views whose definition matches the row (those will change).
        // ViewSet doesn't expose iteration; replicate via rewriting: a
        // point query on the row's first column covered by a view whose
        // definition matches the row is a good proxy — instead we simply
        // re-run the membership predicate through on_insert semantics.
        // For accounting we conservatively test with the definitions via
        // the public covers() API using a degenerate range query.
        self.views.affected_by(row) as u64
    }

    /// The |CHANGED| accounting of the maintenance run.
    pub fn report(&self) -> &BoundednessReport {
        &self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitract_core::cost::Meter;
    use pitract_relation::{ColType, Relation, Schema, SelectionQuery};
    use std::ops::Bound;

    fn setup() -> (Relation, MaintainedViews) {
        let schema = Schema::new(&[("ts", ColType::Int)]);
        let rows = (0..1000i64).map(|t| vec![Value::Int(t)]).collect();
        let base = Relation::from_rows(schema, rows).unwrap();
        let mut mv = MaintainedViews::new();
        mv.add(MaterializedView::materialize(
            "low",
            &base,
            0,
            Bound::Included(Value::Int(0)),
            Bound::Excluded(Value::Int(100)),
        ));
        mv.add(MaterializedView::materialize(
            "high",
            &base,
            0,
            Bound::Included(Value::Int(900)),
            Bound::Unbounded,
        ));
        (base, mv)
    }

    #[test]
    fn inserts_update_only_matching_views() {
        let (_, mut mv) = setup();
        let meter = Meter::new();
        mv.on_insert(&[Value::Int(50)]);
        assert_eq!(
            mv.views()
                .answer_metered(&SelectionQuery::point(0, 50i64), &meter),
            Ok(true)
        );
        let last = *mv.report().records().last().unwrap();
        assert_eq!(last.delta_output, 1, "only the 'low' view changes");
        assert_eq!(last.work, 3, "two tests + one append");
    }

    #[test]
    fn inserts_outside_all_views_cost_only_the_tests() {
        let (_, mut mv) = setup();
        mv.on_insert(&[Value::Int(500)]);
        let last = *mv.report().records().last().unwrap();
        assert_eq!(last.delta_output, 0);
        assert_eq!(last.work, 2);
    }

    #[test]
    fn maintenance_run_is_bounded() {
        let (_, mut mv) = setup();
        for t in 0..5000i64 {
            mv.on_insert(&[Value::Int(t % 1200)]);
        }
        // Work per update is (views + affected) — a function of the change
        // and the (constant) number of views, never of |D|.
        assert!(mv.report().is_per_update_bounded(3.0));
    }

    #[test]
    fn deletes_remove_from_views() {
        let (_, mut mv) = setup();
        let meter = Meter::new();
        let row = [Value::Int(950)];
        assert_eq!(
            mv.views()
                .answer_metered(&SelectionQuery::point(0, 950i64), &meter),
            Ok(true)
        );
        mv.on_delete(&row, 100);
        assert_eq!(
            mv.views()
                .answer_metered(&SelectionQuery::point(0, 950i64), &meter),
            Ok(false)
        );
        let last = *mv.report().records().last().unwrap();
        assert_eq!(last.delta_output, 1);
    }
}
