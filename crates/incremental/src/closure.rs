//! Italiano-style incremental transitive closure under edge insertions.
//!
//! Maintains the all-pairs reachability matrix (the preprocessed structure
//! of Example 3) *incrementally*: inserting `(u, v)` adds exactly the pairs
//! `{(x, y) : x ⇝ u, v ⇝ y}`, and because the maintained rows are already
//! transitively closed, a single sweep `row(x) |= row(v)` over the
//! ancestors `x` of `u` restores closure — no fixpoint iteration. Each
//! sweep costs O(#ancestors · n/64) word operations, versus Θ(n·(n+m)) for
//! recomputation; E10 reports both.

use crate::bounded::{BoundednessReport, UpdateRecord};
use pitract_pram::matrix::BitMatrix;

/// Incrementally maintained reflexive transitive closure.
#[derive(Debug, Clone)]
pub struct IncrementalClosure {
    n: usize,
    closure: BitMatrix,
    report: BoundednessReport,
}

impl IncrementalClosure {
    /// Start from the edgeless graph on `n` nodes (closure = identity).
    pub fn new(n: usize) -> Self {
        IncrementalClosure {
            n,
            closure: BitMatrix::identity(n),
            report: BoundednessReport::new(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Is the maintained graph empty of nodes?
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// O(1) maintained query: is `t` reachable from `s` (reflexively)?
    pub fn reachable(&self, s: usize, t: usize) -> bool {
        self.closure.reachable(s, t)
    }

    /// Insert edge `(u, v)` and restore closure. Returns |ΔO| (new pairs).
    pub fn insert_edge(&mut self, u: usize, v: usize) -> u64 {
        assert!(u < self.n && v < self.n, "edge ({u},{v}) out of range");
        if self.closure.reachable(u, v) {
            // Already implied: O(1).
            self.report.push(UpdateRecord {
                delta_input: 1,
                delta_output: 0,
                work: 1,
            });
            return 0;
        }
        let before = self.closure.count_ones();
        // Ancestors of u are rows x with closure[x][u] = 1 (u included,
        // reflexively). OR v's row into each.
        let v_row: Vec<(usize, bool)> = (0..self.n)
            .map(|y| (y, self.closure.reachable(v, y)))
            .collect();
        let mut work = self.n as u64; // the row snapshot
        for x in 0..self.n {
            work += 1;
            if self.closure.reachable(x, u) {
                for &(y, set) in &v_row {
                    if set {
                        self.closure.set(x, y, true);
                    }
                }
                work += self.n as u64 / 64 + 1;
            }
        }
        let delta = self.closure.count_ones() - before;
        self.report.push(UpdateRecord {
            delta_input: 1,
            delta_output: delta,
            work,
        });
        delta
    }

    /// The |CHANGED| accounting for the run.
    pub fn report(&self) -> &BoundednessReport {
        &self.report
    }

    /// The maintained matrix (for cross-checks).
    pub fn matrix(&self) -> &BitMatrix {
        &self.closure
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitract_pram::matrix::closure_by_dfs;

    #[test]
    fn matches_batch_closure_on_random_streams() {
        let mut state = 0x1122_3344u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n = 40;
        let mut inc = IncrementalClosure::new(n);
        let mut edges = Vec::new();
        for step in 0..200 {
            let u = (rnd() as usize) % n;
            let v = (rnd() as usize) % n;
            inc.insert_edge(u, v);
            edges.push((u, v));
            if step % 20 == 0 {
                let batch = closure_by_dfs(n, &edges);
                assert_eq!(*inc.matrix(), batch, "step {step}");
            }
        }
        let batch = closure_by_dfs(n, &edges);
        assert_eq!(*inc.matrix(), batch);
    }

    #[test]
    fn implied_edges_cost_constant() {
        let mut inc = IncrementalClosure::new(100);
        inc.insert_edge(0, 1);
        inc.insert_edge(1, 2);
        // (0,2) is already implied.
        assert_eq!(inc.insert_edge(0, 2), 0);
        let last = *inc.report().records().last().unwrap();
        assert_eq!(last.work, 1);
    }

    #[test]
    fn delta_output_counts_new_pairs() {
        let mut inc = IncrementalClosure::new(4);
        // 0→1: new pairs: (0,1) only.
        assert_eq!(inc.insert_edge(0, 1), 1);
        // 2→3: (2,3).
        assert_eq!(inc.insert_edge(2, 3), 1);
        // 1→2: (1,2),(1,3),(0,2),(0,3).
        assert_eq!(inc.insert_edge(1, 2), 4);
    }

    #[test]
    fn queries_stay_constant_time_and_correct() {
        let n = 64;
        let mut inc = IncrementalClosure::new(n);
        for i in 0..n - 1 {
            inc.insert_edge(i, i + 1);
        }
        assert!(inc.reachable(0, n - 1));
        assert!(!inc.reachable(n - 1, 0));
        assert!(inc.reachable(5, 5));
    }

    #[test]
    fn cycle_closes_completely() {
        let n = 10;
        let mut inc = IncrementalClosure::new(n);
        for i in 0..n {
            inc.insert_edge(i, (i + 1) % n);
        }
        for s in 0..n {
            for t in 0..n {
                assert!(inc.reachable(s, t), "({s},{t})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_panics() {
        IncrementalClosure::new(2).insert_edge(0, 5);
    }
}
