//! Incremental single-source reachability under edge insertions.
//!
//! The paper's incremental strategy: compute `Q(D)` once (preprocessing),
//! then on each ΔD compute ΔO instead of recomputing. For single-source
//! reachability with **insertions only**, the textbook incremental
//! algorithm is bounded in the amortized sense: when edge `(u, v)` arrives
//! with `u` reachable and `v` not, a traversal from `v` discovers exactly
//! the newly reachable region — and every node enters that region at most
//! once over the whole run.

use crate::bounded::{BoundednessReport, UpdateRecord};

/// Maintains the set of nodes reachable from a fixed source while edges
/// are inserted.
#[derive(Debug, Clone)]
pub struct IncrementalReach {
    source: usize,
    adj: Vec<Vec<usize>>,
    reachable: Vec<bool>,
    reachable_count: usize,
    report: BoundednessReport,
}

impl IncrementalReach {
    /// Start with `n` nodes, no edges, and the source trivially reachable.
    pub fn new(n: usize, source: usize) -> Self {
        assert!(source < n, "source {source} out of range for n={n}");
        let mut reachable = vec![false; n];
        reachable[source] = true;
        IncrementalReach {
            source,
            adj: vec![Vec::new(); n],
            reachable,
            reachable_count: 1,
            report: BoundednessReport::new(),
        }
    }

    /// The fixed source.
    pub fn source(&self) -> usize {
        self.source
    }

    /// Is `v` currently reachable from the source? O(1) — the maintained
    /// query answer.
    pub fn is_reachable(&self, v: usize) -> bool {
        self.reachable[v]
    }

    /// How many nodes are currently reachable?
    pub fn reachable_count(&self) -> usize {
        self.reachable_count
    }

    /// Insert a directed edge and repair the reachable set. Returns the
    /// number of newly reachable nodes (|ΔO|).
    pub fn insert_edge(&mut self, u: usize, v: usize) -> usize {
        let n = self.adj.len();
        assert!(u < n && v < n, "edge ({u},{v}) out of range");
        self.adj[u].push(v);
        let mut work = 1u64; // the adjacency append

        let mut newly = 0usize;
        if self.reachable[u] && !self.reachable[v] {
            // Traverse only the newly reachable region.
            let mut stack = vec![v];
            self.reachable[v] = true;
            while let Some(x) = stack.pop() {
                newly += 1;
                work += 1;
                for &y in &self.adj[x] {
                    work += 1;
                    if !self.reachable[y] {
                        self.reachable[y] = true;
                        stack.push(y);
                    }
                }
            }
            self.reachable_count += newly;
        }
        self.report.push(UpdateRecord {
            delta_input: 1,
            delta_output: newly as u64,
            work,
        });
        newly
    }

    /// The |CHANGED| accounting for the whole run so far.
    pub fn report(&self) -> &BoundednessReport {
        &self.report
    }

    /// Reference recomputation from scratch (the baseline E10 compares
    /// against): full BFS cost every time.
    pub fn recompute_cost(&self) -> u64 {
        // One BFS touches every reachable node and scanned edge.
        let mut cost = 0u64;
        let mut seen = vec![false; self.adj.len()];
        let mut stack = vec![self.source];
        seen[self.source] = true;
        while let Some(x) = stack.pop() {
            cost += 1;
            for &y in &self.adj[x] {
                cost += 1;
                if !seen[y] {
                    seen[y] = true;
                    stack.push(y);
                }
            }
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reachability_tracks_insertions() {
        let mut r = IncrementalReach::new(5, 0);
        assert!(r.is_reachable(0));
        assert!(!r.is_reachable(1));

        assert_eq!(r.insert_edge(0, 1), 1);
        assert!(r.is_reachable(1));

        // Edge between unreachable nodes changes nothing yet…
        assert_eq!(r.insert_edge(3, 4), 0);
        assert!(!r.is_reachable(4));

        // …until a bridge makes the whole pocket reachable at once.
        assert_eq!(r.insert_edge(1, 3), 2);
        assert!(r.is_reachable(3));
        assert!(r.is_reachable(4));
        assert_eq!(r.reachable_count(), 4);
    }

    #[test]
    fn duplicate_and_backward_edges_cost_little() {
        let mut r = IncrementalReach::new(4, 0);
        r.insert_edge(0, 1);
        r.insert_edge(0, 1); // duplicate: |ΔO| = 0
        r.insert_edge(1, 0); // back edge into already-reachable
        let last = *r.report().records().last().unwrap();
        assert_eq!(last.delta_output, 0);
        assert!(last.work <= 2);
    }

    #[test]
    fn matches_from_scratch_bfs_on_random_streams() {
        let mut state = 0xDEAD_BEEFu64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n = 60;
        let mut r = IncrementalReach::new(n, 0);
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for _ in 0..300 {
            let u = (rnd() as usize) % n;
            let v = (rnd() as usize) % n;
            r.insert_edge(u, v);
            edges.push((u, v));
            // Reference BFS over the accumulated edge set.
            let mut adj = vec![Vec::new(); n];
            for &(a, b) in &edges {
                adj[a].push(b);
            }
            let mut seen = vec![false; n];
            let mut stack = vec![0usize];
            seen[0] = true;
            while let Some(x) = stack.pop() {
                for &y in &adj[x] {
                    if !seen[y] {
                        seen[y] = true;
                        stack.push(y);
                    }
                }
            }
            for (v, &expected) in seen.iter().enumerate() {
                assert_eq!(r.is_reachable(v), expected, "node {v}");
            }
        }
    }

    #[test]
    fn run_is_amortized_bounded() {
        // Long insertion stream on a growing path: each node becomes
        // reachable exactly once; total work must track total |CHANGED|.
        let n = 2000;
        let mut r = IncrementalReach::new(n, 0);
        for i in 0..n - 1 {
            r.insert_edge(i, i + 1);
        }
        assert!(r.report().is_amortized_bounded(4.0));
        assert_eq!(r.reachable_count(), n);
    }

    #[test]
    fn incremental_beats_recompute_on_no_op_updates() {
        let n = 5000;
        let mut r = IncrementalReach::new(n, 0);
        for i in 0..n - 1 {
            r.insert_edge(i, i + 1);
        }
        // A duplicate edge: the incremental cost is O(1); recompute is Θ(n).
        r.insert_edge(100, 101);
        let last = *r.report().records().last().unwrap();
        assert!(last.work <= 2);
        assert!(r.recompute_cost() >= n as u64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_panics() {
        IncrementalReach::new(3, 0).insert_edge(0, 9);
    }

    #[test]
    #[should_panic(expected = "source 9 out of range")]
    fn bad_source_panics() {
        IncrementalReach::new(3, 9);
    }
}
