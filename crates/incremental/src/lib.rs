//! # pitract-incremental — bounded incremental computation
//!
//! Section 4(7) of the paper (following Ramalingam & Reps \[35\]): an
//! incremental algorithm should be measured against
//! `|CHANGED| = |ΔD| + |ΔO|` — the size of the input change plus the size
//! of the output change it *inherently* causes — not against |D|. An
//! algorithm is **bounded** if its cost is a function of |CHANGED| alone.
//! The paper uses incremental evaluation both as a query-answering strategy
//! (compute `Q(D)` once, then maintain it) and as *incremental
//! preprocessing* (maintain `Π(D)` under ΔD instead of re-preprocessing).
//!
//! * [`bounded`] — the accounting layer: per-update `(|ΔD|, |ΔO|, work)`
//!   records and boundedness verdicts, consumed by tests and E10.
//! * [`reach`] — incremental single-source reachability under edge
//!   insertions: amortized O(1) per newly-reached node, vs. recompute.
//! * [`closure`] — Italiano-style incremental transitive closure: one
//!   row-OR sweep per inserted edge, vs. full recomputation.
//! * [`index_maint`] — incremental *preprocessing* maintenance: keeping a
//!   sorted index current under inserts three ways (full re-sort, sorted
//!   vector shifting, B⁺-tree), showing why maintainable structures matter.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bounded;
pub mod closure;
pub mod index_maint;
pub mod reach;
pub mod views;
