//! Incremental *preprocessing* maintenance — the paper's Section 1
//! justification (3): "we assume incremental preprocessing of D ⊕ ΔD …
//! by computing ΔD′ such that the outcome of preprocessing D ⊕ ΔD is the
//! same as D′ ⊕ ΔD′."
//!
//! Concretely for the sorted-index preprocessing of Section 4(2), three
//! maintenance strategies with very different ΔD′ costs:
//!
//! | strategy | per-insert cost |
//! |---|---|
//! | [`ResortMaintainer`] — redo Π from scratch | O(n log n) |
//! | [`ShiftMaintainer`] — insert into a sorted vector | O(n) shift |
//! | [`TreeMaintainer`] — B⁺-tree | O(log n) |
//!
//! All three expose the same O(log n) membership query and are verified to
//! agree; E10 prints their measured maintenance curves.

use pitract_index::bptree::BPlusTree;
use pitract_index::sorted::SortedIndex;

/// Common interface: maintain a searchable set of keys under inserts.
pub trait IndexMaintainer {
    /// Insert one key; returns abstract work performed (elements touched).
    fn insert(&mut self, key: u64) -> u64;

    /// O(log n) membership query.
    fn contains(&self, key: &u64) -> bool;

    /// Number of keys stored.
    fn len(&self) -> usize;

    /// Is the index empty?
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Strategy name for experiment tables.
    fn name(&self) -> &'static str;
}

/// Re-run the full preprocessing (sort) after every insert.
#[derive(Debug, Default)]
pub struct ResortMaintainer {
    keys: Vec<u64>,
    index: Option<SortedIndex<u64>>,
}

impl ResortMaintainer {
    /// Empty maintainer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl IndexMaintainer for ResortMaintainer {
    fn insert(&mut self, key: u64) -> u64 {
        self.keys.push(key);
        self.index = Some(SortedIndex::build(&self.keys));
        // Sorting cost model: n log n comparisons.
        let n = self.keys.len().max(2) as f64;
        (n * n.log2()) as u64
    }

    fn contains(&self, key: &u64) -> bool {
        self.index.as_ref().is_some_and(|i| i.contains(key))
    }

    fn len(&self) -> usize {
        self.keys.len()
    }

    fn name(&self) -> &'static str {
        "resort"
    }
}

/// Keep a sorted vector; each insert shifts the tail.
#[derive(Debug, Default)]
pub struct ShiftMaintainer {
    keys: Vec<u64>,
}

impl ShiftMaintainer {
    /// Empty maintainer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl IndexMaintainer for ShiftMaintainer {
    fn insert(&mut self, key: u64) -> u64 {
        let pos = self.keys.partition_point(|k| k < &key);
        let shifted = self.keys.len() - pos;
        self.keys.insert(pos, key);
        // log n search + tail shift.
        (self.keys.len().max(2) as f64).log2() as u64 + shifted as u64
    }

    fn contains(&self, key: &u64) -> bool {
        self.keys.binary_search(key).is_ok()
    }

    fn len(&self) -> usize {
        self.keys.len()
    }

    fn name(&self) -> &'static str {
        "sorted-vec shift"
    }
}

/// B⁺-tree maintenance: the bounded strategy.
#[derive(Debug, Default)]
pub struct TreeMaintainer {
    tree: BPlusTree<u64, ()>,
}

impl TreeMaintainer {
    /// Empty maintainer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl IndexMaintainer for TreeMaintainer {
    fn insert(&mut self, key: u64) -> u64 {
        self.tree.insert(key, ());
        // Descent + possible splits: O(log n).
        2 * ((self.tree.len().max(2) as f64).log2().ceil() as u64)
    }

    fn contains(&self, key: &u64) -> bool {
        self.tree.contains_key(key)
    }

    fn len(&self) -> usize {
        self.tree.len()
    }

    fn name(&self) -> &'static str {
        "b+tree"
    }
}

/// Drive all three maintainers over the same key stream; returns per-
/// strategy total work. Used by E10 and by the agreement tests.
pub fn run_stream(keys: &[u64]) -> Vec<(&'static str, u64)> {
    let mut maintainers: Vec<Box<dyn IndexMaintainer>> = vec![
        Box::new(ResortMaintainer::new()),
        Box::new(ShiftMaintainer::new()),
        Box::new(TreeMaintainer::new()),
    ];
    let mut totals = vec![0u64; maintainers.len()];
    for &k in keys {
        for (m, t) in maintainers.iter_mut().zip(totals.iter_mut()) {
            *t += m.insert(k);
        }
    }
    maintainers
        .iter()
        .zip(totals)
        .map(|(m, t)| (m.name(), t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(n: u64) -> Vec<u64> {
        (0..n).map(|i| (i * 2654435761) % (2 * n)).collect()
    }

    #[test]
    fn all_strategies_agree_on_membership() {
        let keys = stream(300);
        let mut a = ResortMaintainer::new();
        let mut b = ShiftMaintainer::new();
        let mut c = TreeMaintainer::new();
        for &k in &keys {
            a.insert(k);
            b.insert(k);
            c.insert(k);
        }
        for probe in 0..700u64 {
            let expect = keys.contains(&probe);
            assert_eq!(a.contains(&probe), expect, "resort {probe}");
            assert_eq!(b.contains(&probe), expect, "shift {probe}");
            assert_eq!(c.contains(&probe), expect, "tree {probe}");
        }
    }

    #[test]
    fn tree_maintenance_is_cheapest_at_scale() {
        let totals = run_stream(&stream(2000));
        let get = |name: &str| {
            totals
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, t)| *t)
                .expect("strategy present")
        };
        let resort = get("resort");
        let shift = get("sorted-vec shift");
        let tree = get("b+tree");
        assert!(tree < shift, "tree {tree} should beat shift {shift}");
        assert!(shift < resort, "shift {shift} should beat resort {resort}");
        // The gap should be orders of magnitude, not noise.
        assert!(resort / tree.max(1) > 50, "resort {resort} vs tree {tree}");
    }

    #[test]
    fn lengths_track_inserts_with_duplicates() {
        // TreeMaintainer deduplicates (unique-key tree); the vector-based
        // maintainers keep duplicates. Both behaviours answer the Boolean
        // membership class identically; lengths may differ.
        let mut t = TreeMaintainer::new();
        let mut s = ShiftMaintainer::new();
        for k in [5u64, 5, 5] {
            t.insert(k);
            s.insert(k);
        }
        assert_eq!(t.len(), 1);
        assert_eq!(s.len(), 3);
        assert!(t.contains(&5) && s.contains(&5));
    }

    #[test]
    fn empty_maintainers() {
        let t = TreeMaintainer::new();
        assert!(t.is_empty());
        assert!(!t.contains(&1));
        let r = ResortMaintainer::new();
        assert!(!r.contains(&1));
    }
}
