//! The lint rules. Rules are data over the token stream: each one
//! implements [`Rule`], scopes itself to the crates/targets it governs,
//! and emits [`Finding`]s; [`run_rules`] applies the `lint:allow`
//! escape hatch and assembles the [`LintReport`].

use crate::lexer::{TokKind, Token};
use crate::report::{Finding, LintReport};
use crate::source::{FileKind, SourceFile};

/// The crates whose library code is a *serving path*: a panic there
/// rides a pool worker or a caller's write and voids the serving SLO.
pub const SERVING_CRATES: &[&str] = &[
    "pitract-engine",
    "pitract-wal",
    "pitract-store",
    "pitract-obs",
];

/// One token-level lint rule.
pub trait Rule {
    /// The rule's name — what `lint:allow(<name>)` must say to excuse a
    /// finding.
    fn name(&self) -> &'static str;
    /// Scan one file, pushing findings (allows are applied later by
    /// [`run_rules`]).
    fn check(&self, file: &SourceFile, findings: &mut Vec<Finding>);
}

/// The deny-by-default rule set the `pitract-lint` binary runs.
pub fn default_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoUnwrapInServing),
        Box::new(NoFsyncUnderLock),
        Box::new(NoBareThreadSpawn),
        Box::new(BenchArtifactPath),
        Box::new(NoBlockingSyscallsOnPoolWorkers),
    ]
}

/// Run `rules` over `files`, apply `lint:allow` suppressions, and
/// assemble the report (findings in scan order).
pub fn run_rules(files: &[SourceFile], rules: &[Box<dyn Rule>]) -> LintReport {
    let mut report = LintReport {
        files_scanned: files.len(),
        ..LintReport::default()
    };
    for file in files {
        for rule in rules {
            let mut found = Vec::new();
            rule.check(file, &mut found);
            for finding in found {
                if file.allowed(finding.rule, finding.line) {
                    report.suppressed += 1;
                } else {
                    report.findings.push(finding);
                }
            }
        }
    }
    report
}

/// Is `tokens[i]` an identifier that is being *called as a method*
/// (`.name(`)?
fn is_method_call(tokens: &[Token], i: usize, name: &str) -> bool {
    tokens[i].is_ident(name)
        && i > 0
        && tokens[i - 1].is_punct('.')
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
}

/// Is `tokens[i]` the identifier head of a macro invocation (`name!`)?
fn is_macro_call(tokens: &[Token], i: usize, name: &str) -> bool {
    tokens[i].is_ident(name) && tokens.get(i + 1).is_some_and(|t| t.is_punct('!'))
}

/// `no-unwrap-in-serving`: no `unwrap`/`expect`/`panic!`/`unreachable!`
/// (or `dbg!` debris) in non-test library code of the serving crates —
/// a panic on a serving path either aborts the process or burns a pool
/// worker's batch; errors there must be typed.
pub struct NoUnwrapInServing;

impl Rule for NoUnwrapInServing {
    fn name(&self) -> &'static str {
        "no-unwrap-in-serving"
    }

    fn check(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        if file.kind != FileKind::Lib || !SERVING_CRATES.contains(&file.crate_name.as_str()) {
            return;
        }
        for i in 0..file.tokens.len() {
            if file.test_mask[i] {
                continue;
            }
            let what = if is_method_call(&file.tokens, i, "unwrap") {
                Some("`.unwrap()`")
            } else if is_method_call(&file.tokens, i, "expect") {
                Some("`.expect(…)`")
            } else if is_macro_call(&file.tokens, i, "panic") {
                Some("`panic!`")
            } else if is_macro_call(&file.tokens, i, "unreachable") {
                Some("`unreachable!`")
            } else if is_macro_call(&file.tokens, i, "dbg") {
                Some("`dbg!`")
            } else {
                None
            };
            if let Some(what) = what {
                findings.push(Finding {
                    rule: self.name(),
                    path: file.rel_path.clone(),
                    line: file.tokens[i].line,
                    message: format!(
                        "{what} on a serving path in `{}` — return a typed error instead",
                        file.crate_name
                    ),
                });
            }
        }
    }
}

/// `no-fsync-under-lock`: no `sync_all`/`sync_data` (or the WAL's
/// `timed_sync` wrapper) lexically inside a region holding the WAL
/// writer-state guard. A disk flush under that mutex serializes every
/// concurrent stager behind the disk — the exact convoy the two-phase
/// stage/commit design exists to prevent.
///
/// The detection is lexical: a `let` whose initializer (at its own
/// brace depth) contains a writer-state guard marker (`self.lock()` or
/// `….state.lock()`) opens a guard region that closes at the end of the
/// enclosing block or at an explicit `drop(<binding>)`; a guard marker
/// used as a statement temporary holds only to the end of its
/// statement. The rotation turnstile (`….rotation.lock()`) is
/// deliberately *not* a marker — it is taken strictly before the state
/// lock and never wraps a flush region by itself.
pub struct NoFsyncUnderLock;

/// Contiguous token-text sequences that mean "a writer-state guard was
/// just produced".
const GUARD_MARKERS: &[&[&str]] = &[&["self", ".", "lock", "("], &["state", ".", "lock", "("]];

/// Method names that hit the disk.
const SYNC_CALLS: &[&str] = &["sync_all", "sync_data", "timed_sync"];

/// Does the marker sequence `pat` start at `tokens[i]`?
fn marker_at(tokens: &[Token], i: usize, pat: &[&str]) -> bool {
    pat.iter().enumerate().all(|(k, want)| {
        tokens
            .get(i + k)
            .is_some_and(|t| t.kind != TokKind::Str && t.text == *want)
    })
}

/// Does any guard marker start at `tokens[i]`?
fn any_marker_at(tokens: &[Token], i: usize) -> bool {
    GUARD_MARKERS.iter().any(|pat| marker_at(tokens, i, pat))
}

impl Rule for NoFsyncUnderLock {
    fn name(&self) -> &'static str {
        "no-fsync-under-lock"
    }

    fn check(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        if file.kind != FileKind::Lib || file.crate_name != "pitract-wal" {
            return;
        }
        let tokens = &file.tokens;
        // Open guard regions: (binding name or "" for patterns, brace
        // depth of the `let` statement).
        let mut regions: Vec<(String, usize)> = Vec::new();
        let mut depth = 0usize;
        for i in 0..tokens.len() {
            if file.test_mask[i] {
                continue;
            }
            let t = &tokens[i];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                // A region opened by a `let` at depth d dies with its
                // enclosing block.
                regions.retain(|&(_, d)| d <= depth);
            } else if t.is_ident("let") {
                if let Some(region) = guard_let(tokens, i, depth) {
                    regions.push(region);
                }
            } else if t.is_ident("drop")
                && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
                && tokens.get(i + 3).is_some_and(|t| t.is_punct(')'))
            {
                if let Some(arg) = tokens.get(i + 2) {
                    if let Some(at) = regions
                        .iter()
                        .rposition(|(b, _)| !b.is_empty() && *b == arg.text)
                    {
                        regions.remove(at);
                    }
                }
            } else if SYNC_CALLS.iter().any(|s| is_method_call(tokens, i, s)) {
                let under_let_guard = !regions.is_empty();
                let under_stmt_guard = statement_has_marker_before(tokens, i);
                if under_let_guard || under_stmt_guard {
                    findings.push(Finding {
                        rule: self.name(),
                        path: file.rel_path.clone(),
                        line: t.line,
                        message: format!(
                            "`{}` while a writer-state guard is held — flush via a cloned \
                             handle outside the lock",
                            t.text
                        ),
                    });
                }
            }
        }
    }
}

/// If the `let` at `tokens[i]` binds a writer-state guard, return the
/// region `(binding, depth)`. The initializer is scanned to its `;`,
/// and markers only count at the initializer's own brace depth — a
/// marker inside a nested `{ … }` block belongs to that block's scope
/// (the flush-via-cloned-handle pattern) and must not leak out.
fn guard_let(tokens: &[Token], i: usize, depth: usize) -> Option<(String, usize)> {
    let mut j = i + 1;
    if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let binding = match tokens.get(j) {
        Some(t) if t.kind == TokKind::Ident => t.text.clone(),
        _ => String::new(), // tuple/struct pattern: track depth only
    };
    let mut rel = 0usize;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('{') {
            rel += 1;
        } else if t.is_punct('}') {
            if rel == 0 {
                return None; // ill-formed; bail
            }
            rel -= 1;
        } else if t.is_punct(';') && rel == 0 {
            return None;
        } else if rel == 0 && any_marker_at(tokens, j) {
            return Some((binding, depth));
        }
        j += 1;
    }
    None
}

/// Does the statement containing `tokens[i]` start with a guard marker
/// before `i` (a statement-temporary guard like
/// `self.lock().file.sync_all()`)?
fn statement_has_marker_before(tokens: &[Token], i: usize) -> bool {
    let mut start = i;
    while start > 0 {
        let t = &tokens[start - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        start -= 1;
    }
    (start..i).any(|j| any_marker_at(tokens, j))
}

/// `no-bare-thread-spawn`: long-lived workers go through `WorkerPool`
/// (named threads, admission, panic containment, drain-on-drop) — not
/// `thread::spawn` or a raw `thread::Builder`. Scoped fan-out
/// (`thread::scope` + `scope.spawn`) is fine: scoped threads cannot
/// leak past their batch.
pub struct NoBareThreadSpawn;

impl Rule for NoBareThreadSpawn {
    fn name(&self) -> &'static str {
        "no-bare-thread-spawn"
    }

    fn check(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        if file.kind != FileKind::Lib {
            return;
        }
        let tokens = &file.tokens;
        for i in 0..tokens.len() {
            if file.test_mask[i] || !tokens[i].is_ident("spawn") {
                continue;
            }
            if tokens.get(i + 1).is_none_or(|t| !t.is_punct('(')) {
                continue;
            }
            // `thread::spawn(…)`.
            let path_spawn = i >= 3
                && tokens[i - 1].is_punct(':')
                && tokens[i - 2].is_punct(':')
                && tokens[i - 3].is_ident("thread");
            // `thread::Builder::new()…spawn(…)`: a builder mentioned a
            // few tokens back in the same expression chain.
            let builder_spawn = i >= 1
                && tokens[i - 1].is_punct('.')
                && tokens[i.saturating_sub(40)..i]
                    .iter()
                    .any(|t| t.kind == TokKind::Ident && t.text == "Builder");
            if path_spawn || builder_spawn {
                findings.push(Finding {
                    rule: self.name(),
                    path: file.rel_path.clone(),
                    line: tokens[i].line,
                    message: "bare thread spawn — route workers through `WorkerPool` \
                              (or use scoped threads for per-batch fan-out)"
                        .to_string(),
                });
            }
        }
    }
}

/// `no-blocking-syscalls-on-pool-workers`: no blocking file I/O inside
/// a `fn eval_*` body in the serving crates. The `eval_bool`/`eval_rows`
/// methods are exactly what `WorkerPool` workers execute per shard per
/// batch; one disk touch there multiplies by every shard of every
/// admitted batch and stalls a worker the admission gate thinks is
/// compute-bound. Durability belongs on the write path (the WAL), never
/// on the batch-evaluation path.
///
/// The detection is lexical: a `fn` whose name starts with `eval_` opens
/// a region at its body's brace; inside any such region the rule flags
/// flush calls (`sync_all`/`sync_data`/`timed_sync`), file opens
/// (`File::open`/`File::create`/`OpenOptions::new`), and `fs::…` path
/// calls.
pub struct NoBlockingSyscallsOnPoolWorkers;

/// Method calls that block a pool worker on the disk.
const BLOCKING_METHOD_CALLS: &[&str] = &["sync_all", "sync_data", "timed_sync"];

/// `Type::assoc(` heads that open or hit a file.
const BLOCKING_PATH_CALLS: &[(&str, &str)] =
    &[("File", "open"), ("File", "create"), ("OpenOptions", "new")];

/// Is `tokens[i]` the identifier `head` of a `head::assoc(` path call?
fn is_path_call(tokens: &[Token], i: usize, head: &str, assoc: Option<&str>) -> bool {
    tokens[i].is_ident(head)
        && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 3).is_some_and(|t| match assoc {
            Some(name) => t.is_ident(name),
            None => t.kind == TokKind::Ident,
        })
        && tokens.get(i + 4).is_some_and(|t| t.is_punct('('))
}

impl Rule for NoBlockingSyscallsOnPoolWorkers {
    fn name(&self) -> &'static str {
        "no-blocking-syscalls-on-pool-workers"
    }

    fn check(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        if file.kind != FileKind::Lib || !SERVING_CRATES.contains(&file.crate_name.as_str()) {
            return;
        }
        let tokens = &file.tokens;
        let mut depth = 0usize;
        // Brace depths at which an `eval_*` body opened.
        let mut regions: Vec<usize> = Vec::new();
        // A `fn eval_*` signature was seen; the next `{` is its body
        // (Rust signatures contain no braces), a `;` first means a
        // bodiless trait declaration.
        let mut pending = false;
        for i in 0..tokens.len() {
            let t = &tokens[i];
            if t.is_punct('{') {
                depth += 1;
                if pending {
                    regions.push(depth);
                    pending = false;
                }
                continue;
            }
            if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                regions.retain(|&d| d <= depth);
                continue;
            }
            if file.test_mask[i] {
                continue;
            }
            if t.is_punct(';') {
                pending = false;
            } else if t.is_ident("fn")
                && tokens
                    .get(i + 1)
                    .is_some_and(|t| t.kind == TokKind::Ident && t.text.starts_with("eval_"))
            {
                pending = true;
            } else if !regions.is_empty() {
                let what = if BLOCKING_METHOD_CALLS
                    .iter()
                    .any(|m| is_method_call(tokens, i, m))
                {
                    Some(format!("`.{}()`", t.text))
                } else if BLOCKING_PATH_CALLS
                    .iter()
                    .any(|&(head, assoc)| is_path_call(tokens, i, head, Some(assoc)))
                {
                    Some(format!("`{}::{}`", t.text, tokens[i + 3].text))
                } else if is_path_call(tokens, i, "fs", None) {
                    Some(format!("`fs::{}`", tokens[i + 3].text))
                } else {
                    None
                };
                if let Some(what) = what {
                    findings.push(Finding {
                        rule: self.name(),
                        path: file.rel_path.clone(),
                        line: t.line,
                        message: format!(
                            "{what} inside `fn eval_…` in `{}` — pool workers must stay \
                             syscall-free; stage I/O on the write path, not per batch",
                            file.crate_name
                        ),
                    });
                }
            }
        }
    }
}

/// `bench-artifact-path`: benchmark artifacts (`BENCH_*.json`) live in
/// the repo root, where CI cats and uploads them. Writing them under
/// `target/` hides them from CI — the PR 6 regression this rule pins.
pub struct BenchArtifactPath;

impl Rule for BenchArtifactPath {
    fn name(&self) -> &'static str {
        "bench-artifact-path"
    }

    fn check(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        // Built from pieces so this rule never fires on its own source.
        let needle = concat!("target", "/", "BENCH_");
        for t in &file.tokens {
            if t.kind == TokKind::Str && t.text.contains(needle) {
                findings.push(Finding {
                    rule: self.name(),
                    path: file.rel_path.clone(),
                    line: t.line,
                    message: format!(
                        "bench artifact path under `{}` — BENCH_*.json belongs in the \
                         repo root so CI uploads it",
                        concat!("target", "/")
                    ),
                });
            }
        }
    }
}
