//! Workspace source discovery: find every first-party `.rs` file,
//! attribute it to its package, and lex it into [`SourceFile`]s.

use crate::source::{FileKind, SourceFile};
use std::path::{Path, PathBuf};

/// Locate the workspace root: walk up from `start` until a `Cargo.toml`
/// containing a `[workspace]` table appears.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// The package `name = "…"` from a `Cargo.toml`.
fn package_name(manifest: &Path) -> Option<String> {
    let text = std::fs::read_to_string(manifest).ok()?;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                let v = rest.trim().trim_matches('"');
                return Some(v.to_string());
            }
        }
    }
    None
}

/// Recursively collect `.rs` files under `dir` (sorted for
/// deterministic output).
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Walk one package rooted at `pkg_dir`, lexing every target tree.
fn walk_package(root: &Path, pkg_dir: &Path, out: &mut Vec<SourceFile>) {
    let Some(name) = package_name(&pkg_dir.join("Cargo.toml")) else {
        return;
    };
    for (sub, kind) in [
        ("src", FileKind::Lib),
        ("tests", FileKind::Test),
        ("benches", FileKind::Bench),
        ("examples", FileKind::Example),
    ] {
        let mut files = Vec::new();
        rs_files(&pkg_dir.join(sub), &mut files);
        for path in files {
            let Ok(src) = std::fs::read_to_string(&path) else {
                continue;
            };
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .into_owned();
            out.push(SourceFile::from_source(&name, &rel, kind, &src));
        }
    }
}

/// Lex every first-party source file in the workspace at `root`: the
/// root facade package plus everything under `crates/`. Vendored shims
/// (`vendor/`) and build output (`target/`) are not first-party and are
/// skipped.
pub fn walk_workspace(root: &Path) -> Vec<SourceFile> {
    let mut out = Vec::new();
    walk_package(root, root, &mut out);
    let crates = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates) {
        let mut dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs {
            if dir.join("Cargo.toml").is_file() {
                walk_package(root, &dir, &mut out);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace_and_attributes_crates() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("runs inside the workspace");
        assert!(root.join("crates").is_dir());
        let files = walk_workspace(&root);
        assert!(
            files.len() > 50,
            "the workspace has many source files, got {}",
            files.len()
        );
        assert!(files
            .iter()
            .any(|f| f.crate_name == "pitract-engine" && f.rel_path.ends_with("live.rs")));
        assert!(
            files.iter().all(|f| !f.rel_path.starts_with("vendor")),
            "vendored shims are not first-party"
        );
        // The facade package's root tests are attributed to it.
        assert!(files
            .iter()
            .any(|f| f.crate_name == "pi-tractable" && f.kind == FileKind::Test));
    }
}
