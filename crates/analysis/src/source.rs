//! A lexed source file plus the context rules need: which crate it
//! belongs to, what kind of target it is, and which tokens are test
//! code.

use crate::lexer::{lex, Allow, Token};

/// Which compilation target a file belongs to — rules scope themselves
/// by kind (serving invariants apply to library code, not to `tests/`
/// or `benches/`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library or binary source under `src/`.
    Lib,
    /// An integration test under `tests/`.
    Test,
    /// A bench target under `benches/`.
    Bench,
    /// An example under `examples/`.
    Example,
}

/// One lexed workspace source file, ready for rules.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// The owning package's name (e.g. `pitract-engine`).
    pub crate_name: String,
    /// Workspace-relative path, for findings.
    pub rel_path: String,
    /// Which target tree the file sits in.
    pub kind: FileKind,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// `lint:allow` directives found in comments.
    pub allows: Vec<Allow>,
    /// `test_mask[i]` is true when `tokens[i]` is inside a
    /// `#[cfg(test)]` / `#[test]`-attributed item.
    pub test_mask: Vec<bool>,
}

impl SourceFile {
    /// Lex `src` and compute the test mask.
    pub fn from_source(crate_name: &str, rel_path: &str, kind: FileKind, src: &str) -> Self {
        let lexed = lex(src);
        let test_mask = test_mask(&lexed.tokens);
        SourceFile {
            crate_name: crate_name.to_string(),
            rel_path: rel_path.to_string(),
            kind,
            tokens: lexed.tokens,
            allows: lexed.allows,
            test_mask,
        }
    }

    /// Whether a finding of `rule` at `line` is excused by a
    /// `lint:allow` directive on the same line or the line above.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && (a.line == line || a.line + 1 == line))
    }
}

/// Mark every token inside an item carrying a test attribute:
/// `#[test]`, `#[cfg(test)]`, or any attribute mentioning `test`
/// (covering `#[cfg(all(test, …))]` and custom test macros). The
/// marked span runs from the attribute through the item's body — the
/// brace-balanced block after the attribute, or up to the `;` for
/// block-less items like `mod tests;`.
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        // Outer attribute `#[…]` (skip inner `#![…]`).
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let attr_start = i;
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut mentions_test = false;
            while j < tokens.len() && depth > 0 {
                if tokens[j].is_punct('[') {
                    depth += 1;
                } else if tokens[j].is_punct(']') {
                    depth -= 1;
                } else if tokens[j].is_ident("test") {
                    // `test` under a `not(…)` (as in `#[cfg(not(test))]`)
                    // marks *non*-test code — don't mask it.
                    let negated =
                        j >= 2 && tokens[j - 1].is_punct('(') && tokens[j - 2].is_ident("not");
                    if !negated {
                        mentions_test = true;
                    }
                }
                j += 1;
            }
            if mentions_test {
                let end = item_end(tokens, j);
                for m in mask.iter_mut().take(end).skip(attr_start) {
                    *m = true;
                }
                i = end;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    mask
}

/// Given the index just past an item's attributes, return the index
/// just past the item itself: through the matching `}` of its first
/// top-level brace block, or past the first `;` if none opens first.
fn item_end(tokens: &[Token], mut i: usize) -> usize {
    // Skip any further attributes stacked on the same item.
    while i < tokens.len()
        && tokens[i].is_punct('#')
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
    {
        let mut depth = 0usize;
        i += 1;
        while i < tokens.len() {
            if tokens[i].is_punct('[') {
                depth += 1;
            } else if tokens[i].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    while i < tokens.len() {
        if tokens[i].is_punct(';') {
            return i + 1;
        }
        if tokens[i].is_punct('{') {
            let mut depth = 0usize;
            while i < tokens.len() {
                if tokens[i].is_punct('{') {
                    depth += 1;
                } else if tokens[i].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                i += 1;
            }
            return tokens.len();
        }
        i += 1;
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::from_source("pitract-engine", "src/x.rs", FileKind::Lib, src)
    }

    fn masked_idents(f: &SourceFile) -> Vec<String> {
        f.tokens
            .iter()
            .zip(&f.test_mask)
            .filter(|(t, m)| **m && t.kind == crate::lexer::TokKind::Ident)
            .map(|(t, _)| t.text.clone())
            .collect()
    }

    #[test]
    fn cfg_test_mod_is_masked_to_its_closing_brace() {
        let f = file(concat!(
            "fn serve() { x.unwrap(); }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn helper() { y.unwrap(); }\n",
            "    #[test]\n",
            "    fn t() { z.unwrap(); }\n",
            "}\n",
            "fn after() { w.unwrap(); }\n",
        ));
        let masked = masked_idents(&f);
        assert!(masked.contains(&"helper".to_string()));
        assert!(masked.contains(&"z".to_string()));
        assert!(!masked.contains(&"serve".to_string()));
        assert!(!masked.contains(&"after".to_string()));
    }

    #[test]
    fn test_fn_with_stacked_attributes_is_masked() {
        let f = file(concat!(
            "#[test]\n",
            "#[should_panic]\n",
            "fn t() { boom.unwrap(); }\n",
            "fn serve() {}\n",
        ));
        let masked = masked_idents(&f);
        assert!(masked.contains(&"boom".to_string()));
        assert!(!masked.contains(&"serve".to_string()));
    }

    #[test]
    fn cfg_all_test_and_derive_attrs() {
        let f = file(concat!(
            "#[derive(Debug, Clone)]\n",
            "struct S { x: u32 }\n",
            "#[cfg(all(test, feature = \"slow\"))]\n",
            "fn gated() { g.unwrap(); }\n",
        ));
        let masked = masked_idents(&f);
        assert!(
            !masked.contains(&"S".to_string()),
            "derive is not a test attr"
        );
        assert!(masked.contains(&"g".to_string()));
    }

    #[test]
    fn allow_applies_to_its_own_line_and_the_next() {
        let f = file(concat!(
            "// lint:allow(some-rule) deliberate\n",
            "fn a() {}\n",
            "fn b() {} // lint:allow(other-rule)\n",
        ));
        assert!(f.allowed("some-rule", 1));
        assert!(f.allowed("some-rule", 2));
        assert!(!f.allowed("some-rule", 3));
        assert!(f.allowed("other-rule", 3));
        assert!(!f.allowed("missing-rule", 2));
    }
}
