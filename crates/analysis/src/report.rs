//! Machine-readable lint findings.

use pitract_obs::Json;
use std::fmt;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// What was found and why it is a violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// The outcome of one lint run: every surviving finding, plus the
/// counts that make "0 findings" meaningful (how much was scanned, how
/// much was explicitly excused).
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Findings not excused by a `lint:allow`, in path/line order.
    pub findings: Vec<Finding>,
    /// Source files scanned.
    pub files_scanned: usize,
    /// Findings suppressed by `lint:allow` directives.
    pub suppressed: usize,
}

impl LintReport {
    /// Whether the run produced no findings.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The report as JSON (the `pitract-lint --json` output).
    pub fn to_json(&self) -> Json {
        let findings: Vec<Json> = self
            .findings
            .iter()
            .map(|f| {
                Json::obj()
                    .set("rule", f.rule)
                    .set("path", f.path.as_str())
                    .set("line", u64::from(f.line))
                    .set("message", f.message.as_str())
            })
            .collect();
        Json::obj()
            .set("files_scanned", self.files_scanned as u64)
            .set("suppressed", self.suppressed as u64)
            .set("findings", findings)
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for finding in &self.findings {
            writeln!(f, "{finding}")?;
        }
        write!(
            f,
            "{} finding(s) across {} file(s) ({} suppressed by lint:allow)",
            self.findings.len(),
            self.files_scanned,
            self.suppressed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_file_line_rule_message() {
        let f = Finding {
            rule: "no-unwrap-in-serving",
            path: "crates/engine/src/live.rs".into(),
            line: 42,
            message: "`.unwrap()` on a serving path".into(),
        };
        assert_eq!(
            f.to_string(),
            "crates/engine/src/live.rs:42: [no-unwrap-in-serving] `.unwrap()` on a serving path"
        );
    }

    #[test]
    fn json_shape_has_counts_and_findings() {
        let report = LintReport {
            findings: vec![Finding {
                rule: "bench-artifact-path",
                path: "crates/bench/src/x.rs".into(),
                line: 7,
                message: "m".into(),
            }],
            files_scanned: 3,
            suppressed: 2,
        };
        let text = report.to_json().render();
        assert!(text.contains("\"files_scanned\":3"));
        assert!(text.contains("\"suppressed\":2"));
        assert!(text.contains("\"rule\":\"bench-artifact-path\""));
        assert!(text.contains("\"line\":7"));
    }
}
