//! # pitract-analysis — invariant lints for the serving stack
//!
//! The serving tiers rest on invariants that used to exist only as
//! comments: panic-free serving paths, no disk flush under the WAL
//! writer-state lock, workers routed through the pool, bench artifacts
//! in the repo root. This crate makes them mechanical, in the
//! workspace's zero-dependency style:
//!
//! * [`lexer`] — a hand-rolled token-level Rust lexer (strings, raw
//!   strings, chars vs lifetimes, nested comments) that also collects
//!   the `// lint:allow(<rule>)` escape hatch.
//! * [`source`] — lexed files with crate/target attribution and a
//!   test-code mask (`#[cfg(test)]` / `#[test]` items are exempt from
//!   serving rules).
//! * [`rules`] — the deny-by-default [`Rule`](rules::Rule) set:
//!   `no-unwrap-in-serving`, `no-fsync-under-lock`,
//!   `no-bare-thread-spawn`, `bench-artifact-path`.
//! * [`report`] — machine-readable findings with `file:line`,
//!   JSON-exportable via `pitract-obs`.
//! * [`walk`] — first-party source discovery over the workspace.
//!
//! The `pitract-lint` binary wires these together and exits nonzero on
//! any finding; CI runs it as the `lint` job. The runtime half of the
//! same effort — rank-checked locks — lives in
//! `pitract_core::lockdep`.
//!
//! ```
//! use pitract_analysis::source::{FileKind, SourceFile};
//! use pitract_analysis::rules::{default_rules, run_rules};
//!
//! let seeded = SourceFile::from_source(
//!     "pitract-engine",
//!     "src/demo.rs",
//!     FileKind::Lib,
//!     "fn serve(x: Option<u32>) -> u32 { x.unwrap() }",
//! );
//! let report = run_rules(&[seeded], &default_rules());
//! assert_eq!(report.findings.len(), 1);
//! assert_eq!(report.findings[0].rule, "no-unwrap-in-serving");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;
pub mod walk;

pub use report::{Finding, LintReport};
pub use rules::{default_rules, run_rules, Rule};

use std::path::Path;

/// Lint the workspace at `root` with the default rule set.
pub fn lint_workspace(root: &Path) -> LintReport {
    let files = walk::walk_workspace(root);
    run_rules(&files, &default_rules())
}
