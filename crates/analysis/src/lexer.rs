//! A hand-rolled, token-level Rust lexer — just enough Rust to lint
//! with, in the same zero-dependency spirit as the store codec.
//!
//! The lexer understands exactly what a *lexical* linter needs and
//! nothing more: identifiers, punctuation, string/char/byte literals
//! (including raw strings, so a `"` inside `r#"…"#` cannot desync the
//! stream), numeric literals, lifetimes, and comments. Comments are not
//! emitted as tokens, but line comments are scanned for the
//! `lint:allow(<rule>)` escape hatch, which is returned alongside the
//! token stream.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`unwrap`, `let`, `self`, …).
    Ident,
    /// A single punctuation character (`.`, `(`, `{`, `!`, …).
    Punct,
    /// A string or byte-string literal; `text` holds the *contents*
    /// (delimiters and raw-string hashes stripped, escapes left as-is).
    Str,
    /// A char or byte-char literal (contents, delimiters stripped).
    Char,
    /// A numeric literal.
    Num,
    /// A lifetime (`'a`); `text` holds the identifier without the tick.
    Lifetime,
}

/// One lexeme with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The lexeme kind.
    pub kind: TokKind,
    /// The lexeme text (see [`TokKind`] for what is included).
    pub text: String,
    /// 1-based line the lexeme starts on.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// One `lint:allow(<rule>)` directive found in a line comment. A
/// directive suppresses findings of `rule` on its own line and on the
/// line immediately after it (so it can sit above the statement it
/// excuses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule name inside the parentheses.
    pub rule: String,
    /// 1-based line the directive appears on.
    pub line: u32,
}

/// The result of lexing one file: the token stream plus every
/// `lint:allow` directive seen in comments.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// Tokens in source order. Comments and whitespace are dropped.
    pub tokens: Vec<Token>,
    /// `lint:allow` directives in source order.
    pub allows: Vec<Allow>,
}

/// Lex `src` into tokens and allow-directives. The lexer never fails:
/// unterminated literals simply run to end-of-file, which is fine for a
/// linter that only ever sees code the compiler already accepted.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                scan_allows(&src[start..i], line, &mut out.allows);
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Block comment, nesting like Rust's.
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => lex_string(b, &mut i, &mut line, &mut out.tokens),
            b'r' | b'b' if starts_raw_or_byte_literal(b, i) => {
                lex_raw_or_byte(b, &mut i, &mut line, &mut out.tokens)
            }
            b'\'' => lex_tick(b, &mut i, &mut line, &mut out.tokens),
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                // A float's fractional part: consume `.` only when a
                // digit follows, so `0..n` stays three tokens.
                if i < b.len() && b[i] == b'.' && b.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                    i += 1;
                    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                        i += 1;
                    }
                }
                out.tokens.push(Token {
                    kind: TokKind::Num,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Record every `lint:allow(rule-a, rule-b)` in one line comment.
fn scan_allows(comment: &str, line: u32, allows: &mut Vec<Allow>) {
    let mut rest = comment;
    while let Some(at) = rest.find("lint:allow(") {
        rest = &rest[at + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else { return };
        for rule in rest[..close].split(',') {
            let rule = rule.trim();
            if !rule.is_empty() {
                allows.push(Allow {
                    rule: rule.to_string(),
                    line,
                });
            }
        }
        rest = &rest[close..];
    }
}

/// Does `b[i..]` start a raw string (`r"`, `r#`), byte string (`b"`),
/// raw byte string (`br`), or byte char (`b'`)? (`r` or `b` followed by
/// more ident chars is just an identifier like `rows` or `base`.)
fn starts_raw_or_byte_literal(b: &[u8], i: usize) -> bool {
    match (b[i], b.get(i + 1)) {
        (b'r', Some(&b'"')) | (b'r', Some(&b'#')) => {
            // `r#ident` is a raw identifier, not a raw string: require
            // the hashes to terminate in a quote.
            let mut j = i + 1;
            while b.get(j) == Some(&b'#') {
                j += 1;
            }
            b.get(j) == Some(&b'"')
        }
        (b'b', Some(&b'"')) | (b'b', Some(&b'\'')) => true,
        (b'b', Some(&b'r')) => {
            let mut j = i + 2;
            while b.get(j) == Some(&b'#') {
                j += 1;
            }
            b.get(j) == Some(&b'"')
        }
        _ => false,
    }
}

/// Lex an ordinary `"…"` string starting at `*i`.
fn lex_string(b: &[u8], i: &mut usize, line: &mut u32, tokens: &mut Vec<Token>) {
    let start_line = *line;
    *i += 1;
    let content_start = *i;
    while *i < b.len() {
        match b[*i] {
            b'\\' => *i += 2,
            b'"' => break,
            b'\n' => {
                *line += 1;
                *i += 1;
            }
            _ => *i += 1,
        }
    }
    let content_end = (*i).min(b.len());
    tokens.push(Token {
        kind: TokKind::Str,
        text: String::from_utf8_lossy(&b[content_start..content_end]).into_owned(),
        line: start_line,
    });
    *i += 1; // closing quote
}

/// Lex `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, or `b'…'` starting at `*i`.
fn lex_raw_or_byte(b: &[u8], i: &mut usize, line: &mut u32, tokens: &mut Vec<Token>) {
    if b[*i] == b'b' && b.get(*i + 1) == Some(&b'\'') {
        *i += 1;
        lex_tick(b, i, line, tokens);
        return;
    }
    if b[*i] == b'b' && b.get(*i + 1) == Some(&b'"') {
        *i += 1;
        lex_string(b, i, line, tokens);
        return;
    }
    // Raw (byte) string: skip `r`/`br`, count hashes, then scan for the
    // matching `"###…` terminator — no escapes inside.
    let start_line = *line;
    *i += if b[*i] == b'b' { 2 } else { 1 };
    let mut hashes = 0usize;
    while b.get(*i) == Some(&b'#') {
        hashes += 1;
        *i += 1;
    }
    *i += 1; // opening quote
    let content_start = *i;
    let terminator: Vec<u8> = std::iter::once(b'"')
        .chain(std::iter::repeat_n(b'#', hashes))
        .collect();
    while *i < b.len() {
        if b[*i] == b'\n' {
            *line += 1;
            *i += 1;
        } else if b[*i] == b'"' && b[*i..].starts_with(&terminator) {
            break;
        } else {
            *i += 1;
        }
    }
    let content_end = (*i).min(b.len());
    tokens.push(Token {
        kind: TokKind::Str,
        text: String::from_utf8_lossy(&b[content_start..content_end]).into_owned(),
        line: start_line,
    });
    *i = (*i + terminator.len()).min(b.len());
}

/// Lex a `'…'` char literal or a `'a` lifetime starting at `*i`.
fn lex_tick(b: &[u8], i: &mut usize, line: &mut u32, tokens: &mut Vec<Token>) {
    let start_line = *line;
    let after = b.get(*i + 1).copied();
    // A lifetime is `'` + ident-start NOT followed by a closing tick
    // (`'a'` is a char, `'a` is a lifetime, `'_` is a lifetime).
    if after.is_some_and(|c| c == b'_' || c.is_ascii_alphabetic()) && b.get(*i + 2) != Some(&b'\'')
    {
        let start = *i + 1;
        *i += 1;
        while *i < b.len() && (b[*i] == b'_' || b[*i].is_ascii_alphanumeric()) {
            *i += 1;
        }
        tokens.push(Token {
            kind: TokKind::Lifetime,
            text: String::from_utf8_lossy(&b[start..*i]).into_owned(),
            line: start_line,
        });
        return;
    }
    // Char literal: `'x'` or `'\n'` (escapes).
    *i += 1;
    let content_start = *i;
    while *i < b.len() {
        match b[*i] {
            b'\\' => *i += 2,
            b'\'' => break,
            b'\n' => {
                *line += 1;
                *i += 1;
            }
            _ => *i += 1,
        }
    }
    let content_end = (*i).min(b.len());
    tokens.push(Token {
        kind: TokKind::Char,
        text: String::from_utf8_lossy(&b[content_start..content_end]).into_owned(),
        line: start_line,
    });
    *i += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_puncts_and_numbers() {
        let toks = texts("let x = a.unwrap() + 0x1f;");
        let words: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(
            words,
            ["let", "x", "=", "a", ".", "unwrap", "(", ")", "+", "0x1f", ";"]
        );
        assert_eq!(toks[4].0, TokKind::Punct);
        assert_eq!(toks[9].0, TokKind::Num);
    }

    #[test]
    fn ranges_do_not_swallow_dots_but_floats_do() {
        let words: Vec<(TokKind, String)> = texts("0..10; 1.5");
        let flat: Vec<&str> = words.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(flat, ["0", ".", ".", "10", ";", "1.5"]);
    }

    #[test]
    fn strings_hide_their_contents_from_the_ident_stream() {
        let toks = texts(r#"call("unwrap() inside a \" string")"#);
        assert_eq!(toks[2].0, TokKind::Str);
        assert!(toks[2].1.contains("unwrap()"));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Ident).count(), 1);
    }

    #[test]
    fn raw_strings_with_hashes_and_byte_literals() {
        let toks = texts(r##"x(r#"quote " inside"#, b"bytes", b'q', br#"raw"#)"##);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Str)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(strs, ["quote \" inside", "bytes", "raw"]);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Char && t == "q"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = texts("fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "a"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Char && t == "x"));
    }

    #[test]
    fn comments_are_dropped_but_allows_are_collected() {
        let lexed = lex(concat!(
            "a(); // lint:allow(no-unwrap-in-serving) reason why\n",
            "/* block .unwrap() comment\n spanning lines */\n",
            "b(); // lint:allow(rule-a, rule-b)\n",
        ));
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("unwrap")));
        let got: Vec<(String, u32)> = lexed
            .allows
            .iter()
            .map(|a| (a.rule.clone(), a.line))
            .collect();
        assert_eq!(
            got,
            [
                ("no-unwrap-in-serving".to_string(), 1),
                ("rule-a".to_string(), 4),
                ("rule-b".to_string(), 4)
            ]
        );
        // The `b()` after the block comment landed on the right line.
        assert_eq!(lexed.tokens.last().map(|t| t.line), Some(4));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let lexed = lex("let s = \"line\nline\nline\";\nafter();");
        let after = lexed
            .tokens
            .iter()
            .find(|t| t.is_ident("after"))
            .map(|t| t.line);
        assert_eq!(after, Some(4));
    }
}
