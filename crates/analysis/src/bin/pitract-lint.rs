//! `pitract-lint` — run the workspace invariant lints.
//!
//! ```text
//! pitract-lint [--json] [ROOT]
//! ```
//!
//! Walks every first-party source file (root package + `crates/*`),
//! runs the deny-by-default rule set, prints findings as
//! `path:line: [rule] message` (or a JSON report with `--json`), and
//! exits nonzero if anything fired. `// lint:allow(<rule>)` on or above
//! the offending line excuses a site — with a justification, please.

use pitract_analysis::{lint_workspace, walk};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: pitract-lint [--json] [ROOT]");
                return ExitCode::SUCCESS;
            }
            other => root = Some(PathBuf::from(other)),
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match walk::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "pitract-lint: no workspace root found above {}",
                        cwd.display()
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    let report = lint_workspace(&root);
    if json {
        println!("{}", report.to_json().render());
    } else {
        println!("{report}");
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
