//! The self-gating test: the real workspace must lint clean. This is
//! the same check CI's `lint` job runs via the `pitract-lint` binary —
//! running it in the ordinary test suite means a violation fails
//! `cargo test` locally before it ever reaches CI.

use pitract_analysis::{lint_workspace, walk};
use std::path::Path;

#[test]
fn the_workspace_lints_clean() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = walk::find_workspace_root(here).expect("test runs inside the workspace");
    let report = lint_workspace(&root);
    assert!(
        report.files_scanned > 50,
        "walk found the workspace ({} files)",
        report.files_scanned
    );
    assert!(report.is_clean(), "\n{report}");
}
