//! Fixture-driven self-tests: every seeded-violation snippet must fire
//! its rule, every clean counterpart must not. The fixtures live as
//! real `.rs` files under `fixtures/` (outside any target tree, so the
//! workspace walk never lints them).

use pitract_analysis::rules::{default_rules, run_rules};
use pitract_analysis::source::{FileKind, SourceFile};

/// Lint one fixture as if it were library code of `crate_name`.
fn lint(crate_name: &str, src: &str) -> pitract_analysis::LintReport {
    let file = SourceFile::from_source(crate_name, "src/fixture.rs", FileKind::Lib, src);
    run_rules(&[file], &default_rules())
}

fn rules_fired(report: &pitract_analysis::LintReport) -> Vec<&'static str> {
    report.findings.iter().map(|f| f.rule).collect()
}

#[test]
fn unwrap_fixture_fires_on_every_seeded_panic_path() {
    let report = lint(
        "pitract-engine",
        include_str!("../fixtures/unwrap_violation.rs"),
    );
    let fired = rules_fired(&report);
    assert_eq!(
        fired.len(),
        5,
        "unwrap, expect, panic!, unreachable!, dbg! — got {:?}",
        report.findings
    );
    assert!(fired.iter().all(|r| *r == "no-unwrap-in-serving"));
    // Findings carry real locations.
    assert!(report.findings.iter().all(|f| f.line > 0));
    assert!(report.findings.iter().all(|f| f.path == "src/fixture.rs"));
}

#[test]
fn unwrap_fixture_is_silent_outside_the_serving_crates() {
    let report = lint(
        "pitract-bench",
        include_str!("../fixtures/unwrap_violation.rs"),
    );
    assert!(report.is_clean(), "{report}");
}

#[test]
fn unwrap_fixture_is_silent_in_test_targets() {
    let file = SourceFile::from_source(
        "pitract-engine",
        "tests/fixture.rs",
        FileKind::Test,
        include_str!("../fixtures/unwrap_violation.rs"),
    );
    let report = run_rules(&[file], &default_rules());
    assert!(report.is_clean(), "{report}");
}

#[test]
fn unwrap_clean_fixture_stays_clean_and_counts_the_allow() {
    let report = lint(
        "pitract-engine",
        include_str!("../fixtures/unwrap_clean.rs"),
    );
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.suppressed, 1, "the excused expect was suppressed");
}

#[test]
fn fsync_fixture_fires_under_every_guard_shape() {
    let report = lint(
        "pitract-wal",
        include_str!("../fixtures/fsync_violation.rs"),
    );
    let fired = rules_fired(&report);
    assert_eq!(
        fired,
        vec![
            "no-fsync-under-lock",
            "no-fsync-under-lock",
            "no-fsync-under-lock"
        ],
        "{report}"
    );
}

#[test]
fn fsync_clean_fixture_passes_the_cloned_handle_pattern() {
    let report = lint("pitract-wal", include_str!("../fixtures/fsync_clean.rs"));
    assert!(report.is_clean(), "{report}");
}

#[test]
fn fsync_rule_is_scoped_to_the_wal_crate() {
    let report = lint(
        "pitract-store",
        include_str!("../fixtures/fsync_violation.rs"),
    );
    assert!(
        rules_fired(&report)
            .iter()
            .all(|r| *r != "no-fsync-under-lock"),
        "{report}"
    );
}

#[test]
fn spawn_fixture_fires_on_path_and_builder_spawns() {
    let report = lint(
        "pitract-engine",
        include_str!("../fixtures/spawn_violation.rs"),
    );
    let fired = rules_fired(&report);
    assert_eq!(
        fired,
        vec!["no-bare-thread-spawn", "no-bare-thread-spawn"],
        "{report}"
    );
}

#[test]
fn spawn_clean_fixture_allows_scoped_fanout_and_the_pool() {
    let report = lint("pitract-engine", include_str!("../fixtures/spawn_clean.rs"));
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.suppressed, 1, "the pool's spawn point was excused");
}

#[test]
fn bench_path_fixture_fires_in_any_crate_and_any_target() {
    for (crate_name, kind, path) in [
        ("pitract-bench", FileKind::Bench, "benches/fixture.rs"),
        ("pi-tractable", FileKind::Test, "tests/fixture.rs"),
        ("pitract-engine", FileKind::Lib, "src/fixture.rs"),
    ] {
        let file = SourceFile::from_source(
            crate_name,
            path,
            kind,
            include_str!("../fixtures/bench_path_violation.rs"),
        );
        let report = run_rules(&[file], &default_rules());
        assert_eq!(
            rules_fired(&report),
            vec!["bench-artifact-path"],
            "{crate_name} {path}: {report}"
        );
    }
}

#[test]
fn bench_path_clean_fixture_stays_clean() {
    let report = lint(
        "pitract-bench",
        include_str!("../fixtures/bench_path_clean.rs"),
    );
    assert!(report.is_clean(), "{report}");
}

#[test]
fn syscall_fixture_fires_on_every_eval_body_io_site() {
    let report = lint(
        "pitract-engine",
        include_str!("../fixtures/syscall_violation.rs"),
    );
    let fired = rules_fired(&report);
    assert_eq!(
        fired.len(),
        4,
        "File::open, OpenOptions::new, sync_all, fs::read — got {:?}",
        report.findings
    );
    assert!(fired
        .iter()
        .all(|r| *r == "no-blocking-syscalls-on-pool-workers"));
    // The `checkpoint` body (non-eval fn, same I/O) stayed out of scope.
    assert!(report.findings.iter().all(|f| f.line < 26), "{report}");
}

#[test]
fn syscall_fixture_is_silent_outside_the_serving_crates() {
    let report = lint(
        "pitract-repl",
        include_str!("../fixtures/syscall_violation.rs"),
    );
    assert!(report.is_clean(), "{report}");
}

#[test]
fn syscall_fixture_is_silent_in_test_targets() {
    let file = SourceFile::from_source(
        "pitract-engine",
        "tests/fixture.rs",
        FileKind::Test,
        include_str!("../fixtures/syscall_violation.rs"),
    );
    let report = run_rules(&[file], &default_rules());
    assert!(report.is_clean(), "{report}");
}

#[test]
fn syscall_clean_fixture_keeps_the_write_path_and_counts_the_allow() {
    let report = lint(
        "pitract-engine",
        include_str!("../fixtures/syscall_clean.rs"),
    );
    assert!(report.is_clean(), "{report}");
    assert_eq!(
        report.suppressed, 1,
        "the excused warm-up read was suppressed"
    );
}

#[test]
fn findings_render_machine_readably() {
    let report = lint(
        "pitract-engine",
        include_str!("../fixtures/unwrap_violation.rs"),
    );
    let json = report.to_json().render();
    assert!(json.contains("\"rule\":\"no-unwrap-in-serving\""));
    assert!(json.contains("\"path\":\"src/fixture.rs\""));
    let text = report.to_string();
    assert!(
        text.contains("src/fixture.rs:5: [no-unwrap-in-serving]"),
        "{text}"
    );
}
