// Clean counterpart: the flush-via-cloned-handle pattern (the guard
// region closes with its block before the disk is touched), a flush
// after an explicit drop, and a flush with no writer-state guard in
// sight.

pub struct Writer {
    state: std::sync::Mutex<std::fs::File>,
    rotation: std::sync::Mutex<()>,
}

impl Writer {
    fn lock(&self) -> std::sync::MutexGuard<'_, std::fs::File> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn commit(&self) -> std::io::Result<()> {
        let flush = {
            let state = self.lock();
            state.try_clone()?
        };
        flush.sync_data()?; // outside the lock: the clone outlives the guard
        Ok(())
    }

    pub fn flush_after_drop(&self) -> std::io::Result<()> {
        let state = self.lock();
        let clone = state.try_clone()?;
        drop(state);
        clone.sync_data()
    }

    pub fn rotation_is_not_the_state_lock(&self, file: &std::fs::File) -> std::io::Result<()> {
        let _turn = self.rotation.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        file.sync_all()
    }

    pub fn unlocked(&self, file: &std::fs::File) -> std::io::Result<()> {
        file.sync_all()
    }
}
