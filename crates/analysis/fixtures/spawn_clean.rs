// Clean counterpart: scoped fan-out is fine (scoped threads cannot
// outlive their batch), and the pool's own spawn is the one excused
// construction site.

use std::thread;

pub fn scoped_fanout(work: Vec<u32>) -> u32 {
    thread::scope(|scope| {
        let handles: Vec<_> = work
            .iter()
            .map(|w| scope.spawn(move || w + 1))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap_or(0)).sum()
    })
}

pub fn the_pool_itself(i: usize) -> std::io::Result<thread::JoinHandle<()>> {
    thread::Builder::new()
        .name(format!("pitract-pool-{i}"))
        // lint:allow(no-bare-thread-spawn) this IS the WorkerPool spawn point
        .spawn(|| {})
}

#[cfg(test)]
mod tests {
    use std::thread;

    #[test]
    fn tests_spawn_freely() {
        thread::spawn(|| {}).join().ok();
    }
}
