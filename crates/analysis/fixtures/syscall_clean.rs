// Clean counterpart: eval bodies that stay compute-bound, file I/O
// that lives on the write path instead, and one excused warm-up read.

pub struct Shard {
    spill: std::path::PathBuf,
    rows: Vec<u64>,
}

impl Shard {
    // Pure compute: what an eval body is supposed to look like.
    pub fn eval_bool(&self, queries: &[u64]) -> Vec<bool> {
        queries.iter().map(|q| self.rows.contains(q)).collect()
    }

    pub fn eval_rows(&self, queries: &[u64]) -> Vec<usize> {
        queries
            .iter()
            .filter_map(|q| self.rows.iter().position(|r| r == q))
            .collect()
    }

    // The write path owns the disk; `checkpoint` is not an eval fn and
    // its body must not be mistaken for one even though it follows two.
    pub fn checkpoint(&self) -> std::io::Result<()> {
        let file = std::fs::File::create(&self.spill)?;
        file.sync_all()
    }

    // An eval fn may be excused explicitly when the read is part of the
    // contract (e.g. a one-time mmap warm-up behind a Once).
    pub fn eval_cold(&self, q: u64) -> std::io::Result<bool> {
        // lint:allow(no-blocking-syscalls-on-pool-workers) one-time warm-up, gated by Once upstream
        let bytes = std::fs::read(&self.spill)?;
        Ok(bytes.len() as u64 > q)
    }
}
