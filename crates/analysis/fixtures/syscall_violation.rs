// Seeded violations: blocking file I/O on the pool-worker eval paths.

pub struct Shard {
    spill: std::path::PathBuf,
}

impl Shard {
    pub fn eval_bool(&self, queries: &[u64]) -> std::io::Result<Vec<bool>> {
        let file = std::fs::File::open(&self.spill)?; // opens the disk per batch
        drop(file);
        Ok(queries.iter().map(|q| *q % 2 == 0).collect())
    }

    pub fn eval_rows(&self, queries: &[u64]) -> std::io::Result<Vec<usize>> {
        let audit = std::fs::OpenOptions::new().append(true).open(&self.spill)?;
        audit.sync_all()?; // and flushes it, stalling the worker twice
        Ok(queries.iter().map(|q| *q as usize).collect())
    }

    pub fn eval_scan(&self, q: u64) -> std::io::Result<bool> {
        let bytes = std::fs::read(&self.spill)?; // fs:: path call, same sin
        Ok(bytes.len() as u64 > q)
    }

    // A non-eval method doing the same I/O is the write path's business,
    // not this rule's: it must NOT fire here.
    pub fn checkpoint(&self) -> std::io::Result<()> {
        let file = std::fs::File::create(&self.spill)?;
        file.sync_data()
    }
}
