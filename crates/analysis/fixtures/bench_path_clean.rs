// Clean counterpart: repo-root artifact paths, and `target/` strings
// that are not bench artifacts.

pub fn artifact_path() -> &'static str {
    "BENCH_engine.json"
}

pub fn other_target_output() -> &'static str {
    "target/observed_serving.json"
}
