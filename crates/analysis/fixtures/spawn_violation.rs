// Seeded violations: bare thread spawns in library code.

use std::thread;

pub fn bare_path_spawn() -> thread::JoinHandle<()> {
    thread::spawn(|| {})
}

pub fn builder_spawn() -> std::io::Result<thread::JoinHandle<()>> {
    thread::Builder::new().name("rogue".to_string()).spawn(|| {})
}
