// Seeded violation: a bench artifact routed under the build directory,
// where CI's upload step will never find it (the PR 6 regression).

pub fn artifact_path() -> &'static str {
    "target/BENCH_engine.json"
}
