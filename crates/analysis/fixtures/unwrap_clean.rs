// Clean counterpart: everything here is exempt — test code, comments,
// strings, non-panicking combinators, or an explicitly excused site.

use std::sync::{Mutex, PoisonError};

/// Doc comment mentioning `.unwrap()` is commentary, not code.
pub fn poison_absorbing(m: &Mutex<u32>) -> u32 {
    // unwrap() in a comment is commentary too.
    *m.lock().unwrap_or_else(PoisonError::into_inner)
}

pub fn message() -> &'static str {
    "call unwrap() and panic!() at your peril"
}

pub fn excused(x: Option<u32>) -> u32 {
    // lint:allow(no-unwrap-in-serving) construction-time configuration error, not a serving path
    x.expect("configured at startup")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let r: Result<u32, ()> = Ok(2);
        assert_eq!(r.expect("ok"), 2);
    }
}
