// Seeded violations: flushes while the writer-state guard is held.

pub struct Writer {
    state: std::sync::Mutex<std::fs::File>,
}

impl Writer {
    fn lock(&self) -> std::sync::MutexGuard<'_, std::fs::File> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn flush_under_let_guard(&self) -> std::io::Result<()> {
        let state = self.lock();
        state.sync_data()?; // the whole point of the rule
        Ok(())
    }

    pub fn flush_as_statement_temporary(&self) -> std::io::Result<()> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .sync_all()
    }

    pub fn flush_before_drop(&self) -> std::io::Result<()> {
        let guard = self.lock();
        guard.sync_data()?;
        drop(guard);
        Ok(())
    }
}
