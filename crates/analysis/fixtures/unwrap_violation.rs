// Seeded violations: every panic path the rule must catch, in
// non-test serving-crate library code.

pub fn serve_point(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn serve_range(r: Result<u32, String>) -> u32 {
    r.expect("range lookup failed")
}

pub fn route(shard: usize, count: usize) -> usize {
    if shard >= count {
        panic!("shard {shard} out of range");
    }
    shard
}

pub fn merge(kind: u8) -> &'static str {
    match kind {
        0 => "insert",
        1 => "delete",
        _ => unreachable!("validated at parse time"),
    }
}

pub fn probe(x: u32) -> u32 {
    dbg!(x)
}
