//! The durable serving tier: a [`LiveRelation`] whose every confirmed
//! update survives a crash at any instant.
//!
//! [`DurableLiveRelation`] wires a [`WalWriter`] into the engine's
//! [`WalSink`] hook: each insert/delete is staged to the WAL **inside
//! the global-id critical section** (so WAL order ≡ log order ≡ gid
//! order, even under racing writers) and committed durable after the
//! locks drop (so fsyncs batch across writers instead of stalling the
//! shard). The companion checkpoint persists the frozen state *and* the
//! WAL position it covers as one atomic [`Snapshot::Checkpoint`] file —
//! there is no instant at which a crash can observe a state without its
//! mark, which is the classic lost-update window of two-file schemes.
//!
//! # The LSN ↔ log-position ↔ epoch dictionary
//!
//! The engine's in-memory [`pitract_engine::UpdateLog`] counts absolute
//! positions from the moment the relation was wrapped; the WAL counts
//! LSNs from the beginning of (durable) time; the MVCC epoch clock
//! counts applied updates from the relation's birth. Because the sink
//! appends exactly one WAL record per logged entry and every applied
//! update ticks the epoch once, all three advance in lockstep:
//! `lsn = wal_base + position` and `epoch = epoch_base + position`,
//! where both bases are fixed at wrap time. A freeze's cut epoch
//! therefore translates directly into the checkpoint's WAL mark
//! ([`DurableLiveRelation::lsn_of_epoch`]), and recovery inverts the
//! mapping: load the checkpoint, replay the WAL tail at-or-after the
//! mark (compacted, so replay work is bounded by net change), resume
//! appending at the recovered LSN, and advance the epoch clock to the
//! cut epoch plus one tick per tail record — so the recovered node
//! stamps its next update with the same epoch the crashed node would
//! have ([`DurableLiveRelation::recovery_summary`]).

use crate::compactor::{CompactionReport, Compactor};
use crate::error::WalError;
use crate::reader::WalReader;
use crate::writer::{WalConfig, WalWriter};
use pitract_core::epoch::Epoch;
use pitract_engine::batch::WorkerResults;
use pitract_engine::planner::QueryPlan;
use pitract_engine::{BatchServe, EngineError, LiveRelation, UpdateEntry, WalSink};
use pitract_obs::Recorder;
use pitract_relation::SelectionQuery;
use pitract_store::{Recovered, Snapshot, SnapshotCatalog};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The [`WalSink`] adapter staging a [`LiveRelation`]'s updates into a
/// [`WalWriter`]. Public so deployments composing their own recovery
/// flow can install it directly via
/// [`LiveRelation::set_wal_sink`].
#[derive(Debug)]
pub struct WalWriterSink {
    wal: Arc<WalWriter>,
}

impl WalWriterSink {
    /// Wrap a writer as a sink.
    pub fn new(wal: Arc<WalWriter>) -> Self {
        WalWriterSink { wal }
    }
}

impl WalSink for WalWriterSink {
    fn stage(&self, entry: &UpdateEntry) -> Result<u64, EngineError> {
        self.wal
            .append_entry(entry)
            .map_err(|e| EngineError::WalSink {
                message: e.to_string(),
            })
    }

    fn commit(&self, ticket: u64) -> Result<(), EngineError> {
        self.wal.commit(ticket).map_err(|e| EngineError::WalSink {
            message: e.to_string(),
        })
    }
}

/// A [`LiveRelation`] with a durable write-ahead log underneath: a crash
/// at any instant loses no confirmed update.
///
/// Derefs to [`LiveRelation`], so the whole serving API — `insert`,
/// `delete`, `answer`, `execute`, `boundedness_report`, … — is available
/// unchanged; updates flow through the installed sink automatically.
#[derive(Debug)]
pub struct DurableLiveRelation {
    live: LiveRelation,
    wal: Arc<WalWriter>,
    /// WAL LSN corresponding to the live relation's log position 0.
    wal_base: u64,
    /// Epoch-clock value at the live relation's log position 0 — the
    /// other half of the epoch ↔ LSN dictionary.
    epoch_base: u64,
    /// The latest durably confirmed checkpoint mark (what compaction may
    /// drop below).
    last_mark: AtomicU64,
    /// What [`Self::recover`] reconstructed; `None` on a fresh
    /// [`Self::create`].
    recovered: Option<Recovered>,
}

impl std::ops::Deref for DurableLiveRelation {
    type Target = LiveRelation;

    fn deref(&self) -> &LiveRelation {
        &self.live
    }
}

impl DurableLiveRelation {
    /// Go durable: attach a WAL at `wal_dir` to `live` and write the
    /// bootstrap checkpoint under `name` — without it, a crash before
    /// the first explicit checkpoint would have no state to replay the
    /// log onto. `live` must have an empty pending log (freshly built or
    /// just checkpointed); updates that predate the WAL would otherwise
    /// silently sit outside the durability contract.
    pub fn create(
        live: LiveRelation,
        catalog: &SnapshotCatalog,
        name: &str,
        wal_dir: impl Into<PathBuf>,
        config: WalConfig,
    ) -> Result<Self, WalError> {
        Self::create_observed(live, catalog, name, wal_dir, config, &Recorder::default())
    }

    /// [`Self::create`] with one observability handle threaded through
    /// the whole durable stack: the WAL writer's `wal_*` series, the
    /// engine's `engine_*`/`mvcc_*` series, and the trace buffer all
    /// share `recorder`, so a single [`pitract_obs::MetricsSnapshot`]
    /// covers the node end to end.
    pub fn create_observed(
        mut live: LiveRelation,
        catalog: &SnapshotCatalog,
        name: &str,
        wal_dir: impl Into<PathBuf>,
        config: WalConfig,
        recorder: &Recorder,
    ) -> Result<Self, WalError> {
        let pending = live.pending_log().len();
        if pending > 0 {
            return Err(WalError::PendingUpdates { count: pending });
        }
        live.set_recorder(recorder);
        let wal = Arc::new(WalWriter::open_observed(wal_dir, config, recorder)?);
        // Anything already in the directory (a reused path) is below the
        // bootstrap mark and therefore dead: the checkpoint covers it.
        let mark = wal.next_lsn();
        let frozen = live.freeze();
        catalog.save(
            name,
            &Snapshot::Checkpoint {
                state: frozen.state,
                wal_lsn: mark,
                epoch: frozen.epoch,
            },
        )?;
        live.confirm_checkpoint(frozen.covered);
        live.set_wal_sink(Some(Arc::new(WalWriterSink::new(wal.clone()))));
        Ok(DurableLiveRelation {
            live,
            wal,
            wal_base: mark,
            epoch_base: frozen.epoch.get(),
            last_mark: AtomicU64::new(mark),
            recovered: None,
        })
    }

    /// Recover after a crash (or a clean restart — the code path is the
    /// same, which is how it stays tested): load the checkpoint saved
    /// under `name`, truncate any torn WAL tail, replay the compacted
    /// tail at-or-after the checkpoint's mark, and resume durable
    /// serving. The recovered node is bit-identical — answers and global
    /// row ids — to the crashed node's confirmed prefix.
    pub fn recover(
        catalog: &SnapshotCatalog,
        name: &str,
        wal_dir: impl Into<PathBuf>,
        config: WalConfig,
    ) -> Result<Self, WalError> {
        Self::recover_observed(catalog, name, wal_dir, config, &Recorder::default())
    }

    /// [`Self::recover`] with metrics: the same recorder threading as
    /// [`Self::create_observed`], plus what recovery itself found — a
    /// torn WAL tail truncated here emits the `wal_torn_tail_truncated`
    /// trace event and `wal_recovery_*` counters instead of vanishing
    /// silently (see [`WalReader::from_scan_observed`]).
    pub fn recover_observed(
        catalog: &SnapshotCatalog,
        name: &str,
        wal_dir: impl Into<PathBuf>,
        config: WalConfig,
        recorder: &Recorder,
    ) -> Result<Self, WalError> {
        let wal_dir = wal_dir.into();
        let (state, mark, cut) = catalog.load(name)?.into_checkpoint()?;
        // One directory scan serves both sides: the writer truncates the
        // torn tail and takes its append position from it, the reader
        // decodes its records for replay — the log is read and
        // checksummed once, not twice. Only the reader side reports the
        // torn tail, so one recovery emits one truncation event.
        let (wal, scan) = WalWriter::open_scanned_observed(&wal_dir, config, mark, recorder)?;
        let wal = Arc::new(wal);
        let reader = WalReader::from_scan_observed(&scan, recorder)?;
        let mut live = LiveRelation::from_sharded(state);
        live.set_recorder(recorder);
        let tail = reader.tail_log(mark);
        let compacted = tail.compact();
        live.replay_compacted(&compacted)?;
        // Trailing cancelled pairs leave no entry to carry their ids;
        // burn up to the uncompacted tail's watermark so future inserts
        // get the same gids the crashed node would have assigned.
        if let Some(watermark) = tail.next_gid_watermark() {
            live.burn_gids_to(watermark);
        }
        // Replay logged `compacted.len()` entries at positions 0..len,
        // whose WAL records all sit below next_lsn — so position len
        // maps to the next fresh LSN, pinning the dictionary.
        let wal_base = wal.next_lsn() - compacted.len() as u64;
        // The epoch clock ticked once per *tail record* on the crashed
        // node, while the compacted replay ticked it only
        // `compacted.len()` times — advance the difference so the next
        // update is stamped with the same epoch the crashed node would
        // have used. (A compacted WAL undercounts dropped churn; the
        // clock stays consistent with this node's own dictionary.)
        let epoch_end = Epoch::new(cut.get() + tail.len() as u64);
        live.advance_epoch_to(epoch_end);
        let epoch_base = epoch_end.get() - compacted.len() as u64;
        live.set_wal_sink(Some(Arc::new(WalWriterSink::new(wal.clone()))));
        let recovered = Recovered {
            epoch: epoch_end,
            lsn: Some(wal.next_lsn()),
            replayed: compacted.len(),
        };
        Ok(DurableLiveRelation {
            live,
            wal,
            wal_base,
            epoch_base,
            last_mark: AtomicU64::new(mark),
            recovered: Some(recovered),
        })
    }

    /// The underlying WAL writer (for `sync`, `rotate_now`, metrics).
    pub fn wal(&self) -> &Arc<WalWriter> {
        &self.wal
    }

    /// The WAL directory.
    pub fn wal_dir(&self) -> &Path {
        self.wal.dir()
    }

    /// The latest confirmed checkpoint mark.
    pub fn checkpoint_mark(&self) -> u64 {
        self.last_mark.load(Ordering::SeqCst)
    }

    /// What [`Self::recover`] reconstructed — the resumed epoch clock,
    /// the next LSN, and how many updates the compacted replay applied.
    /// `None` for a node born via [`Self::create`].
    pub fn recovery_summary(&self) -> Option<Recovered> {
        self.recovered
    }

    /// LSN of the first WAL record *not* covered by `epoch`: the
    /// epoch ↔ LSN dictionary. Meaningful for epochs at or after this
    /// node's wrap/recovery point (`epoch_base`); earlier epochs clamp
    /// to the WAL base.
    pub fn lsn_of_epoch(&self, epoch: Epoch) -> u64 {
        self.wal_base + epoch.get().saturating_sub(self.epoch_base)
    }

    /// The epoch whose state covers exactly the WAL records below
    /// `lsn` — the inverse of [`Self::lsn_of_epoch`]. LSNs below the WAL
    /// base clamp to the base epoch.
    pub fn epoch_of_lsn(&self, lsn: u64) -> Epoch {
        Epoch::new(self.epoch_base + lsn.saturating_sub(self.wal_base))
    }

    /// Checkpoint: freeze the live state, persist it with its WAL mark
    /// as one atomic snapshot, then truncate the in-memory log. After
    /// this returns, [`Self::compact_wal`] may drop every WAL record
    /// below the new mark.
    pub fn checkpoint(&self, catalog: &SnapshotCatalog, name: &str) -> Result<PathBuf, WalError> {
        // Make sure everything the snapshot will contain is also durable
        // in the log *before* the snapshot supersedes it — an unsynced
        // suffix must never be the only copy of a confirmed update.
        self.wal.sync()?;
        let frozen = self.live.freeze();
        // Both halves of the dictionary name the same cut: the covered
        // log position and the cut epoch map to one WAL mark.
        let mark = self.wal_base + frozen.covered as u64;
        debug_assert_eq!(mark, self.lsn_of_epoch(frozen.epoch));
        let path = catalog.save(
            name,
            &Snapshot::Checkpoint {
                state: frozen.state,
                wal_lsn: mark,
                epoch: frozen.epoch,
            },
        )?;
        self.live.confirm_checkpoint(frozen.covered);
        self.last_mark.fetch_max(mark, Ordering::SeqCst);
        Ok(path)
    }

    /// Compact the WAL's closed segments against the latest confirmed
    /// checkpoint mark: drop records the checkpoint covers and
    /// insert+delete pairs that cancel, bounding recovery replay (and
    /// disk) by net change instead of churn. Call [`Self::checkpoint`]
    /// first for the mark to be meaningful; rotation
    /// ([`WalWriter::rotate_now`] or the size threshold) determines how
    /// much of the log is closed and therefore compactable.
    pub fn compact_wal(&self) -> Result<CompactionReport, WalError> {
        self.compact_wal_retaining(None)
    }

    /// [`Self::compact_wal`] under a replication retention watermark:
    /// closed segments holding any record at or above `retention` are
    /// left byte-for-byte untouched, so an attached follower that has
    /// applied up to `retention` can still fetch everything it is owed
    /// after the pass. A `pitract-repl` `SegmentPublisher` computes the
    /// watermark as the minimum applied LSN across attached followers
    /// and routes compaction through here.
    pub fn compact_wal_retaining(
        &self,
        retention: Option<u64>,
    ) -> Result<CompactionReport, WalError> {
        Compactor::new(self.checkpoint_mark())
            .with_retention(retention)
            .compact_dir(self.wal.dir())
    }
}

/// Serve a durable node from a persistent
/// [`pitract_engine::PooledExecutor`] exactly like its inner live
/// relation: every method delegates, so an
/// `Arc<DurableLiveRelation>` drops straight into a pooled serving
/// session while updates (including [`LiveRelation::apply_batch`] — one
/// WAL fsync per batch) keep flowing through the WAL sink.
impl BatchServe for DurableLiveRelation {
    fn route(
        &self,
        queries: &[SelectionQuery],
    ) -> Result<(Vec<QueryPlan>, Vec<Vec<usize>>), EngineError> {
        BatchServe::route(&self.live, queries)
    }

    fn shard_count(&self) -> usize {
        BatchServe::shard_count(&self.live)
    }

    fn pin_epoch(&self) -> Option<Epoch> {
        BatchServe::pin_epoch(&self.live)
    }

    fn unpin_epoch(&self, epoch: Epoch) {
        BatchServe::unpin_epoch(&self.live, epoch);
    }

    fn eval_bool(
        &self,
        shard: usize,
        at: Epoch,
        queries: &[SelectionQuery],
        assigned: &[usize],
    ) -> WorkerResults<bool> {
        self.live.eval_bool(shard, at, queries, assigned)
    }

    fn eval_rows(
        &self,
        shard: usize,
        at: Epoch,
        queries: &[SelectionQuery],
        assigned: &[usize],
    ) -> WorkerResults<Vec<usize>> {
        self.live.eval_rows(shard, at, queries, assigned)
    }

    fn global_ids(&self, shard: usize, locals: &[usize]) -> Vec<usize> {
        self.live.global_ids(shard, locals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::SyncPolicy;
    use pitract_engine::ShardBy;
    use pitract_relation::{ColType, Relation, Schema, SelectionQuery, Value};
    use std::path::PathBuf;

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pitract-wald-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn schema() -> Schema {
        Schema::new(&[("id", ColType::Int), ("grp", ColType::Str)])
    }

    fn live(n: i64) -> LiveRelation {
        let rows = (0..n)
            .map(|i| vec![Value::Int(i), Value::str(format!("grp{}", i % 8))])
            .collect();
        let rel = Relation::from_rows(schema(), rows).unwrap();
        LiveRelation::build(&rel, ShardBy::Hash { col: 0 }, 3, &[0, 1]).unwrap()
    }

    fn config() -> WalConfig {
        WalConfig {
            segment_bytes: 256,
            sync: SyncPolicy::GroupCommit,
        }
    }

    #[test]
    fn create_write_crash_recover_is_bit_identical() {
        let root = fresh_dir("roundtrip");
        let catalog = SnapshotCatalog::open(root.join("snaps")).unwrap();
        let wal_dir = root.join("wal");
        let node =
            DurableLiveRelation::create(live(40), &catalog, "node", &wal_dir, config()).unwrap();
        let g = node
            .insert(vec![Value::Int(500), Value::str("new")])
            .unwrap();
        node.delete(3).unwrap().unwrap();
        node.delete(g).unwrap().unwrap();
        node.insert(vec![Value::Int(501), Value::str("kept")])
            .unwrap();

        // "Crash": drop the node without checkpointing; recover from the
        // bootstrap checkpoint + WAL alone.
        let expected_rows: Vec<Option<Vec<Value>>> = (0..45).map(|gid| node.row(gid)).collect();
        let expected_len = node.len();
        drop(node);
        let recovered = DurableLiveRelation::recover(&catalog, "node", &wal_dir, config()).unwrap();
        assert_eq!(recovered.len(), expected_len);
        for (gid, expect) in expected_rows.iter().enumerate() {
            assert_eq!(&recovered.row(gid), expect, "gid {gid}");
        }
        assert!(recovered.answer(&SelectionQuery::point(0, 501i64)));
        assert!(!recovered.answer(&SelectionQuery::point(0, 500i64)));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn checkpoint_marks_advance_and_recovery_replays_only_the_tail() {
        let root = fresh_dir("marks");
        let catalog = SnapshotCatalog::open(root.join("snaps")).unwrap();
        let wal_dir = root.join("wal");
        let node =
            DurableLiveRelation::create(live(10), &catalog, "node", &wal_dir, config()).unwrap();
        for i in 0..20i64 {
            node.insert(vec![Value::Int(100 + i), Value::str("pre")])
                .unwrap();
        }
        node.checkpoint(&catalog, "node").unwrap();
        assert_eq!(node.checkpoint_mark(), 20);
        assert!(node.pending_log().is_empty());
        for i in 0..5i64 {
            node.insert(vec![Value::Int(200 + i), Value::str("post")])
                .unwrap();
        }
        drop(node);
        let recovered = DurableLiveRelation::recover(&catalog, "node", &wal_dir, config()).unwrap();
        assert_eq!(
            recovered.boundedness_report().len(),
            5,
            "only the post-checkpoint tail was replayed"
        );
        assert_eq!(recovered.len(), 35);
        // The recovered node continues the LSN sequence seamlessly: a
        // fresh update and another recovery still agree.
        recovered
            .insert(vec![Value::Int(999), Value::str("again")])
            .unwrap();
        drop(recovered);
        let again = DurableLiveRelation::recover(&catalog, "node", &wal_dir, config()).unwrap();
        assert!(again.answer(&SelectionQuery::point(0, 999i64)));
        assert_eq!(again.len(), 36);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn compaction_after_checkpoint_never_changes_recovered_state() {
        let root = fresh_dir("compact");
        let catalog = SnapshotCatalog::open(root.join("snaps")).unwrap();
        let wal_dir = root.join("wal");
        let node =
            DurableLiveRelation::create(live(8), &catalog, "node", &wal_dir, config()).unwrap();
        // Churn: lots of insert+delete pairs, few survivors.
        for i in 0..40i64 {
            let gid = node
                .insert(vec![Value::Int(300 + i), Value::str("churn")])
                .unwrap();
            if i % 5 != 0 {
                node.delete(gid).unwrap().unwrap();
            }
        }
        node.checkpoint(&catalog, "ckpt").unwrap();
        for i in 0..10i64 {
            let gid = node
                .insert(vec![Value::Int(400 + i), Value::str("tail")])
                .unwrap();
            if i % 2 == 0 {
                node.delete(gid).unwrap().unwrap();
            }
        }
        node.wal().rotate_now().unwrap();

        let before = DurableLiveRelation::recover(&catalog, "ckpt", &wal_dir, config()).unwrap();
        let report = node.compact_wal().unwrap();
        assert!(report.records_after < report.records_before, "{report:?}");
        let after = DurableLiveRelation::recover(&catalog, "ckpt", &wal_dir, config()).unwrap();
        assert_eq!(before.len(), after.len());
        for gid in 0..60 {
            assert_eq!(before.row(gid), after.row(gid), "gid {gid}");
        }
        for q in [
            SelectionQuery::point(1, "churn"),
            SelectionQuery::point(1, "tail"),
            SelectionQuery::range_closed(0, 0i64, 500i64),
        ] {
            assert_eq!(before.matching_ids(&q), after.matching_ids(&q), "{q:?}");
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn apply_batch_commits_once_is_durable_and_recovers() {
        use pitract_engine::{Applied, UpdateOp};
        let root = fresh_dir("batchapply");
        let catalog = SnapshotCatalog::open(root.join("snaps")).unwrap();
        let wal_dir = root.join("wal");
        let node =
            DurableLiveRelation::create(live(20), &catalog, "node", &wal_dir, config()).unwrap();
        let applied = node
            .apply_batch((0..50i64).map(|i| {
                if i % 5 == 4 {
                    UpdateOp::Delete(i as usize)
                } else {
                    UpdateOp::Insert(vec![Value::Int(700 + i), Value::str("batch")])
                }
            }))
            .unwrap();
        assert_eq!(applied.len(), 50);
        assert!(matches!(applied[0], Applied::Inserted(20)));
        // The whole batch is durable on return: under group commit the
        // single trailing commit's fsync covered every staged record.
        assert_eq!(node.wal().durable_lsn(), 50);
        let expected: Vec<Option<Vec<Value>>> = (0..65).map(|gid| node.row(gid)).collect();
        drop(node);
        let recovered = DurableLiveRelation::recover(&catalog, "node", &wal_dir, config()).unwrap();
        for (gid, expect) in expected.iter().enumerate() {
            assert_eq!(&recovered.row(gid), expect, "gid {gid}");
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn pooled_executor_serves_a_durable_node() {
        use pitract_engine::{PoolConfig, PooledExecutor, QueryBatch};
        let root = fresh_dir("pooled");
        let catalog = SnapshotCatalog::open(root.join("snaps")).unwrap();
        let node = Arc::new(
            DurableLiveRelation::create(live(100), &catalog, "node", root.join("wal"), config())
                .unwrap(),
        );
        let exec = PooledExecutor::new(
            Arc::clone(&node),
            PoolConfig {
                workers: 2,
                max_inflight: 2,
            },
        );
        let batch = QueryBatch::new((0..30i64).map(|k| SelectionQuery::point(0, k * 3)));
        // Queries on the pool interleave with durable updates.
        std::thread::scope(|scope| {
            let writer = Arc::clone(&node);
            scope.spawn(move || {
                for i in 0..40i64 {
                    writer
                        .insert(vec![Value::Int(5_000 + i), Value::str("w")])
                        .unwrap();
                }
            });
            for _ in 0..10 {
                let got = exec.execute(&batch).unwrap();
                assert!(got.answers.iter().all(|&a| a), "stable region hits");
            }
        });
        let rows = exec.execute_rows(&batch).unwrap();
        for (k, ids) in rows.rows.iter().enumerate() {
            assert_eq!(ids, &vec![k * 3], "gid of key {}", k * 3);
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn create_refuses_a_relation_with_pending_updates() {
        let root = fresh_dir("pending");
        let catalog = SnapshotCatalog::open(root.join("snaps")).unwrap();
        let lr = live(5);
        lr.insert(vec![Value::Int(99), Value::str("unlogged")])
            .unwrap();
        let err = DurableLiveRelation::create(lr, &catalog, "node", root.join("wal"), config())
            .unwrap_err();
        assert!(
            matches!(err, WalError::PendingUpdates { count: 1 }),
            "{err}"
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    /// One recorder threaded through the whole durable stack: WAL,
    /// engine, and MVCC series all land in a single snapshot.
    #[test]
    fn observed_stack_publishes_wal_engine_and_mvcc_series() {
        let root = fresh_dir("observed");
        let catalog = SnapshotCatalog::open(root.join("snaps")).unwrap();
        let wal_dir = root.join("wal");
        let recorder = Recorder::new();
        let node = DurableLiveRelation::create_observed(
            live(10),
            &catalog,
            "node",
            &wal_dir,
            config(),
            &recorder,
        )
        .unwrap();
        for i in 0..8i64 {
            let gid = node
                .insert(vec![Value::Int(100 + i), Value::str("obs")])
                .unwrap();
            if i % 2 == 1 {
                node.delete(gid).unwrap().unwrap();
            }
        }
        node.answer(&SelectionQuery::point(0, 104i64));
        node.publish_metrics();
        let snap = recorder.snapshot();
        assert_eq!(snap.counter("wal_appends_total"), Some(12));
        assert!(snap.counter("wal_appended_bytes_total").unwrap() > 0);
        assert!(snap.histogram("wal_fsync_micros").unwrap().count > 0);
        assert!(snap.histogram("wal_group_commit_records").unwrap().count > 0);
        assert_eq!(snap.counter("engine_updates_total"), Some(12));
        assert!(snap.gauge("mvcc_current_epoch").unwrap() >= 12);
        drop(node);

        // Recovery threads the same handle; the replay's updates land in
        // the (fresh) recorder too.
        let recorder = Recorder::new();
        let node =
            DurableLiveRelation::recover_observed(&catalog, "node", &wal_dir, config(), &recorder)
                .unwrap();
        let replayed = node.recovery_summary().unwrap().replayed as u64;
        let snap = recorder.snapshot();
        assert!(replayed > 0);
        assert_eq!(
            snap.counter("engine_updates_total"),
            Some(replayed),
            "one engine update per compacted replay entry"
        );
        assert_eq!(
            snap.counter("wal_recovery_truncations_total"),
            None,
            "clean shutdown"
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn concurrent_writers_recover_consistently() {
        let root = fresh_dir("race");
        let catalog = SnapshotCatalog::open(root.join("snaps")).unwrap();
        let wal_dir = root.join("wal");
        let node =
            DurableLiveRelation::create(live(0), &catalog, "node", &wal_dir, config()).unwrap();
        std::thread::scope(|scope| {
            for t in 0..4i64 {
                let node = &node;
                scope.spawn(move || {
                    for i in 0..30i64 {
                        let gid = node
                            .insert(vec![Value::Int(t * 1000 + i), Value::str("w")])
                            .unwrap();
                        if i % 3 == 0 {
                            node.delete(gid).unwrap().unwrap();
                        }
                    }
                });
            }
        });
        let expected: Vec<Option<Vec<Value>>> = (0..120).map(|gid| node.row(gid)).collect();
        drop(node);
        let recovered = DurableLiveRelation::recover(&catalog, "node", &wal_dir, config()).unwrap();
        for (gid, expect) in expected.iter().enumerate() {
            assert_eq!(&recovered.row(gid), expect, "gid {gid}");
        }
        std::fs::remove_dir_all(&root).unwrap();
    }
}
