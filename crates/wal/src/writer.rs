//! The append side: fsync'd segments, rotation, group commit.

use crate::error::WalError;
use crate::segment::{
    encode_record, scan_dir, segment_file_name, segment_header, DirScan, SEGMENT_HEADER_LEN,
};
use pitract_core::lockdep::{LockRank, OrderedMutex, OrderedMutexGuard};
use pitract_engine::UpdateEntry;
use pitract_obs::{Counter, Histogram, Recorder};
use pitract_store::codec::Writer as CodecWriter;
use pitract_store::fsync_dir;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Interned metric handles for the append side. Default (no-op) handles
/// cost one branch per touch, so the uninstrumented hot path is
/// unchanged.
#[derive(Debug, Default)]
struct WalInstruments {
    /// `wal_appends_total` — records staged.
    appends: Counter,
    /// `wal_appended_bytes_total` — framed bytes staged (header + payload).
    appended_bytes: Counter,
    /// `wal_fsync_micros` — latency of every data flush (commit, sync,
    /// and the rotation pre-seal), the number that dominates durable
    /// write latency.
    fsync_micros: Histogram,
    /// `wal_group_commit_records` — records covered per flush: how well
    /// concurrent committers share fsyncs.
    group_commit: Histogram,
    /// `wal_segment_rotations_total` — completed segment switches.
    rotations: Counter,
}

impl WalInstruments {
    fn new(recorder: &Recorder) -> Self {
        WalInstruments {
            appends: recorder.counter("wal_appends_total"),
            appended_bytes: recorder.counter("wal_appended_bytes_total"),
            fsync_micros: recorder.histogram("wal_fsync_micros"),
            group_commit: recorder.histogram("wal_group_commit_records"),
            rotations: recorder.counter("wal_segment_rotations_total"),
        }
    }

    /// Time one data flush into the fsync histogram.
    fn timed_sync(&self, file: &File) -> std::io::Result<()> {
        let started = self.fsync_micros.is_enabled().then(Instant::now);
        file.sync_data()?;
        if let Some(t) = started {
            self.fsync_micros.record_duration(t.elapsed());
        }
        Ok(())
    }
}

/// When the writer flushes records to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` before every [`WalWriter::append_entry`] returns. The
    /// simplest durability contract — the append *returns* durable —
    /// and the slowest: one disk flush per record. The flush runs
    /// *outside* the writer state lock (an internal commit), so
    /// concurrent stagers are not serialized behind each other's disk.
    Always,
    /// `fsync` in [`WalWriter::commit`], after the caller has released
    /// its locks. Concurrent committers share flushes: the first one to
    /// sync covers every record staged before it, and the rest return
    /// without touching the disk — the classic group commit.
    GroupCommit,
    /// Never `fsync` on append or commit; only segment rotation and
    /// explicit [`WalWriter::sync`] calls flush. Trades the crash window
    /// back for throughput — updates confirmed since the last flush can
    /// be lost, but the log never tears mid-record (recovery still
    /// truncates cleanly).
    Never,
}

/// Tuning for a [`WalWriter`].
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Rotate to a fresh segment once the active one reaches this many
    /// bytes. Smaller segments mean more files but finer-grained
    /// compaction (only closed segments are compacted).
    pub segment_bytes: u64,
    /// The fsync policy.
    pub sync: SyncPolicy,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            segment_bytes: 4 << 20,
            sync: SyncPolicy::GroupCommit,
        }
    }
}

#[derive(Debug)]
struct WriterState {
    file: File,
    /// Clean bytes in the active segment — header plus complete records.
    /// Doubles as the truncation point when an append fails partway.
    active_bytes: u64,
    /// The LSN the next append will take.
    next_lsn: u64,
    /// Every record with `lsn < durable_next` is on stable storage.
    durable_next: u64,
    /// Set when a failed append's partial bytes could not be erased.
    /// Appending after them would bury garbage mid-segment — turning a
    /// transient I/O error into a permanently unreadable log — so the
    /// writer refuses all further appends; the partial frame then reads
    /// as an ordinary torn tail on the next recovery.
    poisoned: bool,
    /// The active segment has reached [`WalConfig::segment_bytes`];
    /// rotation is owed. Appends only *set* this flag — the three-fsync
    /// rotation itself runs deferred, on the next `commit`/`sync`,
    /// outside the callers' critical sections (see
    /// [`WalWriter::finish_rotation`]).
    rotation_due: bool,
}

/// The durable append side of a write-ahead log: an exclusive,
/// shared-reference (`&self`) writer over a directory of segments.
///
/// * **Appends** go to the active (newest) segment; once it exceeds
///   [`WalConfig::segment_bytes`] a rotation is *owed* and settled on
///   the next `commit`/`sync` — outside callers' critical sections —
///   flushing the closing segment complete and creating a fresh one
///   (its directory entry fsync'd — a rotation the directory forgot
///   would orphan every later record).
/// * **Opening** an existing directory recovers the write position:
///   segments are validated, a torn tail left by a crash is truncated
///   away, and the next append continues the LSN sequence exactly where
///   the last *complete* record left it.
/// * **Durability** is two-phase to keep flushes out of callers'
///   critical sections: `append_entry` stages (cheap), `commit` blocks
///   until the record's LSN is covered by an fsync — see [`SyncPolicy`].
#[derive(Debug)]
pub struct WalWriter {
    dir: PathBuf,
    config: WalConfig,
    state: OrderedMutex<WriterState>,
    /// Serializes rotations so exactly one committer performs the
    /// deferred segment switch; acquired strictly before `state` (the
    /// one fixed order — never the other way around, which the
    /// [`pitract_core::lockdep`] ranks enforce in debug builds).
    rotation: OrderedMutex<()>,
    instruments: WalInstruments,
}

impl WalWriter {
    /// Open (creating if needed) a WAL directory and position the writer
    /// after the last complete record. A torn tail from a crash is
    /// truncated; damaged segments fail typed.
    pub fn open(dir: impl Into<PathBuf>, config: WalConfig) -> Result<Self, WalError> {
        Self::open_at(dir, config, 0)
    }

    /// Like [`Self::open`], but never hand out an LSN below `floor` —
    /// recovery passes the checkpoint mark here, so that even against an
    /// emptied log directory a fresh append can never be numbered below
    /// a position an existing checkpoint already claims to cover.
    pub fn open_at(
        dir: impl Into<PathBuf>,
        config: WalConfig,
        floor: u64,
    ) -> Result<Self, WalError> {
        Self::open_scanned(dir, config, floor).map(|(writer, _)| writer)
    }

    /// Like [`Self::open_at`], additionally returning the validated
    /// directory scan the open performed — recovery hands it to
    /// [`crate::WalReader::from_scan`] so the whole log is read and
    /// checksummed once, not once for the writer and again for the
    /// replay. (The scan reflects the directory *before* the open's
    /// torn-tail truncation; its record set is identical, since torn
    /// bytes never contain a complete record.)
    pub fn open_scanned(
        dir: impl Into<PathBuf>,
        config: WalConfig,
        floor: u64,
    ) -> Result<(Self, DirScan), WalError> {
        Self::open_scanned_observed(dir, config, floor, &Recorder::default())
    }

    /// Like [`Self::open`], publishing `wal_*` metrics (append counts,
    /// fsync latency, group-commit sizes, rotations) into `recorder`.
    pub fn open_observed(
        dir: impl Into<PathBuf>,
        config: WalConfig,
        recorder: &Recorder,
    ) -> Result<Self, WalError> {
        Self::open_scanned_observed(dir, config, 0, recorder).map(|(writer, _)| writer)
    }

    /// [`Self::open_scanned`] with metrics: every flush, group commit,
    /// and rotation this writer performs is recorded into `recorder`.
    pub fn open_scanned_observed(
        dir: impl Into<PathBuf>,
        config: WalConfig,
        floor: u64,
        recorder: &Recorder,
    ) -> Result<(Self, DirScan), WalError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let scan = scan_dir(&dir)?;
        let next_lsn = scan.next_lsn.max(floor);

        // Truncate a torn tail before anything else: the torn bytes were
        // never confirmed, and appending after them would bury garbage
        // inside the record stream.
        let file = match scan.segments.last() {
            Some(seg) if seg.clean_len >= SEGMENT_HEADER_LEN as u64 => {
                let file = OpenOptions::new().write(true).open(&seg.path)?;
                if seg.clean_len < seg.file_len {
                    file.set_len(seg.clean_len)?;
                    file.sync_all()?;
                }
                let mut file = file;
                file.seek_end()?;
                file
            }
            other => {
                // Empty directory, or a segment whose header never hit
                // the disk (torn at birth — remove the husk): start a
                // fresh segment at `next_lsn`.
                if let Some(seg) = other {
                    std::fs::remove_file(&seg.path)?;
                }
                create_segment(&dir, next_lsn)?
            }
        };
        let active_bytes = active_len(&scan);
        let writer = WalWriter {
            rotation: OrderedMutex::new(LockRank::WalRotation, ()),
            instruments: WalInstruments::new(recorder),
            state: OrderedMutex::new(
                LockRank::WalState,
                WriterState {
                    file,
                    active_bytes,
                    next_lsn,
                    // Everything that survived the scan is already on disk;
                    // whether it is *synced* is unknowable after a restart,
                    // so count only what we flush ourselves.
                    durable_next: 0,
                    poisoned: false,
                    // A recovered segment may already be over the threshold.
                    rotation_due: active_bytes >= config.segment_bytes,
                },
            ),
            dir,
            config,
        };
        Ok((writer, scan))
    }

    /// The WAL directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configuration this writer runs with.
    pub fn config(&self) -> &WalConfig {
        &self.config
    }

    /// The LSN the next append will be assigned.
    pub fn next_lsn(&self) -> u64 {
        self.lock().next_lsn
    }

    /// Every record with an LSN below this is known flushed to stable
    /// storage (by this writer; pre-existing records recovered at open
    /// count once the first sync covers them).
    pub fn durable_lsn(&self) -> u64 {
        self.lock().durable_next
    }

    /// Append one update entry (encoded with the `pitract-store` codec)
    /// and return its LSN. Under [`SyncPolicy::Always`] the record is
    /// durable on return; otherwise pair with [`Self::commit`].
    pub fn append_entry(&self, entry: &UpdateEntry) -> Result<u64, WalError> {
        let mut payload = CodecWriter::new();
        payload.update_entry(entry);
        self.append_payload(&payload.into_bytes())
    }

    /// Append one raw payload record and return its LSN.
    ///
    /// If the underlying write fails partway (e.g. the disk fills), the
    /// partial frame is truncated away so the segment stays clean; if
    /// even that fails, the writer poisons itself and every further
    /// append returns [`WalError::Poisoned`] — the partial bytes are
    /// then the segment's tail, which the next recovery truncates like
    /// any other crash residue.
    pub fn append_payload(&self, payload: &[u8]) -> Result<u64, WalError> {
        let lsn = {
            let mut state = self.lock();
            if state.poisoned {
                return Err(WalError::Poisoned);
            }
            let lsn = state.next_lsn;
            let record = encode_record(lsn, payload);
            if let Err(e) = state.file.write_all(&record) {
                // Erase whatever partial frame made it out; a record that
                // errored was never confirmed, and burying its bytes under
                // later successful appends would corrupt the whole segment.
                let clean = state.active_bytes;
                let healed = state.file.set_len(clean).is_ok() && state.file.seek_end().is_ok();
                if !healed {
                    state.poisoned = true;
                }
                return Err(e.into());
            }
            state.next_lsn += 1;
            state.active_bytes += record.len() as u64;
            self.instruments.appends.inc();
            self.instruments.appended_bytes.add(record.len() as u64);
            if state.active_bytes >= self.config.segment_bytes {
                // Owe a rotation, but never pay it here: the append path
                // runs inside callers' critical sections (for the engine
                // sink, the gid critical section), and rotation costs
                // three fsyncs. The next commit/sync settles the debt
                // outside every caller lock.
                state.rotation_due = true;
            }
            lsn
        };
        if matches!(self.config.sync, SyncPolicy::Always) {
            // Durable-on-return, but via the commit path: the flush (and
            // any owed rotation) happens outside the state lock, so
            // concurrent stagers queue behind a mutex-protected memory
            // write, not behind each other's disk.
            self.commit(lsn)?;
        }
        Ok(lsn)
    }

    /// Block until the record at `lsn` is durable. Under
    /// [`SyncPolicy::GroupCommit`] the first committer's flush covers
    /// every record staged before it, so concurrent committers share one
    /// fsync; under [`SyncPolicy::Never`] this returns immediately (the
    /// caller opted out of per-update durability).
    pub fn commit(&self, lsn: u64) -> Result<(), WalError> {
        if !matches!(self.config.sync, SyncPolicy::Never) {
            // Clone the handle under the lock, flush outside it: a slow
            // disk must not block concurrent appends (they only need
            // the mutex).
            let flush = {
                let state = self.lock();
                if state.durable_next > lsn {
                    None
                } else {
                    // The flush's group: every record staged but not yet
                    // durable rides this one fsync.
                    let group = state.next_lsn - state.durable_next;
                    Some((state.file.try_clone()?, state.next_lsn, group))
                }
            };
            if let Some((file, target, group)) = flush {
                self.instruments.timed_sync(&file)?;
                self.instruments.group_commit.record(group);
                let mut state = self.lock();
                state.durable_next = state.durable_next.max(target);
            }
        }
        // Settle any owed rotation — under every policy, including
        // `Never`: rotation is what seals closed segments complete, and
        // deferring it forever would grow the active segment unboundedly.
        self.finish_rotation()
    }

    /// Flush everything appended so far; returns the durable frontier
    /// (the LSN after the last flushed record).
    pub fn sync(&self) -> Result<u64, WalError> {
        let (file, target) = {
            let state = self.lock();
            (state.file.try_clone()?, state.next_lsn)
        };
        self.instruments.timed_sync(&file)?;
        let durable = {
            let mut state = self.lock();
            state.durable_next = state.durable_next.max(target);
            state.durable_next
        };
        self.finish_rotation()?;
        Ok(durable)
    }

    /// Flush and rotate to a fresh segment regardless of size — closing
    /// the current segment so a following [`crate::Compactor`] pass may
    /// rewrite it.
    pub fn rotate_now(&self) -> Result<(), WalError> {
        self.lock().rotation_due = true;
        self.finish_rotation()
    }

    /// Perform a deferred rotation, if one is owed. The closing segment
    /// must be complete on disk before the new one exists, whatever the
    /// sync policy: scan treats every non-last segment as crash-free.
    /// The bulk of that seal (the closing segment's data) is flushed
    /// through a cloned handle *outside* the state lock; only the
    /// sliver appended between that flush and the switch — plus the new
    /// segment's header + directory entry — is paid under the lock.
    fn finish_rotation(&self) -> Result<(), WalError> {
        // Cheap racing check before taking the rotation lock.
        if !self.lock().rotation_due {
            return Ok(());
        }
        let _turn = self.rotation.lock();
        // Pre-seal: flush the closing segment's bulk without the state
        // lock, so concurrent appends keep staging while the disk works.
        let pre = {
            let state = self.lock();
            if !state.rotation_due {
                // Another committer already rotated while we waited.
                return Ok(());
            }
            state.file.try_clone()?
        };
        self.instruments.timed_sync(&pre)?;
        // The switch: seal the sliver appended since the pre-flush and
        // install the fresh segment. If creating the segment fails the
        // flag stays set — appends continue into the old segment and the
        // next commit retries the rotation.
        let mut state = self.lock();
        if !state.rotation_due {
            return Ok(());
        }
        // Deliberate sync under the state lock: the bulk was flushed through a
        // cloned handle above; only the sliver since that pre-seal is paid
        // here, and the switch must be atomic with respect to appends.
        // lint:allow(no-fsync-under-lock)
        state.file.sync_data()?;
        state.durable_next = state.next_lsn;
        state.file = create_segment(&self.dir, state.next_lsn)?;
        state.active_bytes = SEGMENT_HEADER_LEN as u64;
        state.rotation_due = false;
        self.instruments.rotations.inc();
        Ok(())
    }

    fn lock(&self) -> OrderedMutexGuard<'_, WriterState> {
        self.state.lock()
    }
}

/// Create a fresh segment file based at `base_lsn`: header written,
/// file fsync'd, and — the part that is easy to forget — the *directory*
/// fsync'd, so the new segment's name survives a crash (the same rule
/// `pitract-store::write_atomic` applies after its rename).
fn create_segment(dir: &Path, base_lsn: u64) -> Result<File, WalError> {
    let path = dir.join(segment_file_name(base_lsn));
    let mut file = OpenOptions::new()
        .create(true)
        .truncate(true)
        .write(true)
        .open(&path)?;
    let cleanup = |e: std::io::Error| {
        // Remove the husk: left in place it could later sit *between*
        // healthy segments (appends continue in the old segment, a
        // retried rotation lands on a higher base), where its torn
        // header would read as corruption instead of crash residue.
        let _ = std::fs::remove_file(&path);
        WalError::Io(e)
    };
    file.write_all(&segment_header(base_lsn)).map_err(cleanup)?;
    file.sync_all().map_err(cleanup)?;
    fsync_dir(dir).map_err(cleanup)?;
    Ok(file)
}

/// Bytes already in the active segment after recovery (its clean
/// prefix), or a fresh header's worth when a new segment was created.
fn active_len(scan: &crate::segment::DirScan) -> u64 {
    match scan.segments.last() {
        Some(seg) if seg.clean_len >= SEGMENT_HEADER_LEN as u64 => seg.clean_len,
        _ => SEGMENT_HEADER_LEN as u64,
    }
}

/// Seek-to-end helper kept off the trait imports.
trait SeekEnd {
    fn seek_end(&mut self) -> std::io::Result<u64>;
}

impl SeekEnd for File {
    fn seek_end(&mut self) -> std::io::Result<u64> {
        use std::io::Seek as _;
        self.seek(std::io::SeekFrom::End(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::scan_dir;
    use pitract_relation::Value;
    use std::path::PathBuf;

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pitract-walw-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn insert(gid: usize, key: i64) -> UpdateEntry {
        UpdateEntry::Insert {
            gid,
            row: vec![Value::Int(key)],
        }
    }

    #[test]
    fn appends_assign_sequential_lsns_and_survive_reopen() {
        let dir = fresh_dir("seq");
        let wal = WalWriter::open(&dir, WalConfig::default()).unwrap();
        for i in 0..10 {
            assert_eq!(wal.append_entry(&insert(i, i as i64)).unwrap(), i as u64);
        }
        wal.sync().unwrap();
        assert_eq!(wal.durable_lsn(), 10);
        drop(wal);
        // Reopen continues the sequence.
        let wal = WalWriter::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(wal.next_lsn(), 10);
        assert_eq!(wal.append_entry(&insert(10, 10)).unwrap(), 10);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_closes_segments_and_fsyncs_them_complete() {
        let dir = fresh_dir("rotate");
        let config = WalConfig {
            segment_bytes: 128, // tiny: force several rotations
            sync: SyncPolicy::Never,
        };
        let wal = WalWriter::open(&dir, config).unwrap();
        for i in 0..50 {
            let lsn = wal.append_entry(&insert(i, i as i64)).unwrap();
            // Rotation is deferred out of the append path: commit (a
            // no-flush call under `Never`) is where the debt settles.
            wal.commit(lsn).unwrap();
        }
        let scan = scan_dir(&dir).unwrap();
        assert!(scan.segments.len() > 2, "tiny segments rotated");
        assert_eq!(scan.next_lsn, 50);
        let lsns: Vec<u64> = scan.records().map(|(l, _)| *l).collect();
        assert_eq!(lsns, (0..50).collect::<Vec<_>>());
        // Every closed segment scans strictly (scan_dir already enforces
        // it; this asserts the writer really did leave them complete).
        for seg in &scan.segments {
            assert_eq!(seg.clean_len, seg.file_len, "{:?}", seg.path);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The rotation-deferral contract itself: the size threshold
    /// tripping inside an append must NOT rotate inline (the append
    /// path runs inside callers' critical sections); the next commit —
    /// or an explicit sync — settles it, whatever the policy.
    #[test]
    fn rotation_is_deferred_from_append_to_commit() {
        let dir = fresh_dir("deferred");
        let config = WalConfig {
            segment_bytes: 64,
            sync: SyncPolicy::Never,
        };
        let wal = WalWriter::open(&dir, config).unwrap();
        // Blow well past the threshold with appends alone.
        let mut last = 0;
        for i in 0..10 {
            last = wal.append_entry(&insert(i, i as i64)).unwrap();
        }
        assert_eq!(
            scan_dir(&dir).unwrap().segments.len(),
            1,
            "appends only owe a rotation, they never pay it"
        );
        wal.commit(last).unwrap();
        let scan = scan_dir(&dir).unwrap();
        assert_eq!(scan.segments.len(), 2, "commit settled the owed rotation");
        assert_eq!(scan.next_lsn, 10, "no record lost across the deferral");
        // The closed segment is complete.
        assert_eq!(scan.segments[0].clean_len, scan.segments[0].file_len);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Group commit under concurrent stagers drives the deferred
    /// rotation from many racing committers at once — exactly one wins
    /// each owed rotation, every record survives, every closed segment
    /// is complete.
    #[test]
    fn racing_committers_rotate_exactly_once_per_debt() {
        let dir = fresh_dir("race-rotate");
        let config = WalConfig {
            segment_bytes: 256,
            sync: SyncPolicy::GroupCommit,
        };
        let wal = WalWriter::open(&dir, config).unwrap();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let wal = &wal;
                scope.spawn(move || {
                    for i in 0..50u64 {
                        let lsn = wal.append_entry(&insert((t * 50 + i) as usize, 1)).unwrap();
                        wal.commit(lsn).unwrap();
                    }
                });
            }
        });
        let scan = scan_dir(&dir).unwrap();
        assert_eq!(scan.next_lsn, 200);
        assert!(scan.segments.len() > 2, "rotations happened under racing");
        let lsns: Vec<u64> = scan.records().map(|(l, _)| *l).collect();
        assert_eq!(
            lsns,
            (0..200).collect::<Vec<_>>(),
            "no record lost or reordered"
        );
        for seg in &scan.segments {
            assert_eq!(seg.clean_len, seg.file_len, "{:?}", seg.path);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_truncates_a_torn_tail_and_appends_cleanly_after_it() {
        let dir = fresh_dir("torn");
        let wal = WalWriter::open(&dir, WalConfig::default()).unwrap();
        for i in 0..5 {
            wal.append_entry(&insert(i, i as i64)).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        // Simulate a crash mid-append: chop bytes off the active segment.
        let seg = scan_dir(&dir).unwrap().segments.pop().unwrap().path;
        let len = std::fs::metadata(&seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 7).unwrap();
        drop(f);

        let wal = WalWriter::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(wal.next_lsn(), 4, "the torn record was never confirmed");
        assert_eq!(wal.append_entry(&insert(4, 400)).unwrap(), 4);
        wal.sync().unwrap();
        let scan = scan_dir(&dir).unwrap();
        assert_eq!(scan.torn_bytes, 0, "tail healed");
        assert_eq!(scan.records().count(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn commit_group_covers_previously_staged_records() {
        let dir = fresh_dir("group");
        let wal = WalWriter::open(
            &dir,
            WalConfig {
                sync: SyncPolicy::GroupCommit,
                ..WalConfig::default()
            },
        )
        .unwrap();
        let a = wal.append_entry(&insert(0, 0)).unwrap();
        let b = wal.append_entry(&insert(1, 1)).unwrap();
        let c = wal.append_entry(&insert(2, 2)).unwrap();
        assert_eq!(wal.durable_lsn(), 0, "nothing flushed yet");
        wal.commit(b).unwrap();
        assert!(wal.durable_lsn() >= 3, "one flush covered a, b, and c");
        // The piggybacked commits return without needing another flush.
        wal.commit(a).unwrap();
        wal.commit(c).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sync_policies_differ_in_when_durability_happens() {
        for (policy, durable_after_append) in [
            (SyncPolicy::Always, true),
            (SyncPolicy::GroupCommit, false),
            (SyncPolicy::Never, false),
        ] {
            let dir = fresh_dir(&format!("policy-{policy:?}"));
            let wal = WalWriter::open(
                &dir,
                WalConfig {
                    sync: policy,
                    ..WalConfig::default()
                },
            )
            .unwrap();
            let lsn = wal.append_entry(&insert(0, 7)).unwrap();
            assert_eq!(
                wal.durable_lsn() > lsn,
                durable_after_append,
                "{policy:?} after append"
            );
            wal.commit(lsn).unwrap();
            let durable_after_commit = !matches!(policy, SyncPolicy::Never);
            assert_eq!(
                wal.durable_lsn() > lsn,
                durable_after_commit,
                "{policy:?} after commit"
            );
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn open_at_floor_never_hands_out_covered_lsns() {
        let dir = fresh_dir("floor");
        // An emptied directory with a checkpoint claiming to cover 40.
        let wal = WalWriter::open_at(&dir, WalConfig::default(), 40).unwrap();
        assert_eq!(wal.next_lsn(), 40);
        assert_eq!(wal.append_entry(&insert(0, 1)).unwrap(), 40);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
