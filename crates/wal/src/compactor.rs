//! Segment compaction: bound replay time (and disk) under churn.
//!
//! A WAL under insert/delete churn grows without bound even when the
//! *net* change is small — exactly the failure mode the paper's bounded
//! incremental contract warns about: recovery work should be
//! proportional to `|CHANGED|`, not to the update history. The
//! [`Compactor`] restores that bound on disk by rewriting **closed**
//! segments (all but the newest; the active segment is the writer's and
//! is never touched), dropping two classes of record:
//!
//! * records below the checkpoint mark — their effect is inside the
//!   checkpoint snapshot, so replay skips them anyway;
//! * insert+delete pairs above the mark whose halves share one closed
//!   segment — a row born and dead entirely inside one segment
//!   contributes nothing to any recovered state. (A delete whose
//!   insert is in the checkpoint, in a *different* segment, or still in
//!   the active segment, always survives.)
//!
//! Survivors keep their original LSNs — segments carry explicit
//! per-record sequence numbers precisely so compaction can remove
//! records without renumbering — and each segment is replaced atomically
//! ([`pitract_store::write_atomic`]: temp + fsync + rename + directory
//! fsync). The same-segment restriction on pair cancellation is what
//! makes the *whole pass* crash-safe, not just each file: every drop
//! decision commits or vanishes with exactly one segment's rename, so a
//! crash at any instant leaves a mix of old and new segments that still
//! recovers to the same state (cancelling a pair across two segments
//! would leave an orphaned, unreplayable delete if the crash landed
//! between their rewrites). Cross-segment pairs are not lost work —
//! they fall below the next checkpoint's mark and are dropped then by
//! the per-segment-safe covered-records rule.

use crate::error::WalError;
use crate::segment::{encode_record, scan_dir, segment_header, ScannedSegment};
use pitract_engine::UpdateEntry;
use pitract_store::codec::Reader as CodecReader;
use pitract_store::{fsync_dir, write_atomic};
use std::collections::HashMap;
use std::path::Path;

/// What one compaction pass did, for operators and benchmarks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Closed segments examined.
    pub segments_seen: usize,
    /// Segments rewritten with fewer records.
    pub segments_rewritten: usize,
    /// Segments removed outright (every record dropped).
    pub segments_removed: usize,
    /// Records in the closed segments before the pass.
    pub records_before: usize,
    /// Records remaining after the pass.
    pub records_after: usize,
    /// Bytes in the closed segments before the pass.
    pub bytes_before: u64,
    /// Bytes remaining after the pass.
    pub bytes_after: u64,
}

/// Rewrites closed segments, dropping records a recovery can never
/// need. See the module docs for the exact rules.
#[derive(Debug, Clone, Copy)]
pub struct Compactor {
    /// The confirmed checkpoint mark: the LSN of the first record *not*
    /// covered by the latest durable checkpoint. Records below it are
    /// dropped.
    mark: u64,
    /// Optional replication retention watermark: the lowest LSN an
    /// attached follower still needs. Closed segments holding any record
    /// at or above it are left byte-for-byte untouched — not rewritten,
    /// not removed — so a follower streaming `[watermark, …)` can never
    /// observe a segment mutating under its fetch. `None` retains
    /// nothing extra.
    retention: Option<u64>,
}

impl Compactor {
    /// A compactor honoring the checkpoint mark `mark` (pass 0 if no
    /// checkpoint exists yet — then only insert+delete pairs are
    /// cancelled).
    pub fn new(mark: u64) -> Self {
        Compactor {
            mark,
            retention: None,
        }
    }

    /// The checkpoint mark this compactor honors.
    pub fn mark(&self) -> u64 {
        self.mark
    }

    /// Honor a replication retention watermark: every closed segment
    /// containing a record with `lsn >= watermark` is excluded from the
    /// pass entirely (its inserts still count as gid-watermark carriers,
    /// like the active segment's). This is how the compaction/replication
    /// race is fixed *by construction*: the publisher computes the
    /// minimum applied LSN across attached followers and the compactor
    /// simply cannot touch the bytes those followers have yet to fetch.
    pub fn with_retention(mut self, watermark: Option<u64>) -> Self {
        self.retention = watermark;
        self
    }

    /// The retention watermark this compactor honors, if any.
    pub fn retention(&self) -> Option<u64> {
        self.retention
    }

    /// Compact every closed segment of `dir`. Closed segments must scan
    /// strictly (a tear there is damage, not a crash residue), and every
    /// payload must decode — the compactor refuses to rewrite a log it
    /// cannot fully interpret.
    pub fn compact_dir(&self, dir: &Path) -> Result<CompactionReport, WalError> {
        let scan = scan_dir(dir)?;
        let mut report = CompactionReport::default();
        // All but the newest segment are closed. (With 0 or 1 segments
        // there is nothing to do.)
        let all_closed: &[ScannedSegment] = match scan.segments.split_last() {
            Some((_active, closed)) => closed,
            None => &[],
        };
        // The retention watermark partitions the closed set: a segment
        // holding any record an attached follower still needs (lsn at or
        // above the watermark) is off limits in its entirety — followers
        // fetch segment bytes, and a rewrite under a fetch would tear
        // the shipped stream. Protected segments behave like the active
        // one: untouched, but their inserts still carry the gid
        // watermark.
        let floor = self.retention.unwrap_or(u64::MAX);
        let (closed, protected): (Vec<&ScannedSegment>, Vec<&ScannedSegment>) =
            all_closed.iter().partition(|seg| {
                seg.base_lsn < floor && seg.records.last().is_none_or(|(lsn, _)| *lsn < floor)
            });
        if closed.is_empty() {
            return Ok(report);
        }

        // Decode every closed record once, globally — pair matching
        // needs the whole closed region even though only same-segment
        // pairs may cancel (a delete whose insert sits in an *earlier*
        // segment must be recognized as matched, and kept).
        let mut decoded: Vec<Vec<(u64, UpdateEntry, &[u8])>> = Vec::with_capacity(closed.len());
        for seg in &closed {
            let name = seg.path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
            let mut entries = Vec::with_capacity(seg.records.len());
            for (lsn, payload) in &seg.records {
                let mut r = CodecReader::new(payload);
                let entry = r.update_entry().map_err(|e| WalError::Corrupt {
                    segment: name.to_string(),
                    offset: 0,
                    reason: format!("record {lsn} payload does not decode: {e}"),
                })?;
                entries.push((*lsn, entry, payload.as_slice()));
            }
            decoded.push(entries);
        }

        // Decide survivors: drop below-mark records, then cancel
        // insert+delete pairs among what is left.
        let mut drop: Vec<Vec<bool>> = decoded
            .iter()
            .map(|seg| seg.iter().map(|(lsn, _, _)| *lsn < self.mark).collect())
            .collect();
        /// A cancelled pair: the shared gid plus the `(segment, record)`
        /// positions of its insert and delete.
        struct CancelledPair {
            gid: usize,
            insert_at: (usize, usize),
            delete_at: (usize, usize),
        }
        let mut open_inserts: HashMap<usize, (usize, usize)> = HashMap::new();
        let mut pairs: Vec<CancelledPair> = Vec::new();
        for (si, seg) in decoded.iter().enumerate() {
            for (ri, (_, entry, _)) in seg.iter().enumerate() {
                if drop[si][ri] {
                    continue;
                }
                match entry {
                    UpdateEntry::Insert { gid, .. } => {
                        open_inserts.insert(*gid, (si, ri));
                    }
                    UpdateEntry::Delete { gid } => {
                        // Cancel only pairs whose halves share a segment:
                        // each segment is replaced atomically, but the
                        // *pass* is not atomic across segments — dropping
                        // an insert in one rewrite and its delete in
                        // another would let a crash between them orphan
                        // the delete, and an orphaned delete makes the
                        // tail unreplayable. A cross-segment pair simply
                        // survives until a later checkpoint mark covers
                        // it, which drops both halves by a rule that is
                        // safe per segment.
                        if let Some((isi, iri)) = open_inserts.remove(gid) {
                            if isi == si {
                                drop[isi][iri] = true;
                                drop[si][ri] = true;
                                pairs.push(CancelledPair {
                                    gid: *gid,
                                    insert_at: (isi, iri),
                                    delete_at: (si, ri),
                                });
                            }
                        }
                    }
                }
            }
        }

        // The watermark rule (mirroring `UpdateLog::compact`): if the
        // highest inserted gid in the compactable region belongs to a
        // cancelled pair and no surviving insert — in the closed set or
        // the active segment — carries a higher id, resurrect that pair,
        // so a recovery from the compacted log still advances the id
        // allocator exactly as far as the history did.
        if let Some(watermark) = pairs.iter().max_by_key(|p| p.gid) {
            let closed_carrier = decoded
                .iter()
                .enumerate()
                .flat_map(|(si, seg)| {
                    let drop = &drop[si];
                    seg.iter()
                        .enumerate()
                        .filter_map(move |(ri, (_, e, _))| match (drop[ri], e) {
                            (false, UpdateEntry::Insert { gid, .. }) => Some(*gid),
                            _ => None,
                        })
                })
                .max();
            let mut untouched_carrier = match scan.segments.last() {
                Some(seg) => active_insert_watermark(seg)?,
                None => None,
            };
            for seg in &protected {
                untouched_carrier = untouched_carrier.max(active_insert_watermark(seg)?);
            }
            let carrier = closed_carrier.max(untouched_carrier);
            if carrier.is_none_or(|c| c < watermark.gid) {
                drop[watermark.insert_at.0][watermark.insert_at.1] = false;
                drop[watermark.delete_at.0][watermark.delete_at.1] = false;
            }
        }

        // Rewrite each changed segment 1:1 (same name, same base LSN) —
        // per-segment atomicity means a crash mid-pass leaves a mix of
        // old and new segments that still recovers identically: every
        // dropped record was either covered by the checkpoint or part of
        // a self-cancelling pair.
        for (seg, (entries, drop)) in closed.iter().zip(decoded.iter().zip(&drop)) {
            report.segments_seen += 1;
            report.records_before += entries.len();
            report.bytes_before += seg.file_len;
            let survivors: Vec<&(u64, UpdateEntry, &[u8])> = entries
                .iter()
                .zip(drop)
                .filter(|(_, &dead)| !dead)
                .map(|(e, _)| e)
                .collect();
            report.records_after += survivors.len();
            if survivors.len() == entries.len() {
                report.bytes_after += seg.file_len;
                continue; // nothing dropped: leave the file untouched
            }
            if survivors.is_empty() {
                std::fs::remove_file(&seg.path)?;
                fsync_dir(dir)?;
                report.segments_removed += 1;
                continue;
            }
            let mut bytes = segment_header(seg.base_lsn);
            for (lsn, _, payload) in survivors {
                bytes.extend_from_slice(&encode_record(*lsn, payload));
            }
            report.bytes_after += bytes.len() as u64;
            write_atomic(&seg.path, &bytes)?;
            report.segments_rewritten += 1;
        }
        Ok(report)
    }
}

/// Highest inserted gid among the active segment's records (the segment
/// compaction never touches, whose inserts therefore always survive as
/// watermark carriers).
fn active_insert_watermark(active: &ScannedSegment) -> Result<Option<usize>, WalError> {
    let name = active
        .path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("?");
    let mut max = None;
    for (lsn, payload) in &active.records {
        let mut r = CodecReader::new(payload);
        let entry = r.update_entry().map_err(|e| WalError::Corrupt {
            segment: name.to_string(),
            offset: 0,
            reason: format!("record {lsn} payload does not decode: {e}"),
        })?;
        if let UpdateEntry::Insert { gid, .. } = entry {
            max = max.max(Some(gid));
        }
    }
    Ok(max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::WalReader;
    use crate::writer::{SyncPolicy, WalConfig, WalWriter};
    use pitract_relation::Value;
    use std::path::PathBuf;

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pitract-walc-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_wal(dir: &Path) -> WalWriter {
        WalWriter::open(
            dir,
            WalConfig {
                segment_bytes: 120,
                sync: SyncPolicy::Never,
            },
        )
        .unwrap()
    }

    fn insert(gid: usize) -> UpdateEntry {
        UpdateEntry::Insert {
            gid,
            row: vec![Value::Int(gid as i64)],
        }
    }

    #[test]
    fn drops_covered_records_and_cancelled_pairs_but_keeps_the_rest() {
        let dir = fresh_dir("rules");
        // One roomy segment, closed at the end: the pair's halves share
        // it, so cancellation is in play.
        let wal = WalWriter::open(
            &dir,
            WalConfig {
                segment_bytes: 1 << 20,
                sync: SyncPolicy::Never,
            },
        )
        .unwrap();
        // lsn 0..3: covered by the checkpoint mark below.
        for gid in 0..4 {
            wal.append_entry(&insert(gid)).unwrap();
        }
        // lsn 4: insert later deleted at lsn 6 → pair cancels.
        wal.append_entry(&insert(100)).unwrap();
        // lsn 5: delete of a pre-WAL row (no matching insert) → survives.
        wal.append_entry(&UpdateEntry::Delete { gid: 1 }).unwrap();
        // lsn 6: the delete half of the pair.
        wal.append_entry(&UpdateEntry::Delete { gid: 100 }).unwrap();
        // lsn 7: surviving insert.
        wal.append_entry(&insert(101)).unwrap();
        // Close everything so the compactor may touch it.
        wal.rotate_now().unwrap();

        let report = Compactor::new(4).compact_dir(&dir).unwrap();
        assert_eq!(report.records_before, 8);
        assert_eq!(report.records_after, 2, "only lsn 5 and 7 survive");
        assert!(report.bytes_after < report.bytes_before);
        assert!(report.segments_rewritten + report.segments_removed > 0);

        let reader = WalReader::open(&dir).unwrap();
        let kept: Vec<(u64, UpdateEntry)> = reader
            .records()
            .iter()
            .map(|r| (r.lsn, r.entry.clone()))
            .collect();
        assert_eq!(
            kept,
            vec![(5, UpdateEntry::Delete { gid: 1 }), (7, insert(101)),],
            "survivors keep their original lsns"
        );
        // The writer still appends after the compacted tail.
        drop(wal);
        let wal = tiny_wal(&dir);
        assert_eq!(wal.next_lsn(), 8);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cross_segment_pairs_survive_for_crash_atomicity() {
        let dir = fresh_dir("crossseg");
        let wal = tiny_wal(&dir);
        // Insert in one segment, delete it two rotations later. Dropping
        // the pair would touch two files, and the pass is only atomic
        // per file — a crash between the rewrites would orphan the
        // delete — so the pair must survive. A later checkpoint mark
        // covers it instead, which drops per segment safely.
        wal.append_entry(&insert(0)).unwrap();
        wal.rotate_now().unwrap();
        for gid in 1..4 {
            wal.append_entry(&insert(gid)).unwrap();
        }
        wal.rotate_now().unwrap();
        wal.append_entry(&UpdateEntry::Delete { gid: 0 }).unwrap();
        wal.rotate_now().unwrap();
        Compactor::new(0).compact_dir(&dir).unwrap();
        let reader = WalReader::open(&dir).unwrap();
        assert_eq!(reader.len(), 5, "nothing cancelled across segments");
        // Every delete still has its insert earlier in the stream: the
        // compacted log replays strictly, no orphaned halves.
        let entries: Vec<UpdateEntry> = reader.records().iter().map(|r| r.entry.clone()).collect();
        for (i, e) in entries.iter().enumerate() {
            if let UpdateEntry::Delete { gid } = e {
                assert!(
                    entries[..i]
                        .iter()
                        .any(|p| matches!(p, UpdateEntry::Insert { gid: g, .. } if g == gid)),
                    "delete of {gid} orphaned"
                );
            }
        }
        // Once a checkpoint covers the pair, it goes (per-segment-safe).
        Compactor::new(5).compact_dir(&dir).unwrap();
        assert!(WalReader::open(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trailing_pair_is_kept_as_the_allocator_watermark() {
        let dir = fresh_dir("watermark");
        let wal = WalWriter::open(
            &dir,
            WalConfig {
                segment_bytes: 1 << 20,
                sync: SyncPolicy::Never,
            },
        )
        .unwrap();
        // Pure churn: every insert is deleted; the highest pair must
        // survive compaction so recovery still knows gid 9 was assigned.
        for gid in 0..10 {
            wal.append_entry(&insert(gid)).unwrap();
            wal.append_entry(&UpdateEntry::Delete { gid }).unwrap();
        }
        wal.rotate_now().unwrap();
        Compactor::new(0).compact_dir(&dir).unwrap();
        let reader = WalReader::open(&dir).unwrap();
        let survivors: Vec<UpdateEntry> =
            reader.records().iter().map(|r| r.entry.clone()).collect();
        assert_eq!(
            survivors,
            vec![insert(9), UpdateEntry::Delete { gid: 9 }],
            "exactly the watermark pair remains"
        );
        // A higher insert in the *active* segment releases it.
        wal.append_entry(&insert(10)).unwrap();
        wal.sync().unwrap();
        Compactor::new(0).compact_dir(&dir).unwrap();
        let reader = WalReader::open(&dir).unwrap();
        let survivors: Vec<UpdateEntry> =
            reader.records().iter().map(|r| r.entry.clone()).collect();
        assert_eq!(
            survivors,
            vec![insert(10)],
            "active insert carries the watermark"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn active_segment_and_its_pairs_are_left_alone() {
        let dir = fresh_dir("active");
        let wal = tiny_wal(&dir);
        wal.append_entry(&insert(7)).unwrap();
        wal.rotate_now().unwrap();
        // The delete lands in the *active* segment: the closed insert
        // must survive (its pair partner is outside the compactable set).
        wal.append_entry(&UpdateEntry::Delete { gid: 7 }).unwrap();
        Compactor::new(0).compact_dir(&dir).unwrap();
        let reader = WalReader::open(&dir).unwrap();
        assert_eq!(reader.len(), 2, "nothing was dropped");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fully_covered_segments_are_removed() {
        let dir = fresh_dir("removed");
        let wal = tiny_wal(&dir);
        for gid in 0..20 {
            wal.append_entry(&insert(gid)).unwrap();
        }
        wal.rotate_now().unwrap();
        let segments_before = crate::segment::scan_dir(&dir).unwrap().segments.len();
        let report = Compactor::new(20).compact_dir(&dir).unwrap();
        assert_eq!(report.records_after, 0);
        assert_eq!(report.segments_removed, segments_before - 1);
        let reader = WalReader::open(&dir).unwrap();
        assert!(reader.is_empty());
        assert_eq!(reader.next_lsn(), 20, "the active segment keeps the base");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retention_watermark_shields_segments_a_follower_still_needs() {
        let dir = fresh_dir("retention");
        let wal = tiny_wal(&dir);
        for gid in 0..12 {
            wal.append_entry(&insert(gid)).unwrap();
        }
        wal.rotate_now().unwrap();
        // Remember every closed segment's bytes before the pass.
        let before = crate::segment::scan_dir(&dir).unwrap();
        let snapshot: Vec<(PathBuf, Vec<u64>, Vec<u8>)> = before
            .segments
            .iter()
            .map(|s| {
                (
                    s.path.clone(),
                    s.records.iter().map(|(l, _)| *l).collect(),
                    std::fs::read(&s.path).unwrap(),
                )
            })
            .collect();
        // The checkpoint covers everything, but a follower has only
        // applied up to lsn 5: segments holding any record >= 5 must
        // survive the pass bit-for-bit.
        Compactor::new(12)
            .with_retention(Some(5))
            .compact_dir(&dir)
            .unwrap();
        for (path, lsns, bytes) in &snapshot {
            let needed = lsns.iter().any(|l| *l >= 5);
            let closed = *path != snapshot.last().unwrap().0;
            if needed {
                assert_eq!(
                    &std::fs::read(path).unwrap(),
                    bytes,
                    "{path:?} mutated under retention"
                );
            } else if closed {
                assert!(
                    !path.exists(),
                    "{path:?} is fully covered and below retention"
                );
            }
        }
        // Every record at or above the follower's position is still
        // fetchable after the pass.
        let after = crate::segment::scan_dir(&dir).unwrap();
        let kept: Vec<u64> = after.records().map(|(l, _)| *l).collect();
        let owed: Vec<u64> = before
            .records()
            .map(|(l, _)| *l)
            .filter(|l| *l >= 5)
            .collect();
        assert!(
            owed.iter().all(|l| kept.contains(l)),
            "owed {owed:?} vs kept {kept:?}"
        );
        // Once the follower catches up (retention lifts), the same mark
        // drops the rest.
        Compactor::new(12).compact_dir(&dir).unwrap();
        assert!(WalReader::open(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_is_idempotent() {
        let dir = fresh_dir("idem");
        let wal = tiny_wal(&dir);
        for gid in 0..10 {
            wal.append_entry(&insert(gid)).unwrap();
            if gid % 2 == 0 {
                wal.append_entry(&UpdateEntry::Delete { gid }).unwrap();
            }
        }
        wal.rotate_now().unwrap();
        let first = Compactor::new(3).compact_dir(&dir).unwrap();
        let after_first: Vec<_> = WalReader::open(&dir).unwrap().records().to_vec();
        let second = Compactor::new(3).compact_dir(&dir).unwrap();
        let after_second: Vec<_> = WalReader::open(&dir).unwrap().records().to_vec();
        assert_eq!(after_first, after_second);
        assert_eq!(second.records_before, first.records_after);
        assert_eq!(second.segments_rewritten, 0, "second pass rewrites nothing");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
