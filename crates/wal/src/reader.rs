//! The recovery side: total, typed reading of a WAL directory.

use crate::error::WalError;
use crate::segment::{scan_dir, DirScan};
use pitract_engine::{UpdateEntry, UpdateLog};
use pitract_obs::Recorder;
use pitract_store::codec::Reader as CodecReader;
use std::path::Path;

/// One recovered record: its log sequence number and decoded entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The record's log sequence number.
    pub lsn: u64,
    /// The decoded update.
    pub entry: UpdateEntry,
}

/// A fully validated read of a WAL directory: every complete record of
/// every segment, decoded and in LSN order; a torn tail (the residue of
/// a crash mid-append) is reported, not errored.
///
/// Reading is **total**: arbitrary bytes produce a typed [`WalError`] —
/// checksum-framed records whose payloads fail to decode are
/// [`WalError::Corrupt`], never a panic and never an unbounded
/// allocation (the frame length is bounds-checked against the file).
#[derive(Debug)]
pub struct WalReader {
    records: Vec<WalRecord>,
    next_lsn: u64,
    torn_bytes: u64,
    segment_count: usize,
}

impl WalReader {
    /// Scan and decode `dir`. A missing directory reads as an empty log.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, WalError> {
        Self::from_scan(&scan_dir(dir.as_ref())?)
    }

    /// Like [`Self::open`], reporting what recovery found into
    /// `recorder` — see [`Self::from_scan_observed`].
    pub fn open_observed(dir: impl AsRef<Path>, recorder: &Recorder) -> Result<Self, WalError> {
        Self::from_scan_observed(&scan_dir(dir.as_ref())?, recorder)
    }

    /// Decode an already-performed directory scan (e.g. the one
    /// [`crate::WalWriter::open_scanned`] returns), so recovery reads
    /// and checksums the log exactly once.
    pub fn from_scan(scan: &DirScan) -> Result<Self, WalError> {
        Self::from_scan_observed(scan, &Recorder::default())
    }

    /// [`Self::from_scan`], reporting what recovery found into
    /// `recorder`. A torn tail — the residue of a crash mid-append that
    /// recovery truncates away — used to vanish silently; here it emits
    /// a `wal_torn_tail_truncated` trace event carrying the truncated
    /// byte and dropped-record counts, plus the
    /// `wal_recovery_truncations_total` / `wal_recovery_torn_bytes_total`
    /// / `wal_recovery_dropped_records_total` counters. (The torn region
    /// is by construction at most one partial frame — a complete record
    /// after it would have scanned clean — so the dropped-record count is
    /// 0 or 1; checksum-invalid *complete* frames are corruption, a typed
    /// error, never silent truncation.)
    pub fn from_scan_observed(scan: &DirScan, recorder: &Recorder) -> Result<Self, WalError> {
        let mut records = Vec::new();
        for seg in &scan.segments {
            let name = seg.path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
            for (lsn, payload) in &seg.records {
                let mut r = CodecReader::new(payload);
                let entry = r.update_entry().map_err(|e| WalError::Corrupt {
                    segment: name.to_string(),
                    offset: 0,
                    reason: format!("record {lsn} payload does not decode: {e}"),
                })?;
                if !r.is_exhausted() {
                    return Err(WalError::Corrupt {
                        segment: name.to_string(),
                        offset: 0,
                        reason: format!("record {lsn} has trailing payload bytes"),
                    });
                }
                records.push(WalRecord { lsn: *lsn, entry });
            }
        }
        if scan.torn_bytes > 0 {
            let dropped = u64::from(scan.torn_bytes > 0);
            recorder.event(
                "wal_torn_tail_truncated",
                &[
                    ("torn_bytes", scan.torn_bytes),
                    ("dropped_records", dropped),
                ],
            );
            recorder.counter("wal_recovery_truncations_total").inc();
            recorder
                .counter("wal_recovery_torn_bytes_total")
                .add(scan.torn_bytes);
            recorder
                .counter("wal_recovery_dropped_records_total")
                .add(dropped);
        }
        Ok(WalReader {
            records,
            next_lsn: scan.next_lsn,
            torn_bytes: scan.torn_bytes,
            segment_count: scan.segments.len(),
        })
    }

    /// Every recovered record, in LSN order.
    pub fn records(&self) -> &[WalRecord] {
        &self.records
    }

    /// Number of recovered records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Was the directory empty of records?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The LSN the next append would take.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Bytes of torn tail found after the last complete record — nonzero
    /// exactly when the process crashed mid-append.
    pub fn torn_bytes(&self) -> u64 {
        self.torn_bytes
    }

    /// Number of segment files scanned.
    pub fn segment_count(&self) -> usize {
        self.segment_count
    }

    /// The replayable log of every record at or after `from_lsn` — what
    /// recovery applies on top of the checkpoint that covers everything
    /// below `from_lsn`.
    pub fn tail_log(&self, from_lsn: u64) -> UpdateLog {
        UpdateLog::from_entries(
            self.records
                .iter()
                .filter(|r| r.lsn >= from_lsn)
                .map(|r| r.entry.clone())
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{WalConfig, WalWriter};
    use pitract_relation::Value;
    use std::path::PathBuf;

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pitract-walr-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn reads_back_what_the_writer_appended_across_segments() {
        let dir = fresh_dir("roundtrip");
        let wal = WalWriter::open(
            &dir,
            WalConfig {
                segment_bytes: 96,
                sync: crate::writer::SyncPolicy::Never,
            },
        )
        .unwrap();
        let mut expected = Vec::new();
        for i in 0..25usize {
            let entry = if i % 3 == 2 {
                UpdateEntry::Delete { gid: i - 1 }
            } else {
                UpdateEntry::Insert {
                    gid: i,
                    row: vec![Value::Int(i as i64), Value::str(format!("r{i}"))],
                }
            };
            let lsn = wal.append_entry(&entry).unwrap();
            expected.push(WalRecord { lsn, entry });
        }
        wal.sync().unwrap();
        let reader = WalReader::open(&dir).unwrap();
        assert_eq!(reader.records(), expected.as_slice());
        assert_eq!(reader.next_lsn(), 25);
        assert_eq!(reader.torn_bytes(), 0);
        assert!(reader.segment_count() > 1, "rotation happened");
        // Tail extraction respects the mark.
        assert_eq!(reader.tail_log(0).len(), 25);
        assert_eq!(reader.tail_log(20).len(), 5);
        assert_eq!(reader.tail_log(25).len(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_payload_is_corrupt_not_a_panic() {
        use crate::segment::{encode_record, segment_file_name, segment_header};
        let dir = fresh_dir("garbage");
        std::fs::create_dir_all(&dir).unwrap();
        // A perfectly framed record whose payload is not an UpdateEntry.
        let mut bytes = segment_header(0);
        bytes.extend_from_slice(&encode_record(0, &[9, 9, 9, 9]));
        std::fs::write(dir.join(segment_file_name(0)), bytes).unwrap();
        let err = WalReader::open(&dir).unwrap_err();
        assert!(
            matches!(err, WalError::Corrupt { ref reason, .. } if reason.contains("decode")),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_is_an_empty_log() {
        let reader = WalReader::open("/nonexistent/definitely/not/here").unwrap();
        assert!(reader.is_empty());
        assert_eq!(reader.next_lsn(), 0);
    }

    /// Satellite of the observability PR: a torn tail is truncated *and
    /// reported* — typed trace event plus counters carrying the
    /// truncated-byte and dropped-record counts — instead of vanishing
    /// silently.
    #[test]
    fn torn_tail_truncation_emits_event_and_counters() {
        use std::fs::OpenOptions;
        let dir = fresh_dir("torn-observed");
        let wal = WalWriter::open(&dir, WalConfig::default()).unwrap();
        for i in 0..5 {
            wal.append_entry(&UpdateEntry::Insert {
                gid: i,
                row: vec![Value::Int(i as i64)],
            })
            .unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        // Crash mid-append: chop bytes off the active segment.
        let seg = crate::segment::scan_dir(&dir)
            .unwrap()
            .segments
            .pop()
            .unwrap()
            .path;
        let len = std::fs::metadata(&seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 7).unwrap();
        drop(f);

        let recorder = pitract_obs::Recorder::new();
        let reader = WalReader::open_observed(&dir, &recorder).unwrap();
        assert_eq!(reader.len(), 4, "the torn record is gone");
        let torn = reader.torn_bytes();
        assert!(torn > 0);
        let snap = recorder.snapshot();
        assert_eq!(snap.counter("wal_recovery_truncations_total"), Some(1));
        assert_eq!(snap.counter("wal_recovery_torn_bytes_total"), Some(torn));
        assert_eq!(snap.counter("wal_recovery_dropped_records_total"), Some(1));
        let events = recorder.drain_trace();
        let ev = events
            .iter()
            .find(|e| e.name == "wal_torn_tail_truncated")
            .expect("truncation event emitted");
        assert!(ev.fields.contains(&("torn_bytes", torn)));
        assert!(ev.fields.contains(&("dropped_records", 1)));
        // A clean directory reports nothing.
        let clean = pitract_obs::Recorder::new();
        let wal = WalWriter::open(&dir, WalConfig::default()).unwrap();
        wal.sync().unwrap();
        drop(wal);
        WalReader::open_observed(&dir, &clean).unwrap();
        assert_eq!(
            clean.snapshot().counter("wal_recovery_truncations_total"),
            None
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
