//! The on-disk segment format and its total scanner.
//!
//! # Layout (format version 1)
//!
//! A WAL is a directory of segment files named `<base-lsn>.seg` (the
//! base LSN zero-padded to 20 digits so lexicographic order equals
//! numeric order). Each segment is:
//!
//! ```text
//! offset  size  field
//! ------  ----  ---------------------------------------------------
//! 0       8     magic tag, the ASCII bytes "PITRWSEG"
//! 8       2     format version, u16 LE (currently 1)
//! 10      8     base LSN, u64 LE (first sequence number this segment
//!               may hold; must match the file name)
//! 18      ...   records, back to back
//! ```
//!
//! and each record is:
//!
//! ```text
//! size  field
//! ----  ------------------------------------------------------------
//! 4     payload length n, u32 LE
//! 8     LSN, u64 LE (strictly increasing; gaps allowed — compaction
//!       removes records but never renumbers survivors)
//! n     payload (an UpdateEntry in the pitract-store codec)
//! 8     FNV-1a-64 checksum over the preceding 12 + n bytes, u64 LE
//! ```
//!
//! The checksum covers the length and LSN fields too, so a corrupted
//! frame cannot masquerade as a short valid record.
//!
//! # Torn tails vs. corruption
//!
//! [`scan_segment`] distinguishes the two failure shapes a segment can
//! have, because they demand opposite reactions:
//!
//! * a **torn tail** — the *last* segment ends before a record's declared
//!   frame is complete. That is the unavoidable residue of a crash
//!   mid-append: the record was never confirmed, so the scanner reports
//!   the clean prefix and the writer truncates the tail. Never an error.
//! * **corruption** — a fully framed record whose checksum does not
//!   match, a sequence number running backwards, or a *closed* segment
//!   ending mid-record. No crash produces these (appends only ever
//!   truncate the tail of the newest segment); they mean the disk or an
//!   operator damaged the log, and recovery must say so typed rather
//!   than replay a prefix that silently diverges from history.

use crate::error::WalError;
use pitract_core::hash::fnv1a64;
use std::path::{Path, PathBuf};

/// The 8-byte magic tag opening every segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"PITRWSEG";

/// The segment format version this binary writes and the only one it
/// reads.
pub const SEGMENT_VERSION: u16 = 1;

/// File extension of WAL segments.
pub const SEGMENT_EXT: &str = "seg";

/// Bytes of the segment header (magic + version + base LSN).
pub const SEGMENT_HEADER_LEN: usize = 8 + 2 + 8;

/// Fixed bytes per record around the payload (length + LSN + checksum).
pub const RECORD_OVERHEAD: usize = 4 + 8 + 8;

/// Decode a little-endian `u16` from an exactly-sized slice. Callers
/// index `bytes` with offsets they have already length-checked, so this
/// is a plain fixed-width copy, not a fallible parse.
fn le_u16(bytes: &[u8]) -> u16 {
    let mut raw = [0u8; 2];
    raw.copy_from_slice(bytes);
    u16::from_le_bytes(raw)
}

/// Decode a little-endian `u32` from an exactly-sized slice.
fn le_u32(bytes: &[u8]) -> u32 {
    let mut raw = [0u8; 4];
    raw.copy_from_slice(bytes);
    u32::from_le_bytes(raw)
}

/// Decode a little-endian `u64` from an exactly-sized slice.
fn le_u64(bytes: &[u8]) -> u64 {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(bytes);
    u64::from_le_bytes(raw)
}

/// Encode a segment header for `base_lsn`.
pub fn segment_header(base_lsn: u64) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(SEGMENT_HEADER_LEN);
    bytes.extend_from_slice(&SEGMENT_MAGIC);
    bytes.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&base_lsn.to_le_bytes());
    bytes
}

/// The canonical file name of the segment based at `base_lsn`.
pub fn segment_file_name(base_lsn: u64) -> String {
    format!("{base_lsn:020}.{SEGMENT_EXT}")
}

/// Parse a segment file name back to its base LSN (`None` for foreign
/// files, which directory scans skip).
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    let stem = name.strip_suffix(&format!(".{SEGMENT_EXT}"))?;
    if stem.len() != 20 || !stem.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    stem.parse().ok()
}

/// Encode one record: length + LSN + payload + checksum.
pub fn encode_record(lsn: u64, payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(RECORD_OVERHEAD + payload.len());
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&lsn.to_le_bytes());
    bytes.extend_from_slice(payload);
    let checksum = fnv1a64(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes
}

/// One scanned segment: every complete, validated record plus where the
/// clean prefix ends.
#[derive(Debug)]
pub struct SegmentScan {
    /// Base LSN from the header.
    pub base_lsn: u64,
    /// `(lsn, payload)` of every valid record, in order.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Byte length of the valid prefix (header + complete records). A
    /// writer resuming this segment truncates the file here.
    pub clean_len: u64,
    /// Bytes past the clean prefix — nonzero only for a torn tail in the
    /// last segment.
    pub torn_bytes: u64,
}

/// Scan one segment's bytes. `last` marks the newest segment of the
/// directory — the only one allowed a torn tail; `name` labels errors.
pub fn scan_segment(
    bytes: &[u8],
    name_base: u64,
    last: bool,
    name: &str,
) -> Result<SegmentScan, WalError> {
    let corrupt = |offset: usize, reason: String| WalError::Corrupt {
        segment: name.to_string(),
        offset: offset as u64,
        reason,
    };
    if bytes.len() < SEGMENT_HEADER_LEN {
        if last {
            // A crash while the header itself was being written: nothing
            // in this segment was ever confirmed.
            return Ok(SegmentScan {
                base_lsn: name_base,
                records: Vec::new(),
                clean_len: 0,
                torn_bytes: bytes.len() as u64,
            });
        }
        return Err(corrupt(0, "closed segment shorter than its header".into()));
    }
    if bytes[..8] != SEGMENT_MAGIC {
        return Err(WalError::NotASegment {
            path: name.to_string(),
        });
    }
    let version = le_u16(&bytes[8..10]);
    if version != SEGMENT_VERSION {
        return Err(WalError::VersionMismatch {
            found: version,
            expected: SEGMENT_VERSION,
        });
    }
    let base_lsn = le_u64(&bytes[10..18]);
    if base_lsn != name_base {
        return Err(corrupt(
            10,
            format!("header base lsn {base_lsn} does not match file name base {name_base}"),
        ));
    }

    let mut records = Vec::new();
    let mut pos = SEGMENT_HEADER_LEN;
    let mut expected = base_lsn;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            return Ok(SegmentScan {
                base_lsn,
                records,
                clean_len: pos as u64,
                torn_bytes: 0,
            });
        }
        // Is the full frame present? Anything short of it is a torn tail
        // (tolerated in the last segment) — truncation can cut anywhere,
        // including inside the length field itself.
        let frame_len = if remaining >= 4 {
            let n = le_u32(&bytes[pos..pos + 4]) as usize;
            n.checked_add(RECORD_OVERHEAD)
        } else {
            None
        };
        let Some(frame_len) = frame_len.filter(|f| *f <= remaining) else {
            if last {
                return Ok(SegmentScan {
                    base_lsn,
                    records,
                    clean_len: pos as u64,
                    torn_bytes: remaining as u64,
                });
            }
            return Err(corrupt(pos, "closed segment ends mid-record".into()));
        };
        let body = &bytes[pos..pos + frame_len - 8];
        let stored = le_u64(&bytes[pos + frame_len - 8..pos + frame_len]);
        if fnv1a64(body) != stored {
            // A complete frame with a bad checksum is bit rot, not a
            // crash: truncation can only ever shorten the file.
            return Err(corrupt(pos, "record checksum mismatch".into()));
        }
        let lsn = le_u64(&bytes[pos + 4..pos + 12]);
        if lsn < expected {
            return Err(corrupt(
                pos,
                format!("lsn {lsn} runs backwards (expected at least {expected})"),
            ));
        }
        records.push((lsn, body[12..].to_vec()));
        expected = lsn + 1;
        pos += frame_len;
    }
}

/// One segment file of a directory scan, with its validated contents.
#[derive(Debug)]
pub struct ScannedSegment {
    /// Path of the segment file.
    pub path: PathBuf,
    /// Base LSN (from header and file name, verified equal).
    pub base_lsn: u64,
    /// `(lsn, payload)` of every valid record, in order.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Total bytes currently in the file.
    pub file_len: u64,
    /// Byte length of the valid prefix.
    pub clean_len: u64,
}

/// A whole-directory scan: every segment validated, ordered by base LSN.
#[derive(Debug)]
pub struct DirScan {
    /// The segments, ascending by base LSN. The last one is the active
    /// (append) segment.
    pub segments: Vec<ScannedSegment>,
    /// The sequence number the next append must use.
    pub next_lsn: u64,
    /// Torn bytes found past the last segment's clean prefix (0 when the
    /// shutdown was clean).
    pub torn_bytes: u64,
}

impl DirScan {
    /// All `(lsn, payload)` records across segments, in LSN order.
    pub fn records(&self) -> impl Iterator<Item = &(u64, Vec<u8>)> {
        self.segments.iter().flat_map(|s| s.records.iter())
    }
}

/// Scan a WAL directory: locate the segment files, validate each, check
/// cross-segment LSN monotonicity. Foreign files (wrong extension, wrong
/// name shape, leftover `.tmp` from an interrupted compaction) are
/// ignored. A missing directory scans as empty.
pub fn scan_dir(dir: &Path) -> Result<DirScan, WalError> {
    let mut files: Vec<(u64, PathBuf)> = Vec::new();
    match std::fs::read_dir(dir) {
        Ok(entries) => {
            for entry in entries {
                let path = entry?.path();
                if let Some(base) = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .and_then(parse_segment_file_name)
                {
                    files.push((base, path));
                }
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(WalError::Io(e)),
    }
    files.sort();

    let mut segments = Vec::with_capacity(files.len());
    let mut next_lsn = 0u64;
    let mut torn_bytes = 0u64;
    let count = files.len();
    for (i, (base, path)) in files.into_iter().enumerate() {
        let last = i + 1 == count;
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
        if base < next_lsn {
            return Err(WalError::Corrupt {
                segment: name.to_string(),
                offset: 0,
                reason: format!("segment base {base} overlaps the previous segment's records"),
            });
        }
        let bytes = std::fs::read(&path)?;
        let scan = scan_segment(&bytes, base, last, name)?;
        next_lsn = scan
            .records
            .last()
            .map(|(lsn, _)| lsn + 1)
            .unwrap_or(base)
            .max(next_lsn);
        if last {
            torn_bytes = scan.torn_bytes;
        }
        segments.push(ScannedSegment {
            path,
            base_lsn: base,
            records: scan.records,
            file_len: bytes.len() as u64,
            clean_len: scan.clean_len,
        });
    }
    Ok(DirScan {
        segments,
        next_lsn,
        torn_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segment_bytes(base: u64, payloads: &[&[u8]]) -> Vec<u8> {
        let mut bytes = segment_header(base);
        for (i, p) in payloads.iter().enumerate() {
            bytes.extend_from_slice(&encode_record(base + i as u64, p));
        }
        bytes
    }

    #[test]
    fn names_roundtrip_and_sort_numerically() {
        assert_eq!(segment_file_name(0), "00000000000000000000.seg");
        assert_eq!(segment_file_name(42), "00000000000000000042.seg");
        assert_eq!(
            parse_segment_file_name(&segment_file_name(123_456)),
            Some(123_456)
        );
        assert_eq!(parse_segment_file_name("foo.seg"), None);
        assert_eq!(parse_segment_file_name("00000000000000000042.tmp"), None);
        assert_eq!(
            parse_segment_file_name("42.seg"),
            None,
            "unpadded is foreign"
        );
        assert!(segment_file_name(9) < segment_file_name(10));
    }

    #[test]
    fn clean_segment_scans_completely() {
        let bytes = segment_bytes(7, &[b"alpha", b"", b"gamma-longer-payload"]);
        let scan = scan_segment(&bytes, 7, true, "t").unwrap();
        assert_eq!(scan.base_lsn, 7);
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(scan.clean_len, bytes.len() as u64);
        assert_eq!(
            scan.records,
            vec![
                (7, b"alpha".to_vec()),
                (8, b"".to_vec()),
                (9, b"gamma-longer-payload".to_vec())
            ]
        );
    }

    #[test]
    fn every_truncation_of_the_last_segment_yields_the_complete_prefix() {
        let payloads: [&[u8]; 3] = [b"first", b"second-record", b"x"];
        let bytes = segment_bytes(0, &payloads);
        // Record boundaries, to know which prefix each cut should keep.
        let mut boundaries = vec![SEGMENT_HEADER_LEN];
        for p in payloads {
            boundaries.push(boundaries.last().unwrap() + RECORD_OVERHEAD + p.len());
        }
        for cut in 0..=bytes.len() {
            let scan = scan_segment(&bytes[..cut], 0, true, "t").unwrap();
            if cut < SEGMENT_HEADER_LEN {
                assert_eq!(scan.records.len(), 0, "cut at {cut}");
                assert_eq!(scan.clean_len, 0, "cut at {cut}");
                assert_eq!(scan.torn_bytes as usize, cut, "cut at {cut}");
                continue;
            }
            let complete = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(scan.records.len(), complete, "cut at {cut}");
            assert_eq!(
                scan.clean_len as usize, boundaries[complete],
                "clean prefix at cut {cut}"
            );
            assert_eq!(
                scan.torn_bytes as usize,
                cut - boundaries[complete],
                "torn bytes at cut {cut}"
            );
        }
    }

    #[test]
    fn closed_segments_reject_torn_tails_typed() {
        let bytes = segment_bytes(0, &[b"first", b"second"]);
        let cut = bytes.len() - 3;
        let err = scan_segment(&bytes[..cut], 0, false, "00.seg").unwrap_err();
        assert!(matches!(err, WalError::Corrupt { .. }), "{err}");
        // Shorter than the header is corrupt too (for a closed segment).
        let err = scan_segment(&bytes[..10], 0, false, "00.seg").unwrap_err();
        assert!(matches!(err, WalError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn bitflips_are_corrupt_not_torn() {
        let bytes = segment_bytes(0, &[b"payload-one", b"payload-two"]);
        // Flip one payload byte of the *first* record: a complete frame
        // with a bad checksum, even though a valid record follows.
        let mut flipped = bytes.clone();
        flipped[SEGMENT_HEADER_LEN + 13] ^= 0xFF;
        let err = scan_segment(&flipped, 0, true, "t").unwrap_err();
        assert!(
            matches!(err, WalError::Corrupt { ref reason, .. } if reason.contains("checksum")),
            "{err}"
        );
    }

    #[test]
    fn header_validation_is_typed() {
        let good = segment_bytes(3, &[b"x"]);
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            scan_segment(&bad_magic, 3, true, "t"),
            Err(WalError::NotASegment { .. })
        ));
        let mut bumped = good.clone();
        bumped[8..10].copy_from_slice(&2u16.to_le_bytes());
        assert!(matches!(
            scan_segment(&bumped, 3, true, "t"),
            Err(WalError::VersionMismatch {
                found: 2,
                expected: SEGMENT_VERSION
            })
        ));
        // Header base and name base must agree.
        assert!(matches!(
            scan_segment(&good, 4, true, "t"),
            Err(WalError::Corrupt { .. })
        ));
        // A partial header in the last segment is a torn birth, not an error.
        let scan = scan_segment(&good[..5], 3, true, "t").unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.clean_len, 0);
        assert_eq!(scan.torn_bytes, 5);
    }

    #[test]
    fn lsn_gaps_are_fine_but_backwards_is_corrupt() {
        // Gaps are what compaction leaves behind.
        let mut bytes = segment_header(5);
        bytes.extend_from_slice(&encode_record(5, b"a"));
        bytes.extend_from_slice(&encode_record(9, b"b"));
        bytes.extend_from_slice(&encode_record(10, b"c"));
        let scan = scan_segment(&bytes, 5, true, "t").unwrap();
        assert_eq!(scan.records.len(), 3);
        // Running backwards can only be damage.
        let mut bytes = segment_header(5);
        bytes.extend_from_slice(&encode_record(6, b"a"));
        bytes.extend_from_slice(&encode_record(6, b"b"));
        let err = scan_segment(&bytes, 5, true, "t").unwrap_err();
        assert!(
            matches!(err, WalError::Corrupt { ref reason, .. } if reason.contains("backwards")),
            "{err}"
        );
    }

    #[test]
    fn dir_scan_orders_segments_and_ignores_foreign_files() {
        let dir = std::env::temp_dir().join(format!("pitract-walseg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join(segment_file_name(0)),
            segment_bytes(0, &[b"a", b"b"]),
        )
        .unwrap();
        std::fs::write(dir.join(segment_file_name(2)), segment_bytes(2, &[b"c"])).unwrap();
        std::fs::write(dir.join("notes.txt"), b"not a segment").unwrap();
        std::fs::write(dir.join("0.seg.tmp"), b"crashed compactor").unwrap();
        let scan = scan_dir(&dir).unwrap();
        assert_eq!(scan.segments.len(), 2);
        assert_eq!(scan.next_lsn, 3);
        assert_eq!(scan.torn_bytes, 0);
        let lsns: Vec<u64> = scan.records().map(|(l, _)| *l).collect();
        assert_eq!(lsns, vec![0, 1, 2]);
        // Overlapping bases across files are corrupt.
        std::fs::write(dir.join(segment_file_name(1)), segment_bytes(1, &[b"x"])).unwrap();
        assert!(matches!(scan_dir(&dir), Err(WalError::Corrupt { .. })));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_scans_empty() {
        let scan = scan_dir(Path::new("/nonexistent/definitely/not/here")).unwrap();
        assert!(scan.segments.is_empty());
        assert_eq!(scan.next_lsn, 0);
    }
}
