//! The typed failure surface of the write-ahead log.
//!
//! Recovery must be *total*: arbitrary bytes in a segment directory
//! produce a typed [`WalError`], never a panic — with one deliberate
//! exception carved out of the error surface entirely: a **torn tail**
//! (the last segment ending mid-record, exactly what a crash during an
//! append leaves behind) is not an error at all. It is truncated and
//! recovery proceeds with the complete prefix, because that prefix is
//! precisely the set of updates the log ever confirmed. Everything else —
//! a checksum mismatch inside the stream, a segment from a future format
//! version, a file that is not a segment — is damage the log cannot
//! explain, and is reported typed so an operator restores from a replica
//! instead of serving silently wrong data.

use pitract_engine::EngineError;
use pitract_store::StoreError;
use std::fmt;

/// Everything that can go wrong writing, reading, compacting, or
/// recovering a write-ahead log.
#[derive(Debug)]
pub enum WalError {
    /// An operating-system I/O failure (open, write, fsync, rename).
    Io(std::io::Error),
    /// A `.seg` file that does not start with the segment magic tag.
    NotASegment {
        /// The offending file.
        path: String,
    },
    /// The segment's format version differs from the one this binary
    /// understands — written by a newer (or older) build.
    VersionMismatch {
        /// Version found in the segment header.
        found: u16,
        /// Version this binary reads and writes.
        expected: u16,
    },
    /// The byte stream is damaged in a way a crash cannot explain: a
    /// checksum mismatch on a fully framed record, a non-monotonic
    /// sequence number, a closed segment ending mid-record, a payload
    /// that does not decode. Distinct from a torn tail, which recovery
    /// silently truncates.
    Corrupt {
        /// The segment file the damage was found in.
        segment: String,
        /// Byte offset of the damaged record.
        offset: u64,
        /// What exactly failed to validate.
        reason: String,
    },
    /// A failure in the snapshot store while saving or loading the
    /// checkpoint half of a durable relation.
    Store(StoreError),
    /// The engine rejected a replay or an update (e.g. the WAL tail does
    /// not belong to the checkpoint's history).
    Engine(EngineError),
    /// An earlier append failed partway and its partial bytes could not
    /// be erased; the writer refuses further appends so the garbage is
    /// never buried under valid records (left as the tail, the next
    /// recovery truncates it like any other crash residue). Reopen the
    /// WAL to resume.
    Poisoned,
    /// [`crate::DurableLiveRelation::create`] was handed a relation with
    /// updates already pending in its in-memory log: those updates
    /// predate the WAL and would be lost by the first crash, which is
    /// exactly what a durable wrapper must never silently allow.
    PendingUpdates {
        /// How many un-checkpointed entries the relation carried.
        count: usize,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::NotASegment { path } => {
                write!(f, "{path} is not a wal segment (bad magic tag)")
            }
            WalError::VersionMismatch { found, expected } => write!(
                f,
                "wal segment format version {found} is not the supported version {expected}"
            ),
            WalError::Corrupt {
                segment,
                offset,
                reason,
            } => write!(
                f,
                "corrupt wal segment {segment} at byte {offset}: {reason}"
            ),
            WalError::Poisoned => write!(
                f,
                "wal writer poisoned by an earlier failed append; reopen the log to resume"
            ),
            WalError::Store(e) => write!(f, "wal checkpoint store error: {e}"),
            WalError::Engine(e) => write!(f, "wal replay rejected by engine: {e}"),
            WalError::PendingUpdates { count } => write!(
                f,
                "relation has {count} pending un-checkpointed updates; checkpoint it before \
                 attaching a fresh wal"
            ),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            WalError::Store(e) => Some(e),
            WalError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

impl From<StoreError> for WalError {
    fn from(e: StoreError) -> Self {
        // An I/O failure inside the store is still an I/O failure; keep
        // its identity instead of burying it one wrapper deeper.
        match e {
            StoreError::Io(io) => WalError::Io(io),
            other => WalError::Store(other),
        }
    }
}

impl From<EngineError> for WalError {
    fn from(e: EngineError) -> Self {
        WalError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_distinct_and_specific() {
        let cases: Vec<WalError> = vec![
            WalError::NotASegment {
                path: "x.seg".into(),
            },
            WalError::VersionMismatch {
                found: 2,
                expected: 1,
            },
            WalError::Corrupt {
                segment: "00.seg".into(),
                offset: 42,
                reason: "checksum mismatch".into(),
            },
            WalError::Store(StoreError::BadMagic),
            WalError::Engine(EngineError::NoShards),
            WalError::Poisoned,
            WalError::PendingUpdates { count: 3 },
        ];
        let mut msgs: Vec<String> = cases.iter().map(|e| e.to_string()).collect();
        msgs.sort();
        msgs.dedup();
        assert_eq!(msgs.len(), cases.len(), "every variant renders distinctly");
    }

    #[test]
    fn sources_chain_and_io_keeps_its_identity() {
        use std::error::Error as _;
        let e = WalError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
        // StoreError::Io unwraps to WalError::Io, not a double wrap.
        let e = WalError::from(StoreError::Io(std::io::Error::new(
            std::io::ErrorKind::PermissionDenied,
            "no",
        )));
        assert!(matches!(e, WalError::Io(_)), "{e}");
        let e = WalError::from(StoreError::ChecksumMismatch);
        assert!(matches!(e, WalError::Store(_)), "{e}");
        assert!(WalError::PendingUpdates { count: 1 }.source().is_none());
    }
}
