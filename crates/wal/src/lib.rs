//! # pitract-wal — a durable write-ahead log under the live serving tier
//!
//! The paper's Π-tractability contract only pays off if the expensive
//! preprocessing `Π(D)` is paid **once** — which must hold across
//! crashes, not just across clean restarts. `pitract-store` made the
//! preprocessed state persistent and `pitract-engine`'s `LiveRelation`
//! made it servable under live updates, but every update between
//! checkpoints lived only in memory: a crash lost them, and replay time
//! grew without bound under churn. This crate closes both gaps with the
//! standard database answer, built from scratch on `std`:
//!
//! * [`WalWriter`] — append-only, fsync'd segment files: each record is
//!   length-framed, sequence-numbered, and FNV-1a-64 checksummed (the
//!   same hash the snapshot format uses); segments rotate at a
//!   configurable size, with the new file *and its directory entry*
//!   fsync'd. [`SyncPolicy`] picks the durability/throughput point:
//!   fsync-per-record, group commit (concurrent committers share one
//!   flush), or OS-buffered.
//! * [`WalReader`] — total, typed recovery: every complete record
//!   replays; a torn tail — the residue of a crash mid-append — is
//!   truncated, never an error, while mid-stream damage (checksum
//!   mismatch, backwards sequence numbers) fails typed with
//!   [`WalError`], never a panic.
//! * [`Compactor`] — rewrites closed segments, dropping records the
//!   latest checkpoint covers and insert+delete pairs that cancel, so
//!   recovery replay is bounded by the *net* change (the crate-level
//!   echo of the paper's `|CHANGED|`-bounded maintenance contract).
//! * [`DurableLiveRelation`] — the integration: a `LiveRelation` whose
//!   updates are staged to the WAL inside the engine's global-id
//!   critical section (WAL order ≡ gid order, so replay is
//!   deterministic even for racing writers) and committed durable after
//!   the locks drop. Checkpoints persist the frozen state *plus* its
//!   WAL position as one atomic snapshot; recovery is checkpoint load +
//!   compacted tail replay, bit-identical — answers **and** global row
//!   ids — to the crashed node's confirmed prefix.
//!
//! The correctness contract, enforced by unit, integration, and
//! crash-injection property tests (segment files truncated at every
//! byte offset): recovery equals the confirmed prefix exactly, and
//! compaction never changes any recovered state.
//!
//! ```
//! use pitract_engine::{LiveRelation, ShardBy};
//! use pitract_relation::{ColType, Relation, Schema, SelectionQuery, Value};
//! use pitract_store::SnapshotCatalog;
//! use pitract_wal::{DurableLiveRelation, WalConfig};
//!
//! let schema = Schema::new(&[("id", ColType::Int)]);
//! let rows = (0..1_000i64).map(|i| vec![Value::Int(i)]).collect();
//! let relation = Relation::from_rows(schema, rows).unwrap();
//! let live = LiveRelation::build(&relation, ShardBy::Hash { col: 0 }, 4, &[0]).unwrap();
//!
//! let root = std::env::temp_dir().join(format!("pitract-wal-doc-{}", std::process::id()));
//! let catalog = SnapshotCatalog::open(root.join("snaps")).unwrap();
//!
//! // Go durable: bootstrap checkpoint + write-ahead log.
//! let node = DurableLiveRelation::create(
//!     live, &catalog, "orders", root.join("wal"), WalConfig::default(),
//! ).unwrap();
//! node.insert(vec![Value::Int(5_000)]).unwrap();
//! node.delete(3).unwrap();
//! drop(node); // "crash"
//!
//! // Recovery replays the WAL tail: nothing confirmed was lost.
//! let recovered = DurableLiveRelation::recover(
//!     &catalog, "orders", root.join("wal"), WalConfig::default(),
//! ).unwrap();
//! assert!(recovered.answer(&SelectionQuery::point(0, 5_000i64)));
//! assert!(recovered.row(3).is_none());
//! # std::fs::remove_dir_all(&root).unwrap();
//! ```

#![warn(missing_docs)]
// Serving-stack panic hygiene (PR 9): no panicking escape hatches in
// non-test code. Individual invariant sites opt out locally with an
// `#[allow]` paired with a `// lint:allow(...)` justification that the
// `pitract-lint` pass checks.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(clippy::dbg_macro)]
#![warn(rust_2018_idioms)]

pub mod compactor;
pub mod durable;
pub mod error;
pub mod reader;
pub mod segment;
pub mod writer;

pub use compactor::{CompactionReport, Compactor};
pub use durable::{DurableLiveRelation, WalWriterSink};
pub use error::WalError;
pub use reader::{WalReader, WalRecord};
pub use segment::{SEGMENT_MAGIC, SEGMENT_VERSION};
pub use writer::{SyncPolicy, WalConfig, WalWriter};
