//! Crash-injection property tests: recovery is total and exact.
//!
//! The crash model of an append-only log is truncation — a crash while
//! appending leaves some prefix of the bytes the writer issued. These
//! properties drive that model hard: write N records, cut the segment
//! file at an arbitrary byte offset, and require recovery to return
//! **exactly** the records whose frames fit entirely inside the cut —
//! no more (half-written records were never confirmed), no fewer (every
//! confirmed record survives), and never a panic. A second property
//! feeds arbitrary garbage and bit-flips through the same path and
//! requires a typed result.

use pitract_engine::UpdateEntry;
use pitract_relation::Value;
use pitract_wal::segment::{segment_file_name, RECORD_OVERHEAD, SEGMENT_HEADER_LEN};
use pitract_wal::{SyncPolicy, WalConfig, WalReader, WalWriter};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn fresh_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pitract-wal-crash-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic entry stream from generated ops: inserts take the next
/// gid; deletes target an earlier gid (so the stream is a plausible
/// history, though recovery must not care).
fn entries_from_ops(ops: &[(u8, i64)]) -> Vec<UpdateEntry> {
    let mut entries = Vec::with_capacity(ops.len());
    let mut next_gid = 0usize;
    for &(op, key) in ops {
        if op % 4 == 0 && next_gid > 0 {
            entries.push(UpdateEntry::Delete {
                gid: key as usize % next_gid,
            });
        } else {
            entries.push(UpdateEntry::Insert {
                gid: next_gid,
                row: vec![Value::Int(key), Value::str(format!("k{key}"))],
            });
            next_gid += 1;
        }
    }
    entries
}

fn payload_len(entry: &UpdateEntry) -> usize {
    let mut w = pitract_store::codec::Writer::new();
    w.update_entry(entry);
    w.len()
}

proptest! {
    /// For every byte offset a crash can cut a segment at, recovery
    /// returns exactly the prefix of complete records.
    #[test]
    fn truncated_segment_recovers_exactly_the_complete_prefix(
        ops in prop::collection::vec((0u8..8, 0i64..1_000), 1..25),
        cut_seed in 0usize..1_000_000
    ) {
        let entries = entries_from_ops(&ops);
        let dir = fresh_dir("cut");
        let wal = WalWriter::open(
            &dir,
            WalConfig { segment_bytes: u64::MAX, sync: SyncPolicy::Never },
        ).unwrap();
        for e in &entries {
            wal.append_entry(e).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);

        // Frame boundaries, recomputed independently of the scanner.
        let mut boundaries = vec![SEGMENT_HEADER_LEN];
        for e in &entries {
            boundaries.push(boundaries.last().unwrap() + RECORD_OVERHEAD + payload_len(e));
        }
        let path = dir.join(segment_file_name(0));
        let full = std::fs::read(&path).unwrap();
        prop_assert_eq!(full.len(), *boundaries.last().unwrap());

        let cut = cut_seed % (full.len() + 1);
        std::fs::write(&path, &full[..cut]).unwrap();

        let reader = WalReader::open(&dir).unwrap();
        let complete = boundaries.iter().filter(|&&b| b <= cut.max(SEGMENT_HEADER_LEN)).count()
            .saturating_sub(1);
        let complete = if cut < SEGMENT_HEADER_LEN { 0 } else { complete };
        prop_assert_eq!(reader.len(), complete, "cut at {} of {}", cut, full.len());
        let got: Vec<UpdateEntry> = reader.records().iter().map(|r| r.entry.clone()).collect();
        prop_assert_eq!(&got[..], &entries[..complete]);
        prop_assert_eq!(reader.next_lsn(), complete as u64);
        prop_assert_eq!(
            reader.torn_bytes() > 0,
            cut != 0 && !boundaries.contains(&cut),
            "torn flag at cut {}", cut
        );

        // And a writer reopening the same directory heals the tail: the
        // next append is confirmed record number `complete`.
        let wal = WalWriter::open(
            &dir,
            WalConfig { segment_bytes: u64::MAX, sync: SyncPolicy::Never },
        ).unwrap();
        prop_assert_eq!(wal.next_lsn(), complete as u64);
        drop(wal);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Crash mid-`apply_batch`: a batch is staged record-by-record and
    /// fsync'd once at the end, so a crash can cut the WAL anywhere
    /// inside the batch — recovery must replay exactly the confirmed
    /// prefix of the batch's ops (batches change commit cadence, not
    /// crash atomicity: they are NOT all-or-nothing).
    #[test]
    fn truncated_apply_batch_recovers_exactly_the_confirmed_prefix(
        ops in prop::collection::vec((0u8..8, 0i64..1_000), 2..20),
        cut_seed in 0usize..1_000_000
    ) {
        use pitract_engine::{LiveRelation, ShardBy, UpdateOp};
        use pitract_relation::{ColType, Relation, Schema};
        use pitract_store::SnapshotCatalog;
        use pitract_wal::DurableLiveRelation;

        fn build_live() -> LiveRelation {
            let schema = Schema::new(&[("id", ColType::Int), ("k", ColType::Str)]);
            let empty = Relation::from_rows(schema, vec![]).unwrap();
            LiveRelation::build(&empty, ShardBy::Hash { col: 0 }, 2, &[0]).unwrap()
        }

        // Generate the batch's ops alongside the exact WAL entries they
        // will stage: inserts take sequential gids from 0 (the relation
        // starts empty), deletes only ever target a still-live gid so
        // every op stages exactly one record.
        let mut batch_ops = Vec::with_capacity(ops.len());
        let mut entries = Vec::with_capacity(ops.len());
        let mut next_gid = 0usize;
        let mut live_gids: Vec<usize> = Vec::new();
        for &(op, key) in &ops {
            if op % 4 == 0 && !live_gids.is_empty() {
                let gid = live_gids.remove(key as usize % live_gids.len());
                batch_ops.push(UpdateOp::Delete(gid));
                entries.push(UpdateEntry::Delete { gid });
            } else {
                let row = vec![Value::Int(key), Value::str(format!("k{key}"))];
                batch_ops.push(UpdateOp::Insert(row.clone()));
                entries.push(UpdateEntry::Insert { gid: next_gid, row });
                live_gids.push(next_gid);
                next_gid += 1;
            }
        }

        let root = fresh_dir("batchcut");
        let catalog = SnapshotCatalog::open(root.join("snaps")).unwrap();
        let wal_dir = root.join("wal");
        let config = WalConfig { segment_bytes: u64::MAX, sync: SyncPolicy::Never };
        let node =
            DurableLiveRelation::create(build_live(), &catalog, "node", &wal_dir, config.clone())
                .unwrap();
        let applied = node.apply_batch(batch_ops.clone()).unwrap();
        prop_assert_eq!(applied.len(), batch_ops.len());
        node.wal().sync().unwrap();
        drop(node);

        // Frame boundaries, recomputed independently of the scanner.
        let mut boundaries = vec![SEGMENT_HEADER_LEN];
        for e in &entries {
            boundaries.push(boundaries.last().unwrap() + RECORD_OVERHEAD + payload_len(e));
        }
        let path = wal_dir.join(segment_file_name(0));
        let full = std::fs::read(&path).unwrap();
        prop_assert_eq!(full.len(), *boundaries.last().unwrap());

        let cut = cut_seed % (full.len() + 1);
        std::fs::write(&path, &full[..cut]).unwrap();
        let complete = boundaries.iter().filter(|&&b| b <= cut.max(SEGMENT_HEADER_LEN)).count()
            .saturating_sub(1);
        let complete = if cut < SEGMENT_HEADER_LEN { 0 } else { complete };

        // Oracle: the confirmed op prefix applied to a fresh relation.
        let oracle = build_live();
        for op in &batch_ops[..complete] {
            match op {
                UpdateOp::Insert(row) => { oracle.insert(row.clone()).unwrap(); }
                UpdateOp::Delete(gid) => { oracle.delete(*gid).unwrap().unwrap(); }
            }
        }

        let recovered = DurableLiveRelation::recover(&catalog, "node", &wal_dir, config).unwrap();
        prop_assert_eq!(recovered.wal().next_lsn(), complete as u64, "cut at {} of {}", cut, full.len());
        prop_assert_eq!(recovered.len(), oracle.len());
        for gid in 0..next_gid {
            prop_assert_eq!(recovered.row(gid), oracle.row(gid), "gid {}", gid);
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    /// Arbitrary damage — random bytes, or a bit flip anywhere in a real
    /// segment — never panics: reading yields Ok (with a possibly
    /// shorter record set, if the damage hides in the torn tail) or a
    /// typed error.
    #[test]
    fn damaged_segments_never_panic(
        ops in prop::collection::vec((0u8..8, 0i64..1_000), 1..15),
        flip_at in 0usize..1_000_000,
        garbage in prop::collection::vec(0u8..=255, 0..80)
    ) {
        // Bit flip in a real segment.
        let entries = entries_from_ops(&ops);
        let dir = fresh_dir("flip");
        let wal = WalWriter::open(
            &dir,
            WalConfig { segment_bytes: u64::MAX, sync: SyncPolicy::Never },
        ).unwrap();
        for e in &entries {
            wal.append_entry(e).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let path = dir.join(segment_file_name(0));
        let mut bytes = std::fs::read(&path).unwrap();
        let at = flip_at % bytes.len();
        bytes[at] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let result = WalReader::open(&dir);
        if let Ok(reader) = &result {
            // Damage that still parses must have hidden in the tail (or
            // not changed the meaning of any complete record's frame) —
            // in no case may more records appear than were written.
            prop_assert!(reader.len() <= entries.len());
        }
        std::fs::remove_dir_all(&dir).unwrap();

        // Pure garbage under a segment name.
        let dir = fresh_dir("garbage");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(segment_file_name(0)), &garbage).unwrap();
        let _ = WalReader::open(&dir); // Ok(empty/torn) or typed error; no panic
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
