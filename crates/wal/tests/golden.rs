//! Golden-fixture test: the on-disk segment format may not drift
//! silently.
//!
//! A small segment with representative records is committed under
//! `tests/fixtures/wal_v1.seg`. This suite asserts that (a) today's
//! writer still produces those bytes **byte-for-byte**, (b) the
//! committed bytes still recover to the same entries, and (c) a bumped
//! format version is rejected as [`WalError::VersionMismatch`], not
//! misparsed. Any intentional format change must bump
//! [`pitract_wal::SEGMENT_VERSION`] and regenerate:
//!
//! ```text
//! PITRACT_REGEN_FIXTURES=1 cargo test -p pitract-wal --test golden
//! ```

use pitract_engine::UpdateEntry;
use pitract_relation::Value;
use pitract_wal::segment::{encode_record, segment_file_name, segment_header};
use pitract_wal::{WalError, WalReader, SEGMENT_VERSION};
use std::path::PathBuf;

fn fixture_path() -> PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/wal_v1.seg")
}

/// The deterministic entries the fixture holds: inserts covering
/// negative ints, empty and multi-byte UTF-8 strings, a zero-arity row,
/// and a delete.
fn fixture_entries() -> Vec<UpdateEntry> {
    vec![
        UpdateEntry::Insert {
            gid: 0,
            row: vec![Value::Int(-3), Value::str("alpha")],
        },
        UpdateEntry::Insert {
            gid: 1,
            row: vec![Value::Int(i64::MAX), Value::str("日本語 Σ*")],
        },
        UpdateEntry::Insert {
            gid: 2,
            row: vec![],
        },
        UpdateEntry::Delete { gid: 1 },
        UpdateEntry::Insert {
            gid: 3,
            row: vec![Value::Int(0), Value::str("")],
        },
    ]
}

/// The fixture's bytes as today's code writes them: one segment based
/// at LSN 7 (a non-zero base, so the base field is actually exercised).
fn fixture_bytes() -> Vec<u8> {
    let mut bytes = segment_header(7);
    for (i, entry) in fixture_entries().iter().enumerate() {
        let mut payload = pitract_store::codec::Writer::new();
        payload.update_entry(entry);
        bytes.extend_from_slice(&encode_record(7 + i as u64, &payload.into_bytes()));
    }
    bytes
}

#[test]
fn segment_encoding_is_byte_stable() {
    let bytes = fixture_bytes();
    let path = fixture_path();
    if std::env::var("PITRACT_REGEN_FIXTURES").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &bytes).unwrap();
    }
    let on_disk = std::fs::read(&path)
        .unwrap_or_else(|e| panic!("fixture missing ({e}); see module docs to regenerate"));
    assert_eq!(
        on_disk, bytes,
        "segment encoding drifted from the committed fixture: either revert the \
         encoding change or bump SEGMENT_VERSION and regenerate"
    );
}

#[test]
fn committed_fixture_recovers_to_the_pinned_entries() {
    let dir = std::env::temp_dir().join(format!("pitract-wal-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join(segment_file_name(7)),
        std::fs::read(fixture_path()).unwrap(),
    )
    .unwrap();
    let reader = WalReader::open(&dir).unwrap();
    let entries: Vec<UpdateEntry> = reader.records().iter().map(|r| r.entry.clone()).collect();
    assert_eq!(entries, fixture_entries());
    let lsns: Vec<u64> = reader.records().iter().map(|r| r.lsn).collect();
    assert_eq!(lsns, vec![7, 8, 9, 10, 11]);
    assert_eq!(reader.next_lsn(), 12);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bumped_version_is_rejected_with_version_mismatch() {
    let dir = std::env::temp_dir().join(format!("pitract-wal-vbump-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mut bytes = std::fs::read(fixture_path()).unwrap();
    // Bytes 8..10 are the little-endian format version.
    let bumped = SEGMENT_VERSION + 1;
    bytes[8..10].copy_from_slice(&bumped.to_le_bytes());
    std::fs::write(dir.join(segment_file_name(7)), &bytes).unwrap();
    match WalReader::open(&dir) {
        Err(WalError::VersionMismatch { found, expected }) => {
            assert_eq!(found, bumped);
            assert_eq!(expected, SEGMENT_VERSION);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
