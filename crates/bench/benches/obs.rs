//! Wall-clock benchmarks for the observability layer's hot-path cost,
//! plus the machine-readable perf artifact.
//!
//! Besides the criterion group, every run (including the CI `--test`
//! smoke) serializes the disabled-vs-enabled recorder comparison on the
//! E19 (pooled batch) and E20 (MVCC epoch-pinned) workloads to
//! `BENCH_obs.json` (default `BENCH_obs.json` in the repository root;
//! override with the `BENCH_OBS_JSON` env var). The disabled
//! configuration is exactly what `BENCH_pool.json` / `BENCH_mvcc.json`
//! measure, so the committed trajectories stay directly comparable —
//! the artifact is the evidence that the default no-op recorder does
//! not tax the serving path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pitract_bench::artifact::{available_parallelism, experiment, rounded, write_artifact};
use pitract_bench::experiments::{obs_overhead_sweep, ObsSample, OBS_BATCH_QUERIES, OBS_SHARDS};
use pitract_engine::batch::QueryBatch;
use pitract_engine::shard::{ShardBy, ShardedRelation};
use pitract_engine::{PoolConfig, PooledExecutor};
use pitract_obs::Recorder;
use pitract_relation::{ColType, Relation, Schema, SelectionQuery, Value};
use std::hint::black_box;
use std::sync::Arc;

const ROWS: i64 = 1 << 15;

/// Criterion group: one mixed batch through a warm pooled executor with
/// the recorder disabled (the default) and enabled — the sampled twin
/// of the sweep below.
fn bench_recorder_modes(c: &mut Criterion) {
    let schema = Schema::new(&[("id", ColType::Int), ("grp", ColType::Str)]);
    let rows: Vec<Vec<Value>> = (0..ROWS)
        .map(|i| vec![Value::Int(i), Value::str(format!("grp{}", i % 64))])
        .collect();
    let rel = Relation::from_rows(schema, rows).expect("valid rows");
    let batch = QueryBatch::new((0..256i64).map(|k| match k % 3 {
        0 => SelectionQuery::point(0, (k * 997) % ROWS),
        1 => {
            let lo = (k * 641) % ROWS;
            SelectionQuery::range_closed(0, lo, lo + 200)
        }
        _ => SelectionQuery::and(
            SelectionQuery::point(1, format!("grp{}", k % 64).as_str()),
            SelectionQuery::range_closed(0, (k * 331) % ROWS, (k * 331) % ROWS + 2_000),
        ),
    }));
    let sharded = Arc::new(
        ShardedRelation::build(&rel, ShardBy::Hash { col: 0 }, OBS_SHARDS, &[0, 1])
            .expect("valid sharding spec"),
    );
    let config = PoolConfig {
        workers: OBS_SHARDS,
        max_inflight: OBS_SHARDS,
    };
    let disabled = PooledExecutor::new(Arc::clone(&sharded), config.clone());
    let recorder = Recorder::new();
    let enabled = PooledExecutor::new_observed(Arc::clone(&sharded), config, &recorder);

    let mut group = c.benchmark_group("obs_recorder_overhead");
    group.bench_with_input(BenchmarkId::new("disabled", 0), &0, |b, _| {
        b.iter(|| black_box(&disabled).execute(black_box(&batch)).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("enabled", 0), &0, |b, _| {
        b.iter(|| black_box(&enabled).execute(black_box(&batch)).unwrap())
    });
    group.finish();
}

/// Measure the sweep once and write the JSON artifact.
fn emit_bench_obs_json(c: &mut Criterion) {
    // Best-of-3 per mode per workload: cheap enough for the `--test`
    // smoke, stable enough that the ratio isn't one scheduler hiccup.
    let samples = obs_overhead_sweep(ROWS, 3);
    let path = std::env::var("BENCH_OBS_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json").to_string()
    });
    match write_json(&path, &samples) {
        Ok(()) => println!("BENCH_obs.json written to {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
    // Keep the shim's "ran at least one benchmark" accounting honest.
    c.bench_function("obs_emit_json", |b| b.iter(|| samples.len()));
}

fn write_json(path: &str, samples: &[ObsSample]) -> std::io::Result<()> {
    let results: Vec<_> = samples
        .iter()
        .map(|s| {
            pitract_obs::Json::obj()
                .set("workload", s.workload)
                .set("disabled_seconds", rounded(s.disabled_seconds, 6))
                .set("disabled_qps", rounded(s.disabled_qps, 1))
                .set("enabled_seconds", rounded(s.enabled_seconds, 6))
                .set("enabled_qps", rounded(s.enabled_qps, 1))
                .set("enabled_over_disabled", rounded(s.overhead(), 3))
        })
        .collect();
    let doc = experiment("observability-recorder-overhead")
        .set("rows", ROWS)
        .set("shards", OBS_SHARDS)
        .set("batch_queries", OBS_BATCH_QUERIES)
        .set("available_parallelism", available_parallelism())
        .set("results", results);
    write_artifact(path, &doc)
}

criterion_group!(benches, bench_recorder_modes, emit_bench_obs_json);
criterion_main!(benches);
