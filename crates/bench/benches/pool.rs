//! Wall-clock benchmarks for the pooled executor, plus the
//! machine-readable perf artifact.
//!
//! Besides the criterion group, every run (including the CI `--test`
//! smoke) serializes the shard-count → scoped-vs-pooled throughput
//! comparison to `BENCH_pool.json` (default `BENCH_pool.json` in the
//! repository root; override with the `BENCH_POOL_JSON` env var), next
//! to the engine/store/live/wal artifacts, so future PRs can diff what
//! the persistent worker pool buys over per-batch thread spawning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pitract_bench::artifact::{available_parallelism, experiment, rounded, write_artifact};
use pitract_bench::experiments::{pool_scaling_sweep, PoolSample, POOL_BATCH_QUERIES};
use pitract_engine::batch::QueryBatch;
use pitract_engine::shard::{ShardBy, ShardedRelation};
use pitract_engine::PooledExecutor;
use pitract_relation::{ColType, Relation, Schema, SelectionQuery, Value};
use std::hint::black_box;
use std::sync::Arc;

const ROWS: i64 = 1 << 16;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Criterion group: one mixed batch through a warm pooled executor at
/// each shard count (worker spin-up is paid once, outside the timer —
/// that is the pool's whole point).
fn bench_pooled_batch(c: &mut Criterion) {
    let schema = Schema::new(&[("id", ColType::Int), ("grp", ColType::Str)]);
    let rows: Vec<Vec<Value>> = (0..ROWS)
        .map(|i| vec![Value::Int(i), Value::str(format!("grp{}", i % 64))])
        .collect();
    let rel = Relation::from_rows(schema, rows).expect("valid rows");
    let batch = QueryBatch::new((0..256i64).map(|k| match k % 3 {
        0 => SelectionQuery::point(0, (k * 997) % ROWS),
        1 => {
            let lo = (k * 641) % ROWS;
            SelectionQuery::range_closed(0, lo, lo + 200)
        }
        _ => SelectionQuery::and(
            SelectionQuery::point(1, format!("grp{}", k % 64).as_str()),
            SelectionQuery::range_closed(0, (k * 331) % ROWS, (k * 331) % ROWS + 2_000),
        ),
    }));

    let mut group = c.benchmark_group("e19_pooled_batch");
    for &shards in &SHARD_COUNTS {
        let sharded = Arc::new(
            ShardedRelation::build(&rel, ShardBy::Hash { col: 0 }, shards, &[0, 1])
                .expect("valid sharding spec"),
        );
        let exec = PooledExecutor::with_default_pool(sharded);
        group.bench_with_input(BenchmarkId::new("mixed_batch", shards), &shards, |b, _| {
            b.iter(|| black_box(&exec).execute(black_box(&batch)).unwrap())
        });
    }
    group.finish();
}

/// Measure the scoped-vs-pooled sweep once and write the JSON artifact.
fn emit_bench_pool_json(c: &mut Criterion) {
    // Best-of-3 per executor per shard count: cheap enough for the
    // `--test` smoke, stable enough that the scaling curve isn't one
    // scheduler hiccup.
    let samples = pool_scaling_sweep(ROWS, &SHARD_COUNTS, 3);
    let path = std::env::var("BENCH_POOL_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pool.json").to_string()
    });
    match write_json(&path, &samples) {
        Ok(()) => println!("BENCH_pool.json written to {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
    // Keep the shim's "ran at least one benchmark" accounting honest.
    c.bench_function("e19_emit_json", |b| b.iter(|| samples.len()));
}

fn write_json(path: &str, samples: &[PoolSample]) -> std::io::Result<()> {
    let results: Vec<_> = samples
        .iter()
        .map(|s| {
            pitract_obs::Json::obj()
                .set("shards", s.shards)
                .set("workers", s.workers)
                .set("scoped_seconds", rounded(s.scoped_seconds, 6))
                .set("scoped_qps", rounded(s.scoped_qps, 1))
                .set("pooled_seconds", rounded(s.pooled_seconds, 6))
                .set("pooled_qps", rounded(s.pooled_qps, 1))
        })
        .collect();
    let doc = experiment("pooled-executor-throughput")
        .set("rows", ROWS)
        .set("batch_queries", POOL_BATCH_QUERIES)
        .set("available_parallelism", available_parallelism())
        .set("results", results);
    write_artifact(path, &doc)
}

criterion_group!(benches, bench_pooled_batch, emit_bench_pool_json);
criterion_main!(benches);
