//! Wall-clock benchmarks for WAL-shipping replication, plus the
//! machine-readable perf artifact.
//!
//! Besides the criterion group, every run (including the CI `--test`
//! smoke) serializes two curves to `BENCH_repl.json` (default
//! `BENCH_repl.json` in the repository root, where it is committed as
//! the perf trajectory; override with the `BENCH_REPL_JSON` env var),
//! next to the wal/pool/mvcc artifacts:
//!
//! * follower catch-up throughput vs the *net* change (total churn
//!   fixed — the compactor cancels the rest before shipping);
//! * follower batch throughput vs the primary's under 0/1/4 racing
//!   primary writers, with a live catch-up loop keeping the replica
//!   fresh.

use criterion::{criterion_group, criterion_main, Criterion};
use pitract_bench::artifact::{available_parallelism, experiment, rounded, write_artifact};
use pitract_bench::experiments::{
    repl_catchup_sweep, repl_serving_sweep, ReplCatchUpSample, ReplServeSample, REPL_BATCH_QUERIES,
    REPL_SHARDS,
};

const TOTAL_OPS: usize = 3_000;
const NETS: [usize; 3] = [250, 1_000, 3_000];
const SERVE_ROWS: i64 = 8_000;
const WRITERS: [usize; 3] = [0, 1, 4];
const PER_WRITER: i64 = 200;

/// Measure both sweeps once and write the JSON artifact.
fn emit_bench_repl_json(c: &mut Criterion) {
    let catchup = repl_catchup_sweep(TOTAL_OPS, &NETS);
    let serving = repl_serving_sweep(SERVE_ROWS, &WRITERS, PER_WRITER, 3);
    let path = std::env::var("BENCH_REPL_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_repl.json").to_string()
    });
    match write_json(&path, &catchup, &serving) {
        Ok(()) => println!("BENCH_repl.json written to {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
    // Keep the shim's "ran at least one benchmark" accounting honest.
    c.bench_function("e21_emit_json", |b| b.iter(|| catchup.len()));
}

fn write_json(
    path: &str,
    catchup: &[ReplCatchUpSample],
    serving: &[ReplServeSample],
) -> std::io::Result<()> {
    let catchup: Vec<_> = catchup
        .iter()
        .map(|s| {
            pitract_obs::Json::obj()
                .set("total_ops", s.total_ops)
                .set("net_change", s.net_change)
                .set("shipped_records", s.shipped_records)
                .set("seconds", rounded(s.seconds, 6))
                .set("records_per_second", rounded(s.records_per_second, 1))
        })
        .collect();
    let serving: Vec<_> = serving
        .iter()
        .map(|s| {
            pitract_obs::Json::obj()
                .set("writers", s.writers)
                .set("primary_qps", rounded(s.primary_qps, 1))
                .set("follower_qps", rounded(s.follower_qps, 1))
                .set("final_lag", s.final_lag)
        })
        .collect();
    let doc = experiment("replication")
        .set("shards", REPL_SHARDS)
        .set("batch_queries", REPL_BATCH_QUERIES)
        .set("available_parallelism", available_parallelism())
        .set("catchup", catchup)
        .set("serving", serving);
    write_artifact(path, &doc)
}

criterion_group!(benches, emit_bench_repl_json);
criterion_main!(benches);
