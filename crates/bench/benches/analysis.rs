//! Pricing the runtime lockdep (PR 9): what the rank-checked
//! `OrderedMutex`/`OrderedRwLock` wrappers cost relative to the bare std
//! locks they wrap, microscopically and on the E19 pooled serving
//! workload.
//!
//! Release builds compile the rank check out, so `ordered_mutex_ns`
//! should sit on top of `std_mutex_ns`; `noted_pair_ns` adds the
//! explicit `note_acquire`/`note_release` bookkeeping a *debug*
//! acquisition pays (those functions are always compiled, so a release
//! bench can price them). The serving-level number runs the E19 mixed
//! batch through a pooled executor over a `LiveRelation`, whose entire
//! lock population is ordered — the end-to-end cost of the migration.
//!
//! Every run (including the CI `--test` smoke) writes
//! `BENCH_analysis.json` (repository root; override with the
//! `BENCH_ANALYSIS_JSON` env var) so future PRs can diff the overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use pitract_bench::artifact::{available_parallelism, experiment, rounded, write_artifact};
use pitract_core::lockdep::{self, LockRank, OrderedMutex};
use pitract_engine::batch::QueryBatch;
use pitract_engine::live::LiveRelation;
use pitract_engine::shard::ShardBy;
use pitract_engine::PooledExecutor;
use pitract_relation::{ColType, Relation, Schema, SelectionQuery, Value};
use std::hint::black_box;
use std::sync::{Arc, Mutex};
use std::time::Instant;

const ROWS: i64 = 1 << 16;
const BATCH_QUERIES: i64 = 256;
const LOCK_ROUNDS: u64 = 1_000_000;

fn ns_per(rounds: u64, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..rounds {
        f();
    }
    start.elapsed().as_nanos() as f64 / rounds as f64
}

fn relation() -> Relation {
    let schema = Schema::new(&[("id", ColType::Int), ("grp", ColType::Str)]);
    let rows: Vec<Vec<Value>> = (0..ROWS)
        .map(|i| vec![Value::Int(i), Value::str(format!("grp{}", i % 64))])
        .collect();
    Relation::from_rows(schema, rows).expect("valid rows")
}

fn mixed_batch() -> QueryBatch {
    QueryBatch::new((0..BATCH_QUERIES).map(|k| match k % 3 {
        0 => SelectionQuery::point(0, (k * 997) % ROWS),
        1 => {
            let lo = (k * 641) % ROWS;
            SelectionQuery::range_closed(0, lo, lo + 200)
        }
        _ => SelectionQuery::and(
            SelectionQuery::point(1, format!("grp{}", k % 64).as_str()),
            SelectionQuery::range_closed(0, (k * 331) % ROWS, (k * 331) % ROWS + 2_000),
        ),
    }))
}

/// Criterion group: bare std mutex vs the ordered wrapper (passthrough
/// in release builds) vs the explicit note pair a debug acquisition
/// adds.
fn bench_lock_micro(c: &mut Criterion) {
    let plain = Mutex::new(0u64);
    let ordered = OrderedMutex::new(LockRank::WalState, 0u64);
    let mut group = c.benchmark_group("lockdep_micro");
    group.bench_function("std_mutex", |b| {
        b.iter(|| {
            *black_box(&plain).lock().expect("unpoisoned") += 1;
        })
    });
    group.bench_function("ordered_mutex", |b| {
        b.iter(|| {
            *black_box(&ordered).lock() += 1;
        })
    });
    group.bench_function("noted_pair", |b| {
        b.iter(|| {
            let _ = lockdep::note_acquire(LockRank::WalState, 0);
            *black_box(&plain).lock().expect("unpoisoned") += 1;
            lockdep::note_release(LockRank::WalState, 0);
        })
    });
    group.finish();
}

/// Measure everything once and write the JSON artifact.
fn emit_bench_analysis_json(c: &mut Criterion) {
    let plain = Mutex::new(0u64);
    let ordered = OrderedMutex::new(LockRank::WalState, 0u64);
    let std_ns = ns_per(LOCK_ROUNDS, || {
        *black_box(&plain).lock().expect("unpoisoned") += 1;
    });
    let ordered_ns = ns_per(LOCK_ROUNDS, || {
        *black_box(&ordered).lock() += 1;
    });
    let noted_ns = ns_per(LOCK_ROUNDS, || {
        let _ = lockdep::note_acquire(LockRank::WalState, 0);
        *black_box(&plain).lock().expect("unpoisoned") += 1;
        lockdep::note_release(LockRank::WalState, 0);
    });

    // E19 workload over the fully ordered-lock LiveRelation: best-of-3
    // batch latencies through a warm pool.
    let live = Arc::new(
        LiveRelation::build(&relation(), ShardBy::Hash { col: 0 }, 4, &[0, 1]).expect("valid"),
    );
    let exec = PooledExecutor::with_default_pool(Arc::clone(&live));
    let batch = mixed_batch();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        exec.execute(&batch).expect("batch serves");
        best = best.min(start.elapsed().as_secs_f64());
    }
    let qps = BATCH_QUERIES as f64 / best;

    let doc = experiment("lockdep-overhead")
        .set("debug_assertions", cfg!(debug_assertions))
        .set("rows", ROWS)
        .set("batch_queries", BATCH_QUERIES)
        .set("available_parallelism", available_parallelism())
        .set(
            "results",
            pitract_obs::Json::obj()
                .set("std_mutex_ns", rounded(std_ns, 2))
                .set("ordered_mutex_ns", rounded(ordered_ns, 2))
                .set("noted_pair_ns", rounded(noted_ns, 2))
                .set("ordered_overhead_ns", rounded(ordered_ns - std_ns, 2))
                .set("live_pooled_batch_seconds", rounded(best, 6))
                .set("live_pooled_qps", rounded(qps, 1))
                .set("lockdep_checks_total", lockdep::stats().checks)
                .set("lockdep_violations_total", lockdep::stats().violations),
        );
    let path = std::env::var("BENCH_ANALYSIS_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_analysis.json").to_string()
    });
    match write_artifact(&path, &doc) {
        Ok(()) => println!("BENCH_analysis.json written to {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
    c.bench_function("lockdep_emit_json", |b| b.iter(|| black_box(std_ns)));
}

criterion_group!(benches, bench_lock_micro, emit_bench_analysis_json);
criterion_main!(benches);
