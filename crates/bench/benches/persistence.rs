//! Wall-clock benchmarks for the snapshot store, plus the
//! machine-readable perf artifact.
//!
//! Besides the criterion groups, every run (including the CI `--test`
//! smoke) serializes the size → (cold build, snapshot load) curve to
//! `BENCH_store.json` (default `BENCH_store.json` in the
//! workspace root; override with the `BENCH_STORE_JSON` env var), next
//! to the engine's `BENCH_engine.json`, so future PRs can diff both the
//! serving and the warm-start trajectories.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pitract_bench::artifact::{experiment, rounded, write_artifact};
use pitract_bench::experiments::{store_warmstart_sweep, StoreSample, STORE_SHARDS};
use pitract_engine::shard::{ShardBy, ShardedRelation};
use pitract_relation::{ColType, Relation, Schema, Value};
use pitract_store::Snapshot;
use std::hint::black_box;

const SIZES: [i64; 3] = [1 << 13, 1 << 15, 1 << 16];

fn relation(n: i64) -> Relation {
    let schema = Schema::new(&[("id", ColType::Int), ("grp", ColType::Str)]);
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| vec![Value::Int(i), Value::str(format!("grp{}", i % 64))])
        .collect();
    Relation::from_rows(schema, rows).expect("valid rows")
}

fn bench_build_vs_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_build_vs_load");
    for &n in &SIZES {
        let rel = relation(n);
        group.bench_with_input(BenchmarkId::new("cold_build", n), &n, |b, _| {
            b.iter(|| {
                ShardedRelation::build(
                    black_box(&rel),
                    ShardBy::Hash { col: 0 },
                    STORE_SHARDS,
                    &[0, 1],
                )
                .expect("valid sharding spec")
            })
        });
        let built = ShardedRelation::build(&rel, ShardBy::Hash { col: 0 }, STORE_SHARDS, &[0, 1])
            .expect("valid sharding spec");
        let bytes = Snapshot::Sharded(built).to_bytes();
        group.bench_with_input(BenchmarkId::new("snapshot_load", n), &n, |b, _| {
            b.iter(|| Snapshot::from_bytes(black_box(&bytes)).expect("own bytes load"))
        });
    }
    group.finish();
}

/// Measure the sweep once and write the JSON artifact.
fn emit_bench_store_json(c: &mut Criterion) {
    // One timed repetition per size keeps the `--test` smoke fast; the
    // criterion groups above carry the statistically sampled numbers.
    let samples = store_warmstart_sweep(&SIZES, 1);
    let path = std::env::var("BENCH_STORE_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_store.json").to_string()
    });
    match write_json(&path, &samples) {
        Ok(()) => println!("BENCH_store.json written to {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
    // Keep the shim's "ran at least one benchmark" accounting honest.
    c.bench_function("e16_emit_json", |b| b.iter(|| samples.len()));
}

fn write_json(path: &str, samples: &[StoreSample]) -> std::io::Result<()> {
    let results: Vec<_> = samples
        .iter()
        .map(|s| {
            pitract_obs::Json::obj()
                .set("rows", s.rows)
                .set("file_bytes", s.file_bytes)
                .set("build_seconds", rounded(s.build_seconds, 6))
                .set("load_seconds", rounded(s.load_seconds, 6))
                .set("speedup", rounded(s.speedup(), 2))
        })
        .collect();
    let doc = experiment("snapshot-warmstart")
        .set("shards", STORE_SHARDS)
        .set("results", results);
    write_artifact(path, &doc)
}

criterion_group!(benches, bench_build_vs_load, emit_bench_store_json);
criterion_main!(benches);
