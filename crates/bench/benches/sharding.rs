//! Wall-clock benchmarks for the sharded batch engine, plus the
//! machine-readable perf artifact.
//!
//! Besides the criterion groups, every run (including the CI `--test`
//! smoke) serializes the shard-count → batch-throughput curve to
//! `BENCH_engine.json` (default `BENCH_engine.json` in the
//! repository root; override with the `BENCH_ENGINE_JSON` env var), so
//! future PRs have a perf trajectory to diff against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pitract_bench::artifact::{available_parallelism, experiment, rounded, write_artifact};
use pitract_bench::experiments::{shard_throughput_sweep, ShardSample, BATCH_QUERIES};
use pitract_engine::batch::QueryBatch;
use pitract_engine::shard::{ShardBy, ShardedRelation};
use pitract_relation::{ColType, Relation, Schema, SelectionQuery, Value};
use std::hint::black_box;

const ROWS: i64 = 1 << 16;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn bench_batch_across_shards(c: &mut Criterion) {
    let schema = Schema::new(&[("id", ColType::Int), ("grp", ColType::Str)]);
    let rows: Vec<Vec<Value>> = (0..ROWS)
        .map(|i| vec![Value::Int(i), Value::str(format!("grp{}", i % 64))])
        .collect();
    let rel = Relation::from_rows(schema, rows).expect("valid rows");
    let batch = QueryBatch::new((0..256i64).map(|k| match k % 3 {
        0 => SelectionQuery::point(0, (k * 997) % ROWS),
        1 => {
            let lo = (k * 641) % ROWS;
            SelectionQuery::range_closed(0, lo, lo + 200)
        }
        _ => SelectionQuery::and(
            SelectionQuery::point(1, format!("grp{}", k % 64).as_str()),
            SelectionQuery::range_closed(0, (k * 331) % ROWS, (k * 331) % ROWS + 2_000),
        ),
    }));

    let mut group = c.benchmark_group("e15_sharded_batch");
    for &shards in &SHARD_COUNTS {
        let sharded = ShardedRelation::build(&rel, ShardBy::Hash { col: 0 }, shards, &[0, 1])
            .expect("valid sharding spec");
        group.bench_with_input(BenchmarkId::new("mixed_batch", shards), &shards, |b, _| {
            b.iter(|| black_box(&batch).execute(black_box(&sharded)).unwrap())
        });
    }
    group.finish();
}

/// Measure the sweep once and write the JSON artifact.
fn emit_bench_engine_json(c: &mut Criterion) {
    // Keep the artifact fast to produce in `--test` smoke mode: one timed
    // repetition per shard count (the criterion groups above carry the
    // statistically sampled numbers).
    let samples = shard_throughput_sweep(ROWS, &SHARD_COUNTS, 1);
    let path = std::env::var("BENCH_ENGINE_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json").to_string()
    });
    match write_json(&path, &samples) {
        Ok(()) => println!("BENCH_engine.json written to {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
    // Keep the shim's "ran at least one benchmark" accounting honest.
    c.bench_function("e15_emit_json", |b| b.iter(|| samples.len()));
}

fn write_json(path: &str, samples: &[ShardSample]) -> std::io::Result<()> {
    let results: Vec<_> = samples
        .iter()
        .map(|s| {
            pitract_obs::Json::obj()
                .set("shards", s.shards)
                .set("batch_seconds", rounded(s.batch_seconds, 6))
                .set("queries_per_second", rounded(s.queries_per_second, 1))
                .set("total_steps", s.total_steps)
        })
        .collect();
    let doc = experiment("sharded-batch-throughput")
        .set("rows", ROWS)
        .set("batch_queries", BATCH_QUERIES)
        .set("available_parallelism", available_parallelism())
        .set("results", results);
    write_artifact(path, &doc)
}

criterion_group!(benches, bench_batch_across_shards, emit_bench_engine_json);
criterion_main!(benches);
