//! Wall-clock benchmarks for epoch-pinned MVCC serving, plus the
//! machine-readable perf artifact.
//!
//! Besides the criterion group, every run (including the CI `--test`
//! smoke) serializes the pinned-vs-read-committed comparison at 0/1/4
//! racing writers to `BENCH_mvcc.json` (default `BENCH_mvcc.json` in
//! the repository root; override with the `BENCH_MVCC_JSON` env var),
//! next to the engine/store/live/wal/pool artifacts, so future PRs can
//! diff what one consistent cut per batch costs over unpinned reads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pitract_bench::artifact::{available_parallelism, experiment, rounded, write_artifact};
use pitract_bench::experiments::{
    mvcc_serving_sweep, MvccSample, MVCC_BATCH_QUERIES, MVCC_SHARDS, MVCC_WRITERS,
};
use pitract_engine::batch::QueryBatch;
use pitract_engine::live::LiveRelation;
use pitract_engine::shard::ShardBy;
use pitract_engine::PooledExecutor;
use pitract_relation::{ColType, Relation, Schema, SelectionQuery, Value};
use std::hint::black_box;
use std::sync::Arc;

const ROWS: i64 = 1 << 15;

/// Criterion group: the same mixed batch answered epoch-pinned through
/// a warm pooled executor and unpinned via the read-committed path
/// (no writers — the pin's fixed overhead, isolated).
fn bench_mvcc_paths(c: &mut Criterion) {
    let schema = Schema::new(&[("id", ColType::Int), ("grp", ColType::Str)]);
    let rows: Vec<Vec<Value>> = (0..ROWS)
        .map(|i| vec![Value::Int(i), Value::str(format!("grp{}", i % 64))])
        .collect();
    let rel = Relation::from_rows(schema, rows).expect("valid rows");
    let batch = QueryBatch::new((0..256i64).map(|k| match k % 3 {
        0 => SelectionQuery::point(0, (k * 997) % ROWS),
        1 => {
            let lo = (k * 641) % ROWS;
            SelectionQuery::range_closed(0, lo, lo + 200)
        }
        _ => SelectionQuery::and(
            SelectionQuery::point(1, format!("grp{}", k % 64).as_str()),
            SelectionQuery::range_closed(0, (k * 331) % ROWS, (k * 331) % ROWS + 2_000),
        ),
    }));
    let live = Arc::new(
        LiveRelation::build(&rel, ShardBy::Hash { col: 0 }, MVCC_SHARDS, &[0, 1])
            .expect("valid sharding spec"),
    );
    let exec = PooledExecutor::with_default_pool(Arc::clone(&live));

    let mut group = c.benchmark_group("e20_mvcc_batch");
    group.bench_with_input(BenchmarkId::new("epoch_pinned", 0), &0, |b, _| {
        b.iter(|| black_box(&exec).execute(black_box(&batch)).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("read_committed", 0), &0, |b, _| {
        b.iter(|| {
            black_box(&live)
                .execute_read_committed(black_box(&batch))
                .unwrap()
        })
    });
    group.finish();
}

/// Measure the writer sweep once and write the JSON artifact.
fn emit_bench_mvcc_json(c: &mut Criterion) {
    // 32 batches per path per writer count: cheap enough for the
    // `--test` smoke, enough samples that the p50 isn't at the mercy
    // of scheduler luck against the racing writers (the two paths
    // interleave batch-for-batch inside the sweep).
    let samples = mvcc_serving_sweep(ROWS, &MVCC_WRITERS, 32);
    let path = std::env::var("BENCH_MVCC_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mvcc.json").to_string()
    });
    match write_json(&path, &samples) {
        Ok(()) => println!("BENCH_mvcc.json written to {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
    // Keep the shim's "ran at least one benchmark" accounting honest.
    c.bench_function("e20_emit_json", |b| b.iter(|| samples.len()));
}

fn write_json(path: &str, samples: &[MvccSample]) -> std::io::Result<()> {
    let results: Vec<_> = samples
        .iter()
        .map(|s| {
            pitract_obs::Json::obj()
                .set("writers", s.writers)
                .set("pinned_p50_seconds", rounded(s.pinned_p50_seconds, 6))
                .set("pinned_p99_seconds", rounded(s.pinned_p99_seconds, 6))
                .set("pinned_qps", rounded(s.pinned_qps, 1))
                .set(
                    "read_committed_p50_seconds",
                    rounded(s.read_committed_p50_seconds, 6),
                )
                .set(
                    "read_committed_p99_seconds",
                    rounded(s.read_committed_p99_seconds, 6),
                )
                .set("read_committed_qps", rounded(s.read_committed_qps, 1))
                .set(
                    "pinned_over_rc",
                    rounded(s.pinned_p50_seconds / s.read_committed_p50_seconds, 3),
                )
                .set("max_retained_versions", s.max_retained_versions)
                .set("max_retained_slots", s.max_retained_slots)
        })
        .collect();
    let doc = experiment("mvcc-epoch-pinned-vs-read-committed")
        .set("rows", ROWS)
        .set("shards", MVCC_SHARDS)
        .set("batch_queries", MVCC_BATCH_QUERIES)
        .set("available_parallelism", available_parallelism())
        .set("results", results);
    write_artifact(path, &doc)
}

criterion_group!(benches, bench_mvcc_paths, emit_bench_mvcc_json);
criterion_main!(benches);
