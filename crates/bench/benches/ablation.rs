//! Ablation benches for the design choices DESIGN.md calls out:
//! B⁺-tree node order, bulk load vs incremental construction, and the
//! RMQ space/time trade-off (sparse table vs Fischer–Heun).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pitract_index::bptree::BPlusTree;
use pitract_index::rmq::{fischer_heun::FischerHeunRmq, sparse::SparseRmq, RangeMin};
use std::hint::black_box;

/// Node order: small orders deepen the tree (more cache misses per probe),
/// huge orders pay linear in-node searches. DEFAULT_ORDER = 32 sits in the
/// valley; this ablation shows the valley exists.
fn ablate_bptree_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_bptree_order");
    let n = 1u64 << 16;
    for &order in &[4usize, 16, 32, 128, 512] {
        let tree = BPlusTree::bulk_load_with_order(order, (0..n).map(|i| (i, i)).collect());
        group.bench_with_input(BenchmarkId::new("probe", order), &order, |b, _| {
            let mut k = 0u64;
            b.iter(|| {
                k = (k + 48271) % n;
                tree.get(black_box(&k))
            })
        });
        group.bench_with_input(BenchmarkId::new("insert_build", order), &order, |b, _| {
            b.iter(|| {
                let mut t: BPlusTree<u64, u64> = BPlusTree::with_order(order);
                for i in 0..4096u64 {
                    t.insert(i, i);
                }
                t
            })
        });
    }
    group.finish();
}

/// Bulk load packs leaves in one pass; incremental insertion splits its
/// way up. Both produce valid trees; the build-cost gap is the point.
fn ablate_bulk_vs_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_build_path");
    group.sample_size(20);
    let n = 1u64 << 15;
    let entries: Vec<(u64, u64)> = (0..n).map(|i| (i, i)).collect();
    group.bench_function("bulk_load_sorted", |b| {
        b.iter(|| BPlusTree::bulk_load(black_box(entries.clone())))
    });
    group.bench_function("insert_sorted", |b| {
        b.iter(|| BPlusTree::build(black_box(entries.clone())))
    });
    group.finish();
}

/// Sparse table: O(n log n) space, 2 probes. Fischer–Heun: O(n) space,
/// ≤ 3 probes. Build time and probe time, side by side.
fn ablate_rmq_space_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_rmq");
    group.sample_size(20);
    let n = 1usize << 16;
    let data: Vec<i64> = (0..n).map(|i| ((i * 48271) % 99991) as i64).collect();
    group.bench_function("build_sparse", |b| {
        b.iter(|| SparseRmq::build(black_box(&data)))
    });
    group.bench_function("build_fischer_heun", |b| {
        b.iter(|| FischerHeunRmq::build(black_box(&data)))
    });
    let sparse = SparseRmq::build(&data);
    let fh = FischerHeunRmq::build(&data);
    group.bench_function("probe_sparse", |b| {
        b.iter(|| sparse.query(black_box(17), black_box(n - 9)))
    });
    group.bench_function("probe_fischer_heun", |b| {
        b.iter(|| fh.query(black_box(17), black_box(n - 9)))
    });
    group.finish();
}

criterion_group!(
    ablations,
    ablate_bptree_order,
    ablate_bulk_vs_incremental,
    ablate_rmq_space_time
);
criterion_main!(ablations);
