//! Criterion wall-clock benchmarks, one group per experiment (E1–E14).
//!
//! The step-metered tables (`cargo run -p pitract-bench --bin tables`)
//! carry the growth-curve verdicts; these benches add real time for the
//! same operations so EXPERIMENTS.md can report both. Groups are kept
//! small (fixed representative sizes) so `cargo bench` completes quickly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pitract_circuit::factor::{gate_factorization, gate_table_scheme};
use pitract_circuit::generate::layered;
use pitract_core::cost::Meter;
use pitract_core::factor::Factorization;
use pitract_graph::bds::{visited_before_by_search, BdsIndex};
use pitract_graph::compress::CompressedReach;
use pitract_graph::generate;
use pitract_graph::reach::ReachIndex;
use pitract_graph::traverse::reachable_bfs;
use pitract_incremental::closure::IncrementalClosure;
use pitract_index::bptree::BPlusTree;
use pitract_index::lca::tree::{naive_lca, EulerTourLca, RootedTree};
use pitract_index::rmq::{fischer_heun::FischerHeunRmq, naive::NaiveRmq, RangeMin};
use pitract_index::sorted::SortedIndex;
use pitract_kernel::buss::decide_via_kernel;
use pitract_reductions::{connectivity_to_bds, rmq_lca};
use pitract_relation::indexed::IndexedRelation;
use pitract_relation::views::{MaterializedView, ViewSet};
use pitract_relation::{ColType, Relation, Schema, SelectionQuery, Value};
use std::hint::black_box;
use std::ops::Bound;

fn relation_of(n: i64) -> Relation {
    let schema = Schema::new(&[("a", ColType::Int)]);
    Relation::from_rows(schema, (0..n).map(|i| vec![Value::Int(i)]).collect()).unwrap()
}

/// E1/E2: point + range selection, scan vs B⁺-tree.
fn bench_e01_e02_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("e01_e02_selection");
    for &n in &[1i64 << 14, 1 << 17] {
        let rel = relation_of(n);
        let idx = IndexedRelation::build(&rel, &[0]).expect("column 0 exists");
        let miss = SelectionQuery::point(0, n + 1);
        group.bench_with_input(BenchmarkId::new("scan_point", n), &n, |b, _| {
            b.iter(|| rel.eval_scan(black_box(&miss)))
        });
        group.bench_with_input(BenchmarkId::new("bptree_point", n), &n, |b, _| {
            b.iter(|| idx.answer(black_box(&miss)))
        });
        let range = SelectionQuery::range_closed(0, n + 1, n + 100);
        group.bench_with_input(BenchmarkId::new("bptree_range", n), &n, |b, _| {
            b.iter(|| idx.answer(black_box(&range)))
        });
    }
    group.finish();
}

/// E3: list search — sorted-index probe vs scan, plus the one-time sort.
fn bench_e03_list_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("e03_list_search");
    let n = 1u64 << 16;
    let list: Vec<u64> = (0..n).map(|i| (i * 2654435761) % (2 * n)).collect();
    let idx = SortedIndex::build(&list);
    group.bench_function("scan_miss", |b| {
        b.iter(|| list.contains(black_box(&(2 * n + 1))))
    });
    group.bench_function("sorted_probe_miss", |b| {
        b.iter(|| idx.contains(black_box(&(2 * n + 1))))
    });
    group.bench_function("preprocess_sort", |b| {
        b.iter(|| SortedIndex::build(black_box(&list)))
    });
    group.finish();
}

/// E4: RMQ — naive scan vs Fischer–Heun O(1).
fn bench_e04_rmq(c: &mut Criterion) {
    let mut group = c.benchmark_group("e04_rmq");
    let n = 1usize << 16;
    let data: Vec<i64> = (0..n).map(|i| ((i * 48271) % 99991) as i64).collect();
    let naive = NaiveRmq::build(&data);
    let fh = FischerHeunRmq::build(&data);
    group.bench_function("naive_halfspan", |b| {
        b.iter(|| naive.query(black_box(1000), black_box(n / 2)))
    });
    group.bench_function("fischer_heun_halfspan", |b| {
        b.iter(|| fh.query(black_box(1000), black_box(n / 2)))
    });
    group.bench_function("preprocess_fischer_heun", |b| {
        b.iter(|| FischerHeunRmq::build(black_box(&data)))
    });
    group.finish();
}

/// E5: LCA — naive walk vs Euler+RMQ on a deep tree.
fn bench_e05_lca(c: &mut Criterion) {
    let mut group = c.benchmark_group("e05_lca");
    let n = 1usize << 15;
    let parents: Vec<Option<usize>> = (0..n)
        .map(|i| if i == 0 { None } else { Some(i - 1) })
        .collect();
    let tree = RootedTree::from_parents(&parents).unwrap();
    let euler = EulerTourLca::build(&tree);
    group.bench_function("naive_walk_deep", |b| {
        b.iter(|| naive_lca(black_box(&tree), n - 1, n / 2))
    });
    group.bench_function("euler_probe_deep", |b| {
        b.iter(|| euler.query(black_box(n - 1), black_box(n / 2)))
    });
    group.finish();
}

/// E6: reachability — per-query BFS vs matrix probe.
fn bench_e06_reachability(c: &mut Criterion) {
    let mut group = c.benchmark_group("e06_reachability");
    let n = 2048;
    let g = generate::gnp_directed(n, 2.0 / n as f64, 5);
    let idx = ReachIndex::build(&g);
    group.bench_function("bfs_per_query", |b| {
        b.iter(|| reachable_bfs(black_box(&g), 0, n - 1))
    });
    group.bench_function("matrix_probe", |b| {
        b.iter(|| idx.reachable(black_box(0), black_box(n - 1)))
    });
    group.finish();
}

/// E7: BDS — full search per query vs preprocessed probe.
fn bench_e07_bds(c: &mut Criterion) {
    let mut group = c.benchmark_group("e07_bds");
    group.sample_size(20);
    let g = generate::grid(48);
    let idx = BdsIndex::build(&g);
    let meter = Meter::new();
    group.bench_function("full_search_per_query", |b| {
        b.iter(|| visited_before_by_search(black_box(&g), 5, 2000, &meter))
    });
    group.bench_function("index_probe", |b| {
        b.iter(|| idx.visited_before(black_box(5), black_box(2000)))
    });
    group.bench_function("preprocess_bds", |b| {
        b.iter(|| BdsIndex::build(black_box(&g)))
    });
    group.finish();
}

/// E8: compression — build + query on a cyclic workload.
fn bench_e08_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("e08_compression");
    group.sample_size(20);
    let n = 900;
    let g = generate::gnp_directed(n, 3.0 / n as f64, 21);
    let compressed = CompressedReach::build(&g);
    group.bench_function("compress_build", |b| {
        b.iter(|| CompressedReach::build(black_box(&g)))
    });
    group.bench_function("compressed_query", |b| {
        b.iter(|| compressed.reachable(black_box(3), black_box(n - 2)))
    });
    group.finish();
}

/// E9: views — base scan vs covering-view answering.
fn bench_e09_views(c: &mut Criterion) {
    let mut group = c.benchmark_group("e09_views");
    let n = 100_000i64;
    let base = relation_of(n);
    let mut views = ViewSet::new();
    views.add(MaterializedView::materialize(
        "first_percent",
        &base,
        0,
        Bound::Included(Value::Int(0)),
        Bound::Excluded(Value::Int(n / 100)),
    ));
    let q = SelectionQuery::range_closed(0, 100i64, 200i64);
    let meter = Meter::new();
    group.bench_function("base_scan", |b| b.iter(|| base.eval_scan(black_box(&q))));
    group.bench_function("view_answer", |b| {
        b.iter(|| views.answer_metered(black_box(&q), &meter).unwrap())
    });
    group.finish();
}

/// E10: incremental closure insert vs from-scratch closure.
fn bench_e10_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_incremental");
    group.sample_size(20);
    let n = 150;
    group.bench_function("incremental_insert_stream", |b| {
        b.iter(|| {
            let mut inc = IncrementalClosure::new(n);
            for i in 0..n - 1 {
                inc.insert_edge(black_box(i), black_box(i + 1));
            }
            inc
        })
    });
    group.bench_function("bptree_insert_stream", |b| {
        b.iter(|| {
            let mut t: BPlusTree<u64, u64> = BPlusTree::new();
            for i in 0..4096u64 {
                t.insert(black_box(i * 2654435761 % 8192), i);
            }
            t
        })
    });
    group.finish();
}

/// E11: CVP — full evaluation per query vs gate-table probe.
fn bench_e11_cvp(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_cvp");
    let circuit = layered(8, 256, 8, 42);
    let inputs = vec![true, false, true, true, false, false, true, false];
    let x = (circuit, inputs);
    let f = gate_factorization();
    let scheme = gate_table_scheme();
    let d = f.pi1(&x);
    let table = scheme.preprocess(&d);
    let out = f.pi2(&x);
    group.bench_function("upsilon0_full_eval_per_query", |b| {
        b.iter(|| x.0.evaluate(black_box(&x.1)))
    });
    group.bench_function("gate_table_probe", |b| {
        b.iter(|| scheme.answer(black_box(&table), black_box(&out)))
    });
    group.bench_function("gate_table_preprocess", |b| {
        b.iter(|| scheme.preprocess(black_box(&d)))
    });
    group.finish();
}

/// E12: vertex cover — kernel pipeline on growing graphs, fixed k.
fn bench_e12_vertex_cover(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_vertex_cover");
    group.sample_size(20);
    let meter = Meter::new();
    for &n in &[500usize, 4000] {
        let mut edges = Vec::new();
        for hub in 0..3 {
            for i in 10..n / 2 {
                if i % 3 == hub {
                    edges.push((hub, i));
                }
            }
        }
        edges.push((n / 2, n / 2 + 1));
        let g = pitract_graph::Graph::undirected_from_edges(n, &edges);
        group.bench_with_input(BenchmarkId::new("kernel_decide_k8", n), &n, |b, _| {
            b.iter(|| decide_via_kernel(black_box(&g), 8, &meter))
        });
    }
    group.finish();
}

/// E13: reductions — transferred RMQ scheme vs recompute-per-query.
fn bench_e13_reductions(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_reductions");
    let data: Vec<i64> = (0..20_000).map(|i| ((i * 37) % 1009) as i64).collect();
    let scheme = rmq_lca::transferred_rmq_scheme();
    let pre = scheme.preprocess(&data);
    group.bench_function("transferred_rmq_probe", |b| {
        b.iter(|| scheme.answer(black_box(&pre), black_box(&(100, 15_000, 101))))
    });
    let g = generate::gnp_undirected(2_000, 0.001, 3);
    let conn = connectivity_to_bds::transferred_connectivity_scheme();
    let cp = conn.preprocess(&g);
    group.bench_function("connectivity_via_bds_probe", |b| {
        b.iter(|| conn.answer(black_box(&cp), black_box(&1500)))
    });
    group.finish();
}

/// E14: the NC substrate — closure by squaring at two scales.
fn bench_e14_nc_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_nc_depth");
    group.sample_size(10);
    for &n in &[128usize, 512] {
        let g = generate::gnp_directed(n, 2.0 / n as f64, 9);
        let m = pitract_pram::matrix::BitMatrix::from_edges(n, &g.edges());
        group.bench_with_input(BenchmarkId::new("closure_by_squaring", n), &n, |b, _| {
            b.iter(|| m.transitive_closure())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_e01_e02_selection,
    bench_e03_list_search,
    bench_e04_rmq,
    bench_e05_lca,
    bench_e06_reachability,
    bench_e07_bds,
    bench_e08_compression,
    bench_e09_views,
    bench_e10_incremental,
    bench_e11_cvp,
    bench_e12_vertex_cover,
    bench_e13_reductions,
    bench_e14_nc_depth
);
criterion_main!(benches);
