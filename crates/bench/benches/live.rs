//! Wall-clock benchmarks for the live serving tier, plus the
//! machine-readable perf artifact.
//!
//! Besides the criterion group, every run (including the CI `--test`
//! smoke) serializes the writer-count → batch-throughput curve to
//! `BENCH_live.json` (default `BENCH_live.json` in the repository
//! root; override with the `BENCH_LIVE_JSON` env var), next to
//! `BENCH_engine.json` and `BENCH_store.json`, so future PRs can diff
//! how much concurrent write traffic costs the serving path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pitract_bench::artifact::{available_parallelism, experiment, rounded, write_artifact};
use pitract_bench::experiments::{
    live_throughput_sweep, LiveSample, LIVE_BATCH_QUERIES, LIVE_SHARDS,
};
use pitract_engine::batch::QueryBatch;
use pitract_engine::live::LiveRelation;
use pitract_engine::shard::ShardBy;
use pitract_relation::{ColType, Relation, Schema, SelectionQuery, Value};
use std::hint::black_box;

const ROWS: i64 = 1 << 16;
const WRITER_COUNTS: [usize; 3] = [0, 1, 4];

/// Criterion group: the batch path itself (no writers — criterion's
/// repeated sampling would conflate writer scheduling noise with the
/// query path; the writer dimension is measured once per run by the
/// sweep below and serialized to the JSON artifact).
fn bench_live_batch(c: &mut Criterion) {
    let schema = Schema::new(&[("id", ColType::Int), ("grp", ColType::Str)]);
    let rows: Vec<Vec<Value>> = (0..ROWS)
        .map(|i| vec![Value::Int(i), Value::str(format!("grp{}", i % 64))])
        .collect();
    let rel = Relation::from_rows(schema, rows).expect("valid rows");
    let live = LiveRelation::build(&rel, ShardBy::Hash { col: 0 }, LIVE_SHARDS, &[0, 1])
        .expect("valid sharding spec");
    let batch = QueryBatch::new((0..256i64).map(|k| match k % 3 {
        0 => SelectionQuery::point(0, (k * 997) % ROWS),
        1 => {
            let lo = (k * 641) % ROWS;
            SelectionQuery::range_closed(0, lo, lo + 200)
        }
        _ => SelectionQuery::and(
            SelectionQuery::point(1, format!("grp{}", k % 64).as_str()),
            SelectionQuery::range_closed(0, (k * 331) % ROWS, (k * 331) % ROWS + 2_000),
        ),
    }));

    let mut group = c.benchmark_group("e17_live_batch");
    group.bench_with_input(BenchmarkId::new("locked_batch", 0), &0, |b, _| {
        b.iter(|| black_box(&live).execute(black_box(&batch)).unwrap().answers)
    });
    group.finish();
}

/// Measure the writer sweep once and write the JSON artifact.
fn emit_bench_live_json(c: &mut Criterion) {
    // One timed repetition per writer count keeps the `--test` smoke
    // fast; the criterion group above carries the sampled numbers for
    // the uncontended path.
    let samples = live_throughput_sweep(ROWS, &WRITER_COUNTS, 1);
    let path = std::env::var("BENCH_LIVE_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_live.json").to_string()
    });
    match write_json(&path, &samples) {
        Ok(()) => println!("BENCH_live.json written to {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
    // Keep the shim's "ran at least one benchmark" accounting honest.
    c.bench_function("e17_emit_json", |b| b.iter(|| samples.len()));
}

fn write_json(path: &str, samples: &[LiveSample]) -> std::io::Result<()> {
    let results: Vec<_> = samples
        .iter()
        .map(|s| {
            pitract_obs::Json::obj()
                .set("writers", s.writers)
                .set("batch_seconds", rounded(s.batch_seconds, 6))
                .set("queries_per_second", rounded(s.queries_per_second, 1))
                .set("updates_per_second", rounded(s.updates_per_second, 1))
                .set(
                    "worst_maintenance_ratio",
                    rounded(s.worst_maintenance_ratio, 2),
                )
        })
        .collect();
    let doc = experiment("live-serving-throughput")
        .set("rows", ROWS)
        .set("shards", LIVE_SHARDS)
        .set("batch_queries", LIVE_BATCH_QUERIES)
        .set("available_parallelism", available_parallelism())
        .set("results", results);
    write_artifact(path, &doc)
}

criterion_group!(benches, bench_live_batch, emit_bench_live_json);
criterion_main!(benches);
