//! Wall-clock benchmarks for the live serving tier, plus the
//! machine-readable perf artifact.
//!
//! Besides the criterion group, every run (including the CI `--test`
//! smoke) serializes the writer-count → batch-throughput curve to
//! `BENCH_live.json` (default `BENCH_live.json` in the repository
//! root; override with the `BENCH_LIVE_JSON` env var), next to
//! `BENCH_engine.json` and `BENCH_store.json`, so future PRs can diff
//! how much concurrent write traffic costs the serving path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pitract_bench::experiments::{
    live_throughput_sweep, LiveSample, LIVE_BATCH_QUERIES, LIVE_SHARDS,
};
use pitract_engine::batch::QueryBatch;
use pitract_engine::live::LiveRelation;
use pitract_engine::shard::ShardBy;
use pitract_relation::{ColType, Relation, Schema, SelectionQuery, Value};
use std::hint::black_box;
use std::io::Write as _;

const ROWS: i64 = 1 << 16;
const WRITER_COUNTS: [usize; 3] = [0, 1, 4];

/// Criterion group: the batch path itself (no writers — criterion's
/// repeated sampling would conflate writer scheduling noise with the
/// query path; the writer dimension is measured once per run by the
/// sweep below and serialized to the JSON artifact).
fn bench_live_batch(c: &mut Criterion) {
    let schema = Schema::new(&[("id", ColType::Int), ("grp", ColType::Str)]);
    let rows: Vec<Vec<Value>> = (0..ROWS)
        .map(|i| vec![Value::Int(i), Value::str(format!("grp{}", i % 64))])
        .collect();
    let rel = Relation::from_rows(schema, rows).expect("valid rows");
    let live = LiveRelation::build(&rel, ShardBy::Hash { col: 0 }, LIVE_SHARDS, &[0, 1])
        .expect("valid sharding spec");
    let batch = QueryBatch::new((0..256i64).map(|k| match k % 3 {
        0 => SelectionQuery::point(0, (k * 997) % ROWS),
        1 => {
            let lo = (k * 641) % ROWS;
            SelectionQuery::range_closed(0, lo, lo + 200)
        }
        _ => SelectionQuery::and(
            SelectionQuery::point(1, format!("grp{}", k % 64).as_str()),
            SelectionQuery::range_closed(0, (k * 331) % ROWS, (k * 331) % ROWS + 2_000),
        ),
    }));

    let mut group = c.benchmark_group("e17_live_batch");
    group.bench_with_input(BenchmarkId::new("locked_batch", 0), &0, |b, _| {
        b.iter(|| black_box(&live).execute(black_box(&batch)).unwrap().answers)
    });
    group.finish();
}

/// Measure the writer sweep once and write the JSON artifact.
fn emit_bench_live_json(c: &mut Criterion) {
    // One timed repetition per writer count keeps the `--test` smoke
    // fast; the criterion group above carries the sampled numbers for
    // the uncontended path.
    let samples = live_throughput_sweep(ROWS, &WRITER_COUNTS, 1);
    let path = std::env::var("BENCH_LIVE_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_live.json").to_string()
    });
    match write_json(&path, &samples) {
        Ok(()) => println!("BENCH_live.json written to {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
    // Keep the shim's "ran at least one benchmark" accounting honest.
    c.bench_function("e17_emit_json", |b| b.iter(|| samples.len()));
}

fn write_json(path: &str, samples: &[LiveSample]) -> std::io::Result<()> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir)?;
    }
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"experiment\": \"live-serving-throughput\",")?;
    writeln!(f, "  \"rows\": {ROWS},")?;
    writeln!(f, "  \"shards\": {LIVE_SHARDS},")?;
    writeln!(f, "  \"batch_queries\": {LIVE_BATCH_QUERIES},")?;
    writeln!(f, "  \"available_parallelism\": {cores},")?;
    writeln!(f, "  \"results\": [")?;
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 < samples.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"writers\": {}, \"batch_seconds\": {:.6}, \"queries_per_second\": {:.1}, \
             \"updates_per_second\": {:.1}, \"worst_maintenance_ratio\": {:.2}}}{comma}",
            s.writers,
            s.batch_seconds,
            s.queries_per_second,
            s.updates_per_second,
            s.worst_maintenance_ratio
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

criterion_group!(benches, bench_live_batch, emit_bench_live_json);
criterion_main!(benches);
