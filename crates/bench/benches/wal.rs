//! Wall-clock benchmarks for the durable WAL tier, plus the
//! machine-readable perf artifact.
//!
//! Besides the criterion group, every run (including the CI `--test`
//! smoke) serializes two curves to `BENCH_wal.json` (default
//! `BENCH_wal.json` in the repository root, where it is committed as
//! the perf trajectory; override with the `BENCH_WAL_JSON` env var),
//! next to the engine/store/live artifacts:
//!
//! * update throughput under each durability mode (no WAL,
//!   fsync-per-record, group commit, batched group commit via
//!   `apply_batch`, OS-buffered);
//! * recovery time vs log length, raw replay vs compacted.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pitract_bench::artifact::{available_parallelism, experiment, rounded, write_artifact};
use pitract_bench::experiments::{
    wal_recovery_sweep, wal_throughput_sweep, WalRecoverySample, WalThroughputSample, WAL_SHARDS,
    WAL_WRITERS,
};
use pitract_engine::{LiveRelation, ShardBy};
use pitract_relation::{ColType, Relation, Schema, Value};
use pitract_store::SnapshotCatalog;
use pitract_wal::{DurableLiveRelation, SyncPolicy, WalConfig};
use std::hint::black_box;

const ROWS: i64 = 4_000;
const PER_WRITER: i64 = 150;
const RECOVERY_LENS: [usize; 2] = [600, 2_400];

/// Criterion group: the append path itself — one insert+delete cycle on
/// a group-commit node (fsync cost shows up in the measured commit).
fn bench_wal_update(c: &mut Criterion) {
    let root = std::env::temp_dir().join(format!("pitract-walbench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let catalog = SnapshotCatalog::open(root.join("snaps")).expect("catalog dir");
    let schema = Schema::new(&[("id", ColType::Int), ("grp", ColType::Str)]);
    let rows: Vec<Vec<Value>> = (0..ROWS)
        .map(|i| vec![Value::Int(i), Value::str(format!("grp{}", i % 32))])
        .collect();
    let rel = Relation::from_rows(schema, rows).expect("valid rows");
    let live = LiveRelation::build(&rel, ShardBy::Hash { col: 0 }, WAL_SHARDS, &[0, 1])
        .expect("valid sharding spec");
    let node = DurableLiveRelation::create(
        live,
        &catalog,
        "bench",
        root.join("wal"),
        WalConfig {
            sync: SyncPolicy::GroupCommit,
            ..WalConfig::default()
        },
    )
    .expect("fresh durable node");

    let mut group = c.benchmark_group("e18_wal_update");
    let mut key = ROWS;
    group.bench_with_input(BenchmarkId::new("durable_insert_delete", 0), &0, |b, _| {
        b.iter(|| {
            key += 1;
            let gid = black_box(&node)
                .insert(vec![Value::Int(key), Value::str("hot")])
                .unwrap();
            node.delete(gid).unwrap().unwrap();
            gid
        })
    });
    group.finish();
    drop(node);
    let _ = std::fs::remove_dir_all(&root);
}

/// Measure both sweeps once and write the JSON artifact.
fn emit_bench_wal_json(c: &mut Criterion) {
    let throughput = wal_throughput_sweep(ROWS, PER_WRITER);
    let recovery = wal_recovery_sweep(ROWS, &RECOVERY_LENS, 1);
    let path = std::env::var("BENCH_WAL_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wal.json").to_string()
    });
    match write_json(&path, &throughput, &recovery) {
        Ok(()) => println!("BENCH_wal.json written to {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
    // Keep the shim's "ran at least one benchmark" accounting honest.
    c.bench_function("e18_emit_json", |b| b.iter(|| throughput.len()));
}

fn write_json(
    path: &str,
    throughput: &[WalThroughputSample],
    recovery: &[WalRecoverySample],
) -> std::io::Result<()> {
    let throughput: Vec<_> = throughput
        .iter()
        .map(|s| {
            pitract_obs::Json::obj()
                .set("mode", s.mode)
                .set("updates", s.updates)
                .set("seconds", rounded(s.seconds, 6))
                .set("updates_per_second", rounded(s.updates_per_second, 1))
        })
        .collect();
    let recovery: Vec<_> = recovery
        .iter()
        .map(|s| {
            pitract_obs::Json::obj()
                .set("log_len", s.log_len)
                .set("raw_replayed", s.raw_replayed)
                .set("raw_seconds", rounded(s.raw_seconds, 6))
                .set("compacted_replayed", s.compacted_replayed)
                .set("compacted_seconds", rounded(s.compacted_seconds, 6))
        })
        .collect();
    let doc = experiment("wal-durability")
        .set("rows", ROWS)
        .set("shards", WAL_SHARDS)
        .set("writers", WAL_WRITERS)
        .set("available_parallelism", available_parallelism())
        .set("throughput", throughput)
        .set("recovery", recovery);
    write_artifact(path, &doc)
}

criterion_group!(benches, bench_wal_update, emit_bench_wal_json);
criterion_main!(benches);
