//! Experiment E18: the price of durability, and what compaction buys
//! back.
//!
//! Two questions a durable serving tier must answer with numbers:
//!
//! 1. **Update throughput.** How much does the write-ahead log cost per
//!    update? Measured across the fsync spectrum: no WAL at all (the
//!    in-memory `LiveRelation`), fsync-per-record
//!    ([`SyncPolicy::Always`] — the naive contract), group commit
//!    ([`SyncPolicy::GroupCommit`] — concurrent committers share one
//!    flush), batched group commit
//!    ([`LiveRelation::apply_batch`] — many records staged per commit,
//!    one fsync per batch), and OS-buffered ([`SyncPolicy::Never`]).
//!    Each mode runs the same multi-writer insert/delete workload, and
//!    every durable run's WAL is recovered and verified row-for-row
//!    against the live node before its number is reported.
//! 2. **Recovery time.** How does crash-recovery scale with log length,
//!    and how much does compaction bound it? A churn-heavy history
//!    (every insert soon deleted) is recovered twice — from the raw log
//!    and from the compacted one — at growing log lengths.
//!
//! The same sweeps back the `wal` bench target, which serializes both
//! curves to `BENCH_wal.json` next to the other perf artifacts.

use crate::table::{fmt_u64, Table};
use pitract_engine::live::LiveRelation;
use pitract_engine::shard::ShardBy;
use pitract_engine::{Applied, UpdateOp};
use pitract_relation::{ColType, Relation, Schema, Value};
use pitract_store::SnapshotCatalog;
use pitract_wal::{Compactor, DurableLiveRelation, SyncPolicy, WalConfig, WalReader};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Shards used throughout the sweep.
pub const WAL_SHARDS: usize = 4;

/// Concurrent writer threads in the throughput sweep.
pub const WAL_WRITERS: usize = 4;

/// Ops per [`LiveRelation::apply_batch`] call in the batched
/// group-commit mode.
pub const WAL_BATCH_OPS: usize = 128;

/// One measured point of the durability-cost sweep.
#[derive(Debug, Clone)]
pub struct WalThroughputSample {
    /// Human label of the durability mode.
    pub mode: &'static str,
    /// Updates applied across all writers.
    pub updates: u64,
    /// Wall-clock seconds for the whole workload.
    pub seconds: f64,
    /// Updates per second.
    pub updates_per_second: f64,
}

/// One measured point of the recovery sweep.
#[derive(Debug, Clone)]
pub struct WalRecoverySample {
    /// Updates in the log before compaction.
    pub log_len: usize,
    /// Entries the raw recovery replayed.
    pub raw_replayed: usize,
    /// Seconds to recover from the raw log (best of reps).
    pub raw_seconds: f64,
    /// Entries the compacted recovery replayed.
    pub compacted_replayed: usize,
    /// Seconds to recover after compaction (best of reps).
    pub compacted_seconds: f64,
}

fn fresh_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pitract-bench-wal-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn base_live(n: i64) -> LiveRelation {
    let schema = Schema::new(&[("id", ColType::Int), ("grp", ColType::Str)]);
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| vec![Value::Int(i), Value::str(format!("grp{}", i % 32))])
        .collect();
    let rel = Relation::from_rows(schema, rows).expect("valid rows");
    LiveRelation::build(&rel, ShardBy::Hash { col: 0 }, WAL_SHARDS, &[0, 1])
        .expect("valid sharding spec")
}

/// Apply the standard workload — `WAL_WRITERS` threads, each inserting
/// `per_writer` rows and deleting every other one — to `node` (any
/// target that derefs to a `LiveRelation`).
fn churn(node: &LiveRelation, n: i64, per_writer: i64) -> u64 {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WAL_WRITERS as i64)
            .map(|w| {
                scope.spawn(move || {
                    let mut applied = 0u64;
                    for i in 0..per_writer {
                        let gid = node
                            .insert(vec![Value::Int(n + w * 1_000_000 + i), Value::str("hot")])
                            .expect("valid row");
                        applied += 1;
                        if i % 2 == 0 {
                            node.delete(gid).expect("durable delete").expect("live gid");
                            applied += 1;
                        }
                    }
                    applied
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

/// The same workload as [`churn`] — same writers, same rows, same
/// delete pattern — but applied in [`WAL_BATCH_OPS`]-sized
/// [`LiveRelation::apply_batch`] runs: each run stages every record and
/// fsyncs once at the end, so the fsync count drops from one per
/// commit-group to one per batch.
fn churn_batched(node: &LiveRelation, n: i64, per_writer: i64) -> u64 {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WAL_WRITERS as i64)
            .map(|w| {
                scope.spawn(move || {
                    let mut applied = 0u64;
                    let mut i = 0i64;
                    while i < per_writer {
                        let take = (WAL_BATCH_OPS as i64).min(per_writer - i);
                        let inserts: Vec<UpdateOp> = (0..take)
                            .map(|j| {
                                UpdateOp::Insert(vec![
                                    Value::Int(n + w * 1_000_000 + i + j),
                                    Value::str("hot"),
                                ])
                            })
                            .collect();
                        let inserted = node.apply_batch(inserts).expect("batched inserts");
                        applied += take as u64;
                        // Deletes need the gids the inserts got, so they
                        // ride in a second batch: same every-other-row
                        // pattern as the per-record workload.
                        let deletes: Vec<UpdateOp> = inserted
                            .iter()
                            .enumerate()
                            .filter(|(j, _)| (i + *j as i64) % 2 == 0)
                            .map(|(_, a)| match a {
                                Applied::Inserted(gid) => UpdateOp::Delete(*gid),
                                Applied::Deleted(_) => unreachable!("insert batch"),
                            })
                            .collect();
                        applied += deletes.len() as u64;
                        node.apply_batch(deletes).expect("batched deletes");
                        i += take;
                    }
                    applied
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

/// Measure the same multi-writer update workload under each durability
/// mode. Every WAL-backed run is recovered and verified against its
/// live node before the number is reported.
pub fn wal_throughput_sweep(n: i64, per_writer: i64) -> Vec<WalThroughputSample> {
    let mut samples = Vec::new();

    // Baseline: no WAL at all.
    let live = base_live(n);
    let t0 = Instant::now();
    let updates = churn(&live, n, per_writer);
    let seconds = t0.elapsed().as_secs_f64().max(1e-12);
    samples.push(WalThroughputSample {
        mode: "no WAL (in-memory)",
        updates,
        seconds,
        updates_per_second: updates as f64 / seconds,
    });

    for (mode, sync, batched) in [
        ("fsync per record", SyncPolicy::Always, false),
        ("group commit", SyncPolicy::GroupCommit, false),
        ("group commit (batched)", SyncPolicy::GroupCommit, true),
        ("OS-buffered", SyncPolicy::Never, false),
    ] {
        let root = fresh_dir("thru");
        let catalog = SnapshotCatalog::open(root.join("snaps")).expect("catalog dir");
        let wal_dir = root.join("wal");
        let config = WalConfig {
            sync,
            ..WalConfig::default()
        };
        let node =
            DurableLiveRelation::create(base_live(n), &catalog, "bench", &wal_dir, config.clone())
                .expect("fresh durable node");
        let t0 = Instant::now();
        let updates = if batched {
            churn_batched(&node, n, per_writer)
        } else {
            churn(&node, n, per_writer)
        };
        node.wal().sync().expect("final flush");
        let seconds = t0.elapsed().as_secs_f64().max(1e-12);

        // Verify: recovery reproduces the live node exactly.
        let expected: Vec<Option<Vec<Value>>> = (0..(n as usize + updates as usize))
            .map(|gid| node.row(gid))
            .collect();
        drop(node);
        let recovered = DurableLiveRelation::recover(&catalog, "bench", &wal_dir, config)
            .expect("recovery after the run");
        for (gid, expect) in expected.iter().enumerate() {
            assert_eq!(&recovered.row(gid), expect, "{mode}: gid {gid} diverged");
        }
        samples.push(WalThroughputSample {
            mode,
            updates,
            seconds,
            updates_per_second: updates as f64 / seconds,
        });
        let _ = std::fs::remove_dir_all(&root);
    }
    samples
}

/// Measure recovery time against log length, raw vs compacted. The
/// workload is churn-heavy (2/3 of entries are insert+delete pairs), so
/// compaction has something to cancel; both recoveries are verified to
/// answer identically.
pub fn wal_recovery_sweep(n: i64, log_lens: &[usize], reps: usize) -> Vec<WalRecoverySample> {
    log_lens
        .iter()
        .map(|&target| {
            let root = fresh_dir("rec");
            let catalog = SnapshotCatalog::open(root.join("snaps")).expect("catalog dir");
            let wal_dir = root.join("wal");
            let config = WalConfig {
                segment_bytes: 64 << 10,
                sync: SyncPolicy::Never, // recovery cost is what's measured
            };
            let node = DurableLiveRelation::create(
                base_live(n),
                &catalog,
                "bench",
                &wal_dir,
                config.clone(),
            )
            .expect("fresh durable node");
            let mut applied = 0usize;
            let mut i = 0i64;
            while applied + 3 <= target {
                let gid = node
                    .insert(vec![Value::Int(n + i), Value::str("hot")])
                    .expect("valid row");
                applied += 1;
                if i % 3 != 0 {
                    node.delete(gid).expect("durable delete").expect("live gid");
                    applied += 1;
                }
                i += 1;
            }
            node.wal().sync().expect("flush");
            drop(node);

            // Raw recovery: replay the *whole* tail, entry by entry —
            // what recovery cost before compaction existed (work grows
            // with the history, not the net change).
            let mut raw_seconds = f64::MAX;
            let mut raw_replayed = 0usize;
            let mut raw_len = 0usize;
            for _ in 0..reps.max(1) {
                let t0 = Instant::now();
                let (state, mark, _epoch) = catalog
                    .load("bench")
                    .expect("checkpoint")
                    .into_checkpoint()
                    .expect("checkpoint kind");
                let tail = WalReader::open(&wal_dir).expect("wal scan").tail_log(mark);
                let live = LiveRelation::from_sharded(state);
                live.replay(&tail).expect("raw replay");
                raw_seconds = raw_seconds.min(t0.elapsed().as_secs_f64());
                raw_replayed = tail.len();
                raw_len = live.len();
            }

            // Compacted recovery: close the active segment, compact the
            // disk log, then recover through the production path (which
            // also compacts the remaining tail in memory).
            {
                let node =
                    DurableLiveRelation::recover(&catalog, "bench", &wal_dir, config.clone())
                        .expect("recovery before compaction");
                node.wal().rotate_now().expect("rotate");
                drop(node);
                Compactor::new(0).compact_dir(&wal_dir).expect("compaction");
            }
            let mut compacted_seconds = f64::MAX;
            let mut compacted_replayed = 0usize;
            for _ in 0..reps.max(1) {
                let t0 = Instant::now();
                let node =
                    DurableLiveRelation::recover(&catalog, "bench", &wal_dir, config.clone())
                        .expect("compacted recovery");
                compacted_seconds = compacted_seconds.min(t0.elapsed().as_secs_f64());
                compacted_replayed = node.boundedness_report().len();
                assert_eq!(node.len(), raw_len, "compaction changed the state");
            }

            let log_len = applied;
            let _ = std::fs::remove_dir_all(&root);
            WalRecoverySample {
                log_len,
                raw_replayed,
                raw_seconds,
                compacted_replayed,
                compacted_seconds,
            }
        })
        .collect()
}

/// E18 — durability: WAL throughput across fsync policies, and recovery
/// time raw vs compacted.
pub fn run_e18() -> Table {
    let n = 4_000i64;
    let throughput = wal_throughput_sweep(n, 300);
    let recovery = wal_recovery_sweep(n, &[600, 2_400], 2);
    let base = throughput[0].updates_per_second;

    let mut rows: Vec<Vec<String>> = throughput
        .iter()
        .map(|s| {
            vec![
                s.mode.to_string(),
                fmt_u64(s.updates),
                fmt_u64(s.updates_per_second as u64),
                format!("{:.3}x", s.updates_per_second / base.max(1e-12)),
                "-".into(),
            ]
        })
        .collect();
    for s in &recovery {
        rows.push(vec![
            format!("recover {} raw", fmt_u64(s.log_len as u64)),
            fmt_u64(s.raw_replayed as u64),
            "-".into(),
            "-".into(),
            format!("{:.2}ms", s.raw_seconds * 1e3),
        ]);
        rows.push(vec![
            format!("recover {} compacted", fmt_u64(s.log_len as u64)),
            fmt_u64(s.compacted_replayed as u64),
            "-".into(),
            "-".into(),
            format!("{:.2}ms", s.compacted_seconds * 1e3),
        ]);
    }

    let always = &throughput[1];
    let group = &throughput[2];
    let batched = &throughput[3];
    let last = recovery.last().expect("non-empty sweep");
    Table {
        id: "E18",
        title: "durable WAL: update throughput by fsync policy + recovery, raw vs compacted (wal)",
        paper_claim:
            "preprocessing is paid once — crashes included; recovery work tracks |CHANGED|",
        headers: [
            "mode",
            "updates/replayed",
            "updates/s",
            "vs no WAL",
            "recover",
        ]
        .map(String::from)
        .to_vec(),
        rows,
        verdict: format!(
            "group commit sustained {} updates/s vs {} with fsync-per-record ({} batched via \
             apply_batch); compaction cut a {}-entry log's replay to {} entries — every \
             recovered node verified row-identical",
            group.updates_per_second as u64,
            always.updates_per_second as u64,
            batched.updates_per_second as u64,
            fmt_u64(last.log_len as u64),
            fmt_u64(last.compacted_replayed as u64),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_sweep_covers_all_modes_and_verifies() {
        let samples = wal_throughput_sweep(400, 20);
        assert_eq!(samples.len(), 5);
        assert_eq!(samples[0].mode, "no WAL (in-memory)");
        assert_eq!(samples[3].mode, "group commit (batched)");
        for s in &samples {
            assert!(s.updates_per_second > 0.0, "{}", s.mode);
            // The batched mode applies the exact same update count —
            // same rows, same every-other-row deletes — as the
            // per-record modes; only the commit cadence differs.
            assert_eq!(s.updates, (20 + 10) * WAL_WRITERS as u64, "{}", s.mode);
        }
    }

    #[test]
    fn recovery_sweep_shows_compaction_bounding_replay() {
        let samples = wal_recovery_sweep(200, &[90], 1);
        assert_eq!(samples.len(), 1);
        let s = &samples[0];
        assert!(s.raw_replayed <= s.log_len);
        assert!(
            s.compacted_replayed < s.raw_replayed,
            "churn compacts: {} < {}",
            s.compacted_replayed,
            s.raw_replayed
        );
    }

    #[test]
    fn e18_runs_and_renders() {
        let t = run_e18();
        let s = t.render();
        assert!(s.contains("E18"));
        assert!(t.rows.len() >= 6);
    }
}
