//! Experiment E21: WAL-shipping replication — catch-up cost tracks the
//! *net* change, and a follower serves reads at primary throughput.
//!
//! Two claims, both verified before anything is reported:
//!
//! * **Catch-up vs net change.** The primary's compactor cancels
//!   insert+delete pairs inside closed segments, so what a follower
//!   ships and replays is bounded by the surviving records, not the
//!   total update count — the replication analogue of the paper's
//!   |CHANGED|-bounded maintenance. The sweep holds total churn fixed
//!   and varies the net change; catch-up time must follow the net.
//! * **Follower serving vs primary under writers.** A follower serves
//!   pooled batches from its own recovered engine while 0/1/4 writer
//!   threads hammer the primary and a catch-up loop keeps the replica
//!   fresh. Both tiers are measured with the same batch; at quiesce the
//!   follower must be bit-identical to the primary (answers and gids).
//!
//! The same sweeps back the `repl` bench target, which serializes both
//! curves to `BENCH_repl.json` next to the other perf artifacts.

use crate::table::{fmt_u64, Table};
use pitract_engine::batch::QueryBatch;
use pitract_engine::{LiveRelation, PoolConfig, PooledExecutor, ShardBy};
use pitract_relation::{ColType, Relation, Schema, SelectionQuery, Value};
use pitract_repl::{Follower, SegmentPublisher};
use pitract_store::SnapshotCatalog;
use pitract_wal::{DurableLiveRelation, SyncPolicy, WalConfig, WalReader};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Queries per measured batch in the serving sweep (also serialized
/// into the `BENCH_repl.json` perf artifact).
pub const REPL_BATCH_QUERIES: i64 = 256;

/// Shards on both the primary and the follower in the sweeps.
pub const REPL_SHARDS: usize = 3;

/// One measured point of the catch-up sweep.
#[derive(Debug, Clone)]
pub struct ReplCatchUpSample {
    /// Updates applied on the primary (inserts + deletes), fixed across
    /// the sweep.
    pub total_ops: usize,
    /// Rows that survive the churn — the net change the follower must
    /// actually materialize.
    pub net_change: usize,
    /// WAL records left to ship after the primary's compaction pass.
    pub shipped_records: usize,
    /// Wall-clock seconds for the follower to bootstrap-attach and
    /// catch up to lag 0.
    pub seconds: f64,
    /// Shipped records replayed per second.
    pub records_per_second: f64,
}

/// One measured point of the serving comparison.
#[derive(Debug, Clone)]
pub struct ReplServeSample {
    /// Racing writer threads on the primary.
    pub writers: usize,
    /// Best queries/second for one pooled batch on the primary.
    pub primary_qps: f64,
    /// Best queries/second for the same batch on the follower.
    pub follower_qps: f64,
    /// The follower's LSN lag after the final catch-up (always 0: the
    /// sweep quiesces and verifies).
    pub final_lag: u64,
}

fn fresh_root(tag: &str, seq: usize) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pitract-replbench-{tag}-{}-{seq}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> WalConfig {
    WalConfig {
        segment_bytes: 32 * 1024,
        sync: SyncPolicy::GroupCommit,
    }
}

fn empty_primary(root: &Path) -> (Arc<DurableLiveRelation>, SnapshotCatalog) {
    let schema = Schema::new(&[("id", ColType::Int)]);
    let rel = Relation::from_rows(schema, vec![]).expect("valid rows");
    let live =
        LiveRelation::build(&rel, ShardBy::Hash { col: 0 }, REPL_SHARDS, &[0]).expect("valid spec");
    let catalog = SnapshotCatalog::open(root.join("snaps")).expect("catalog dir");
    let node = Arc::new(
        DurableLiveRelation::create(live, &catalog, "node", root.join("wal"), config())
            .expect("fresh durable node"),
    );
    (node, catalog)
}

/// Fixed total churn, varying net change: insert `net` keepers plus
/// enough insert+delete pairs to reach `total_ops`, compact the
/// primary's closed segments, then time a fresh follower catching up.
/// The follower is verified row-for-row against the primary before the
/// sample is reported.
pub fn repl_catchup_sweep(total_ops: usize, nets: &[usize]) -> Vec<ReplCatchUpSample> {
    nets.iter()
        .enumerate()
        .map(|(seq, &net)| {
            assert!(net <= total_ops, "net change cannot exceed total ops");
            let root = fresh_root("catchup", seq);
            let (node, catalog) = empty_primary(&root);
            let publisher = SegmentPublisher::new(Arc::clone(&node));

            // `net` keepers, then cancelling pairs for the rest of the
            // budget (one pair = two ops).
            for i in 0..net {
                node.insert(vec![Value::Int(i as i64)]).expect("insert");
            }
            let pairs = (total_ops - net) / 2;
            for i in 0..pairs {
                let gid = node
                    .insert(vec![Value::Int((1_000_000 + i) as i64)])
                    .expect("insert");
                node.delete(gid).expect("delete");
            }
            node.wal().rotate_now().expect("rotate");
            publisher.compact_primary().expect("compact");
            let shipped_records = WalReader::open(root.join("wal"))
                .expect("scan after compaction")
                .records()
                .len();

            let t0 = Instant::now();
            let follower = Follower::bootstrap(&catalog, "node", root.join("mirror"), config())
                .expect("bootstrap");
            let sub = follower.attach(&publisher);
            let report = follower.catch_up(&publisher, sub).expect("catch up");
            let seconds = t0.elapsed().as_secs_f64();

            assert_eq!(report.lag, 0, "caught up");
            assert_eq!(follower.len(), node.len(), "net {net} diverged in size");
            for i in 0..net {
                let q = SelectionQuery::point(0, i as i64);
                assert_eq!(
                    follower.matching_ids(&q),
                    node.matching_ids(&q),
                    "net {net} diverged at key {i}"
                );
            }
            let _ = std::fs::remove_dir_all(&root);
            ReplCatchUpSample {
                total_ops,
                net_change: net,
                shipped_records,
                seconds,
                records_per_second: shipped_records as f64 / seconds.max(1e-9),
            }
        })
        .collect()
}

/// Measure one pooled batch per tier while `writers` threads race on
/// the primary and a catch-up loop keeps the follower fresh; quiesce,
/// drain, and verify the follower bit-for-bit before reporting.
pub fn repl_serving_sweep(
    n: i64,
    writer_counts: &[usize],
    per_writer: i64,
    reps: usize,
) -> Vec<ReplServeSample> {
    writer_counts
        .iter()
        .enumerate()
        .map(|(seq, &writers)| {
            let root = fresh_root("serve", seq);
            let (node, catalog) = empty_primary(&root);
            let publisher = SegmentPublisher::new(Arc::clone(&node));
            for i in 0..n {
                node.insert(vec![Value::Int(i)]).expect("insert");
            }
            let follower = Arc::new(
                Follower::bootstrap(&catalog, "node", root.join("mirror"), config())
                    .expect("bootstrap"),
            );
            let sub = follower.attach(&publisher);
            follower
                .catch_up(&publisher, sub)
                .expect("initial catch up");

            let batch = QueryBatch::new(
                (0..REPL_BATCH_QUERIES).map(|k| SelectionQuery::point(0, (k * 997) % (n + n / 8))),
            );
            let pool = PoolConfig {
                workers: 2,
                max_inflight: 2,
            };
            let primary_exec = PooledExecutor::new(Arc::clone(&node), pool.clone());
            let follower_exec = PooledExecutor::new(Arc::clone(&follower), pool);

            let mut primary_qps = 0.0f64;
            let mut follower_qps = 0.0f64;
            let done = std::sync::atomic::AtomicBool::new(false);
            let done = &done;
            std::thread::scope(|scope| {
                for w in 0..writers {
                    let node = Arc::clone(&node);
                    scope.spawn(move || {
                        for i in 0..per_writer {
                            let key = n + (w as i64) * per_writer + i;
                            node.insert(vec![Value::Int(key)]).expect("insert");
                        }
                    });
                }
                // The catch-up loop: keeps the replica fresh while the
                // measurement below runs against a moving primary.
                let fol = Arc::clone(&follower);
                let pubr = &publisher;
                scope.spawn(move || {
                    while !done.load(std::sync::atomic::Ordering::SeqCst) {
                        fol.catch_up(pubr, sub).expect("catch up loop");
                        std::thread::yield_now();
                    }
                });

                for _ in 0..reps.max(1) {
                    let t0 = Instant::now();
                    let result = primary_exec.execute(&batch).expect("primary serves");
                    let qps = result.answers.len() as f64 / t0.elapsed().as_secs_f64();
                    primary_qps = primary_qps.max(qps);

                    let t0 = Instant::now();
                    let result = follower_exec.execute(&batch).expect("follower serves");
                    let qps = result.answers.len() as f64 / t0.elapsed().as_secs_f64();
                    follower_qps = follower_qps.max(qps);
                }
                done.store(true, std::sync::atomic::Ordering::SeqCst);
            });

            // Quiesce and verify bit-identity across the whole keyspace
            // the writers touched.
            node.wal().sync().expect("sync");
            let report = follower.catch_up(&publisher, sub).expect("final catch up");
            assert_eq!(report.lag, 0);
            assert_eq!(follower.len(), node.len(), "writers={writers} diverged");
            for k in (0..n + (writers as i64) * per_writer).step_by(7) {
                let q = SelectionQuery::point(0, k);
                assert_eq!(
                    follower.matching_ids(&q),
                    node.matching_ids(&q),
                    "writers={writers} diverged at key {k}"
                );
            }
            let _ = std::fs::remove_dir_all(&root);
            ReplServeSample {
                writers,
                primary_qps,
                follower_qps,
                final_lag: report.lag,
            }
        })
        .collect()
}

/// E21 — replication: catch-up tracks net change; the follower serves
/// at primary-grade throughput under 0/1/4 racing writers.
pub fn run_e21() -> Table {
    let total = 6_000usize;
    let catchup = repl_catchup_sweep(total, &[500, 1_500, 3_000, 6_000]);
    let serving = repl_serving_sweep(20_000, &[0, 1, 4], 400, 3);

    let mut rows: Vec<Vec<String>> = catchup
        .iter()
        .map(|s| {
            vec![
                format!("catch-up net={}", s.net_change),
                fmt_u64(s.total_ops as u64),
                fmt_u64(s.shipped_records as u64),
                format!("{:.4}s", s.seconds),
                fmt_u64(s.records_per_second as u64),
            ]
        })
        .collect();
    rows.extend(serving.iter().map(|s| {
        vec![
            format!("serve writers={}", s.writers),
            fmt_u64(s.primary_qps as u64),
            fmt_u64(s.follower_qps as u64),
            format!("{:.2}x", s.follower_qps / s.primary_qps.max(1e-9)),
            format!("lag {}", s.final_lag),
        ]
    }));

    let widest = catchup.last().expect("non-empty sweep");
    let narrowest = catchup.first().expect("non-empty sweep");
    Table {
        id: "E21",
        title: "WAL-shipping replication: catch-up vs net change, follower vs primary serving",
        paper_claim: "replica maintenance is |CHANGED|-bounded and replica reads scale out",
        headers: ["case", "a", "b", "c", "d"].map(String::from).to_vec(),
        rows,
        verdict: format!(
            "catch-up ships {} records for net {} vs {} for net {} (total churn fixed at {}); \
             every follower verified bit-identical to its primary at quiesce",
            narrowest.shipped_records,
            narrowest.net_change,
            widest.shipped_records,
            widest.net_change,
            total,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catchup_sweep_ships_the_net_not_the_churn() {
        let samples = repl_catchup_sweep(400, &[50, 400]);
        assert_eq!(samples.len(), 2);
        // Fixed churn, small vs full net: the compactor must have
        // cancelled the paired half, so the small-net case ships fewer
        // records.
        assert!(
            samples[0].shipped_records < samples[1].shipped_records,
            "{samples:?}"
        );
        for s in &samples {
            assert!(s.records_per_second > 0.0);
        }
    }

    #[test]
    fn serving_sweep_measures_both_tiers_under_writers() {
        let samples = repl_serving_sweep(2_000, &[0, 1], 40, 1);
        assert_eq!(samples.len(), 2);
        for s in &samples {
            assert!(s.primary_qps > 0.0);
            assert!(s.follower_qps > 0.0);
            assert_eq!(s.final_lag, 0);
        }
    }
}
