//! Experiment E19: the persistent worker pool vs per-batch scoped
//! threads.
//!
//! The scoped executor ([`QueryBatch::execute`]) spawns and joins one
//! thread per routed shard for *every* batch — correct, but the
//! spawn/join tax is paid on the serving path. The pooled executor
//! ([`pitract_engine::PooledExecutor`]) spawns its workers once per
//! serving session and feeds batches to them as per-shard work items
//! over a channel. This experiment runs the same mixed batch through
//! both executors across 1/2/4/8 shards, verifies every answer against
//! the scan oracle, and reports the throughput side by side.
//!
//! The same sweep backs the `pool` bench target, which serializes the
//! curve to `BENCH_pool.json` next to the other perf artifacts.

use crate::table::{fmt_u64, Table};
use pitract_engine::batch::QueryBatch;
use pitract_engine::shard::{ShardBy, ShardedRelation};
use pitract_engine::PooledExecutor;
use pitract_relation::{ColType, Relation, Schema, SelectionQuery, Value};
use std::sync::Arc;
use std::time::Instant;

/// Queries per batch in the sweep workload (also serialized into the
/// `BENCH_pool.json` perf artifact).
pub const POOL_BATCH_QUERIES: i64 = 512;

/// One measured point of the executor comparison.
#[derive(Debug, Clone)]
pub struct PoolSample {
    /// Shard count S.
    pub shards: usize,
    /// Workers the pooled executor sized itself to for this S.
    pub workers: usize,
    /// Best wall-clock seconds for one batch on the scoped executor.
    pub scoped_seconds: f64,
    /// Queries per second on the scoped executor.
    pub scoped_qps: f64,
    /// Best wall-clock seconds for one batch on the pooled executor.
    pub pooled_seconds: f64,
    /// Queries per second on the pooled executor.
    pub pooled_qps: f64,
}

fn workload(n: i64) -> (Relation, QueryBatch) {
    let schema = Schema::new(&[("id", ColType::Int), ("grp", ColType::Str)]);
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| vec![Value::Int(i), Value::str(format!("grp{}", i % 64))])
        .collect();
    let rel = Relation::from_rows(schema, rows).expect("valid rows");
    let batch = QueryBatch::new((0..POOL_BATCH_QUERIES).map(|k| match k % 4 {
        0 => SelectionQuery::point(0, (k * 997) % (n + n / 8)),
        1 => {
            let lo = (k * 641) % n;
            SelectionQuery::range_closed(0, lo, lo + 200)
        }
        2 => SelectionQuery::and(
            SelectionQuery::point(1, format!("grp{}", k % 64).as_str()),
            SelectionQuery::range_closed(0, (k * 331) % n, (k * 331) % n + 2_000),
        ),
        _ => SelectionQuery::point(0, n + k),
    }));
    (rel, batch)
}

/// Run the executor comparison on an `n`-row relation with `reps` timed
/// repetitions per shard count (best-of), verifying every batch —
/// scoped and pooled — against the scan oracle. Shared by E19 and the
/// `pool` bench target.
pub fn pool_scaling_sweep(n: i64, shard_counts: &[usize], reps: usize) -> Vec<PoolSample> {
    let (rel, batch) = workload(n);
    let oracle: Vec<bool> = batch.queries().iter().map(|q| rel.eval_scan(q)).collect();
    shard_counts
        .iter()
        .map(|&shards| {
            let sharded = Arc::new(
                ShardedRelation::build(&rel, ShardBy::Hash { col: 0 }, shards, &[0, 1])
                    .expect("valid sharding spec"),
            );
            let mut scoped_seconds = f64::MAX;
            for _ in 0..reps.max(1) {
                let t0 = Instant::now();
                let result = batch.execute(&sharded).expect("valid batch");
                scoped_seconds = scoped_seconds.min(t0.elapsed().as_secs_f64());
                assert_eq!(result.answers, oracle, "scoped S={shards} diverged");
            }

            let exec = PooledExecutor::with_default_pool(Arc::clone(&sharded));
            let workers = exec.pool().workers();
            // One warm-up batch so worker spin-up (paid once per serving
            // session, which is the point) isn't billed to the sample.
            let warm = exec.execute(&batch).expect("valid batch");
            assert_eq!(warm.answers, oracle, "pooled warm-up S={shards} diverged");
            let mut pooled_seconds = f64::MAX;
            for _ in 0..reps.max(1) {
                let t0 = Instant::now();
                let result = exec.execute(&batch).expect("valid batch");
                pooled_seconds = pooled_seconds.min(t0.elapsed().as_secs_f64());
                assert_eq!(result.answers, oracle, "pooled S={shards} diverged");
            }

            PoolSample {
                shards,
                workers,
                scoped_seconds,
                scoped_qps: batch.len() as f64 / scoped_seconds,
                pooled_seconds,
                pooled_qps: batch.len() as f64 / pooled_seconds,
            }
        })
        .collect()
}

/// E19 — pooled vs scoped execution: throughput across 1/2/4/8 shards.
pub fn run_e19() -> Table {
    let samples = pool_scaling_sweep(1 << 16, &[1, 2, 4, 8], 3);
    let rows = samples
        .iter()
        .map(|s| {
            vec![
                fmt_u64(s.shards as u64),
                fmt_u64(s.workers as u64),
                fmt_u64(s.scoped_qps as u64),
                fmt_u64(s.pooled_qps as u64),
                format!("{:.2}x", s.pooled_qps / s.scoped_qps),
            ]
        })
        .collect();
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let best = samples
        .iter()
        .max_by(|a, b| a.pooled_qps.total_cmp(&b.pooled_qps))
        .expect("non-empty sweep");
    Table {
        id: "E19",
        title: "persistent worker pool vs per-batch scoped threads (engine)",
        paper_claim: "NC serving is a session, not a query: spawn workers once, stream batches",
        headers: [
            "shards",
            "workers",
            "scoped q/s",
            "pooled q/s",
            "pooled/scoped",
        ]
        .map(String::from)
        .to_vec(),
        rows,
        verdict: format!(
            "pooled executor peaks at S={} ({} q/s) on {cores} core(s); every batch on both \
             executors verified against the scan oracle",
            best.shards, best.pooled_qps as u64
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_verifies_both_executors_at_every_shard_count() {
        // Tiny size: the debug-mode smoke run only checks the plumbing.
        let samples = pool_scaling_sweep(2_000, &[1, 2, 4], 1);
        assert_eq!(samples.len(), 3);
        for s in &samples {
            assert!(s.scoped_qps > 0.0);
            assert!(s.pooled_qps > 0.0);
            assert!(s.workers >= 1 && s.workers <= s.shards);
        }
    }

    #[test]
    fn e19_runs_and_renders() {
        let t = run_e19();
        let s = t.render();
        assert!(s.contains("E19"));
        assert_eq!(t.rows.len(), 4);
    }
}
